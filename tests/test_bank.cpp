// Unit tests for ParticleBank: layout-polymorphic storage, the canonical
// wire-format conversion at bank boundaries, sourcing, and the migration
// mutation ops (extract/inject/compaction) in both layouts.
#include <gtest/gtest.h>

#include <vector>

#include "core/bank.h"
#include "core/deck.h"
#include "core/init.h"
#include "mesh/mesh2d.h"

namespace neutral {
namespace {

Particle make_particle(std::uint64_t id, ParticleState state) {
  Particle p;
  p.x = 1.0 + static_cast<double>(id);
  p.y = 2.0 + static_cast<double>(id);
  p.omega_x = 0.6;
  p.omega_y = 0.8;
  p.energy = 1.0e6;
  p.weight = 0.5;
  p.dt_to_census = 1.0e-9;
  p.mfp_to_collision = 3.0;
  p.cellx = static_cast<std::int32_t>(id % 7);
  p.celly = static_cast<std::int32_t>(id % 5);
  p.xs_index = 11;
  p.state = state;
  p.rng_counter = 4 + id;
  p.id = id;
  return p;
}

class BankLayouts : public ::testing::TestWithParam<Layout> {};

TEST_P(BankLayouts, RecordRoundTripsThroughEitherLayout) {
  ParticleBank bank(GetParam());
  EXPECT_TRUE(bank.empty());
  for (std::uint64_t id = 0; id < 5; ++id) {
    bank.append(make_particle(id, ParticleState::kAlive));
  }
  ASSERT_EQ(bank.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const Particle expect = make_particle(i, ParticleState::kAlive);
    const Particle got = bank.get(i);
    EXPECT_EQ(got.id, expect.id);
    EXPECT_EQ(got.x, expect.x);
    EXPECT_EQ(got.energy, expect.energy);
    EXPECT_EQ(got.cellx, expect.cellx);
    EXPECT_EQ(got.rng_counter, expect.rng_counter);
    EXPECT_EQ(got.state, expect.state);
    EXPECT_EQ(bank.id(i), expect.id);
    EXPECT_EQ(bank.state(i), expect.state);
  }
  // set() overwrites in place.
  bank.set(2, make_particle(42, ParticleState::kCensus));
  EXPECT_EQ(bank.get(2).id, 42u);
  EXPECT_EQ(bank.state(2), ParticleState::kCensus);
}

TEST_P(BankLayouts, ExtractCompactsAndInjectConverts) {
  ParticleBank bank(GetParam());
  bank.append(make_particle(0, ParticleState::kCensus));
  bank.append(make_particle(1, ParticleState::kMigrating));
  bank.append(make_particle(2, ParticleState::kDead));
  bank.append(make_particle(3, ParticleState::kMigrating));
  bank.append(make_particle(4, ParticleState::kAlive));

  std::vector<Particle> out;
  EXPECT_EQ(bank.extract_migrants(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  // Extracted in bank order, flipped to kAlive (the checkpoint resumes
  // mid-flight on the owner).
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 3u);
  EXPECT_EQ(out[0].state, ParticleState::kAlive);
  // Survivors compacted over the holes, order preserved, dead retained.
  ASSERT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank.id(0), 0u);
  EXPECT_EQ(bank.id(1), 2u);
  EXPECT_EQ(bank.id(2), 4u);
  EXPECT_EQ(bank.surviving_population(), 2);

  // Inject re-banks the wire-format records whatever this bank's layout.
  bank.inject(out.data(), out.size());
  ASSERT_EQ(bank.size(), 5u);
  EXPECT_EQ(bank.id(3), 1u);
  EXPECT_EQ(bank.id(4), 3u);
  EXPECT_EQ(bank.get(4).rng_counter, make_particle(3, {}).rng_counter);
}

TEST_P(BankLayouts, SourceSpanMatchesSampleBirth) {
  const ProblemDeck deck = csp_deck(/*mesh_scale=*/0.01, /*particle_scale=*/1.0);
  const StructuredMesh2D mesh(deck.nx, deck.ny, deck.width_cm,
                              deck.height_cm);
  ParticleBank bank(GetParam());
  bank.source_span(deck, mesh, /*first_id=*/7, /*count=*/20);
  ASSERT_EQ(bank.size(), 20u);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const Particle expect = sample_birth(deck, mesh, 7 + i);
    const Particle got = bank.get(i);
    EXPECT_EQ(got.id, expect.id);
    EXPECT_EQ(got.x, expect.x);
    EXPECT_EQ(got.y, expect.y);
    EXPECT_EQ(got.mfp_to_collision, expect.mfp_to_collision);
    EXPECT_EQ(got.rng_counter, expect.rng_counter);
  }
  EXPECT_GT(bank.footprint_bytes(), 0u);
  EXPECT_GT(bank.in_flight_energy(), 0.0);
}

TEST_P(BankLayouts, AssignAdoptsWireRecords) {
  std::vector<Particle> records;
  for (std::uint64_t id = 10; id < 14; ++id) {
    records.push_back(make_particle(id, ParticleState::kCensus));
  }
  ParticleBank bank(GetParam());
  bank.assign(records);
  ASSERT_EQ(bank.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(bank.id(i), 10 + i);
}

INSTANTIATE_TEST_SUITE_P(Layouts, BankLayouts,
                         ::testing::Values(Layout::kAoS, Layout::kSoA),
                         [](const ::testing::TestParamInfo<Layout>& info) {
                           return info.param == Layout::kAoS ? "AoS" : "SoA";
                         });

// Cross-layout hand-off: migrants extracted from an AoS bank inject into an
// SoA bank (and back) without loss — the boundary conversion domains rely
// on when schemes/layouts differ per subdomain configuration.
TEST(ParticleBank, WireFormatCrossesLayoutBoundaries) {
  ParticleBank aos(Layout::kAoS);
  aos.append(make_particle(1, ParticleState::kMigrating));
  aos.append(make_particle(2, ParticleState::kAlive));

  std::vector<Particle> wire;
  ASSERT_EQ(aos.extract_migrants(wire), 1u);

  ParticleBank soa(Layout::kSoA);
  soa.inject(wire.data(), wire.size());
  ASSERT_EQ(soa.size(), 1u);
  const Particle p = soa.get(0);
  EXPECT_EQ(p.id, 1u);
  EXPECT_EQ(p.state, ParticleState::kAlive);
  EXPECT_EQ(p.xs_index, make_particle(1, {}).xs_index);

  // And back: SoA -> wire -> AoS.
  soa.set(0, make_particle(1, ParticleState::kMigrating));
  wire.clear();
  ASSERT_EQ(soa.extract_migrants(wire), 1u);
  EXPECT_TRUE(soa.empty());
  ParticleBank back(Layout::kAoS);
  back.inject(wire.data(), wire.size());
  EXPECT_EQ(back.get(0).id, 1u);
}

}  // namespace
}  // namespace neutral
