// Tests for domain (spatial) decomposition: the grid planner, windowed
// worlds and Simulations, particle migration, and the stitched reduction's
// bit-identity against the undecomposed run — over the FULL scheme x
// layout matrix (the ParticleBank refactor makes domains compose with
// Over Events, SoA, and nested bank shards).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "batch/domain.h"
#include "batch/engine.h"
#include "core/simulation.h"
#include "core/validation.h"
#include "mesh/window.h"
#include "util/error.h"

namespace neutral {
namespace {

using batch::BatchEngine;
using batch::DomainGrid;
using batch::DomainOptions;
using batch::DomainRunReport;
using batch::EngineOptions;

// A deck small enough for exhaustive grids but busy enough to migrate:
// csp's centre square scatters particles streaming in from the source
// corner, so trajectories cross subdomain facets in both axes.
SimulationConfig tiny_config(std::int64_t particles = 400,
                             std::int32_t timesteps = 2) {
  SimulationConfig cfg;
  cfg.deck = csp_deck(/*mesh_scale=*/0.02, /*particle_scale=*/1.0);
  cfg.deck.n_particles = particles;
  cfg.deck.n_timesteps = timesteps;
  cfg.threads = 1;
  return cfg;
}

RunResult run_compensated(SimulationConfig cfg) {
  cfg.compensated_tally = true;
  cfg.keep_tally_image = true;
  Simulation sim(std::move(cfg));
  return sim.run();
}

// ---------------------------------------------------------------------------
// Grid planner
// ---------------------------------------------------------------------------

TEST(PlanDomains, TilesTheMeshExactly) {
  const DomainGrid grid = batch::plan_domains(10, 7, 3, 4);
  EXPECT_EQ(grid.rows, 3);
  EXPECT_EQ(grid.cols, 4);
  ASSERT_EQ(grid.row_start.size(), 4u);
  ASSERT_EQ(grid.col_start.size(), 5u);
  EXPECT_EQ(grid.row_start.front(), 0);
  EXPECT_EQ(grid.row_start.back(), 7);
  EXPECT_EQ(grid.col_start.back(), 10);

  // Windows are disjoint, cover every cell, and each cell's owner agrees
  // with its window.
  std::vector<int> covered(10 * 7, 0);
  for (std::int32_t r = 0; r < grid.rows; ++r) {
    for (std::int32_t c = 0; c < grid.cols; ++c) {
      const DomainWindow w = grid.window(r, c);
      EXPECT_GE(w.nx, 10 / 4);
      EXPECT_GE(w.ny, 7 / 3);
      for (std::int32_t j = w.y0; j < w.y0 + w.ny; ++j) {
        for (std::int32_t i = w.x0; i < w.x0 + w.nx; ++i) {
          ++covered[static_cast<std::size_t>(j) * 10 + i];
          EXPECT_EQ(grid.owner({i, j}),
                    static_cast<std::size_t>(r) * 4 + c);
        }
      }
    }
  }
  for (int hits : covered) EXPECT_EQ(hits, 1);
}

TEST(PlanDomains, ClampsToTheMesh) {
  const DomainGrid grid = batch::plan_domains(2, 3, 8, 8);
  EXPECT_EQ(grid.rows, 3);
  EXPECT_EQ(grid.cols, 2);
  EXPECT_THROW(batch::plan_domains(0, 4, 1, 1), Error);
  EXPECT_THROW(batch::plan_domains(4, 4, 0, 1), Error);
}

TEST(ParseDomainGrid, AcceptsRxCOnly) {
  EXPECT_EQ(batch::parse_domain_grid("2x3"),
            (std::pair<std::int32_t, std::int32_t>{2, 3}));
  EXPECT_EQ(batch::parse_domain_grid("1x1"),
            (std::pair<std::int32_t, std::int32_t>{1, 1}));
  EXPECT_THROW(batch::parse_domain_grid(""), Error);
  EXPECT_THROW(batch::parse_domain_grid("4"), Error);
  EXPECT_THROW(batch::parse_domain_grid("x4"), Error);
  EXPECT_THROW(batch::parse_domain_grid("2x"), Error);
  EXPECT_THROW(batch::parse_domain_grid("2x3x4"), Error);
  EXPECT_THROW(batch::parse_domain_grid("0x2"), Error);
  EXPECT_THROW(batch::parse_domain_grid("-1x2"), Error);
}

// ---------------------------------------------------------------------------
// Windowed worlds and Simulations
// ---------------------------------------------------------------------------

TEST(WindowedWorld, SlabDensityMatchesFullField) {
  const ProblemDeck deck = tiny_config().deck;
  const auto full = build_world(deck);
  const DomainWindow w{deck.nx / 2, 0, deck.nx - deck.nx / 2, deck.ny / 2};
  const auto slab = build_world(deck, w);

  EXPECT_EQ(slab->density.size(), w.num_cells());
  EXPECT_NE(slab->fingerprint, full->fingerprint);
  for (std::int32_t j = 0; j < w.ny; ++j) {
    for (std::int32_t i = 0; i < w.nx; ++i) {
      const CellIndex c{w.x0 + i, w.y0 + j};
      ASSERT_EQ(slab->density.g_cm3(w.local_flat(c)),
                full->density.g_cm3(full->mesh.flat_index(c)))
          << "cell (" << c.x << "," << c.y << ")";
    }
  }
}

TEST(WindowedWorld, FullWindowSharesTheFullFingerprint) {
  const ProblemDeck deck = tiny_config().deck;
  const auto a = build_world(deck);
  const auto b = build_world(deck, DomainWindow{0, 0, deck.nx, deck.ny});
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(b->density.size(), a->density.size());
}

TEST(WindowedSimulation, SourcesOnlyParticlesBornInside) {
  const SimulationConfig base = tiny_config(500);
  const DomainGrid grid =
      batch::plan_domains(base.deck.nx, base.deck.ny, 2, 2);
  std::int64_t total = 0;
  for (std::int32_t r = 0; r < 2; ++r) {
    for (std::int32_t c = 0; c < 2; ++c) {
      SimulationConfig cfg = base;
      cfg.window = grid.window(r, c);
      Simulation sim(cfg);
      total += sim.sourced_count();
      EXPECT_EQ(sim.bank_size(), sim.sourced_count());
    }
  }
  EXPECT_EQ(total, 500);
}

TEST(WindowedSimulation, ComposesWithEverySchemeLayoutAndSpan) {
  // The restrictions PR 4 lifted: windows now construct with any scheme,
  // any layout, and a particle span (the bank converts at the boundary).
  for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      SimulationConfig cfg = tiny_config(200);
      cfg.scheme = scheme;
      cfg.layout = layout;
      cfg.window = DomainWindow{0, 0, cfg.deck.nx, cfg.deck.ny};
      cfg.span = ParticleSpan{50, 100};
      Simulation sim(cfg);
      EXPECT_EQ(sim.bank().layout(), layout);
      // A full-mesh window with a span sources exactly the span's ids.
      EXPECT_EQ(sim.sourced_count(), 100);
    }
  }
}

TEST(WindowedSimulation, RejectsGenuinelyInvalidConfigs) {
  SimulationConfig cfg = tiny_config();
  // A window that does not fit the mesh is invalid in any composition.
  cfg.window = DomainWindow{0, 0, cfg.deck.nx + 1, cfg.deck.ny};
  EXPECT_THROW(Simulation{cfg}, Error);
  // So is a span that is not a slice of the deck bank.
  cfg.window = DomainWindow{0, 0, cfg.deck.nx, cfg.deck.ny};
  cfg.span = ParticleSpan{0, cfg.deck.n_particles + 1};
  EXPECT_THROW(Simulation{cfg}, Error);
  // step() is the whole-mesh driver; windowed runs use transport_round.
  cfg.span = ParticleSpan{};
  Simulation windowed(cfg);
  EXPECT_THROW(windowed.step(), Error);
  Simulation plain(tiny_config());
  EXPECT_THROW(plain.transport_round(true), Error);
}

// ---------------------------------------------------------------------------
// The acceptance gate: bit-identical checksum and population versus the
// undecomposed run for the FULL scheme x layout matrix, over grids
// {1x1, 2x2, 3x3} at worker counts {1, 4}, with the per-subdomain slab
// footprint shrinking as the grid grows.
// ---------------------------------------------------------------------------

class DomainMatrix
    : public ::testing::TestWithParam<std::tuple<Scheme, Layout>> {};

TEST_P(DomainMatrix, BitIdenticalAcrossGridsAndWorkers) {
  const auto [scheme, layout] = GetParam();
  SimulationConfig base = tiny_config(400);
  base.scheme = scheme;
  base.layout = layout;
  const RunResult reference = run_compensated(base);

  std::uint64_t previous_peak = 0;
  const std::pair<std::int32_t, std::int32_t> grids[] = {
      {1, 1}, {2, 2}, {3, 3}};
  for (const auto& [rows, cols] : grids) {
    std::int64_t migrations_at_w1 = -1;
    for (std::int32_t workers : {1, 4}) {
      EngineOptions options;
      options.workers = workers;
      BatchEngine engine(options);
      DomainOptions opt;
      opt.rows = rows;
      opt.cols = cols;
      const DomainRunReport report =
          batch::run_domains(engine, base, opt);
      ASSERT_TRUE(report.ok) << report.error;
      SCOPED_TRACE(std::string(to_string(scheme)) + "/" +
                   to_string(layout) + " " + std::to_string(rows) + "x" +
                   std::to_string(cols) + " on " +
                   std::to_string(workers) + " workers");

      EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
      EXPECT_EQ(report.merged.population, reference.population);
      EXPECT_EQ(report.merged.counters.total_events(),
                reference.counters.total_events());
      EXPECT_EQ(report.merged.counters.facets, reference.counters.facets);
      EXPECT_EQ(report.merged.counters.collisions,
                reference.counters.collisions);
      EXPECT_EQ(report.merged.counters.rng_draws,
                reference.counters.rng_draws);
      EXPECT_TRUE(report.merged.budget.conserved(1e-9));

      // The whole bank is sourced, split by birth slab.
      EXPECT_EQ(std::accumulate(report.sourced.begin(),
                                report.sourced.end(), std::int64_t{0}),
                base.deck.n_particles);
      // Migration bookkeeping is deterministic across worker counts.
      if (migrations_at_w1 < 0) {
        migrations_at_w1 = report.migrations;
      } else {
        EXPECT_EQ(report.migrations, migrations_at_w1);
      }
      EXPECT_EQ(report.migrations, static_cast<std::int64_t>(
                                       report.merged.counters.migrations));
      if (rows * cols > 1) {
        EXPECT_GT(report.migrations, 0);
      }

      // The stitched image matches the unsharded compensated tally cell
      // by cell, not just through the checksum.
      ASSERT_NE(report.merged.tally, nullptr);
      ASSERT_EQ(report.merged.tally->cells(), reference.tally->cells());
      for (std::int64_t cell = 0; cell < reference.tally->cells(); ++cell) {
        ASSERT_EQ(report.merged.tally->hi[static_cast<std::size_t>(cell)],
                  reference.tally->hi[static_cast<std::size_t>(cell)])
            << "cell " << cell;
      }

      // Bank-proportional memory is accounted for every scheme (the Over
      // Events runs include their flight-state workspace).
      EXPECT_GT(report.merged.peak_bank_bytes, 0u);

      if (workers == 1) {
        // Slab memory shrinks (weakly) as the grid refines; strictly
        // below the full-mesh footprint once the mesh is actually split.
        EXPECT_EQ(report.peak_mesh_bytes, report.merged.peak_mesh_bytes);
        if (previous_peak > 0) {
          EXPECT_LT(report.peak_mesh_bytes, previous_peak);
        } else {
          EXPECT_EQ(report.peak_mesh_bytes, reference.peak_mesh_bytes);
        }
        previous_peak = report.peak_mesh_bytes;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndLayouts, DomainMatrix,
    ::testing::Combine(::testing::Values(Scheme::kOverParticles,
                                         Scheme::kOverEvents),
                       ::testing::Values(Layout::kAoS, Layout::kSoA)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, Layout>>& info) {
      return std::string(std::get<0>(info.param) == Scheme::kOverParticles
                             ? "particles"
                             : "events") +
             (std::get<1>(info.param) == Layout::kAoS ? "AoS" : "SoA");
    });

// Bank shards nested inside subdomains: --shards x --domains composes and
// the reduction stays bit-identical at any worker count.
TEST(RunDomains, ComposesWithBankShards) {
  SimulationConfig base = tiny_config(400);
  const RunResult reference = run_compensated(base);

  for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      SimulationConfig cfg = base;
      cfg.scheme = scheme;
      cfg.layout = layout;
      for (std::int32_t workers : {1, 4}) {
        EngineOptions options;
        options.workers = workers;
        BatchEngine engine(options);
        DomainOptions opt;
        opt.rows = 2;
        opt.cols = 2;
        opt.shards = 3;
        const DomainRunReport report = batch::run_domains(engine, cfg, opt);
        ASSERT_TRUE(report.ok) << report.error;
        SCOPED_TRACE(std::string(to_string(scheme)) + "/" +
                     to_string(layout) + " on " + std::to_string(workers) +
                     " workers");

        EXPECT_EQ(report.shards, 3);
        // One partial solve per (subdomain, span); together they source
        // the whole bank exactly once.
        EXPECT_EQ(report.sourced.size(), report.grid.count() * 3);
        EXPECT_EQ(std::accumulate(report.sourced.begin(),
                                  report.sourced.end(), std::int64_t{0}),
                  base.deck.n_particles);
        EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
        EXPECT_EQ(report.merged.population, reference.population);
        EXPECT_EQ(report.merged.counters.total_events(),
                  reference.counters.total_events());
        EXPECT_TRUE(report.merged.budget.conserved(1e-9));
      }
    }
  }
}

// An explicitly chosen deferred-atomic tally (the over-events §VI-G mode)
// survives decomposition: compensated deferred drains are sequential and
// exact, so the stitched result still matches the undecomposed run.
TEST(RunDomains, DeferredTallyUnderDomainsStaysBitIdentical) {
  SimulationConfig base = tiny_config(300);
  base.scheme = Scheme::kOverEvents;
  base.tally_mode = TallyMode::kDeferredAtomic;
  const RunResult reference = run_compensated(base);

  BatchEngine engine;
  DomainOptions opt;
  opt.rows = 2;
  opt.cols = 2;
  const DomainRunReport report = batch::run_domains(engine, base, opt);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
  EXPECT_EQ(report.merged.population, reference.population);
  EXPECT_TRUE(report.merged.budget.conserved(1e-9));
}

TEST(RunDomains, MultiThreadedRoundsStayBitIdentical) {
  const SimulationConfig base = tiny_config(400);
  const RunResult reference = run_compensated(base);

  EngineOptions options;
  options.workers = 2;
  BatchEngine engine(options);
  DomainOptions opt;
  opt.rows = 2;
  opt.cols = 2;
  opt.threads_per_domain = 2;  // atomic tally must be promoted
  const DomainRunReport report = batch::run_domains(engine, base, opt);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
  EXPECT_EQ(report.merged.population, reference.population);
}

TEST(RunDomains, MultipleTimestepsDrainEveryBuffer) {
  const SimulationConfig base = tiny_config(300, /*timesteps=*/3);
  const RunResult reference = run_compensated(base);

  BatchEngine engine;
  DomainOptions opt;
  opt.rows = 2;
  opt.cols = 2;
  const DomainRunReport report = batch::run_domains(engine, base, opt);
  ASSERT_TRUE(report.ok) << report.error;
  // At least one wake round per timestep, and steps fold back to the
  // deck's timestep count with exactly the unsharded per-step events.
  EXPECT_GE(report.rounds, base.deck.n_timesteps);
  ASSERT_EQ(report.merged.steps.size(),
            static_cast<std::size_t>(base.deck.n_timesteps));
  for (std::size_t s = 0; s < report.merged.steps.size(); ++s) {
    EXPECT_EQ(report.merged.steps[s].counters.censuses,
              reference.steps[s].counters.censuses)
        << "timestep " << s;
  }
  EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
  EXPECT_EQ(report.merged.population, reference.population);
}

TEST(RunDomains, RejectsInvalidBases) {
  BatchEngine engine;
  // The decomposition owns both axes: a base that already carries a span
  // or a window cannot be decomposed again.
  SimulationConfig spanned = tiny_config();
  spanned.span = ParticleSpan{0, 100};
  EXPECT_THROW(batch::run_domains(engine, spanned), Error);

  SimulationConfig windowed = tiny_config();
  windowed.window = DomainWindow{0, 0, 4, 4};
  EXPECT_THROW(batch::run_domains(engine, windowed), Error);

  DomainOptions no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(batch::run_domains(engine, tiny_config(), no_shards), Error);

  DomainOptions no_group;
  no_group.group = 0;
  EXPECT_THROW(batch::run_domains(engine, tiny_config(), no_group), Error);
}

}  // namespace
}  // namespace neutral
