// Direct tests for the runtime (OpenMP control, timers, host probe) and
// perf (phase profiler, statistics) modules, which the integration tests
// only exercise indirectly.
#include <gtest/gtest.h>
#include <omp.h>

#include <thread>

#include "perf/profiler.h"
#include "perf/stats.h"
#include "runtime/host_info.h"
#include "runtime/schedule.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// SchedulePolicy
// ---------------------------------------------------------------------------

TEST(Schedule, NamesMatchOpenMpSyntax) {
  EXPECT_EQ(SchedulePolicy::statics().name(), "static");
  EXPECT_EQ(SchedulePolicy::static_chunk(4).name(), "static,4");
  EXPECT_EQ(SchedulePolicy::dynamic().name(), "dynamic");
  EXPECT_EQ(SchedulePolicy::dynamic(16).name(), "dynamic,16");
  EXPECT_EQ(SchedulePolicy::guided().name(), "guided");
  EXPECT_EQ(SchedulePolicy::guided(8).name(), "guided,8");
}

TEST(Schedule, ApplyInstallsRuntimeSchedule) {
  apply_schedule(SchedulePolicy::dynamic(32));
  omp_sched_t kind;
  int chunk;
  omp_get_schedule(&kind, &chunk);
  EXPECT_EQ(kind, omp_sched_dynamic);
  EXPECT_EQ(chunk, 32);

  apply_schedule(SchedulePolicy::statics());
  omp_get_schedule(&kind, &chunk);
  EXPECT_EQ(kind, omp_sched_static);
}

TEST(Schedule, StaticChunkRequiresChunk) {
  SchedulePolicy bad{ScheduleKind::kStaticChunk, 0};
  EXPECT_THROW(apply_schedule(bad), Error);
  SchedulePolicy negative{ScheduleKind::kDynamic, -1};
  EXPECT_THROW(apply_schedule(negative), Error);
}

TEST(Schedule, ThreadCountRoundTrips) {
  const std::int32_t before = thread_count();
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2);
  int seen = 0;
#pragma omp parallel
  {
#pragma omp single
    seen = omp_get_num_threads();
  }
  EXPECT_EQ(seen, 2);
  set_thread_count(before);
  EXPECT_THROW(set_thread_count(0), Error);
}

// ---------------------------------------------------------------------------
// WallTimer
// ---------------------------------------------------------------------------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1000.0, 20.0);
}

TEST(Timer, RestartResets) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, BestOfKeepsMinimum) {
  int calls = 0;
  const double best = time_best_of(3, [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_EQ(calls, 3);
  EXPECT_GE(best, 0.001);
  EXPECT_LT(best, 1.0);
}

// ---------------------------------------------------------------------------
// Host probe
// ---------------------------------------------------------------------------

TEST(HostInfo, ProbesSaneValues) {
  const HostInfo info = probe_host();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GE(info.openmp_max_threads, 1);
  EXPECT_FALSE(info.cpu_model.empty());
  const std::string banner = host_banner();
  EXPECT_NE(banner.find("logical cpus"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PhaseProfiler
// ---------------------------------------------------------------------------

TEST(Profiler, AccumulatesPerPhase) {
  PhaseProfiler profiler(2);
  profiler.add(0, Phase::kFacet, 100);
  profiler.add(0, Phase::kFacet, 50);
  profiler.add(1, Phase::kCollision, 300);
  const auto report = profiler.report();
  EXPECT_EQ(report.visits[static_cast<int>(Phase::kFacet)], 2u);
  EXPECT_EQ(report.cycles[static_cast<int>(Phase::kFacet)], 150u);
  EXPECT_EQ(report.total_cycles(), 450u);
  EXPECT_DOUBLE_EQ(report.cycles_per_visit(Phase::kFacet), 75.0);
  EXPECT_DOUBLE_EQ(report.fraction(Phase::kCollision), 300.0 / 450.0);
}

TEST(Profiler, EmptyReportIsZero) {
  PhaseProfiler profiler(1);
  const auto report = profiler.report();
  EXPECT_EQ(report.total_cycles(), 0u);
  EXPECT_DOUBLE_EQ(report.fraction(Phase::kTally), 0.0);
  EXPECT_DOUBLE_EQ(report.cycles_per_visit(Phase::kTally), 0.0);
}

TEST(Profiler, ResetClears) {
  PhaseProfiler profiler(1);
  profiler.add(0, Phase::kCensus, 10);
  profiler.reset();
  EXPECT_EQ(profiler.report().total_cycles(), 0u);
}

TEST(Profiler, RejectsZeroSlots) {
  EXPECT_THROW(PhaseProfiler(0), Error);
}

TEST(Profiler, ScopedPhaseMeasuresNonNegative) {
  PhaseProfiler profiler(1);
  {
    ScopedPhase probe(&profiler, 0, Phase::kEventSearch);
    double x = 0.0;
    for (int i = 0; i < 1000; ++i) x += i;
    volatile double sink = x;
    (void)sink;
  }
  const auto report = profiler.report();
  EXPECT_EQ(report.visits[static_cast<int>(Phase::kEventSearch)], 1u);
  EXPECT_GT(report.cycles[static_cast<int>(Phase::kEventSearch)], 0u);
}

TEST(Profiler, NullProfilerIsNoOp) {
  // The RAII probe must be safe with a null profiler (production path).
  ScopedPhase probe(nullptr, 0, Phase::kTally);
  SUCCEED();
}

TEST(Profiler, TscCalibrationPlausible) {
  const double ghz = PhaseProfiler::tsc_ghz();
  EXPECT_GT(ghz, 0.2);
  EXPECT_LT(ghz, 10.0);
}

TEST(Profiler, PhaseNamesStable) {
  EXPECT_STREQ(to_string(Phase::kEventSearch), "event-search");
  EXPECT_STREQ(to_string(Phase::kCollision), "collision");
  EXPECT_STREQ(to_string(Phase::kFacet), "facet");
  EXPECT_STREQ(to_string(Phase::kTally), "tally");
  EXPECT_STREQ(to_string(Phase::kCensus), "census");
  EXPECT_STREQ(to_string(Phase::kOther), "other");
}

// ---------------------------------------------------------------------------
// SampleStats
// ---------------------------------------------------------------------------

TEST(Stats, SummarisesKnownSample) {
  const SampleStats s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample (n-1) stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_EQ(s.n, 8u);
}

TEST(Stats, SingleElement) {
  const SampleStats s = summarize({3.5});
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Stats, OddCountMedian) {
  const SampleStats s = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Stats, EmptySampleRejected) {
  EXPECT_THROW(summarize({}), Error);
}

}  // namespace
}  // namespace neutral
