// Integration tests for the two parallelisation schemes (§V).
//
// The keystone property: Over Particles and Over Events consume identical
// per-particle random streams, so for any deck they must produce the same
// physics — same tallies (up to FP reassociation), same event counts, same
// survivor population — regardless of layout, thread count, schedule, or
// tally mode.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "runtime/schedule.h"

namespace neutral {
namespace {

/// Small csp-like deck that exercises streaming, collisions and reflections.
ProblemDeck test_deck(std::int64_t particles = 600) {
  ProblemDeck d = csp_deck(/*mesh_scale=*/0.016, /*particle_scale=*/1.0);
  d.n_particles = particles;  // overrides the factory's scaled count
  d.n_timesteps = 2;
  d.seed = 1234;
  d.xs.points = 3000;
  return d;
}

RunResult run_with(SimulationConfig cfg) {
  Simulation sim(std::move(cfg));
  return sim.run();
}

/// Tallies agree to a tolerance set by FP reassociation across threads.
void expect_same_physics(const RunResult& a, const RunResult& b,
                         double rel = 1e-9) {
  EXPECT_EQ(a.counters.collisions, b.counters.collisions);
  EXPECT_EQ(a.counters.facets, b.counters.facets);
  EXPECT_EQ(a.counters.censuses, b.counters.censuses);
  EXPECT_EQ(a.counters.absorptions, b.counters.absorptions);
  EXPECT_EQ(a.counters.scatters, b.counters.scatters);
  EXPECT_EQ(a.counters.rng_draws, b.counters.rng_draws);
  EXPECT_EQ(a.population, b.population);
  EXPECT_NEAR(a.budget.tally_total, b.budget.tally_total,
              rel * std::fabs(a.budget.tally_total) + 1e-12);
  EXPECT_NEAR(a.tally_checksum, b.tally_checksum,
              rel * std::fabs(a.tally_checksum) + 1e-12);
}

// ---------------------------------------------------------------------------
// The headline equivalence: Over Particles == Over Events
// ---------------------------------------------------------------------------

class SchemeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchemeEquivalence, OverParticlesMatchesOverEvents) {
  SimulationConfig op;
  op.deck = test_deck();
  op.deck.seed = GetParam();
  op.scheme = Scheme::kOverParticles;

  SimulationConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  oe.layout = Layout::kSoA;
  oe.tally_mode = TallyMode::kDeferredAtomic;

  expect_same_physics(run_with(op), run_with(oe));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemeEquivalence,
                         ::testing::Values(1ull, 7ull, 42ull, 2024ull));

// ---------------------------------------------------------------------------
// Layout equivalence (Fig 5 correctness precondition)
// ---------------------------------------------------------------------------

TEST(LayoutEquivalence, AosMatchesSoaForOverParticles) {
  SimulationConfig aos;
  aos.deck = test_deck();
  aos.layout = Layout::kAoS;
  SimulationConfig soa = aos;
  soa.layout = Layout::kSoA;
  expect_same_physics(run_with(aos), run_with(soa));
}

TEST(LayoutEquivalence, AosMatchesSoaForOverEvents) {
  SimulationConfig aos;
  aos.deck = test_deck();
  aos.scheme = Scheme::kOverEvents;
  aos.layout = Layout::kAoS;
  SimulationConfig soa = aos;
  soa.layout = Layout::kSoA;
  expect_same_physics(run_with(aos), run_with(soa));
}

// ---------------------------------------------------------------------------
// Thread-count and schedule invariance (§VI-B/C correctness precondition)
// ---------------------------------------------------------------------------

TEST(ThreadInvariance, OneVsFourThreadsSamePhysics) {
  SimulationConfig one;
  one.deck = test_deck();
  one.threads = 1;
  SimulationConfig four = one;
  four.threads = 4;
  expect_same_physics(run_with(one), run_with(four));
}

TEST(ThreadInvariance, OverEventsThreadCountIrrelevant) {
  SimulationConfig one;
  one.deck = test_deck();
  one.scheme = Scheme::kOverEvents;
  one.threads = 1;
  SimulationConfig four = one;
  four.threads = 4;
  expect_same_physics(run_with(one), run_with(four));
}

class ScheduleInvariance : public ::testing::TestWithParam<SchedulePolicy> {};

TEST_P(ScheduleInvariance, AllSchedulesSamePhysics) {
  SimulationConfig baseline;
  baseline.deck = test_deck(300);
  baseline.threads = 2;
  SimulationConfig variant = baseline;
  variant.schedule = GetParam();
  expect_same_physics(run_with(baseline), run_with(variant));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScheduleInvariance,
    ::testing::Values(SchedulePolicy::statics(),
                      SchedulePolicy::static_chunk(1),
                      SchedulePolicy::static_chunk(7),
                      SchedulePolicy::dynamic(),
                      SchedulePolicy::dynamic(16),
                      SchedulePolicy::guided()),
    [](const ::testing::TestParamInfo<SchedulePolicy>& param_info) {
      std::string n = param_info.param.name();
      for (char& c : n) {
        if (c == ',') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Tally-mode equivalence (Fig 7 correctness precondition)
// ---------------------------------------------------------------------------

class TallyModeEquivalence : public ::testing::TestWithParam<TallyMode> {};

TEST_P(TallyModeEquivalence, SameTallyAsAtomic) {
  SimulationConfig atomic;
  atomic.deck = test_deck();
  atomic.threads = 4;
  atomic.tally_mode = TallyMode::kAtomic;

  SimulationConfig other = atomic;
  other.tally_mode = GetParam();
  expect_same_physics(run_with(atomic), run_with(other));
}

INSTANTIATE_TEST_SUITE_P(Modes, TallyModeEquivalence,
                         ::testing::Values(TallyMode::kPrivatized,
                                           TallyMode::kPrivatizedMergeEveryStep,
                                           TallyMode::kDeferredAtomic));

// ---------------------------------------------------------------------------
// XS lookup-strategy equivalence (§VI-A correctness precondition)
// ---------------------------------------------------------------------------

class LookupEquivalence : public ::testing::TestWithParam<XsLookup> {};

TEST_P(LookupEquivalence, SamePhysicsAsBinarySearch) {
  SimulationConfig binary;
  binary.deck = test_deck();
  binary.lookup = XsLookup::kBinarySearch;
  SimulationConfig other = binary;
  other.lookup = GetParam();
  expect_same_physics(run_with(binary), run_with(other));
}

INSTANTIATE_TEST_SUITE_P(Strategies, LookupEquivalence,
                         ::testing::Values(XsLookup::kCachedLinear,
                                           XsLookup::kBucketedIndex));

// ---------------------------------------------------------------------------
// Conservation across decks and schemes
// ---------------------------------------------------------------------------

struct DeckSchemeCase {
  const char* deck;
  Scheme scheme;
};

class Conservation : public ::testing::TestWithParam<DeckSchemeCase> {};

TEST_P(Conservation, EnergyAndPopulationConserved) {
  const auto& param = GetParam();
  SimulationConfig cfg;
  cfg.deck = deck_by_name(param.deck, 0.016, 1.0);
  cfg.deck.n_particles = 400;
  cfg.deck.n_timesteps = 2;
  cfg.scheme = param.scheme;
  if (param.scheme == Scheme::kOverEvents) cfg.layout = Layout::kSoA;
  Simulation sim(cfg);
  const RunResult r = sim.run();

  EXPECT_TRUE(r.budget.conserved(1e-9))
      << "conservation error " << r.budget.conservation_error()
      << ", tally consistency " << r.budget.tally_consistency_error();
  // Reflective boundaries: every particle is accounted for (§IV-C).
  const std::int64_t deaths = static_cast<std::int64_t>(
      r.counters.deaths_energy + r.counters.deaths_weight);
  EXPECT_EQ(r.population + deaths, cfg.deck.n_particles);
}

INSTANTIATE_TEST_SUITE_P(
    DeckScheme, Conservation,
    ::testing::Values(DeckSchemeCase{"stream", Scheme::kOverParticles},
                      DeckSchemeCase{"stream", Scheme::kOverEvents},
                      DeckSchemeCase{"scatter", Scheme::kOverParticles},
                      DeckSchemeCase{"scatter", Scheme::kOverEvents},
                      DeckSchemeCase{"csp", Scheme::kOverParticles},
                      DeckSchemeCase{"csp", Scheme::kOverEvents}),
    [](const ::testing::TestParamInfo<DeckSchemeCase>& param_info) {
      return std::string(param_info.param.deck) + "_" +
             (param_info.param.scheme == Scheme::kOverParticles ? "op" : "oe");
    });

// ---------------------------------------------------------------------------
// Over Events internals
// ---------------------------------------------------------------------------

TEST(OverEvents, SimdTogglesDoNotChangePhysics) {
  SimulationConfig simd;
  simd.deck = test_deck();
  simd.scheme = Scheme::kOverEvents;
  simd.layout = Layout::kSoA;
  SimulationConfig scalar = simd;
  scalar.over_events.simd_event_search = false;
  scalar.over_events.simd_collisions = false;
  scalar.over_events.simd_facets = false;
  expect_same_physics(run_with(simd), run_with(scalar));
}

TEST(OverEvents, KernelTimesCoverIterations) {
  SimulationConfig cfg;
  cfg.deck = test_deck(200);
  cfg.deck.n_timesteps = 1;
  cfg.scheme = Scheme::kOverEvents;
  cfg.layout = Layout::kSoA;
  Simulation sim(cfg);
  const RunResult r = sim.run();
  EXPECT_GT(r.kernel_times.iterations, 0);
  EXPECT_GT(r.kernel_times.total(), 0.0);
  EXPECT_GT(r.kernel_times.event_search, 0.0);
}

TEST(OverEvents, WorkspaceSizeMatchesBank) {
  OverEventsWorkspace ws(123);
  EXPECT_EQ(ws.size(), 123u);
  EXPECT_GT(ws.footprint_bytes(), 123u * 64);
}

// ---------------------------------------------------------------------------
// Determinism of full runs
// ---------------------------------------------------------------------------

TEST(Determinism, IdenticalRunsBitwiseEqualSingleThread) {
  SimulationConfig cfg;
  cfg.deck = test_deck();
  cfg.threads = 1;
  const RunResult a = run_with(cfg);
  const RunResult b = run_with(cfg);
  EXPECT_DOUBLE_EQ(a.budget.tally_total, b.budget.tally_total);
  EXPECT_DOUBLE_EQ(a.tally_checksum, b.tally_checksum);
}

TEST(Determinism, SeedChangesResults) {
  SimulationConfig a;
  a.deck = test_deck();
  SimulationConfig b = a;
  b.deck.seed = a.deck.seed + 1;
  const RunResult ra = run_with(a);
  const RunResult rb = run_with(b);
  EXPECT_NE(ra.tally_checksum, rb.tally_checksum);
}

// ---------------------------------------------------------------------------
// Multi-timestep behaviour
// ---------------------------------------------------------------------------

TEST(Timesteps, SurvivorsContinueAcrossSteps) {
  SimulationConfig cfg;
  cfg.deck = test_deck(300);
  cfg.deck.n_timesteps = 3;
  Simulation sim(cfg);
  const StepResult s1 = sim.step();
  const StepResult s2 = sim.step();
  // Census counts of step 2 can only include step-1 survivors.
  EXPECT_LE(s2.counters.censuses, s1.counters.censuses);
  EXPECT_GT(s2.counters.total_events(), 0u);
}

TEST(Timesteps, EventsAccumulateInSummary) {
  SimulationConfig cfg;
  cfg.deck = test_deck(200);
  cfg.deck.n_timesteps = 2;
  Simulation sim(cfg);
  const StepResult s1 = sim.step();
  const StepResult s2 = sim.step();
  const RunResult total = sim.summary();
  EXPECT_EQ(total.counters.total_events(),
            s1.counters.total_events() + s2.counters.total_events());
}

}  // namespace
}  // namespace neutral
