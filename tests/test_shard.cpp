// Tests for single-deck sharding: the shard planner, span-restricted
// Simulations, the deterministic tally reduction, the fork-join runner,
// and sibling-job cancellation.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "batch/engine.h"
#include "batch/queue.h"
#include "batch/shard.h"
#include "core/simulation.h"
#include "core/validation.h"
#include "util/error.h"

namespace neutral {
namespace {

using batch::BatchEngine;
using batch::EngineOptions;
using batch::Job;
using batch::JobQueue;
using batch::ShardedRunReport;
using batch::ShardOptions;

ProblemDeck tiny_deck(std::int64_t particles = 400) {
  ProblemDeck deck = csp_deck(/*mesh_scale=*/0.02, /*particle_scale=*/1.0);
  deck.n_particles = particles;
  deck.n_timesteps = 2;
  return deck;
}

SimulationConfig tiny_config(std::int64_t particles = 400) {
  SimulationConfig cfg;
  cfg.deck = tiny_deck(particles);
  cfg.threads = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// Shard planner
// ---------------------------------------------------------------------------

TEST(PlanShards, CoversTheBankContiguously) {
  const auto spans = batch::plan_shards(1003, 4);
  ASSERT_EQ(spans.size(), 4u);
  std::int64_t next = 0;
  std::int64_t total = 0;
  for (const ParticleSpan& s : spans) {
    EXPECT_EQ(s.first_id, next);
    EXPECT_GT(s.count, 0);
    next = s.first_id + s.count;
    total += s.count;
  }
  EXPECT_EQ(total, 1003);
  // Remainder spreads over the leading shards: sizes differ by at most 1.
  EXPECT_EQ(spans[0].count, 251);
  EXPECT_EQ(spans[1].count, 251);
  EXPECT_EQ(spans[2].count, 251);
  EXPECT_EQ(spans[3].count, 250);
}

TEST(PlanShards, ClampsToTheParticleCount) {
  const auto spans = batch::plan_shards(3, 8);
  ASSERT_EQ(spans.size(), 3u);
  for (const ParticleSpan& s : spans) EXPECT_EQ(s.count, 1);
}

TEST(PlanShards, RejectsDegenerateInputs) {
  EXPECT_THROW(batch::plan_shards(0, 2), Error);
  EXPECT_THROW(batch::plan_shards(100, 0), Error);
}

// ---------------------------------------------------------------------------
// Span-restricted Simulation
// ---------------------------------------------------------------------------

TEST(ParticleSpanRuns, PartitionTheFullRunExactly) {
  const SimulationConfig full_cfg = tiny_config();
  Simulation full(full_cfg);
  const RunResult whole = full.run();

  EventCounters counters;
  std::int64_t population = 0;
  for (const ParticleSpan& span : batch::plan_shards(400, 3)) {
    SimulationConfig cfg = full_cfg;
    cfg.span = span;
    Simulation shard(cfg);
    const RunResult part = shard.run();
    counters += part.counters;
    population += part.population;
    EXPECT_TRUE(part.budget.conserved(1e-9));
  }
  // Histories are keyed by particle id, so every integer observable
  // partitions exactly.
  EXPECT_EQ(counters.total_events(), whole.counters.total_events());
  EXPECT_EQ(counters.facets, whole.counters.facets);
  EXPECT_EQ(counters.collisions, whole.counters.collisions);
  EXPECT_EQ(counters.absorptions, whole.counters.absorptions);
  EXPECT_EQ(counters.rng_draws, whole.counters.rng_draws);
  EXPECT_EQ(population, whole.population);
}

TEST(ParticleSpanRuns, RejectsSpansOutsideTheBank) {
  SimulationConfig cfg = tiny_config(100);
  cfg.span = ParticleSpan{90, 20};
  EXPECT_THROW(Simulation{cfg}, Error);
  cfg.span = ParticleSpan{-1, 10};
  EXPECT_THROW(Simulation{cfg}, Error);
  cfg.span = ParticleSpan{10, -5};  // negative count is not "the rest"
  EXPECT_THROW(Simulation{cfg}, Error);
}

// ---------------------------------------------------------------------------
// Deterministic tally reduction (the property test): accumulate() in any
// shard order reproduces the serial compensated tally bit-for-bit, across
// schemes x layouts x tally modes.
// ---------------------------------------------------------------------------

RunResult run_compensated(SimulationConfig cfg, ParticleSpan span) {
  cfg.span = span;
  cfg.compensated_tally = true;
  cfg.keep_tally_image = true;
  Simulation sim(std::move(cfg));
  return sim.run();
}

TEST(TallyReduction, AnyShardOrderMatchesSerialBitForBit) {
  const Scheme schemes[] = {Scheme::kOverParticles, Scheme::kOverEvents};
  const Layout layouts[] = {Layout::kAoS, Layout::kSoA};
  const TallyMode modes[] = {
      TallyMode::kAtomic, TallyMode::kPrivatized,
      TallyMode::kPrivatizedMergeEveryStep, TallyMode::kDeferredAtomic};

  for (Scheme scheme : schemes) {
    for (Layout layout : layouts) {
      for (TallyMode mode : modes) {
        SimulationConfig cfg = tiny_config(300);
        cfg.scheme = scheme;
        cfg.layout = layout;
        cfg.tally_mode = mode;
        SCOPED_TRACE(std::string(to_string(scheme)) + "/" +
                     to_string(layout) + "/" + to_string(mode));

        const RunResult serial = run_compensated(cfg, ParticleSpan{});
        ASSERT_NE(serial.tally, nullptr);
        const std::int64_t cells = serial.tally->cells();

        std::vector<RunResult> shards;
        for (const ParticleSpan& span : batch::plan_shards(300, 4)) {
          shards.push_back(run_compensated(cfg, span));
        }

        const std::vector<std::vector<std::size_t>> orders = {
            {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
        for (const auto& order : orders) {
          EnergyTally reduced(cells, TallyMode::kAtomic, 1,
                              /*compensated=*/true);
          for (std::size_t s : order) reduced.accumulate(*shards[s].tally);
          reduced.merge();
          for (std::int64_t c = 0; c < cells; ++c) {
            ASSERT_EQ(reduced.at(c), serial.tally->hi[
                static_cast<std::size_t>(c)])
                << "cell " << c;
          }
          EXPECT_EQ(positional_checksum(reduced.data(), cells),
                    serial.tally_checksum);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fork-join runner
// ---------------------------------------------------------------------------

TEST(RunSharded, BitIdenticalAcrossShardAndWorkerCounts) {
  const SimulationConfig base = tiny_config(400);
  // The reference: the same deck, unsharded, through the same compensated
  // pipeline (one shard is exactly that).
  const RunResult reference = run_compensated(base, ParticleSpan{});

  for (std::int32_t shards : {1, 2, 4, 8}) {
    for (std::int32_t workers : {1, 4}) {
      EngineOptions options;
      options.workers = workers;
      BatchEngine engine(options);
      ShardOptions opt;
      opt.shards = shards;
      const ShardedRunReport report = batch::run_sharded(engine, base, opt);
      ASSERT_TRUE(report.ok) << report.error;
      EXPECT_EQ(report.batch.jobs.size(), static_cast<std::size_t>(shards));
      EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum)
          << shards << " shards on " << workers << " workers";
      EXPECT_EQ(report.merged.population, reference.population);
      EXPECT_EQ(report.merged.counters.total_events(),
                reference.counters.total_events());
      EXPECT_TRUE(report.merged.budget.conserved(1e-9));
      ASSERT_NE(report.merged.tally, nullptr);
      // One geometry: the world is built once and shared by all shards.
      EXPECT_EQ(report.batch.cache.misses, shards > 0 ? 1u : 0u);
      EXPECT_EQ(report.batch.cache.hits,
                static_cast<std::uint64_t>(shards - 1));
    }
  }
}

TEST(RunSharded, MultiThreadedShardsStayBitIdentical) {
  const SimulationConfig base = tiny_config(400);
  const RunResult reference = run_compensated(base, ParticleSpan{});

  EngineOptions options;
  options.workers = 2;
  BatchEngine engine(options);
  ShardOptions opt;
  opt.shards = 2;
  opt.threads_per_shard = 2;  // atomic mode must be promoted to privatized
  const ShardedRunReport report = batch::run_sharded(engine, base, opt);
  ASSERT_TRUE(report.ok) << report.error;
  for (const auto& job : report.batch.jobs) {
    EXPECT_EQ(job.config.tally_mode, TallyMode::kPrivatized);
  }
  EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
  EXPECT_EQ(report.merged.population, reference.population);
}

TEST(MakeShardJobs, StampsGroupSpanAndFingerprint) {
  const SimulationConfig base = tiny_config(100);
  ShardOptions opt;
  opt.shards = 4;
  opt.group = 9;
  opt.priority = 2;
  const std::vector<Job> jobs = batch::make_shard_jobs(base, opt, 20);
  ASSERT_EQ(jobs.size(), 4u);
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    EXPECT_EQ(jobs[s].id, 20 + s);
    EXPECT_EQ(jobs[s].group, 9u);
    EXPECT_EQ(jobs[s].priority, 2);
    EXPECT_EQ(jobs[s].fingerprint, jobs[0].fingerprint);
    EXPECT_TRUE(jobs[s].config.compensated_tally);
    EXPECT_TRUE(jobs[s].config.keep_tally_image);
    EXPECT_EQ(jobs[s].config.span.count, 25);
    EXPECT_NE(jobs[s].label.find("shard " + std::to_string(s) + "/4"),
              std::string::npos);
  }
  // Sharding an already-sharded config is refused.
  SimulationConfig sharded = base;
  sharded.span = ParticleSpan{0, 50};
  EXPECT_THROW(batch::make_shard_jobs(sharded, opt), Error);
}

TEST(ReduceShards, RequiresTallyImages) {
  RunResult bare;  // no image attached
  EXPECT_THROW(batch::reduce_shards({&bare}), Error);
  EXPECT_THROW(batch::reduce_shards({}), Error);
}

// ---------------------------------------------------------------------------
// Cancellation: queue primitive and engine wiring
// ---------------------------------------------------------------------------

Job grouped_job(std::uint64_t id, std::uint64_t group,
                std::int64_t particles = 100) {
  Job job = batch::make_job(id, tiny_config(particles));
  job.group = group;
  return job;
}

TEST(JobQueueCancel, RemovesOnlyTheGroupAndPoisonsIt) {
  JobQueue queue(16);
  ASSERT_TRUE(queue.try_push(grouped_job(1, 7)));
  ASSERT_TRUE(queue.try_push(grouped_job(2, 8)));
  ASSERT_TRUE(queue.try_push(grouped_job(3, 7)));

  const std::vector<Job> removed = queue.cancel_pending(7);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_TRUE(queue.group_cancelled(7));
  EXPECT_FALSE(queue.group_cancelled(8));

  // Later pushes of the cancelled group are refused; other groups flow.
  EXPECT_FALSE(queue.try_push(grouped_job(4, 7)));
  EXPECT_TRUE(queue.try_push(grouped_job(5, 8)));

  queue.close();
  EXPECT_EQ(queue.pop()->id, 2u);
  EXPECT_EQ(queue.pop()->id, 5u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueueCancel, GroupZeroIsNeverCancelled) {
  JobQueue queue(4);
  ASSERT_TRUE(queue.try_push(grouped_job(1, 0)));
  EXPECT_TRUE(queue.cancel_pending(0).empty());
  EXPECT_FALSE(queue.group_cancelled(0));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(Engine, FailedShardCancelsItsSiblings) {
  // One worker, so the bad job's siblings are still queued (or not yet
  // submitted) when it fails; all of them must end cancelled, not run.
  std::vector<Job> jobs;
  SimulationConfig bad = tiny_config();
  bad.deck.n_particles = 0;  // Simulation rejects an empty bank
  Job bad_job = batch::make_job(0, bad);
  bad_job.group = 5;
  jobs.push_back(std::move(bad_job));
  for (std::uint64_t id = 1; id <= 4; ++id) {
    jobs.push_back(grouped_job(id, 5, 4000));
  }
  // An ungrouped bystander must survive the purge.
  jobs.push_back(grouped_job(5, 0));

  EngineOptions options;
  options.workers = 1;
  BatchEngine engine(options);
  const batch::BatchReport report = engine.run(std::move(jobs));
  ASSERT_EQ(report.jobs.size(), 6u);
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_FALSE(report.jobs[0].cancelled);
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_FALSE(report.jobs[i].ok) << i;
    EXPECT_TRUE(report.jobs[i].cancelled) << i;
    EXPECT_FALSE(report.jobs[i].error.empty());
  }
  EXPECT_TRUE(report.jobs[5].ok);
  EXPECT_EQ(report.failed(), 5u);
  EXPECT_EQ(report.cancelled(), 4u);
}

TEST(Engine, CancellationCanBeDisabled) {
  std::vector<Job> jobs;
  SimulationConfig bad = tiny_config();
  bad.deck.n_particles = 0;
  Job bad_job = batch::make_job(0, bad);
  bad_job.group = 5;
  jobs.push_back(std::move(bad_job));
  jobs.push_back(grouped_job(1, 5));

  EngineOptions options;
  options.workers = 1;
  options.cancel_failed_groups = false;
  BatchEngine engine(options);
  const batch::BatchReport report = engine.run(std::move(jobs));
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_TRUE(report.jobs[1].ok);  // sibling still ran
  EXPECT_EQ(report.cancelled(), 0u);
}

}  // namespace
}  // namespace neutral
