// Property-based tests: randomized sweeps over the geometric and transport
// invariants that must hold for *any* direction, position, or seed — the
// complement to the example-based tests elsewhere in the suite.
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "mesh/facet.h"
#include "rng/stream.h"
#include "util/numeric.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// Facet-walk properties under random directions
// ---------------------------------------------------------------------------

class RandomWalkGeometry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWalkGeometry, WalkStaysConsistentWithCellIndex) {
  // Property: after any number of facet events, the particle's position
  // lies within (or on the boundary of) the cell its index claims, and the
  // direction stays unit-length.
  StructuredMesh2D mesh(17, 23, 17.0, 23.0);
  rng::ParticleStream rng(GetParam(), 0);
  double x = rng.next_range(0.1, 16.9);
  double y = rng.next_range(0.1, 22.9);
  const double theta = rng.next_range(0.0, kTwoPi);
  double ox = std::cos(theta);
  double oy = std::sin(theta);
  CellIndex c = mesh.locate(x, y);

  for (int step = 0; step < 500; ++step) {
    const FacetIntersection f = nearest_facet(mesh, x, y, ox, oy, c);
    ASSERT_GE(f.distance, 0.0) << "step " << step;
    ASSERT_LT(f.distance, 30.0) << "step " << step;  // bounded by the domain
    x += ox * f.distance;
    y += oy * f.distance;
    apply_facet_crossing(f, c, ox, oy);
    // Index validity.
    ASSERT_GE(c.x, 0);
    ASSERT_LT(c.x, mesh.nx());
    ASSERT_GE(c.y, 0);
    ASSERT_LT(c.y, mesh.ny());
    // Position consistency (allow a couple of ULP-scale slops).
    ASSERT_GE(x, mesh.edge_x(c.x) - 1e-9);
    ASSERT_LE(x, mesh.edge_x(c.x + 1) + 1e-9);
    ASSERT_GE(y, mesh.edge_y(c.y) - 1e-9);
    ASSERT_LE(y, mesh.edge_y(c.y + 1) + 1e-9);
    // Direction stays normalised (reflections only flip signs).
    ASSERT_NEAR(ox * ox + oy * oy, 1.0, 1e-12);
    // The particle never leaves the domain.
    ASSERT_GE(x, -1e-9);
    ASSERT_LE(x, mesh.width() + 1e-9);
    ASSERT_GE(y, -1e-9);
    ASSERT_LE(y, mesh.height() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalkGeometry,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull, 89ull));

TEST(WalkGeometry, AxisAlignedWalkPingPongsForever) {
  // A particle moving exactly along +x on a 1-cell-tall mesh must bounce
  // between the two walls indefinitely without index corruption.
  StructuredMesh2D mesh(4, 1, 4.0, 1.0);
  double x = 0.5, y = 0.5, ox = 1.0, oy = 0.0;
  CellIndex c{0, 0};
  double total_path = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const FacetIntersection f = nearest_facet(mesh, x, y, ox, oy, c);
    x += ox * f.distance;
    total_path += f.distance;
    apply_facet_crossing(f, c, ox, oy);
  }
  // 1000 facet events over a 4-wide mesh: path is bounded and positive.
  EXPECT_GT(total_path, 900.0);
  EXPECT_LT(total_path, 1100.0);
  EXPECT_DOUBLE_EQ(y, 0.5);
}

// ---------------------------------------------------------------------------
// Whole-run properties under random seeds
// ---------------------------------------------------------------------------

class RandomSeedRuns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSeedRuns, InvariantsHoldForAnySeed) {
  SimulationConfig cfg;
  cfg.deck = csp_deck(0.016, 1.0);
  cfg.deck.n_particles = 250;
  cfg.deck.seed = GetParam();
  Simulation sim(cfg);
  const RunResult r = sim.run();

  // Energy conservation (exact bookkeeping).
  EXPECT_TRUE(r.budget.conserved(1e-9));
  // Population accounting.
  const auto deaths = static_cast<std::int64_t>(r.counters.deaths_energy +
                                                r.counters.deaths_weight);
  EXPECT_EQ(r.population + deaths, cfg.deck.n_particles);
  // Collision taxonomy is complete.
  EXPECT_EQ(r.counters.absorptions + r.counters.scatters,
            r.counters.collisions);
  // Tally is non-negative everywhere.
  for (std::int64_t i = 0; i < sim.tally().cells(); i += 101) {
    EXPECT_GE(sim.tally().at(i), 0.0);
  }
  // Every history ends in exactly one terminal event.
  EXPECT_EQ(r.counters.censuses + static_cast<std::uint64_t>(deaths),
            static_cast<std::uint64_t>(cfg.deck.n_particles));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeedRuns,
                         ::testing::Values(11ull, 222ull, 3333ull, 44444ull,
                                           555555ull, 6666666ull));

// ---------------------------------------------------------------------------
// Scheme equivalence across all three decks (extends test_schemes.cpp's
// csp-only sweep)
// ---------------------------------------------------------------------------

class DeckEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DeckEquivalence, SchemesAgreeOnEveryDeck) {
  SimulationConfig op;
  op.deck = deck_by_name(GetParam(), 0.016, 1.0);
  op.deck.n_particles = 300;
  SimulationConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  oe.layout = Layout::kSoA;
  oe.tally_mode = TallyMode::kDeferredAtomic;
  Simulation a(op), b(oe);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.counters.facets, rb.counters.facets);
  EXPECT_EQ(ra.counters.collisions, rb.counters.collisions);
  EXPECT_NEAR(ra.budget.tally_total, rb.budget.tally_total,
              1e-9 * std::fabs(ra.budget.tally_total) + 1e-12);
  EXPECT_NEAR(ra.tally_checksum, rb.tally_checksum,
              1e-9 * std::fabs(ra.tally_checksum) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Decks, DeckEquivalence,
                         ::testing::Values("stream", "scatter", "csp"));

// ---------------------------------------------------------------------------
// Timestep-splitting property: one run of 2dt == two runs of dt
// ---------------------------------------------------------------------------

TEST(TimestepSplitting, EventCountsInsensitiveToStepSplit) {
  // Total physics depends on total time, not on how it is sliced into
  // census steps (census events themselves differ, and collision counts
  // can shift by the handful of histories that die right at a boundary).
  SimulationConfig one_big;
  one_big.deck = stream_deck(0.016, 1.0);
  one_big.deck.n_particles = 200;
  one_big.deck.dt_s = 2.0e-7;
  one_big.deck.n_timesteps = 1;

  SimulationConfig two_small = one_big;
  two_small.deck.dt_s = 1.0e-7;
  two_small.deck.n_timesteps = 2;

  Simulation a(one_big), b(two_small);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  // Stream problem: no collisions, so facet counts must match exactly up
  // to the census interruptions (a census can land mid-cell).
  const auto fa = static_cast<double>(ra.counters.facets);
  const auto fb = static_cast<double>(rb.counters.facets);
  EXPECT_NEAR(fa, fb, 0.01 * fa);
  // Path heating integrates the same trajectories: near-equal.
  EXPECT_NEAR(ra.budget.path_heating, rb.budget.path_heating,
              1e-6 * std::fabs(ra.budget.path_heating));
}

// ---------------------------------------------------------------------------
// RNG stream-partition property
// ---------------------------------------------------------------------------

TEST(StreamPartition, ConcatenatedHalvesEqualFullSequence) {
  // Draw 100; resume from the midpoint counter; the tail must continue the
  // original sequence for any split point.
  for (std::uint64_t split : {1ull, 17ull, 50ull, 99ull}) {
    rng::ParticleStream full(123, 456);
    std::vector<double> expected(100);
    for (auto& v : expected) v = full.next();

    rng::ParticleStream head(123, 456);
    for (std::uint64_t i = 0; i < split; ++i) head.next();
    rng::ParticleStream tail(123, 456, head.counter());
    for (std::uint64_t i = split; i < 100; ++i) {
      ASSERT_DOUBLE_EQ(tail.next(), expected[i]) << "split " << split;
    }
  }
}

}  // namespace
}  // namespace neutral
