// Tests for the arch-suite comparison proxies (§VI-B): flow (explicit
// hydro, bandwidth bound) and hot (CG heat conduction).
#include <gtest/gtest.h>

#include <cmath>

#include "proxies/flow.h"
#include "proxies/hot.h"
#include "util/error.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// flow
// ---------------------------------------------------------------------------

TEST(Flow, ConstructionValidates) {
  FlowConfig bad;
  bad.nx = 2;
  EXPECT_THROW(FlowSolver{bad}, Error);
}

TEST(Flow, MassConservedOnPeriodicDomain) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 64;
  FlowSolver solver(cfg);
  solver.initialise_pulse();
  const double mass0 = solver.total_mass();
  solver.run(50);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-9 * mass0);
}

TEST(Flow, EnergyConservedOnPeriodicDomain) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 64;
  FlowSolver solver(cfg);
  solver.initialise_pulse();
  const double e0 = solver.total_energy();
  solver.run(50);
  EXPECT_NEAR(solver.total_energy(), e0, 1e-9 * e0);
}

TEST(Flow, PulseSpreadsOutward) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 64;
  FlowSolver solver(cfg);
  solver.initialise_pulse();
  const double mass_before = solver.total_mass();
  solver.run(100);
  // Still conservative, and the solution remains finite (stability).
  EXPECT_NEAR(solver.total_mass(), mass_before, 1e-9 * mass_before);
  EXPECT_TRUE(std::isfinite(solver.total_energy()));
}

TEST(Flow, UniformStateIsSteady) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 32;
  FlowSolver solver(cfg);  // uniform initial state, no pulse
  const double mass0 = solver.total_mass();
  const double e0 = solver.total_energy();
  solver.run(10);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-12 * mass0);
  EXPECT_NEAR(solver.total_energy(), e0, 1e-12 * e0);
}

TEST(Flow, BytesPerStepReflectsFields) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 10;
  FlowSolver solver(cfg);
  EXPECT_DOUBLE_EQ(solver.bytes_per_step(), 100.0 * 8 * sizeof(double));
}

TEST(Flow, RunReturnsPositiveSeconds) {
  FlowConfig cfg;
  cfg.nx = cfg.ny = 32;
  FlowSolver solver(cfg);
  solver.initialise_pulse();
  EXPECT_GT(solver.run(5), 0.0);
}

// ---------------------------------------------------------------------------
// hot
// ---------------------------------------------------------------------------

TEST(Hot, ConstructionValidates) {
  HotConfig bad;
  bad.nx = 1;
  EXPECT_THROW(HotSolver{bad}, Error);
  HotConfig bad2;
  bad2.conductivity = 0.0;
  EXPECT_THROW(HotSolver{bad2}, Error);
}

TEST(Hot, ConvergesOnHotSquare) {
  HotConfig cfg;
  cfg.nx = cfg.ny = 64;
  HotSolver solver(cfg);
  solver.initialise_hot_square();
  const HotResult r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.relative_residual, cfg.tolerance);
  EXPECT_GT(r.iterations, 1);
}

TEST(Hot, SolutionSatisfiesOperatorEquation) {
  HotConfig cfg;
  cfg.nx = cfg.ny = 32;
  HotSolver solver(cfg);
  solver.initialise_hot_square();
  const HotResult r = solver.solve();
  ASSERT_TRUE(r.converged);
  // Residual check by explicit operator application.
  aligned_vector<double> ax(static_cast<std::size_t>(solver.cells()));
  solver.apply_operator(solver.solution(), ax);
  // Rebuild b to compare.
  HotSolver fresh(cfg);
  fresh.initialise_hot_square();
  aligned_vector<double> b(static_cast<std::size_t>(solver.cells()), 1.0);
  const std::int32_t x0 = cfg.nx / 3, x1 = 2 * cfg.nx / 3;
  const std::int32_t y0 = cfg.ny / 3, y1 = 2 * cfg.ny / 3;
  double err = 0.0, norm = 0.0;
  for (std::int32_t j = 0; j < cfg.ny; ++j) {
    for (std::int32_t i = 0; i < cfg.nx; ++i) {
      const auto c = static_cast<std::size_t>(j) * cfg.nx + i;
      const bool hot = i >= x0 && i < x1 && j >= y0 && j < y1;
      const double bi = hot ? 100.0 : 1.0;
      err += (ax[c] - bi) * (ax[c] - bi);
      norm += bi * bi;
    }
  }
  EXPECT_LT(std::sqrt(err / norm), 1e-8);
}

TEST(Hot, ManufacturedSolutionRecovered) {
  // x* = alternating pattern; b = A x*; CG must recover x*.
  HotConfig cfg;
  cfg.nx = cfg.ny = 24;
  cfg.tolerance = 1e-12;
  HotSolver solver(cfg);
  aligned_vector<double> x_star(static_cast<std::size_t>(solver.cells()));
  for (std::size_t i = 0; i < x_star.size(); ++i) {
    x_star[i] = 1.0 + 0.5 * std::sin(0.37 * static_cast<double>(i));
  }
  aligned_vector<double> b(x_star.size());
  solver.apply_operator(x_star, b);
  solver.set_rhs(b);
  const HotResult r = solver.solve();
  ASSERT_TRUE(r.converged);
  double max_err = 0.0;
  for (std::size_t i = 0; i < x_star.size(); ++i) {
    max_err = std::max(max_err, std::fabs(solver.solution()[i] - x_star[i]));
  }
  EXPECT_LT(max_err, 1e-8);
}

TEST(Hot, OperatorIsIdentityPlusDiffusion) {
  // Constant fields are fixed points of the Neumann Laplacian: A c = c.
  HotConfig cfg;
  cfg.nx = cfg.ny = 16;
  HotSolver solver(cfg);
  aligned_vector<double> c(static_cast<std::size_t>(solver.cells()), 3.5);
  aligned_vector<double> ac(c.size());
  solver.apply_operator(c, ac);
  for (double v : ac) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(Hot, ZeroRhsConvergesImmediately) {
  HotConfig cfg;
  cfg.nx = cfg.ny = 16;
  HotSolver solver(cfg);
  aligned_vector<double> zero(static_cast<std::size_t>(solver.cells()), 0.0);
  solver.set_rhs(zero);
  const HotResult r = solver.solve();
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Hot, RhsSizeValidated) {
  HotConfig cfg;
  cfg.nx = cfg.ny = 16;
  HotSolver solver(cfg);
  aligned_vector<double> wrong(3, 0.0);
  EXPECT_THROW(solver.set_rhs(wrong), Error);
}

}  // namespace
}  // namespace neutral
