// Tests for the cross-section substrate: table validation, interpolation,
// the three lookup strategies (§VI-A), macroscopic scaling, and the
// synthetic nuclear-data generators (§IV-D).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/stream.h"
#include "util/error.h"
#include "xs/synthetic.h"
#include "xs/table.h"
#include "xs/union_grid.h"

namespace neutral {
namespace {

CrossSectionTable tiny_table() {
  aligned_vector<double> e{1.0, 2.0, 4.0, 8.0, 16.0};
  aligned_vector<double> v{10.0, 20.0, 10.0, 40.0, 0.0};
  return CrossSectionTable(std::move(e), std::move(v));
}

// ---------------------------------------------------------------------------
// Construction and validation
// ---------------------------------------------------------------------------

TEST(XsTable, RejectsMismatchedArrays) {
  aligned_vector<double> e{1.0, 2.0};
  aligned_vector<double> v{1.0};
  EXPECT_THROW(CrossSectionTable(std::move(e), std::move(v)), Error);
}

TEST(XsTable, RejectsUnsortedEnergies) {
  aligned_vector<double> e{1.0, 3.0, 2.0};
  aligned_vector<double> v{1.0, 1.0, 1.0};
  EXPECT_THROW(CrossSectionTable(std::move(e), std::move(v)), Error);
}

TEST(XsTable, RejectsNegativeValues) {
  aligned_vector<double> e{1.0, 2.0};
  aligned_vector<double> v{1.0, -1.0};
  EXPECT_THROW(CrossSectionTable(std::move(e), std::move(v)), Error);
}

TEST(XsTable, RejectsNonPositiveEnergies) {
  aligned_vector<double> e{0.0, 2.0};
  aligned_vector<double> v{1.0, 1.0};
  EXPECT_THROW(CrossSectionTable(std::move(e), std::move(v)), Error);
}

// ---------------------------------------------------------------------------
// Interpolation
// ---------------------------------------------------------------------------

TEST(XsTable, ExactAtKnots) {
  const auto t = tiny_table();
  for (std::int32_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.microscopic(t.energy(i)), t.value(i)) << i;
  }
}

TEST(XsTable, LinearBetweenKnots) {
  const auto t = tiny_table();
  EXPECT_DOUBLE_EQ(t.microscopic(1.5), 15.0);
  EXPECT_DOUBLE_EQ(t.microscopic(3.0), 15.0);  // midway 20 -> 10
  EXPECT_DOUBLE_EQ(t.microscopic(12.0), 20.0); // midway 40 -> 0
}

TEST(XsTable, ClampsBelowAndAboveRange) {
  const auto t = tiny_table();
  EXPECT_DOUBLE_EQ(t.microscopic(0.5), 10.0);
  EXPECT_DOUBLE_EQ(t.microscopic(100.0), 0.0);
}

// ---------------------------------------------------------------------------
// Lookup strategies agree (§VI-A)
// ---------------------------------------------------------------------------

class LookupAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LookupAgreement, AllStrategiesReturnIdenticalValues) {
  SyntheticXsConfig cfg;
  cfg.points = 2000;
  const auto t = make_capture_table(cfg);
  rng::BulkStream rng(GetParam(), 1);
  std::int32_t cached = 0;
  for (int i = 0; i < 500; ++i) {
    // Random-walk energies, as collisions produce (§VI-A: mostly small
    // jumps with occasional large ones).
    const double ev = std::exp(std::log(1e-5) +
                               (std::log(2e7) - std::log(1e-5)) * rng.next());
    std::int32_t bin_idx = 0;
    const double binary = t.microscopic(ev, XsLookup::kBinarySearch, bin_idx);
    const double linear = t.microscopic(ev, XsLookup::kCachedLinear, cached);
    std::int32_t bucket_idx = 0;
    const double bucket =
        t.microscopic(ev, XsLookup::kBucketedIndex, bucket_idx);
    EXPECT_DOUBLE_EQ(binary, linear) << "ev=" << ev;
    EXPECT_DOUBLE_EQ(binary, bucket) << "ev=" << ev;
    // All strategies must report the same bin.
    EXPECT_EQ(bin_idx, cached);
    EXPECT_EQ(bin_idx, bucket_idx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookupAgreement,
                         ::testing::Values(1ull, 2ull, 3ull, 42ull, 1000ull));

TEST(XsLookup, CachedLinearWalksFromStaleHints) {
  const auto t = tiny_table();
  // Hint far right of the target.
  std::int32_t hint = 3;
  EXPECT_DOUBLE_EQ(t.microscopic(1.5, XsLookup::kCachedLinear, hint), 15.0);
  EXPECT_EQ(hint, 0);
  // Hint far left of the target.
  hint = 0;
  EXPECT_DOUBLE_EQ(t.microscopic(12.0, XsLookup::kCachedLinear, hint), 20.0);
  EXPECT_EQ(hint, 3);
}

TEST(XsLookup, CachedLinearToleratesOutOfRangeHints) {
  const auto t = tiny_table();
  std::int32_t hint = 999;
  EXPECT_DOUBLE_EQ(t.microscopic(1.5, XsLookup::kCachedLinear, hint), 15.0);
  hint = -7;
  EXPECT_DOUBLE_EQ(t.microscopic(1.5, XsLookup::kCachedLinear, hint), 15.0);
}

TEST(XsLookup, NamesAreStable) {
  EXPECT_STREQ(to_string(XsLookup::kBinarySearch), "binary");
  EXPECT_STREQ(to_string(XsLookup::kCachedLinear), "cached-linear");
  EXPECT_STREQ(to_string(XsLookup::kBucketedIndex), "bucketed");
  EXPECT_STREQ(to_string(XsLookup::kUnionised), "unionised");
}

// ---------------------------------------------------------------------------
// Unionised grid: all four strategies bit-identical (§VI-A tentpole)
// ---------------------------------------------------------------------------

/// Fuzzed energy sweep shared by the matrix tests: log-uniform randoms,
/// every exact grid point, bin edges nudged both ways, and out-of-range
/// energies on both sides (the clamp path).
std::vector<double> fuzzed_energies(const CrossSectionTable& t,
                                    std::uint64_t seed) {
  std::vector<double> energies;
  rng::BulkStream rng(seed, 7);
  const double log_lo = std::log(t.min_energy() * 0.01);
  const double log_hi = std::log(t.max_energy() * 100.0);
  for (int i = 0; i < 2000; ++i) {
    energies.push_back(std::exp(log_lo + (log_hi - log_lo) * rng.next()));
  }
  for (std::int32_t i = 0; i < t.size(); ++i) {
    const double e = t.energy(i);
    energies.push_back(e);  // exact knot
    energies.push_back(std::nextafter(e, 0.0));
    energies.push_back(std::nextafter(e, 1.0e300));
  }
  energies.push_back(0.0);
  energies.push_back(t.min_energy() * 1e-8);
  energies.push_back(t.max_energy() * 1e8);
  return energies;
}

TEST(UnionisedGrid, AllFourStrategiesBitIdenticalOverFuzzedSweep) {
  SyntheticXsConfig cfg;
  cfg.points = 3000;
  const auto capture = make_capture_table(cfg);
  const auto scatter = make_scatter_table(cfg);
  const UnionisedXsGrid grid(capture, scatter);
  ASSERT_TRUE(grid.active());
  ASSERT_EQ(grid.size(), capture.size());

  std::int32_t cached_a = 0;
  std::int32_t cached_s = 0;
  for (const double ev : fuzzed_energies(capture, 99)) {
    std::int32_t bin_idx = 0;
    std::int32_t bucket_idx = 0;
    std::int32_t bare_union_idx = 0;
    const double binary_a =
        capture.microscopic(ev, XsLookup::kBinarySearch, bin_idx);
    const double linear_a =
        capture.microscopic(ev, XsLookup::kCachedLinear, cached_a);
    const double bucket_a =
        capture.microscopic(ev, XsLookup::kBucketedIndex, bucket_idx);
    // A bare table asked for kUnionised degrades to the bucketed index.
    const double bare_union_a =
        capture.microscopic(ev, XsLookup::kUnionised, bare_union_idx);
    std::int32_t union_idx = 0;
    double union_a = 0.0;
    double union_s = 0.0;
    grid.microscopic_pair(ev, union_idx, union_a, union_s);

    // Bit identity, not closeness: the fast paths must be exact.
    EXPECT_EQ(binary_a, linear_a) << "ev=" << ev;
    EXPECT_EQ(binary_a, bucket_a) << "ev=" << ev;
    EXPECT_EQ(binary_a, bare_union_a) << "ev=" << ev;
    EXPECT_EQ(binary_a, union_a) << "ev=" << ev;
    EXPECT_EQ(bin_idx, union_idx) << "ev=" << ev;
    EXPECT_EQ(bin_idx, cached_a) << "ev=" << ev;
    EXPECT_EQ(bin_idx, bucket_idx) << "ev=" << ev;

    const double binary_s =
        scatter.microscopic(ev, XsLookup::kBinarySearch, bin_idx);
    const double linear_s =
        scatter.microscopic(ev, XsLookup::kCachedLinear, cached_s);
    EXPECT_EQ(binary_s, linear_s) << "ev=" << ev;
    EXPECT_EQ(binary_s, union_s) << "ev=" << ev;
  }
}

TEST(UnionisedGrid, RejectsMismatchedEnergyGrids) {
  aligned_vector<double> e1{1.0, 2.0, 4.0, 8.0};
  aligned_vector<double> e2{1.0, 2.0, 4.5, 8.0};
  aligned_vector<double> v{1.0, 2.0, 3.0, 4.0};
  const CrossSectionTable a(std::move(e1), aligned_vector<double>(v));
  const CrossSectionTable b(std::move(e2), aligned_vector<double>(v));
  EXPECT_THROW(UnionisedXsGrid(a, b), Error);

  aligned_vector<double> e3{1.0, 2.0, 4.0};
  aligned_vector<double> v3{1.0, 2.0, 3.0};
  const CrossSectionTable c(std::move(e3), std::move(v3));
  EXPECT_THROW(UnionisedXsGrid(a, c), Error);
}

TEST(UnionisedGrid, CountedFindBinMatchesPlainFindBin) {
  SyntheticXsConfig cfg;
  cfg.points = 500;
  const auto capture = make_capture_table(cfg);
  const auto scatter = make_scatter_table(cfg);
  const UnionisedXsGrid grid(capture, scatter);
  std::int64_t union_steps = 0;
  std::int64_t table_steps = 0;
  std::int64_t lookups = 0;
  for (const double ev : fuzzed_energies(capture, 7)) {
    std::int32_t hint = 0;
    const std::int32_t plain = capture.find_bin(
        std::clamp(ev, capture.min_energy(), capture.max_energy()),
        XsLookup::kBinarySearch, hint);
    EXPECT_EQ(grid.find_bin_counted(ev, union_steps), plain) << "ev=" << ev;
    std::int32_t idx = 0;
    EXPECT_EQ(capture.find_bin_counted(ev, XsLookup::kBucketedIndex, idx,
                                       table_steps),
              plain)
        << "ev=" << ev;
    ++lookups;
  }
  // The direct-index table is fine enough that the residual walk averages
  // well under one step per lookup.
  EXPECT_LT(static_cast<double>(union_steps), static_cast<double>(lookups));
}

// ---------------------------------------------------------------------------
// Macroscopic conversion (§IV-D2)
// ---------------------------------------------------------------------------

TEST(Macroscopic, NumberDensityOfWater) {
  // 1 g/cm^3 at 18 g/mol -> ~3.34e22 molecules/cm^3.
  EXPECT_NEAR(number_density(1.0, 18.0), 3.3456e22, 1e19);
}

TEST(Macroscopic, ScalesLinearlyWithDensity) {
  const double n1 = number_density(1.0, 10.0);
  const double n2 = number_density(2.0, 10.0);
  EXPECT_DOUBLE_EQ(n2, 2.0 * n1);
}

TEST(Macroscopic, BarnsConversion) {
  // Sigma = sigma * 1e-24 * n; with sigma=5 barns, n=1e24 -> 5 /cm.
  EXPECT_DOUBLE_EQ(macroscopic(5.0, 1.0e24), 5.0);
}

TEST(Macroscopic, RejectsBadMolarMass) {
  EXPECT_THROW(number_density(1.0, 0.0), Error);
}

TEST(Macroscopic, VacuumDensityGivesVanishingSigma) {
  // The stream problem's 1e-30 kg/m^3 must yield a physically negligible
  // but non-negative macroscopic cross section.
  const double n = number_density(1.0e-30 * 1.0e-3, 1.0);
  const double sigma = macroscopic(5.0, n);
  EXPECT_GE(sigma, 0.0);
  EXPECT_LT(sigma, 1e-25);
}

// ---------------------------------------------------------------------------
// Synthetic tables (§IV-D)
// ---------------------------------------------------------------------------

TEST(Synthetic, TablesAreDeterministic) {
  SyntheticXsConfig cfg;
  cfg.points = 500;
  const auto a = make_capture_table(cfg);
  const auto b = make_capture_table(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::int32_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value(i), b.value(i));
  }
}

TEST(Synthetic, SeedsChangeResonanceLayout) {
  SyntheticXsConfig a, b;
  a.points = b.points = 500;
  a.seed = 1;
  b.seed = 2;
  const auto ta = make_capture_table(a);
  const auto tb = make_capture_table(b);
  bool any_diff = false;
  for (std::int32_t i = 0; i < ta.size(); ++i) {
    if (ta.value(i) != tb.value(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, CaptureShowsOneOverVAtThermalEnergies) {
  SyntheticXsConfig cfg;
  cfg.points = 4000;
  cfg.resonances = 0;  // isolate the smooth trend
  const auto t = make_capture_table(cfg);
  // sigma(E) * sqrt(E) constant under pure 1/v.
  const double lo = t.microscopic(1e-4) * std::sqrt(1e-4);
  const double hi = t.microscopic(1e-2) * std::sqrt(1e-2);
  EXPECT_NEAR(lo / hi, 1.0, 0.05);
}

TEST(Synthetic, CaptureResonancesRaiseTheResonanceRegion) {
  SyntheticXsConfig smooth, res;
  smooth.points = res.points = 4000;
  smooth.resonances = 0;
  res.resonances = 200;
  const auto ts = make_capture_table(smooth);
  const auto tr = make_capture_table(res);
  double sum_smooth = 0.0, sum_res = 0.0;
  for (double e = 2.0; e < 1e4; e *= 1.5) {
    sum_smooth += ts.microscopic(e);
    sum_res += tr.microscopic(e);
  }
  EXPECT_GT(sum_res, sum_smooth);
}

TEST(Synthetic, ScatterLevelIsOrderTensOfBarns) {
  const auto t = make_scatter_table();
  const double at_1mev = t.microscopic(1.0e6);
  EXPECT_GT(at_1mev, 1.0);
  EXPECT_LT(at_1mev, 200.0);
}

TEST(Synthetic, GridSpansConfiguredRange) {
  SyntheticXsConfig cfg;
  cfg.points = 100;
  cfg.min_energy_ev = 1e-3;
  cfg.max_energy_ev = 1e6;
  const auto t = make_capture_table(cfg);
  EXPECT_DOUBLE_EQ(t.min_energy(), 1e-3);
  EXPECT_NEAR(t.max_energy(), 1e6, 1e-6);
  EXPECT_EQ(t.size(), 100);
}

TEST(Synthetic, RejectsBadConfig) {
  SyntheticXsConfig cfg;
  cfg.points = 1;
  EXPECT_THROW(make_capture_table(cfg), Error);
  cfg.points = 100;
  cfg.min_energy_ev = -1.0;
  EXPECT_THROW(make_scatter_table(cfg), Error);
}

TEST(Synthetic, CaptureAndScatterShareTheGrid) {
  // The per-particle cached index is shared between the two tables, which
  // requires identical energy grids (see Simulation constructor).
  SyntheticXsConfig cfg;
  cfg.points = 300;
  const auto c = make_capture_table(cfg);
  const auto s = make_scatter_table(cfg);
  ASSERT_EQ(c.size(), s.size());
  for (std::int32_t i = 0; i < c.size(); i += 37) {
    EXPECT_DOUBLE_EQ(c.energy(i), s.energy(i));
  }
}

}  // namespace
}  // namespace neutral
