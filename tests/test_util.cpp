// Tests for the util/ foundation layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/aligned.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/error.h"
#include "util/numeric.h"
#include "util/table.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// error.h
// ---------------------------------------------------------------------------

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(NEUTRAL_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Require, ThrowsWithContext) {
  try {
    NEUTRAL_REQUIRE(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// aligned.h
// ---------------------------------------------------------------------------

TEST(Aligned, VectorDataIsCacheLineAligned) {
  aligned_vector<double> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
}

TEST(Aligned, WorksForSmallTypes) {
  aligned_vector<std::uint8_t> v(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
}

TEST(Aligned, VectorGrowsCorrectly) {
  aligned_vector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(Aligned, PaddedOccupiesFullCacheLines) {
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLine, 0u);
  EXPECT_EQ(alignof(Padded<int>), kCacheLine);
  Padded<int> p;
  p.value = 42;
  EXPECT_EQ(p.value, 42);
}

TEST(Aligned, PaddedArrayElementsDontShareLines) {
  aligned_vector<Padded<std::uint64_t>> counters(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&counters[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&counters[1].value);
  EXPECT_GE(b - a, kCacheLine);
}

// ---------------------------------------------------------------------------
// numeric.h
// ---------------------------------------------------------------------------

TEST(Numeric, Sqr) { EXPECT_DOUBLE_EQ(sqr(-3.0), 9.0); }

TEST(Numeric, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Numeric, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e-301, -1e-301));  // below absolute floor
}

TEST(Numeric, KahanSumBeatsNaiveSummation) {
  // 1 + 1e-16 * n: naive summation loses the small terms entirely.
  KahanSum kahan;
  kahan.add(1.0);
  double naive = 1.0;
  const int n = 10000000;
  for (int i = 0; i < n; ++i) {
    kahan.add(1.0e-16);
    naive += 1.0e-16;
  }
  const double expected = 1.0 + 1.0e-16 * n;
  EXPECT_NEAR(kahan.value(), expected, 1e-15);
  EXPECT_LT(naive, expected - 1e-10);  // demonstrates the failure mode
}

TEST(Numeric, InfinityComparesCorrectly) {
  EXPECT_GT(kInf, 1e308);
  EXPECT_TRUE(1.0 < kInf);
}

// ---------------------------------------------------------------------------
// cli.h
// ---------------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndOptions) {
  const char* argv[] = {"prog", "--fast", "--deck=csp", "--threads", "8"};
  CliParser cli(5, argv);
  EXPECT_TRUE(cli.flag("fast", "go fast"));
  EXPECT_FALSE(cli.flag("slow", "go slow"));
  EXPECT_EQ(cli.option("deck", "stream", "deck name"), "csp");
  EXPECT_EQ(cli.option_int("threads", 1, "thread count"), 8);
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  CliParser cli(1, argv);
  EXPECT_EQ(cli.option("deck", "stream", "deck"), "stream");
  EXPECT_EQ(cli.option_int("n", 42, "count"), 42);
  EXPECT_DOUBLE_EQ(cli.option_double("scale", 0.5, "scale"), 0.5);
  EXPECT_TRUE(cli.finish());
}

TEST(Cli, RejectsUnknownArguments) {
  const char* argv[] = {"prog", "--bogus"};
  CliParser cli(2, argv);
  EXPECT_THROW(cli.finish(), Error);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  CliParser cli(2, argv);
  EXPECT_THROW(cli.option_int("n", 0, "count"), Error);
}

TEST(Cli, HelpSuppressesExecution) {
  const char* argv[] = {"prog", "--help"};
  CliParser cli(2, argv);
  cli.flag("x", "an option");
  EXPECT_FALSE(cli.finish());
}

TEST(Cli, EqualsFormAndSpaceFormAgree) {
  const char* argv1[] = {"prog", "--scale=2.5"};
  const char* argv2[] = {"prog", "--scale", "2.5"};
  CliParser a(2, argv1), b(3, argv2);
  EXPECT_DOUBLE_EQ(a.option_double("scale", 0, "s"), 2.5);
  EXPECT_DOUBLE_EQ(b.option_double("scale", 0, "s"), 2.5);
}

// ---------------------------------------------------------------------------
// env.h
// ---------------------------------------------------------------------------

TEST(Env, ReadsAndDefaults) {
  ::setenv("NEUTRAL_TEST_VAR", "7", 1);
  EXPECT_EQ(env_or_int("NEUTRAL_TEST_VAR", 1), 7);
  ::unsetenv("NEUTRAL_TEST_VAR");
  EXPECT_EQ(env_or_int("NEUTRAL_TEST_VAR", 1), 1);
}

TEST(Env, FlagRecognisesTruthyValues) {
  for (const char* v : {"1", "true", "YES", "on"}) {
    ::setenv("NEUTRAL_TEST_FLAG", v, 1);
    EXPECT_TRUE(env_flag("NEUTRAL_TEST_FLAG")) << v;
  }
  ::setenv("NEUTRAL_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("NEUTRAL_TEST_FLAG"));
  ::unsetenv("NEUTRAL_TEST_FLAG");
  EXPECT_FALSE(env_flag("NEUTRAL_TEST_FLAG"));
}

TEST(Env, MalformedNumberThrows) {
  ::setenv("NEUTRAL_TEST_BAD", "xyz", 1);
  EXPECT_THROW(env_or_int("NEUTRAL_TEST_BAD", 0), Error);
  ::unsetenv("NEUTRAL_TEST_BAD");
}

// ---------------------------------------------------------------------------
// table.h
// ---------------------------------------------------------------------------

TEST(Table, RowWidthEnforced) {
  ResultTable t("t", {"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvRoundTripsContent) {
  ResultTable t("demo", {"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"with,comma", "2"});
  const std::string path = ::testing::TempDir() + "/neutral_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::remove(path.c_str());
}

TEST(Table, CsvQuotesEmbeddedQuotesAndControlCharacters) {
  // Sweep labels embed axis values ("dynamic,4") and error cells can carry
  // arbitrary exception text: every RFC-4180 special must round-trip.
  ResultTable t("demo", {"label", "status"});
  t.add_row({"csp/dynamic,4/n=100", "he said \"boom\""});
  t.add_row({"multi\nline", "carriage\rreturn"});
  const std::string path = ::testing::TempDir() + "/neutral_table_quote.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"csp/dynamic,4/n=100\""), std::string::npos);
  EXPECT_NE(content.find("\"he said \"\"boom\"\"\""), std::string::npos);
  EXPECT_NE(content.find("\"multi\nline\""), std::string::npos);
  EXPECT_NE(content.find("\"carriage\rreturn\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, NumericCellsFormat) {
  EXPECT_EQ(ResultTable::cell(static_cast<long>(42)), "42");
  EXPECT_EQ(ResultTable::cell(1.5, 2), "1.50");
}

}  // namespace
}  // namespace neutral
