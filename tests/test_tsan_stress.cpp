// Concurrency stress tier for the sanitizer builds (TSan above all).
//
// One shared MetricsRegistry + TraceLog observed by everything at once:
// N client threads run mixed submit/watch/cancel traffic through batch
// engines (each run() spins its own worker pool; the registry, trace log
// and world cache are the shared surfaces), a failing grouped job
// exercises the cancel-pending/tombstone path, a canceller thread flips a
// cooperative cancel flag mid-run, and a scraper thread loops
// MetricsRegistry::snapshot() the whole time.  Under ThreadSanitizer this
// covers exactly the audit targets ISSUE 10 names: the relaxed-ordering
// counter shards racing a live scraper, concurrent TraceLog writes, and
// group-cancellation bookkeeping.
//
// The final assertion is counter EXACTNESS, not approximation: after every
// client joins (the join is the happens-before edge — see the ordering
// contract on obs::Counter), each registry total must equal the sum of the
// corresponding outcomes accumulated from the returned BatchReports.  A
// lost update anywhere in the sharded counters, or a snapshot tearing a
// word, fails the test in every tier (plain, ASan, TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "batch/engine.h"
#include "core/counters.h"
#include "core/deck.h"
#include "core/simulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neutral {
namespace {

using batch::BatchEngine;
using batch::BatchReport;
using batch::EngineOptions;
using batch::Job;
using batch::JobOutcome;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceLog;

ProblemDeck stress_deck(std::int64_t particles) {
  ProblemDeck deck = csp_deck(/*mesh_scale=*/0.02, /*particle_scale=*/1.0);
  deck.n_particles = particles;
  return deck;
}

Job stress_job(std::uint64_t id, std::int64_t particles,
               std::uint64_t group = 0) {
  Job job = batch::make_job(id, SimulationConfig{}, /*priority=*/0);
  job.group = group;
  job.config.deck = stress_deck(particles);
  job.config.threads = 1;
  job.fingerprint = world_fingerprint(job.config.deck);
  job.label = "stress-" + std::to_string(id);
  return job;
}

/// Outcome totals accumulated from BatchReports — the ground truth the
/// registry counters must match exactly once the clients have joined.
struct OutcomeTotals {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> events{0};

  void note(const BatchReport& report) {
    for (const JobOutcome& job : report.jobs) {
      if (job.ok) {
        ok.fetch_add(1);
        const EventCounters& c = job.result.counters;
        events.fetch_add(c.facets + c.collisions + c.censuses + c.rng_draws +
                         c.xs_lookups + c.tally_flushes);
      } else if (job.cancelled) {
        cancelled.fetch_add(1);
      } else if (job.timed_out) {
        timed_out.fetch_add(1);
      } else {
        failed.fetch_add(1);
      }
    }
  }
};

std::uint64_t counter_value(const MetricsSnapshot& snap, const char* name) {
  const obs::MetricValue* m = snap.find(name);
  return m == nullptr ? 0 : m->counter;
}

TEST(TsanStress, ConcurrentSubmitWatchCancelWithLiveScraper) {
  constexpr int kClients = 4;
  constexpr int kRounds = 4;
  constexpr std::int64_t kParticles = 60;

  MetricsRegistry registry;
  const std::string trace_path =
      testing::TempDir() + "tsan_stress_trace.jsonl";
  TraceLog trace(trace_path);

  EngineOptions options;
  options.workers = 3;
  options.threads_per_job = 1;
  options.metrics = &registry;
  options.trace = &trace;

  OutcomeTotals totals;
  std::atomic<std::uint64_t> watched{0};  // on_complete callback count
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<bool> stop_scraper{false};

  // The scraper races every writer for the whole test: snapshots must stay
  // monotone per counter (per-shard coherence) and never tear.
  std::thread scraper([&] {
    std::uint64_t last_ok = 0;
    while (!stop_scraper.load()) {
      const MetricsSnapshot snap = registry.snapshot();
      const std::uint64_t ok = counter_value(snap, "neutral_jobs_ok_total");
      EXPECT_GE(ok, last_ok) << "counter went backwards under load";
      last_ok = ok;
      (void)snap.prometheus_text();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // One engine per client, all publishing into the shared registry and
      // trace log (the neutrald topology is one engine, many connections;
      // many engines sharing one registry is the same write pattern with
      // more submit-side concurrency).
      BatchEngine engine(options);
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<bool> cancel{false};
        std::vector<Job> jobs;
        std::uint64_t next_id = 1;
        for (int j = 0; j < 3; ++j) {
          jobs.push_back(stress_job(next_id++, kParticles));
        }
        if (round % 2 == 1) {
          // A fork-join group whose middle job cannot build its world:
          // the failure cancels still-pending siblings, exercising the
          // tombstone path while the scraper watches.
          for (int j = 0; j < 3; ++j) {
            Job job = stress_job(next_id++, kParticles, /*group=*/7);
            if (j == 1) job.config.deck.nx = 0;  // world build throws
            jobs.push_back(std::move(job));
          }
        }
        if (round % 4 == 3 && c % 2 == 0) {
          // Cooperative cancel flipped mid-run by a separate thread; the
          // affected jobs end ok or failed depending on timing — either
          // way they get exactly one outcome, which is all exactness
          // needs.
          Job job = stress_job(next_id++, 4 * kParticles);
          job.config.cancel = &cancel;
          jobs.push_back(std::move(job));
        }
        submitted.fetch_add(jobs.size());
        std::thread canceller([&cancel] {
          std::this_thread::yield();
          cancel.store(true);
        });
        const BatchReport report = engine.run(
            std::move(jobs), [&](const JobOutcome&) { watched.fetch_add(1); });
        canceller.join();
        totals.note(report);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop_scraper.store(true);
  scraper.join();

  // Every submitted job got exactly one outcome and one watch callback.
  EXPECT_EQ(totals.ok.load() + totals.failed.load() +
                totals.timed_out.load() + totals.cancelled.load(),
            submitted.load());
  EXPECT_EQ(watched.load(), submitted.load());

  // Joining the clients established the happens-before edge the Counter
  // contract requires, so the relaxed shards must now sum EXACTLY to the
  // report-derived ground truth.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(counter_value(snap, "neutral_jobs_ok_total"), totals.ok.load());
  EXPECT_EQ(counter_value(snap, "neutral_jobs_failed_total"),
            totals.failed.load());
  EXPECT_EQ(counter_value(snap, "neutral_jobs_timed_out_total"),
            totals.timed_out.load());
  EXPECT_EQ(counter_value(snap, "neutral_jobs_cancelled_total"),
            totals.cancelled.load());
  const std::uint64_t events_total =
      counter_value(snap, "neutral_events_facets_total") +
      counter_value(snap, "neutral_events_collisions_total") +
      counter_value(snap, "neutral_events_censuses_total") +
      counter_value(snap, "neutral_events_rng_draws_total") +
      counter_value(snap, "neutral_events_xs_lookups_total") +
      counter_value(snap, "neutral_events_tally_flushes_total");
  EXPECT_EQ(events_total, totals.events.load());

  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace neutral
