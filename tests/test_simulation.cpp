// Tests for the Simulation facade, the deck factories and the profiler.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.h"
#include "core/simulation.h"
#include "util/error.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// Deck factories (§IV-B)
// ---------------------------------------------------------------------------

TEST(Decks, PaperScaleDefaults) {
  const ProblemDeck stream = stream_deck();
  EXPECT_EQ(stream.nx, 4000);
  EXPECT_EQ(stream.ny, 4000);
  EXPECT_EQ(stream.n_particles, 1000000);
  EXPECT_DOUBLE_EQ(stream.dt_s, 1.0e-7);
  EXPECT_DOUBLE_EQ(stream.base_density_kg_m3, 1.0e-30);

  const ProblemDeck scatter = scatter_deck();
  EXPECT_EQ(scatter.n_particles, 10000000);  // 1e7 (§IV-B)
  EXPECT_DOUBLE_EQ(scatter.base_density_kg_m3, 1.0e3);

  const ProblemDeck csp = csp_deck();
  EXPECT_EQ(csp.n_particles, 1000000);
  ASSERT_EQ(csp.regions.size(), 1u);
  EXPECT_DOUBLE_EQ(csp.regions[0].density_kg_m3, 1.0e3);
}

TEST(Decks, MeshScaleShrinksMeshAndDensityTogether) {
  const ProblemDeck full = scatter_deck(1.0, 1.0);
  const ProblemDeck half = scatter_deck(0.5, 1.0);
  EXPECT_EQ(half.nx, 2000);
  // Density scales with resolution to preserve cells-per-mfp (DESIGN.md §5).
  EXPECT_NEAR(half.base_density_kg_m3 / full.base_density_kg_m3, 0.5, 1e-12);
}

TEST(Decks, ParticleScaleOnlyAffectsBankSize) {
  const ProblemDeck a = csp_deck(0.1, 1.0);
  const ProblemDeck b = csp_deck(0.1, 0.01);
  EXPECT_EQ(a.nx, b.nx);
  EXPECT_EQ(b.n_particles, 10000);
}

TEST(Decks, SourceRegionsMatchPaperDescriptions) {
  const ProblemDeck stream = stream_deck(0.1, 0.01);
  // Stream: centre of the space.
  EXPECT_NEAR(0.5 * (stream.src_x0 + stream.src_x1), 50.0, 1e-9);
  // csp: bottom-left corner.
  const ProblemDeck csp = csp_deck(0.1, 0.01);
  EXPECT_DOUBLE_EQ(csp.src_x0, 0.0);
  EXPECT_DOUBLE_EQ(csp.src_y0, 0.0);
  EXPECT_LT(csp.src_x1, 0.2 * csp.width_cm);
}

TEST(Decks, LookupByNameAndUnknownRejected) {
  EXPECT_EQ(deck_by_name("stream", 0.1, 0.01).name, "stream");
  EXPECT_EQ(deck_by_name("scatter", 0.1, 0.01).name, "scatter");
  EXPECT_EQ(deck_by_name("csp", 0.1, 0.01).name, "csp");
  EXPECT_THROW(deck_by_name("bogus"), Error);
}

TEST(Decks, ScaleBoundsEnforced) {
  EXPECT_THROW(stream_deck(0.0, 1.0), Error);
  EXPECT_THROW(stream_deck(1.5, 1.0), Error);
  EXPECT_THROW(stream_deck(1.0, 0.0), Error);
}

// ---------------------------------------------------------------------------
// Simulation facade
// ---------------------------------------------------------------------------

SimulationConfig small_config(const std::string& deck_name = "csp") {
  SimulationConfig cfg;
  cfg.deck = deck_by_name(deck_name, 0.016, 1.0);
  cfg.deck.n_particles = 300;
  cfg.deck.n_timesteps = 1;
  cfg.deck.xs.points = 2000;
  return cfg;
}

TEST(Simulation, RunProducesEventsAndTallies) {
  Simulation sim(small_config());
  const RunResult r = sim.run();
  EXPECT_GT(r.counters.total_events(), 0u);
  EXPECT_GT(r.budget.tally_total, 0.0);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.events_per_second(), 0.0);
  EXPECT_EQ(r.steps.size(), 1u);
}

TEST(Simulation, EveryParticleReachesCensusOrDies) {
  Simulation sim(small_config("stream"));
  const RunResult r = sim.run();
  const std::uint64_t deaths =
      r.counters.deaths_energy + r.counters.deaths_weight;
  EXPECT_EQ(r.counters.censuses + deaths,
            static_cast<std::uint64_t>(sim.config().deck.n_particles));
}

TEST(Simulation, StreamDeckIsFacetDominated) {
  Simulation sim(small_config("stream"));
  const RunResult r = sim.run();
  EXPECT_EQ(r.counters.collisions, 0u);  // vacuum
  EXPECT_GT(r.counters.facets, 50u * 300u);  // many facets per particle
  EXPECT_GT(r.counters.reflections, 0u);     // reflective boundaries used
}

TEST(Simulation, ScatterDeckIsCollisionDominated) {
  Simulation sim(small_config("scatter"));
  const RunResult r = sim.run();
  EXPECT_GT(r.counters.collisions, r.counters.facets);
}

TEST(Simulation, CspDeckIsMixed) {
  SimulationConfig cfg = small_config("csp");
  cfg.deck.n_particles = 2000;
  Simulation sim(cfg);
  const RunResult r = sim.run();
  EXPECT_GT(r.counters.collisions, 0u);
  EXPECT_GT(r.counters.facets, r.counters.collisions / 100);
}

TEST(Simulation, RejectsEmptyDeck) {
  SimulationConfig cfg;
  cfg.deck = csp_deck(0.01, 0.0001);
  cfg.deck.n_particles = 0;
  EXPECT_THROW(Simulation{cfg}, Error);
}

TEST(Simulation, ProfilerReportsEventGrind) {
  SimulationConfig cfg = small_config("csp");
  cfg.profile = true;
  Simulation sim(cfg);
  sim.run();
  ASSERT_NE(sim.profiler(), nullptr);
  const auto report = sim.profiler()->report();
  EXPECT_GT(report.total_cycles(), 0u);
  EXPECT_GT(report.visits[static_cast<int>(Phase::kEventSearch)], 0u);
  EXPECT_GT(report.fraction(Phase::kTally), 0.0);
  EXPECT_GT(report.cycles_per_visit(Phase::kFacet), 0.0);
}

TEST(Simulation, TallyFootprintReported) {
  SimulationConfig cfg = small_config();
  cfg.tally_mode = TallyMode::kPrivatized;
  cfg.threads = 2;
  Simulation sim(cfg);
  const RunResult r = sim.run();
  // Base mesh + 2 private copies (§VI-F).
  const std::uint64_t cells =
      static_cast<std::uint64_t>(cfg.deck.nx) * cfg.deck.ny;
  EXPECT_EQ(r.tally_footprint_bytes, cells * sizeof(double) * 3);
}

TEST(Simulation, StepByStepMatchesRun) {
  SimulationConfig cfg = small_config();
  cfg.deck.n_timesteps = 2;
  Simulation manual(cfg);
  manual.step();
  manual.step();
  manual.tally().merge();
  const RunResult a = manual.summary();
  Simulation oneshot(cfg);
  const RunResult b = oneshot.run();
  EXPECT_DOUBLE_EQ(a.budget.tally_total, b.budget.tally_total);
  EXPECT_EQ(a.counters.total_events(), b.counters.total_events());
}

TEST(Simulation, EnumNamesStable) {
  EXPECT_STREQ(to_string(Scheme::kOverParticles), "over-particles");
  EXPECT_STREQ(to_string(Scheme::kOverEvents), "over-events");
  EXPECT_STREQ(to_string(Layout::kAoS), "AoS");
  EXPECT_STREQ(to_string(Layout::kSoA), "SoA");
}

// ---------------------------------------------------------------------------
// Initial bank properties
// ---------------------------------------------------------------------------

TEST(Simulation, SourcePositionsInsideSourceRegion) {
  const SimulationConfig cfg = small_config("stream");
  const ProblemDeck& d = cfg.deck;
  StructuredMesh2D mesh(d.nx, d.ny, d.width_cm, d.height_cm);
  std::vector<Particle> bank(static_cast<std::size_t>(d.n_particles));
  initialise_particles(AosView(bank.data(), bank.size()), d, mesh);
  for (const Particle& p : bank) {
    EXPECT_GE(p.x, d.src_x0);
    EXPECT_LE(p.x, d.src_x1);
    EXPECT_GE(p.y, d.src_y0);
    EXPECT_LE(p.y, d.src_y1);
    EXPECT_NEAR(p.omega_x * p.omega_x + p.omega_y * p.omega_y, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(p.energy, d.initial_energy_ev);
    EXPECT_DOUBLE_EQ(p.weight, 1.0);
    EXPECT_GT(p.mfp_to_collision, 0.0);
    EXPECT_EQ(p.state, ParticleState::kCensus);
  }
}

TEST(Simulation, InitialBankEnergyMatchesFormula) {
  const ProblemDeck d = csp_deck(0.016, 0.001);
  EXPECT_DOUBLE_EQ(initial_bank_energy(d),
                   static_cast<double>(d.n_particles) * d.initial_energy_ev);
}

}  // namespace
}  // namespace neutral
