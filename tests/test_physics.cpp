// Unit tests for the transport step (core/step.h): event selection, the
// collision/facet/census handlers, variance reduction, and single-history
// conservation — the physics contract both schemes share.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/constants.h"
#include "core/init.h"
#include "core/step.h"
#include "core/tally.h"
#include "mesh/density_field.h"
#include "mesh/mesh2d.h"
#include "util/numeric.h"
#include "xs/synthetic.h"

namespace neutral {
namespace {

/// Self-contained world for single-particle experiments.
struct World {
  explicit World(double density_kg_m3, std::int32_t n = 8, double width = 8.0)
      : mesh(n, n, width, width), density(mesh, density_kg_m3) {
    SyntheticXsConfig cfg;
    cfg.points = 2000;
    capture = std::make_unique<CrossSectionTable>(make_capture_table(cfg));
    scatter = std::make_unique<CrossSectionTable>(make_scatter_table(cfg));
    tally = std::make_unique<EnergyTally>(mesh.num_cells(),
                                          TallyMode::kAtomic, 1);
    ctx.mesh = &mesh;
    ctx.density = &density;
    ctx.xs_capture = capture.get();
    ctx.xs_scatter = scatter.get();
    ctx.tally = tally.get();
    ctx.lookup = XsLookup::kCachedLinear;
    ctx.molar_mass_g_mol = 1.0;
    ctx.mass_number = 100.0;
    ctx.min_energy_ev = 1.0;
    ctx.min_weight = 1.0e-10;
    ctx.seed = 42;
  }

  Particle make_particle(double x, double y, double ox, double oy,
                         double energy = 1.0e6) const {
    Particle p;
    p.x = x;
    p.y = y;
    p.omega_x = ox;
    p.omega_y = oy;
    p.energy = energy;
    p.weight = 1.0;
    p.dt_to_census = 1.0e-7;
    p.mfp_to_collision = 1.0;
    const CellIndex c = mesh.locate(x, y);
    p.cellx = c.x;
    p.celly = c.y;
    p.state = ParticleState::kAlive;
    p.id = 0;
    p.rng_counter = 4;
    return p;
  }

  StructuredMesh2D mesh;
  DensityField density;
  std::unique_ptr<CrossSectionTable> capture;
  std::unique_ptr<CrossSectionTable> scatter;
  std::unique_ptr<EnergyTally> tally;
  TransportContext ctx;
};

constexpr double kVacuum = 1.0e-30;
constexpr double kDense = 1.0e3;

// ---------------------------------------------------------------------------
// Speed / flight-state plumbing
// ---------------------------------------------------------------------------

TEST(FlightState, SpeedMatchesKinematics) {
  // 1 MeV neutron: ~1.383e9 cm/s, ~4.6% c.
  World w(kVacuum);
  Particle p = w.make_particle(4.0, 4.0, 1.0, 0.0, 1.0e6);
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_NEAR(fs.speed, 1.383e9, 2e6);
}

TEST(FlightState, VacuumHasVanishingSigma) {
  World w(kVacuum);
  Particle p = w.make_particle(4.0, 4.0, 1.0, 0.0);
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_LT(fs.sigma_t, 1e-25);
  EXPECT_GE(fs.sigma_t, 0.0);
}

TEST(FlightState, DenseMediumHasFiniteMfp) {
  World w(kDense);
  Particle p = w.make_particle(4.0, 4.0, 1.0, 0.0);
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_GT(fs.sigma_t, 0.1);   // mean free path well under 10 cm
  EXPECT_LT(fs.sigma_t, 1000.0);
  EXPECT_GT(fs.sigma_a, 0.0);
  EXPECT_LT(fs.sigma_a, fs.sigma_t);
}

// ---------------------------------------------------------------------------
// Event selection and motion
// ---------------------------------------------------------------------------

TEST(EventSearch, VacuumParticleHitsFacetFirst) {
  World w(kVacuum);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const EventSelection sel = select_and_move(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_EQ(sel.event, EventType::kFacet);
  EXPECT_DOUBLE_EQ(p.x, 5.0);  // moved to the facet
}

TEST(EventSearch, TinyTimestepReachesCensusImmediately) {
  World w(kVacuum);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.dt_to_census = 1.0e-12;  // ~1.4 mm of flight at 1 MeV: census first
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const EventSelection sel = select_and_move(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_EQ(sel.event, EventType::kCensus);
  EXPECT_GT(p.x, 4.5);
  EXPECT_LT(p.x, 5.0);
}

TEST(EventSearch, DenseMediumCollidesBeforeFacet) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.mfp_to_collision = 1.0e-3;  // essentially immediate collision
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const EventSelection sel = select_and_move(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_EQ(sel.event, EventType::kCollision);
}

TEST(EventSearch, ClocksDecayWithDistance) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  const double mfp0 = p.mfp_to_collision;
  const double dt0 = p.dt_to_census;
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  select_and_move(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_LT(p.dt_to_census, dt0);
  EXPECT_LE(p.mfp_to_collision, mfp0);
}

TEST(EventSearch, HeatingEstimatorAccumulatesInDenseMedium) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  select_and_move(v, 0, w.ctx, fs, ec, hooks);
  EXPECT_GT(fs.pending_deposit, 0.0);
  EXPECT_DOUBLE_EQ(ec.path_heating, fs.pending_deposit);
}

// ---------------------------------------------------------------------------
// Facet handler
// ---------------------------------------------------------------------------

TEST(FacetHandler, CrossingFlushesTallyToOldCell) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.mfp_to_collision = 1.0e9;  // suppress collisions
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const std::int64_t old_cell = fs.flat_cell;
  const EventType e = advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  ASSERT_EQ(e, EventType::kFacet);
  EXPECT_GT(w.tally->at(old_cell), 0.0);  // flushed on crossing (§V-C)
  EXPECT_EQ(p.cellx, 5);
  EXPECT_EQ(ec.facets, 1u);
  EXPECT_DOUBLE_EQ(fs.pending_deposit, 0.0);
}

TEST(FacetHandler, ReflectionFlipsDirectionAndKeepsCell) {
  World w(kVacuum);
  Particle p = w.make_particle(7.5, 4.5, 1.0, 0.0);  // heading to x wall
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const EventType e = advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  ASSERT_EQ(e, EventType::kFacet);
  EXPECT_DOUBLE_EQ(p.omega_x, -1.0);
  EXPECT_EQ(p.cellx, 7);
  EXPECT_EQ(ec.reflections, 1u);
  EXPECT_DOUBLE_EQ(p.x, 8.0);
}

TEST(FacetHandler, CrossingReloadsDensity) {
  // Two-region world: step from vacuum into a dense half.
  World w(kVacuum);
  w.density.fill_rect(4.0, 0.0, 8.0, 8.0, kDense);
  Particle p = w.make_particle(3.5, 4.5, 1.0, 0.0);
  p.mfp_to_collision = 1.0e9;
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const double sigma_before = fs.sigma_t;
  advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  EXPECT_EQ(p.cellx, 4);
  EXPECT_GT(fs.sigma_t, sigma_before * 1e20);  // vacuum -> dense
}

// ---------------------------------------------------------------------------
// Collision handler
// ---------------------------------------------------------------------------

TEST(Collision, ScatterEnergyWithinKinematicBounds) {
  // E'/E in [((A-1)/(A+1))^2, 1] for elastic scatter off mass A.
  World w(kDense);
  const double a = w.ctx.mass_number;
  const double alpha = sqr((a - 1.0) / (a + 1.0));
  for (std::uint64_t id = 0; id < 200; ++id) {
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
    p.id = id;
    p.mfp_to_collision = 1.0e-6;
    AosView v(&p, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    const EventType e = advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
    ASSERT_EQ(e, EventType::kCollision);
    if (ec.scatters == 1) {
      EXPECT_LE(p.energy, 1.0e6);
      EXPECT_GE(p.energy, alpha * 1.0e6 * (1.0 - 1e-12));
    }
  }
}

TEST(Collision, DirectionStaysNormalisedAfterScatter) {
  World w(kDense);
  for (std::uint64_t id = 0; id < 100; ++id) {
    Particle p = w.make_particle(4.5, 4.5, 0.6, 0.8);
    p.id = id;
    p.mfp_to_collision = 1.0e-6;
    AosView v(&p, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
    EXPECT_NEAR(p.omega_x * p.omega_x + p.omega_y * p.omega_y, 1.0, 1e-12);
  }
}

TEST(Collision, EnergyWeightProductConserved) {
  // Each collision's deposit equals the loss of w*E, exactly.
  World w(kDense);
  for (std::uint64_t id = 0; id < 100; ++id) {
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
    p.id = id;
    p.mfp_to_collision = 1.0e-6;
    AosView v(&p, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    const double we_before = p.weight * p.energy;
    const double released_before = ec.released_energy;
    advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
    const double we_after = p.weight * p.energy;
    const double released = ec.released_energy - released_before;
    EXPECT_NEAR(we_before - we_after, released, 1e-9 * we_before);
  }
}

TEST(Collision, MfpRedrawnAfterCollision) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.mfp_to_collision = 1.0e-6;
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  if (p.state == ParticleState::kAlive) {
    EXPECT_GT(p.mfp_to_collision, 1.0e-6);  // fresh exponential draw
  }
}

TEST(Collision, RngCounterAdvances) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.mfp_to_collision = 1.0e-6;
  const std::uint64_t counter0 = p.rng_counter;
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  EXPECT_GT(p.rng_counter, counter0);
  EXPECT_EQ(ec.rng_draws, p.rng_counter - counter0);
}

TEST(Collision, EnergyCutoffKillsParticle) {
  World w(kDense);
  // E = 1.01 eV: elastic scatter lands in [alpha*E, E] with alpha ~ 0.961,
  // so ~3/4 of scatters drop below the 1 eV cutoff.
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0, /*energy=*/1.01);
  // Any scatter drops below min_energy_ev = 1.0 with high probability;
  // loop particles until one dies by the energy cutoff.
  bool saw_death = false;
  for (std::uint64_t id = 0; id < 50 && !saw_death; ++id) {
    Particle q = p;
    q.id = id;
    q.mfp_to_collision = 1.0e-6;
    AosView v(&q, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
    if (q.state == ParticleState::kDead) {
      saw_death = true;
      EXPECT_GE(ec.deaths_energy + ec.deaths_weight, 1u);
      // Terminated histories deposit everything (§IV-E).
      EXPECT_GT(ec.released_energy, 0.0);
    }
  }
  EXPECT_TRUE(saw_death);
}

TEST(Collision, AbsorptionStatisticsMatchProbability) {
  // Over many one-collision particles, the absorbed fraction approaches
  // p_abs = Sigma_a / Sigma_t.
  World w(kDense);
  EventCounters ec;
  FlightState fs_probe;
  {
    // Probe at 10 eV where 1/v capture gives a measurable p_abs (~5e-3).
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0, /*energy=*/10.0);
    AosView v(&p, 1);
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs_probe, ec, hooks);
  }
  const double p_abs = fs_probe.sigma_a / fs_probe.sigma_t;
  ec = EventCounters{};
  const int n = 20000;
  for (int id = 0; id < n; ++id) {
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0, /*energy=*/10.0);
    p.id = static_cast<std::uint64_t>(id);
    p.mfp_to_collision = 1.0e-6;
    AosView v(&p, 1);
    FlightState fs;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  }
  ASSERT_EQ(ec.collisions, static_cast<std::uint64_t>(n));
  const double frac =
      static_cast<double>(ec.absorptions) / static_cast<double>(n);
  EXPECT_NEAR(frac, p_abs, 5.0 * std::sqrt(p_abs / n) + 1e-4);
}

TEST(Collision, AbsorptionImplementsImplicitCapture) {
  // Force absorption by hunting for a particle whose first draw selects it,
  // then verify w' = w (1 - p_abs) (§IV-E).
  World w(kDense);
  for (std::uint64_t id = 0; id < 100000; ++id) {
    // 10 eV particles: p_abs ~ 5e-3, so an absorption shows up quickly.
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0, /*energy=*/10.0);
    p.id = id;
    p.mfp_to_collision = 1.0e-6;
    AosView v(&p, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, w.ctx, fs, ec, hooks);
    const double p_abs = fs.sigma_a / fs.sigma_t;
    advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
    if (ec.absorptions == 1) {
      EXPECT_NEAR(p.weight, 1.0 - p_abs, 1e-12);
      EXPECT_DOUBLE_EQ(p.energy, 10.0);  // energy unchanged
      EXPECT_DOUBLE_EQ(p.omega_x, 1.0);  // direction unchanged
      return;
    }
  }
  FAIL() << "no absorption sampled in 100k trials";
}

// ---------------------------------------------------------------------------
// Census handler
// ---------------------------------------------------------------------------

TEST(Census, ParksParticleAndZeroesClock) {
  World w(kVacuum);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.dt_to_census = 1.0e-13;
  AosView v(&p, 1);
  FlightState fs;
  EventCounters ec;
  NoHooks hooks;
  load_flight_state(v, 0, w.ctx, fs, ec, hooks);
  const EventType e = advance_one_event(v, 0, w.ctx, fs, ec, 0, hooks);
  EXPECT_EQ(e, EventType::kCensus);
  EXPECT_EQ(p.state, ParticleState::kCensus);
  EXPECT_DOUBLE_EQ(p.dt_to_census, 0.0);
  EXPECT_EQ(ec.censuses, 1u);
}

// ---------------------------------------------------------------------------
// Full histories
// ---------------------------------------------------------------------------

TEST(History, VacuumHistoryIsPureFacetsUntilCensus) {
  World w(kVacuum, 16, 16.0);
  Particle p = w.make_particle(8.0, 8.0, 0.6, 0.8);
  p.dt_to_census = 1.0e-8;
  AosView v(&p, 1);
  EventCounters ec;
  NoHooks hooks;
  run_history(v, 0, w.ctx, ec, 0, hooks);
  EXPECT_EQ(ec.collisions, 0u);
  EXPECT_GT(ec.facets, 5u);
  EXPECT_EQ(ec.censuses, 1u);
  EXPECT_EQ(p.state, ParticleState::kCensus);
}

TEST(History, SingleHistoryEnergyBalanceExact) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  AosView v(&p, 1);
  EventCounters ec;
  NoHooks hooks;
  run_history(v, 0, w.ctx, ec, 0, hooks);
  const double in_flight =
      p.state == ParticleState::kDead ? 0.0 : p.weight * p.energy;
  EXPECT_NEAR(ec.released_energy + in_flight, 1.0e6, 1.0e-3);
  // Tally holds released + path heating, all flushed.
  EXPECT_NEAR(w.tally->total(), ec.released_energy + ec.path_heating, 1.0);
}

TEST(History, SkipsDeadAndCensusParticles) {
  World w(kDense);
  Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
  p.state = ParticleState::kDead;
  AosView v(&p, 1);
  EventCounters ec;
  NoHooks hooks;
  run_history(v, 0, w.ctx, ec, 0, hooks);
  EXPECT_EQ(ec.total_events(), 0u);
  p.state = ParticleState::kCensus;
  run_history(v, 0, w.ctx, ec, 0, hooks);
  EXPECT_EQ(ec.total_events(), 0u);
}

TEST(History, ReproducibleGivenSameKey) {
  World w(kDense);
  auto run_one = [&w]() {
    Particle p = w.make_particle(4.5, 4.5, 1.0, 0.0);
    AosView v(&p, 1);
    EventCounters ec;
    NoHooks hooks;
    run_history(v, 0, w.ctx, ec, 0, hooks);
    return std::make_tuple(p.x, p.y, p.energy, p.weight, ec.collisions,
                           ec.facets);
  };
  EXPECT_EQ(run_one(), run_one());
}

}  // namespace
}  // namespace neutral
