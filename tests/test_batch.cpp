// Tests for the batch execution engine: sweep expansion, the bounded
// priority queue (including its deadline policy and cancelled-group
// tombstone lifetime), the shared world cache, end-to-end determinism of
// batched runs against serial Simulation::run(), and the CLI's exit-status
// contract.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "batch/engine.h"
#include "batch/queue.h"
#include "batch/sweep.h"
#include "batch/world_cache.h"
#include "core/simulation.h"
#include "rng/stream.h"
#include "runtime/host_info.h"
#include "util/error.h"

namespace neutral {
namespace {

using batch::BatchEngine;
using batch::BatchReport;
using batch::EngineOptions;
using batch::Job;
using batch::JobOutcome;
using batch::JobQueue;
using batch::PushOutcome;
using batch::QueuePolicy;
using batch::SweepSpec;
using batch::WorldCache;

ProblemDeck tiny_deck(std::int64_t particles = 400) {
  ProblemDeck deck = csp_deck(/*mesh_scale=*/0.02, /*particle_scale=*/1.0);
  deck.n_particles = particles;
  return deck;
}

SimulationConfig tiny_config(std::int64_t particles = 400) {
  SimulationConfig cfg;
  cfg.deck = tiny_deck(particles);
  cfg.threads = 1;
  return cfg;
}

Job job_with_priority(std::uint64_t id, std::int32_t priority) {
  return batch::make_job(id, tiny_config(), priority);
}

// ---------------------------------------------------------------------------
// RNG substream derivation
// ---------------------------------------------------------------------------

TEST(StreamSeed, DerivationIsDeterministicAndSpreads) {
  const std::uint64_t a = rng::derive_stream_seed(42, 0);
  EXPECT_EQ(a, rng::derive_stream_seed(42, 0));
  // Neighbouring job ids and neighbouring base seeds must not collide or
  // correlate trivially (full-block Threefry, not arithmetic).
  EXPECT_NE(a, rng::derive_stream_seed(42, 1));
  EXPECT_NE(a, rng::derive_stream_seed(43, 0));
  EXPECT_NE(rng::derive_stream_seed(42, 1) - a,
            rng::derive_stream_seed(42, 2) - rng::derive_stream_seed(42, 1));
}

// ---------------------------------------------------------------------------
// World fingerprint + cache
// ---------------------------------------------------------------------------

TEST(WorldFingerprint, IgnoresRunControlFields) {
  ProblemDeck a = tiny_deck();
  ProblemDeck b = a;
  b.n_particles = 9999;
  b.seed = 7;
  b.n_timesteps = 3;
  b.min_energy_ev = 2.0;
  EXPECT_EQ(world_fingerprint(a), world_fingerprint(b));
}

TEST(WorldFingerprint, SensitiveToGeometryDensityAndXs) {
  const ProblemDeck base = tiny_deck();
  ProblemDeck mesh = base;
  mesh.nx += 1;
  ProblemDeck density = base;
  density.base_density_kg_m3 *= 2.0;
  ProblemDeck region = base;
  region.regions[0].density_kg_m3 *= 2.0;
  ProblemDeck xs = base;
  xs.xs.points += 1;
  EXPECT_NE(world_fingerprint(base), world_fingerprint(mesh));
  EXPECT_NE(world_fingerprint(base), world_fingerprint(density));
  EXPECT_NE(world_fingerprint(base), world_fingerprint(region));
  EXPECT_NE(world_fingerprint(base), world_fingerprint(xs));
}

TEST(WorldCacheTest, HitAccountingAndSharing) {
  WorldCache cache;
  bool hit = true;
  const auto first = cache.acquire(tiny_deck(100), &hit);
  EXPECT_FALSE(hit);
  // Same geometry, different run-control knobs: same world object.
  const auto second = cache.acquire(tiny_deck(999), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());

  ProblemDeck other = tiny_deck(100);
  other.nx += 4;
  other.ny += 4;
  const auto third = cache.acquire(other, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), third.get());

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(WorldCacheTest, FailedBuildEvictsAndRethrows) {
  WorldCache cache;
  ProblemDeck bad = tiny_deck();
  bad.nx = 0;  // mesh construction rejects empty meshes
  bad.ny = 0;
  EXPECT_THROW(cache.acquire(bad), Error);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The poisoned entry is gone: a retry attempts a fresh build.
  EXPECT_THROW(cache.acquire(bad), Error);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(WorldCacheTest, ConcurrentAcquireBuildsOnce) {
  WorldCache cache;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const World>> worlds(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { worlds[static_cast<std::size_t>(t)] = cache.acquire(tiny_deck()); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(worlds[0].get(), worlds[static_cast<std::size_t>(t)].get());
  }
  const WorldCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(WorldCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  batch::WorldCacheOptions options;
  options.max_bytes = 1;  // any world overflows: at most one stays resident
  WorldCache cache(options);

  ProblemDeck deck_a = tiny_deck();
  ProblemDeck deck_b = tiny_deck();
  deck_b.nx += 4;
  deck_b.ny += 4;

  const auto a = cache.acquire(deck_a);
  EXPECT_EQ(cache.stats().resident_worlds, 1u);
  EXPECT_GT(cache.stats().resident_bytes, 0u);

  // Building B overflows the budget; A is the LRU victim.  The just-built
  // entry is never its own victim, so B stays cached even though it alone
  // exceeds max_bytes.
  const auto b = cache.acquire(deck_b);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident_worlds, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // The evicted world's shared_ptr is still valid for its holders.
  EXPECT_EQ(a->mesh.nx(), deck_a.nx);

  // A is gone: re-acquiring rebuilds (a miss), evicting B in turn.
  bool hit = true;
  const auto a2 = cache.acquire(deck_a, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(a2.get(), a.get());
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(WorldCacheTest, RecentUseProtectsAgainstEviction) {
  // Budget fits two tiny worlds but not three: the LRU of the three goes.
  batch::WorldCacheOptions options;
  ProblemDeck decks[3] = {tiny_deck(), tiny_deck(), tiny_deck()};
  decks[1].nx += 4;
  decks[2].nx += 8;

  WorldCache probe;
  const std::uint64_t one = probe.acquire(decks[0])->footprint_bytes();
  options.max_bytes = 5 * one / 2;  // room for ~2 worlds

  WorldCache cache(options);
  (void)cache.acquire(decks[0]);
  (void)cache.acquire(decks[1]);
  (void)cache.acquire(decks[0]);  // touch 0: 1 becomes the LRU
  (void)cache.acquire(decks[2]);  // overflow: 1 must be the victim

  bool hit = false;
  (void)cache.acquire(decks[0], &hit);
  EXPECT_TRUE(hit);
  (void)cache.acquire(decks[2], &hit);
  EXPECT_TRUE(hit);
  (void)cache.acquire(decks[1], &hit);  // rebuilt: it was evicted
  EXPECT_FALSE(hit);
}

TEST(WorldCacheTest, UnboundedByDefault) {
  WorldCache cache;
  ProblemDeck deck = tiny_deck();
  for (int i = 0; i < 4; ++i) {
    deck.nx += 4;
    (void)cache.acquire(deck);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 4u);
}

// ---------------------------------------------------------------------------
// Simulation world reuse
// ---------------------------------------------------------------------------

TEST(SharedWorld, ReusedWorldReproducesFreshWorldExactly) {
  const SimulationConfig cfg = tiny_config();
  Simulation fresh(cfg);
  const RunResult a = fresh.run();

  Simulation reused(cfg, fresh.world());
  const RunResult b = reused.run();
  EXPECT_EQ(a.tally_checksum, b.tally_checksum);
  EXPECT_EQ(a.counters.total_events(), b.counters.total_events());
  EXPECT_EQ(a.population, b.population);
}

TEST(SharedWorld, MismatchedWorldIsRejected) {
  const SimulationConfig cfg = tiny_config();
  Simulation fresh(cfg);
  SimulationConfig other = cfg;
  other.deck.nx += 4;
  other.deck.ny += 4;
  EXPECT_THROW(Simulation(other, fresh.world()), Error);
}

// ---------------------------------------------------------------------------
// Job queue
// ---------------------------------------------------------------------------

TEST(JobQueueTest, PopsByPriorityThenFifo) {
  JobQueue queue(16);
  ASSERT_TRUE(queue.try_push(job_with_priority(1, 0)));
  ASSERT_TRUE(queue.try_push(job_with_priority(2, 5)));
  ASSERT_TRUE(queue.try_push(job_with_priority(3, 5)));
  ASSERT_TRUE(queue.try_push(job_with_priority(4, 1)));
  queue.close();
  EXPECT_EQ(queue.pop()->id, 2u);  // highest priority, submitted first
  EXPECT_EQ(queue.pop()->id, 3u);  // same priority, FIFO
  EXPECT_EQ(queue.pop()->id, 4u);
  EXPECT_EQ(queue.pop()->id, 1u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueueTest, BoundedCapacityRefusesWhenFull) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.try_push(job_with_priority(1, 0)));
  EXPECT_TRUE(queue.try_push(job_with_priority(2, 0)));
  EXPECT_FALSE(queue.try_push(job_with_priority(3, 0)));
  (void)queue.pop();
  EXPECT_TRUE(queue.try_push(job_with_priority(3, 0)));
}

TEST(JobQueueTest, CloseRefusesPushesButDrainsInFlightJobs) {
  JobQueue queue(8);
  ASSERT_EQ(queue.push(job_with_priority(1, 0)), PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job_with_priority(2, 0)), PushOutcome::kAccepted);
  queue.close();
  EXPECT_EQ(queue.push(job_with_priority(3, 0)), PushOutcome::kRefused);
  EXPECT_TRUE(queue.closed());
  // Jobs queued before close() still pop.
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueueTest, ShutdownWakesBlockedConsumers) {
  JobQueue queue(4);
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kJobs = 32;
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
        popped.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    // Blocking push: the capacity-4 queue back-pressures this producer
    // while consumers are mid-"job".
    ASSERT_EQ(queue.push(job_with_priority(i, 0)), PushOutcome::kAccepted);
  }
  queue.close();
  for (std::thread& t : consumers) t.join();
  // Every job pushed before close() was processed; nobody deadlocked.
  EXPECT_EQ(popped.load(), kJobs);
}

// ---------------------------------------------------------------------------
// Queue deadlines (QueuePolicy) and cancelled-group tombstone lifetime
// ---------------------------------------------------------------------------

TEST(JobQueueDeadline, PushDistinguishesTimedOutFromRefused) {
  QueuePolicy policy;
  policy.max_queue_wait = std::chrono::milliseconds(30);
  JobQueue queue(1, policy);
  ASSERT_EQ(queue.push(job_with_priority(1, 0)), PushOutcome::kAccepted);
  // Full queue, no consumer: the timed wait expires instead of hanging the
  // producer forever — and reports kTimedOut (alive but saturated) ...
  EXPECT_EQ(queue.push(job_with_priority(2, 0)), PushOutcome::kTimedOut);
  // ... which is NOT the same answer as a closed queue.
  queue.close();
  EXPECT_EQ(queue.push(job_with_priority(3, 0)), PushOutcome::kRefused);
}

TEST(JobQueueDeadline, PushUntilHonoursAnExplicitDeadline) {
  JobQueue queue(1);  // no policy: plain push() would wait forever
  ASSERT_EQ(queue.push(job_with_priority(1, 0)), PushOutcome::kAccepted);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.push_until(job_with_priority(2, 0),
                             start + std::chrono::milliseconds(30)),
            PushOutcome::kTimedOut);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(JobQueueDeadline, PopUntilReturnsEmptyOnDeadline) {
  JobQueue queue(4);
  // Empty queue, nobody pushing: the timed pop returns instead of blocking.
  EXPECT_FALSE(queue
                   .pop_until(std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(30))
                   .has_value());
  EXPECT_FALSE(queue.closed());  // a timeout is not a shutdown
  ASSERT_TRUE(queue.try_push(job_with_priority(1, 0)));
  EXPECT_EQ(queue
                .pop_until(std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(30))
                ->id,
            1u);
}

TEST(JobQueueTombstones, ForgetGroupKeepsTheCancelledSetBounded) {
  // Regression for the unbounded-lifetime bug: cancel_pending() inserted a
  // tombstone per group and nothing ever erased it, so a daemon cancelling
  // N distinct groups leaked N entries.  forget_group() is the eviction.
  JobQueue queue(8);
  for (std::uint64_t group = 1; group <= 512; ++group) {
    Job job = job_with_priority(group, 0);
    job.group = group;
    ASSERT_TRUE(queue.try_push(std::move(job)));
    EXPECT_EQ(queue.cancel_pending(group).size(), 1u);
    EXPECT_TRUE(queue.group_cancelled(group));
    queue.forget_group(group);  // last job of the group accounted for
    EXPECT_FALSE(queue.group_cancelled(group));
  }
  EXPECT_EQ(queue.cancelled_group_count(), 0u);
  // A forgotten group id is usable again (ids recycle in a long-lived
  // daemon once their submission is fully retired).
  Job again = job_with_priority(9999, 0);
  again.group = 7;
  EXPECT_TRUE(queue.try_push(std::move(again)));
}

TEST(JobQueueTombstones, CancelPendingLeavesLazyTombstonesWithoutRebuild) {
  // Regression for the O(n) heap rebuild: cancel_pending() used to copy
  // every surviving entry into a fresh heap.  It now marks matching
  // entries dead in place, so right after a cancel the dead entries are
  // still *inside* the heap (lazily purged as they surface at the top).
  // Sequential and timing-insensitive by construction.
  JobQueue queue(64);
  // Groups 1 and 3 at priority 5 (heap top), group 2 at priority 0
  // (heap bottom) — so cancelling group 2 cannot be cleaned up by the
  // drop-dead-top pass and MUST leave lazy tombstones behind.
  for (std::uint64_t id = 1; id <= 10; ++id) {
    Job job = job_with_priority(id, 5);
    job.group = 1;
    ASSERT_TRUE(queue.try_push(std::move(job)));
  }
  for (std::uint64_t id = 11; id <= 20; ++id) {
    Job job = job_with_priority(id, 0);
    job.group = 2;
    ASSERT_TRUE(queue.try_push(std::move(job)));
  }
  for (std::uint64_t id = 21; id <= 30; ++id) {
    Job job = job_with_priority(id, 5);
    job.group = 3;
    ASSERT_TRUE(queue.try_push(std::move(job)));
  }
  const std::vector<Job> removed = queue.cancel_pending(2);
  // Removed jobs come back in submission order (the engine records them
  // as cancelled outcomes in this order).
  ASSERT_EQ(removed.size(), 10u);
  for (std::size_t i = 0; i < removed.size(); ++i) {
    EXPECT_EQ(removed[i].id, 11u + i);
  }
  EXPECT_EQ(queue.size(), 20u);
  // The lazy-cancellation proof: tombstones are still physically in the
  // heap (a rebuild would have dropped them all immediately).
  EXPECT_EQ(queue.dead_entries(), 10u);
  // Survivors drain in the exact order strict priority demands, skipping
  // the dead entries as they surface.
  queue.close();
  for (std::uint64_t expect : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    EXPECT_EQ(queue.pop()->id, expect);
  }
  for (std::uint64_t expect = 21; expect <= 30; ++expect) {
    EXPECT_EQ(queue.pop()->id, expect);
  }
  EXPECT_FALSE(queue.pop().has_value());
  // Draining the live entries purged every tombstone on the way out.
  EXPECT_EQ(queue.dead_entries(), 0u);
  EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// Priority aging (QueuePolicy::priority_aging)
// ---------------------------------------------------------------------------

TEST(JobQueueAging, StrictPriorityProvablyStarvesUnderSaturation) {
  // The failure mode aging exists to fix, demonstrated sequentially so it
  // is a proof, not a race: with aging off, a priority-0 job queued FIRST
  // still pops LAST behind every priority-9 job, no matter how long it
  // has waited.
  JobQueue queue(32);
  ASSERT_TRUE(queue.try_push(job_with_priority(777, 0)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (std::uint64_t id = 1; id <= 31; ++id) {
    ASSERT_TRUE(queue.try_push(job_with_priority(id, 9)));
  }
  queue.close();
  for (std::uint64_t expect = 1; expect <= 31; ++expect) {
    EXPECT_EQ(queue.pop()->id, expect);
  }
  EXPECT_EQ(queue.pop()->id, 777u);  // starved to the very end
}

TEST(JobQueueAging, AgedLowPriorityJobOvertakesYoungerHighPriority) {
  // With --priority-aging-ms T, a queued job gains one effective priority
  // level per T ms waited.  A priority-0 job that has waited > 9T beats a
  // freshly queued priority 9.  The bound is oversleep-robust: sleeping
  // LONGER only ages the low-priority job further.
  QueuePolicy policy;
  policy.priority_aging = std::chrono::milliseconds(10);
  JobQueue queue(32, policy);
  ASSERT_TRUE(queue.try_push(job_with_priority(777, 0)));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // > 9 x 10ms
  for (std::uint64_t id = 1; id <= 8; ++id) {
    ASSERT_TRUE(queue.try_push(job_with_priority(id, 9)));
  }
  queue.close();
  EXPECT_EQ(queue.pop()->id, 777u);  // aged past every fresh nine
  for (std::uint64_t expect = 1; expect <= 8; ++expect) {
    EXPECT_EQ(queue.pop()->id, expect);  // nines stay FIFO among themselves
  }
}

TEST(JobQueueAging, AgingBoundsPriorityZeroWaitUnderSaturatedNines) {
  // Concurrent saturation: a producer floods priority-9 jobs through a
  // small queue while a consumer drains it slowly.  A priority-9 job
  // enqueued at time t has rank 9 - t/T; the priority-0 job enqueued at
  // t~0 has rank ~0 — so only nines enqueued within the first 9T = 45ms
  // can beat it.  With capacity 8 and a consumer that spends >= 2ms per
  // pop, at most 8 + 45/2 ~ 31 jobs are enqueued in that window; assert
  // the generous bound 50.  A slower machine only shrinks the window's
  // throughput, so the test cannot flake slow.
  QueuePolicy policy;
  policy.priority_aging = std::chrono::milliseconds(5);
  JobQueue queue(8, policy);
  constexpr std::uint64_t kNines = 200;
  ASSERT_TRUE(queue.try_push(job_with_priority(777, 0)));
  std::thread producer([&] {
    for (std::uint64_t id = 1; id <= kNines; ++id) {
      ASSERT_EQ(queue.push(job_with_priority(id, 9)),
                PushOutcome::kAccepted);
    }
    queue.close();
  });
  std::size_t position = 0;
  std::size_t zero_at = 0;
  while (auto job = queue.pop()) {
    ++position;
    if (job->id == 777u) zero_at = position;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  producer.join();
  EXPECT_EQ(position, kNines + 1);  // everything drained
  ASSERT_GT(zero_at, 0u);
  EXPECT_LE(zero_at, 50u)
      << "priority-0 job starved past the aging bound under p9 saturation";
}

TEST(Engine, EvictsGroupTombstonesOnceGroupsComplete) {
  // Engine wiring for the eviction: many failing groups in one run; every
  // job gets exactly one outcome (fail or cancelled), nothing hangs, and
  // the per-group bookkeeping drains.  (The queue is per-run; what this
  // pins is that record-keeping reaches zero for every group, the
  // precondition forget_group relies on.)
  std::vector<Job> jobs;
  for (std::uint64_t group = 1; group <= 16; ++group) {
    SimulationConfig bad = tiny_config();
    bad.deck.n_particles = 0;  // every group's first job fails
    Job leader = batch::make_job(group * 10, bad);
    leader.group = group;
    jobs.push_back(std::move(leader));
    Job sibling = batch::make_job(group * 10 + 1, tiny_config(50));
    sibling.group = group;
    jobs.push_back(std::move(sibling));
  }
  EngineOptions options;
  options.workers = 1;
  BatchEngine engine(options);
  const BatchReport report = engine.run(std::move(jobs));
  ASSERT_EQ(report.jobs.size(), 32u);
  for (const JobOutcome& outcome : report.jobs) {
    EXPECT_FALSE(outcome.ok);  // leader failed or sibling cancelled
  }
  EXPECT_GT(report.cancelled(), 0u);
}

TEST(Engine, QueueWaitDeadlineExpiresQueuedJobs) {
  // One worker pinned by a slow custom job: the jobs behind it overstay
  // max_queue_wait and must complete as timed_out without running.
  EngineOptions options;
  options.workers = 1;
  options.policy.max_queue_wait = std::chrono::milliseconds(40);
  BatchEngine engine(options);

  std::atomic<int> ran{0};
  std::vector<Job> jobs;
  Job slow = batch::make_job(0, tiny_config(50));
  slow.work = [&ran] {
    ran.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    return RunResult{};
  };
  jobs.push_back(std::move(slow));
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Job blocked = batch::make_job(id, tiny_config(50));
    blocked.work = [&ran] {
      ran.fetch_add(1);
      return RunResult{};
    };
    jobs.push_back(std::move(blocked));
  }

  const BatchReport report = engine.run(std::move(jobs));
  ASSERT_EQ(report.jobs.size(), 4u);
  EXPECT_TRUE(report.jobs[0].ok);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(report.jobs[i].ok);
    EXPECT_TRUE(report.jobs[i].timed_out);
    EXPECT_NE(report.jobs[i].error.find("max_queue_wait"),
              std::string::npos);
  }
  EXPECT_EQ(report.timed_out(), 3u);
  EXPECT_EQ(ran.load(), 1);  // expired jobs never ran
}

TEST(Engine, RunWallDeadlineTimesOutAndCancelsTheGroup) {
  // A grouped job that overruns max_run_wall aborts at a timestep boundary
  // (cooperative SimulationConfig::deadline), completes as timed_out, and
  // cancels its still-queued sibling like any failure would.
  EngineOptions options;
  options.workers = 1;
  options.threads_per_job = 1;
  options.policy.max_run_wall = std::chrono::milliseconds(50);
  BatchEngine engine(options);

  SimulationConfig slow = tiny_config(2000);
  slow.deck.n_timesteps = 500;
  std::vector<Job> jobs;
  Job leader = batch::make_job(0, slow);
  leader.group = 3;
  jobs.push_back(std::move(leader));
  Job sibling = batch::make_job(1, slow);
  sibling.group = 3;
  jobs.push_back(std::move(sibling));

  const BatchReport report = engine.run(std::move(jobs));
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_TRUE(report.jobs[0].timed_out);
  EXPECT_TRUE(report.jobs[1].cancelled);
  EXPECT_EQ(report.timed_out(), 1u);
}

TEST(SimulationInterrupt, DeadlineAndCancelAbortBetweenTimesteps) {
  SimulationConfig config = tiny_config(100);
  config.deck.n_timesteps = 3;
  config.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);  // already expired
  Simulation late(config);
  EXPECT_THROW(late.run(), TimeoutError);

  std::atomic<bool> cancel{true};
  SimulationConfig cancelled = tiny_config(100);
  cancelled.cancel = &cancel;
  Simulation stopped(cancelled);
  EXPECT_THROW(stopped.run(), Error);

  cancel.store(false);
  SimulationConfig fine = tiny_config(100);
  fine.cancel = &cancel;
  fine.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  Simulation ok(fine);
  EXPECT_NO_THROW(ok.run());
}

// ---------------------------------------------------------------------------
// Sweep expansion
// ---------------------------------------------------------------------------

TEST(Sweep, ExpandsCrossProductWithStableIds) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.axes.particles = {100, 200, 300};
  spec.axes.schemes = {Scheme::kOverParticles, Scheme::kOverEvents};
  spec.axes.layouts = {Layout::kAoS, Layout::kSoA};
  ASSERT_EQ(batch::sweep_size(spec), 12u);

  const std::vector<Job> jobs = batch::expand_sweep(spec);
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
  }
  // Row-major order: seeds/schedules innermost ... particles outermost.
  EXPECT_EQ(jobs[0].config.deck.n_particles, 100);
  EXPECT_EQ(jobs[0].config.scheme, Scheme::kOverParticles);
  EXPECT_EQ(jobs[0].config.layout, Layout::kAoS);
  EXPECT_EQ(jobs[1].config.layout, Layout::kSoA);
  EXPECT_EQ(jobs[2].config.scheme, Scheme::kOverEvents);
  EXPECT_EQ(jobs[4].config.deck.n_particles, 200);
  // Identical geometry across the whole sweep: one world fingerprint.
  for (const Job& job : jobs) {
    EXPECT_EQ(job.fingerprint, jobs[0].fingerprint);
  }
  // Expansion is deterministic: same spec, same jobs.
  const std::vector<Job> again = batch::expand_sweep(spec);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].config.deck.seed, again[i].config.deck.seed);
    EXPECT_EQ(jobs[i].label, again[i].label);
  }
}

TEST(Sweep, BatchSeedDerivesIndependentSubstreams) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.batch_seed = 99;
  spec.axes.particles = {100, 200};
  const std::vector<Job> jobs = batch::expand_sweep(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.deck.seed, rng::derive_stream_seed(99, 0));
  EXPECT_EQ(jobs[1].config.deck.seed, rng::derive_stream_seed(99, 1));
  EXPECT_NE(jobs[0].config.deck.seed, jobs[1].config.deck.seed);
}

TEST(Sweep, ExplicitSeedAxisBeatsBatchSeed) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.batch_seed = 99;
  spec.axes.seeds = {5, 6};
  const std::vector<Job> jobs = batch::expand_sweep(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.deck.seed, 5u);
  EXPECT_EQ(jobs[1].config.deck.seed, 6u);
}

TEST(Sweep, OverEventsDefaultsToDeferredTally) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.axes.schemes = {Scheme::kOverParticles, Scheme::kOverEvents};
  const std::vector<Job> jobs = batch::expand_sweep(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.tally_mode, TallyMode::kAtomic);
  EXPECT_EQ(jobs[1].config.tally_mode, TallyMode::kDeferredAtomic);
}

TEST(Sweep, NamedTallyModeIsNeverRewritten) {
  // The §VI-G deferral is a default, not an override: a spec that names a
  // tally mode keeps it for every scheme the sweep crosses.
  const SweepSpec spec = batch::parse_sweep(
      "deck csp\n"
      "mesh_scale 0.02\n"
      "tally atomic\n"
      "axis scheme particles events\n");
  EXPECT_TRUE(spec.tally_mode_named);
  const std::vector<Job> jobs = batch::expand_sweep(spec);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.tally_mode, TallyMode::kAtomic);
  EXPECT_EQ(jobs[1].config.tally_mode, TallyMode::kAtomic);

  // An unnamed mode still gets the scheme-appropriate default.
  const SweepSpec unnamed = batch::parse_sweep(
      "deck csp\n"
      "mesh_scale 0.02\n"
      "axis scheme particles events\n");
  EXPECT_FALSE(unnamed.tally_mode_named);
  const std::vector<Job> defaulted = batch::expand_sweep(unnamed);
  ASSERT_EQ(defaulted.size(), 2u);
  EXPECT_EQ(defaulted[1].config.tally_mode, TallyMode::kDeferredAtomic);
}

TEST(Sweep, MeshScaleAndNxAxesAreExclusive) {
  SweepSpec spec;
  spec.base = tiny_config();
  spec.deck_name = "csp";
  spec.axes.mesh_scales = {0.02, 0.04};
  spec.axes.nx = {64};
  EXPECT_THROW(batch::sweep_size(spec), Error);
  EXPECT_THROW(batch::expand_sweep(spec), Error);
}

TEST(Sweep, ParsesSpecText) {
  const SweepSpec spec = batch::parse_sweep(
      "# demo\n"
      "deck csp\n"
      "mesh_scale 0.02\n"
      "timesteps 2\n"
      "particles 500\n"
      "seed 7\n"
      "layout soa\n"
      "schedule dynamic,4\n"
      "priority 3\n"
      "axis particles 100 200\n"
      "axis scheme particles events\n");
  EXPECT_EQ(spec.deck_name, "csp");
  EXPECT_EQ(spec.base.deck.nx, 80);  // 4000 * 0.02
  EXPECT_EQ(spec.base.deck.n_timesteps, 2);
  EXPECT_EQ(spec.base.deck.seed, 7u);
  EXPECT_EQ(spec.base.layout, Layout::kSoA);
  EXPECT_EQ(spec.base.schedule.kind, ScheduleKind::kDynamic);
  EXPECT_EQ(spec.base.schedule.chunk, 4);
  EXPECT_EQ(spec.priority, 3);
  ASSERT_EQ(spec.axes.particles.size(), 2u);
  ASSERT_EQ(spec.axes.schemes.size(), 2u);
  EXPECT_EQ(batch::sweep_size(spec), 4u);

  const std::vector<Job> jobs = batch::expand_sweep(spec);
  for (const Job& job : jobs) {
    EXPECT_EQ(job.priority, 3);
    EXPECT_EQ(job.config.deck.n_timesteps, 2);
  }
}

TEST(Sweep, RejectsMalformedSpecs) {
  EXPECT_THROW(batch::parse_sweep("bogus_key 1\n"), Error);
  EXPECT_THROW(batch::parse_sweep("axis bogus 1 2\n"), Error);
  EXPECT_THROW(batch::parse_sweep("nxq\n"), Error);
  EXPECT_THROW(batch::parse_sweep("axis particles twelve\n"), Error);
  EXPECT_THROW(batch::parse_sweep("deck csp\ndeck_file x.params\n"), Error);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(Engine, ThreadBudgetNeverOversubscribes) {
  EngineOptions options;
  options.workers = 3;
  options.threads_per_job = 64;  // absurd request: must be clamped
  BatchEngine engine(options);
  const auto [workers, threads] = engine.thread_budget(10);
  const std::int32_t hw = probe_host().logical_cpus;
  EXPECT_EQ(workers, 3);
  EXPECT_LE(workers * threads, std::max(hw, workers));
  EXPECT_GE(threads, 1);
}

TEST(Engine, ChecksumsInvariantAcrossWorkerCounts) {
  SweepSpec spec;
  spec.base = tiny_config(300);
  spec.axes.particles = {100, 200, 300};
  spec.axes.schemes = {Scheme::kOverParticles, Scheme::kOverEvents};

  auto run_with_workers = [&](std::int32_t workers) {
    EngineOptions options;
    options.workers = workers;
    options.threads_per_job = 1;
    BatchEngine engine(options);
    return engine.run(batch::expand_sweep(spec));
  };

  const BatchReport serial = run_with_workers(1);
  const BatchReport wide = run_with_workers(4);
  ASSERT_EQ(serial.jobs.size(), 6u);
  ASSERT_EQ(wide.jobs.size(), 6u);
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    ASSERT_TRUE(serial.jobs[i].ok) << serial.jobs[i].error;
    ASSERT_TRUE(wide.jobs[i].ok) << wide.jobs[i].error;
    EXPECT_EQ(serial.jobs[i].job_id, wide.jobs[i].job_id);
    EXPECT_EQ(serial.jobs[i].result.tally_checksum,
              wide.jobs[i].result.tally_checksum);
    EXPECT_EQ(serial.jobs[i].result.counters.total_events(),
              wide.jobs[i].result.counters.total_events());
  }

  // ... and each matches the same config run directly through Simulation.
  for (const JobOutcome& outcome : wide.jobs) {
    Simulation sim(outcome.config);
    EXPECT_EQ(sim.run().tally_checksum, outcome.result.tally_checksum);
  }
}

TEST(Engine, ReportsWorldCacheHitsAndThroughput) {
  SweepSpec spec;
  spec.base = tiny_config(200);
  spec.axes.layouts = {Layout::kAoS, Layout::kSoA};
  spec.axes.particles = {100, 200};

  EngineOptions options;
  options.workers = 2;
  options.threads_per_job = 1;
  BatchEngine engine(options);
  const BatchReport report = engine.run(batch::expand_sweep(spec));
  EXPECT_EQ(report.completed(), 4u);
  EXPECT_EQ(report.cache.hits + report.cache.misses, 4u);
  EXPECT_EQ(report.cache.misses, 1u);  // one geometry, built once
  EXPECT_GE(report.cache.hit_rate(), 0.74);
  EXPECT_GT(report.total_events(), 0u);
  EXPECT_GT(report.events_per_second(), 0.0);
  EXPECT_EQ(report.workers, 2);

  // A second run on the same engine reuses the cached world entirely.
  const BatchReport again = engine.run(batch::expand_sweep(spec));
  EXPECT_EQ(again.cache.misses, 0u);
  EXPECT_EQ(again.cache.hits, 4u);
}

TEST(Engine, CompletionCallbackSeesEveryJob) {
  SweepSpec spec;
  spec.base = tiny_config(100);
  spec.axes.particles = {100, 200, 300};
  EngineOptions options;
  options.workers = 2;
  BatchEngine engine(options);
  std::vector<std::uint64_t> seen;  // serialised callback: no lock needed
  const BatchReport report =
      engine.run(batch::expand_sweep(spec),
                 [&](const JobOutcome& j) { seen.push_back(j.job_id); });
  EXPECT_EQ(report.completed(), 3u);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Engine, FailedJobIsIsolated) {
  std::vector<Job> jobs;
  jobs.push_back(batch::make_job(0, tiny_config(100)));
  SimulationConfig bad = tiny_config();
  bad.deck.n_particles = 0;  // Simulation rejects an empty bank
  jobs.push_back(batch::make_job(1, bad));
  jobs.push_back(batch::make_job(2, tiny_config(200)));

  EngineOptions options;
  options.workers = 2;
  BatchEngine engine(options);
  const BatchReport report = engine.run(std::move(jobs));
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_TRUE(report.jobs[0].ok);
  EXPECT_FALSE(report.jobs[1].ok);
  EXPECT_FALSE(report.jobs[1].error.empty());
  EXPECT_TRUE(report.jobs[2].ok);
  EXPECT_EQ(report.failed(), 1u);
}

TEST(Engine, DuplicateJobIdsAreRejected) {
  std::vector<Job> jobs;
  jobs.push_back(batch::make_job(7, tiny_config(100)));
  jobs.push_back(batch::make_job(7, tiny_config(200)));
  BatchEngine engine;
  EXPECT_THROW(engine.run(std::move(jobs)), Error);
}

// ---------------------------------------------------------------------------
// CLI exit-status audit: failures must never be buried in the CSV
// ---------------------------------------------------------------------------

#ifdef NEUTRAL_BATCH_BIN

/// Spawn the real neutral_batch binary and return its exit status.
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(NEUTRAL_BATCH_BIN) + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

/// Unique scratch path in the ctest working directory.
std::string scratch(const std::string& stem) {
  return stem + "." + std::to_string(::getpid());
}

TEST(CliExitStatus, FailingSweepJobYieldsNonZeroExit) {
  // A sweep whose second job carries a deliberately unrunnable deck
  // (particles 0): the CSV records the FAIL row, and the process exit
  // status must say so too.
  const std::string spec = scratch("exitstatus_failing.spec");
  const std::string csv = scratch("exitstatus_failing.csv");
  {
    std::ofstream out(spec);
    out << "deck csp\nmesh_scale 0.02\ntimesteps 1\n"
           "axis particles 100 0\n";
  }
  EXPECT_NE(run_cli("--spec " + spec + " --quiet --csv " + csv), 0);
  std::remove(spec.c_str());
  std::remove(csv.c_str());
}

TEST(CliExitStatus, MalformedDeckInASweepFailsLoudly) {
  const std::string deck = scratch("exitstatus_malformed.params");
  const std::string spec = scratch("exitstatus_malformed.spec");
  const std::string csv = scratch("exitstatus_malformed.csv");
  {
    std::ofstream out(deck);
    out << "nx definitely-not-a-number\n";
  }
  {
    std::ofstream out(spec);
    out << "deck_file " + deck + "\naxis particles 100 200\n";
  }
  EXPECT_NE(run_cli("--spec " + spec + " --quiet --csv " + csv), 0);
  std::remove(deck.c_str());
  std::remove(spec.c_str());
  std::remove(csv.c_str());
}

TEST(CliExitStatus, HealthySweepStillExitsZero) {
  const std::string spec = scratch("exitstatus_ok.spec");
  const std::string csv = scratch("exitstatus_ok.csv");
  {
    std::ofstream out(spec);
    out << "deck csp\nmesh_scale 0.02\ntimesteps 1\nthreads 1\n"
           "axis particles 100 200\n";
  }
  EXPECT_EQ(run_cli("--spec " + spec + " --quiet --csv " + csv), 0);
  std::remove(spec.c_str());
  std::remove(csv.c_str());
}

TEST(CliExitStatus, BatchRejectsNonPositivePipelineDepth) {
  // Fails at option validation, before any sweep work starts.
  EXPECT_NE(run_cli("--pipeline-histories 0"), 0);
  EXPECT_NE(run_cli("--pipeline-histories -2"), 0);
}

#ifdef NEUTRAL_MAIN_BIN

/// Spawn the `neutral` driver binary, stderr captured to `stderr_file`.
int run_main_cli(const std::string& args, const std::string& stderr_file) {
  const std::string cmd = std::string(NEUTRAL_MAIN_BIN) + " " + args +
                          " > /dev/null 2> " + stderr_file;
  const int rc = std::system(cmd.c_str());
  return rc < 0 ? rc : WEXITSTATUS(rc);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

const char* const kTinyRun =
    "--problem stream --mesh-scale 0.02 --particle-scale 0.001 --timesteps 1 "
    "--threads 1 ";

TEST(CliPipelineHistories, RejectsNonPositiveDepth) {
  const std::string err = scratch("pipeline_reject.stderr");
  EXPECT_NE(run_main_cli(std::string(kTinyRun) + "--pipeline-histories 0", err),
            0);
  EXPECT_NE(
      run_main_cli(std::string(kTinyRun) + "--pipeline-histories -3", err), 0);
  EXPECT_NE(slurp(err).find("--pipeline-histories must be >= 1"),
            std::string::npos);
  std::remove(err.c_str());
}

TEST(CliPipelineHistories, WarnsAndIgnoresForOverEvents) {
  // The breadth-first scheme has no history loop to pipeline: the run must
  // still succeed, with a warning on stderr, not fail or silently differ.
  const std::string err = scratch("pipeline_warn.stderr");
  EXPECT_EQ(run_main_cli(std::string(kTinyRun) +
                             "--scheme events --pipeline-histories 4",
                         err),
            0);
  const std::string text = slurp(err);
  EXPECT_NE(text.find("--pipeline-histories"), std::string::npos);
  EXPECT_NE(text.find("ignoring"), std::string::npos);
  std::remove(err.c_str());
}

TEST(CliPipelineHistories, AcceptsDepthForOverParticles) {
  const std::string err = scratch("pipeline_ok.stderr");
  EXPECT_EQ(run_main_cli(std::string(kTinyRun) +
                             "--scheme particles --pipeline-histories 4",
                         err),
            0);
  EXPECT_EQ(slurp(err).find("warning"), std::string::npos);
  std::remove(err.c_str());
}

#endif  // NEUTRAL_MAIN_BIN

#endif  // NEUTRAL_BATCH_BIN

}  // namespace
}  // namespace neutral
