// Tests for the expected-results regression workflow (io/results_io.h).
#include <gtest/gtest.h>

#include <cstdio>

#include "io/results_io.h"
#include "util/error.h"

namespace neutral {
namespace {

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.deck = csp_deck(0.016, 1.0);
  cfg.deck.n_particles = 250;
  cfg.deck.xs.points = 1500;
  return cfg;
}

TEST(ResultsIo, SnapshotCapturesRun) {
  const SimulationConfig cfg = small_config();
  Simulation sim(cfg);
  const RunResult r = sim.run();
  const ExpectedResults e = make_expected(cfg, r);
  EXPECT_EQ(e.problem, "csp");
  EXPECT_EQ(e.particles, 250);
  EXPECT_EQ(e.facets, r.counters.facets);
  EXPECT_DOUBLE_EQ(e.tally_total, r.budget.tally_total);
}

TEST(ResultsIo, FormatRoundTripsExactly) {
  ExpectedResults e;
  e.problem = "stream";
  e.particles = 1234;
  e.timesteps = 3;
  e.seed = 99;
  e.tally_total = 1.2345678901234567e8;
  e.tally_checksum = -7.654321e-3;
  e.facets = 111;
  e.collisions = 222;
  e.censuses = 333;
  const ExpectedResults back = parse_results(format_results(e));
  EXPECT_EQ(back.problem, e.problem);
  EXPECT_EQ(back.particles, e.particles);
  EXPECT_EQ(back.timesteps, e.timesteps);
  EXPECT_EQ(back.seed, e.seed);
  EXPECT_DOUBLE_EQ(back.tally_total, e.tally_total);
  EXPECT_DOUBLE_EQ(back.tally_checksum, e.tally_checksum);
  EXPECT_EQ(back.facets, e.facets);
  EXPECT_EQ(back.collisions, e.collisions);
  EXPECT_EQ(back.censuses, e.censuses);
}

TEST(ResultsIo, ParseRejectsGarbage) {
  EXPECT_THROW(parse_results("tally_total not_a_number\n"), std::exception);
  EXPECT_THROW(parse_results("bogus_key 1\ntally_total 1\n"), Error);
  EXPECT_THROW(parse_results("problem x\n"), Error);  // missing tally
  EXPECT_THROW(parse_results("particles\ntally_total 1\n"), Error);
}

TEST(ResultsIo, FreshRunVerifiesAgainstItsOwnRecord) {
  const SimulationConfig cfg = small_config();
  Simulation a(cfg);
  const RunResult ra = a.run();
  const ExpectedResults record = make_expected(cfg, ra);

  Simulation b(cfg);
  const RunResult rb = b.run();
  const ResultsCheck check = verify_results(record, cfg, rb);
  EXPECT_TRUE(check.passed) << check.detail;
}

TEST(ResultsIo, SchemeFlipStillVerifies) {
  // Over Events must reproduce the Over Particles record: the regression
  // file pins the physics, not the execution strategy.
  const SimulationConfig op = small_config();
  Simulation a(op);
  const ExpectedResults record = make_expected(op, a.run());

  SimulationConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  oe.layout = Layout::kSoA;
  oe.tally_mode = TallyMode::kDeferredAtomic;
  Simulation b(oe);
  const RunResult rb = b.run();
  // Verify against the OP config identity fields but the OE run outputs.
  const ResultsCheck check = verify_results(record, op, rb);
  EXPECT_TRUE(check.passed) << check.detail;
}

TEST(ResultsIo, DetectsSeedDrift) {
  const SimulationConfig cfg = small_config();
  Simulation a(cfg);
  const ExpectedResults record = make_expected(cfg, a.run());

  SimulationConfig drifted = cfg;
  drifted.deck.seed = cfg.deck.seed + 1;
  Simulation b(drifted);
  const RunResult rb = b.run();
  const ResultsCheck check = verify_results(record, drifted, rb);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.detail.find("seed"), std::string::npos);
}

TEST(ResultsIo, DetectsPhysicsRegression) {
  const SimulationConfig cfg = small_config();
  Simulation a(cfg);
  const RunResult ra = a.run();
  ExpectedResults record = make_expected(cfg, ra);
  // Simulate a physics regression: the recorded tally differs.
  record.tally_total *= 1.001;
  const ResultsCheck check = verify_results(record, cfg, ra);
  EXPECT_FALSE(check.passed);
  EXPECT_NE(check.detail.find("tally total"), std::string::npos);
}

TEST(ResultsIo, SaveAndLoadDisk) {
  ExpectedResults e;
  e.problem = "scatter";
  e.tally_total = 42.0;
  const std::string path = ::testing::TempDir() + "/neutral_results_test.results";
  save_results(e, path);
  const ExpectedResults back = load_results(path);
  EXPECT_EQ(back.problem, "scatter");
  EXPECT_DOUBLE_EQ(back.tally_total, 42.0);
  std::remove(path.c_str());
  EXPECT_THROW(load_results("/nonexistent/x.results"), Error);
}

}  // namespace
}  // namespace neutral
