// Compile-only check for the non-x86 cycle-counter fallback.
//
// NEUTRAL_FORCE_PORTABLE_CYCLES is defined by CMake for this TU (and only
// this TU), routing read_cycles() through read_cycles_portable() exactly as
// a non-x86 build would.  The TU lives in an OBJECT library nothing links,
// so the forced definition can never ODR-clash with the normally-compiled
// read_cycles() elsewhere — building it IS the test: a missing <chrono> or
// a signature drift in the fallback breaks the build instead of rotting
// until someone targets POWER or ARM.
#ifndef NEUTRAL_FORCE_PORTABLE_CYCLES
#error "this TU must be compiled with NEUTRAL_FORCE_PORTABLE_CYCLES"
#endif

#include "perf/profiler.h"

namespace neutral {

std::uint64_t profiler_portable_compile_probe() {
  // Exercise the full probe path the drivers use, through the forced
  // portable branch.
  PhaseProfiler profiler(1);
  {
    ScopedPhase probe(&profiler, 0, Phase::kCollision);
  }
  return read_cycles() + profiler.report().total_visits();
}

}  // namespace neutral
