// Tests for the conservation/validation module (core/validation.h).
#include <gtest/gtest.h>

#include <vector>

#include "core/particle.h"
#include "core/validation.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// EnergyBudget
// ---------------------------------------------------------------------------

TEST(Budget, PerfectBalanceHasZeroError) {
  EnergyBudget b;
  b.initial = 100.0;
  b.released = 60.0;
  b.in_flight = 40.0;
  b.path_heating = 5.0;
  b.tally_total = 65.0;
  EXPECT_DOUBLE_EQ(b.conservation_error(), 0.0);
  EXPECT_DOUBLE_EQ(b.tally_consistency_error(), 0.0);
  EXPECT_TRUE(b.conserved());
}

TEST(Budget, LeakDetected) {
  EnergyBudget b;
  b.initial = 100.0;
  b.released = 60.0;
  b.in_flight = 30.0;  // 10 units missing
  EXPECT_NEAR(b.conservation_error(), 0.1, 1e-12);
  EXPECT_FALSE(b.conserved(1e-3));
}

TEST(Budget, TallyInconsistencyDetected) {
  EnergyBudget b;
  b.initial = 100.0;
  b.released = 100.0;
  b.tally_total = 90.0;  // lost deposits
  b.path_heating = 0.0;
  EXPECT_GT(b.tally_consistency_error(), 0.05);
  EXPECT_FALSE(b.conserved());
}

TEST(Budget, EmptyBudgetIsTriviallyConserved) {
  EnergyBudget b;
  EXPECT_TRUE(b.conserved());
}

// ---------------------------------------------------------------------------
// Bank reductions
// ---------------------------------------------------------------------------

TEST(Bank, InFlightEnergySumsAliveAndCensus) {
  std::vector<Particle> bank(3);
  bank[0].weight = 1.0;
  bank[0].energy = 10.0;
  bank[0].state = ParticleState::kAlive;
  bank[1].weight = 0.5;
  bank[1].energy = 20.0;
  bank[1].state = ParticleState::kCensus;
  bank[2].weight = 1.0;
  bank[2].energy = 1000.0;
  bank[2].state = ParticleState::kDead;  // excluded
  const AosView v(bank.data(), bank.size());
  EXPECT_DOUBLE_EQ(in_flight_energy(v), 20.0);
  EXPECT_EQ(population(v), 2);
}

TEST(Bank, EmptyBankIsZero) {
  const AosView v(nullptr, 0);
  EXPECT_DOUBLE_EQ(in_flight_energy(v), 0.0);
  EXPECT_EQ(population(v), 0);
}

// ---------------------------------------------------------------------------
// Positional checksum
// ---------------------------------------------------------------------------

TEST(Checksum, DetectsValueMovedBetweenCells) {
  std::vector<double> a(100, 0.0);
  std::vector<double> b(100, 0.0);
  a[10] = 5.0;
  b[11] = 5.0;  // same total, different placement
  EXPECT_NE(positional_checksum(a.data(), 100),
            positional_checksum(b.data(), 100));
}

TEST(Checksum, DeterministicAndSizeSensitive) {
  std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(positional_checksum(a.data(), 3),
                   positional_checksum(a.data(), 3));
  EXPECT_NE(positional_checksum(a.data(), 2),
            positional_checksum(a.data(), 3));
}

TEST(Checksum, ZeroFieldGivesZero) {
  std::vector<double> zeros(64, 0.0);
  EXPECT_DOUBLE_EQ(positional_checksum(zeros.data(), 64), 0.0);
}

TEST(Checksum, EveryCellContributes) {
  // Weights live in [0.5, 1.5): no cell is silently dropped.
  std::vector<double> field(256, 0.0);
  const double base = positional_checksum(field.data(), 256);
  for (int i = 0; i < 256; i += 17) {
    field[static_cast<std::size_t>(i)] = 1.0;
    const double with = positional_checksum(field.data(), 256);
    EXPECT_NE(with, base) << "cell " << i;
    field[static_cast<std::size_t>(i)] = 0.0;
  }
}

TEST(Checksum, LinearInField) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> doubled{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(positional_checksum(doubled.data(), 4),
              2.0 * positional_checksum(a.data(), 4), 1e-12);
}

}  // namespace
}  // namespace neutral
