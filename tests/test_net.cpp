// Tests for the TCP front-end (src/net/): frame codec strictness, loopback
// round-trips that must be bit-identical to in-process runs for every
// scheme x layout x shard x domain combination, deadline expiry under a
// QueuePolicy, malformed-frame rejection, cooperative cancellation, and
// concurrent clients sharing one world cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/domain.h"
#include "batch/engine.h"
#include "batch/shard.h"
#include "core/simulation.h"
#include "io/deck_io.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/error.h"

namespace neutral {
namespace {

using net::Fields;
using net::NeutralClient;
using net::NeutralServer;
using net::RemoteResult;
using net::ServerOptions;
using net::SubmitRequest;

ProblemDeck tiny_deck(std::int64_t particles = 400,
                      std::int32_t timesteps = 1) {
  ProblemDeck deck = csp_deck(/*mesh_scale=*/0.02, /*particle_scale=*/1.0);
  deck.n_particles = particles;
  deck.n_timesteps = timesteps;
  return deck;
}

/// A NeutralServer on an ephemeral loopback port with its serve() thread,
/// torn down (drained and joined) on scope exit.
class TestServer {
 public:
  explicit TestServer(ServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    options.verbose = false;
    server_ = std::make_unique<NeutralServer>(std::move(options));
    port_ = server_->start();
    thread_ = std::thread([this] { server_->serve(); });
  }
  ~TestServer() {
    server_->request_shutdown();
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] NeutralClient connect() const {
    return NeutralClient("127.0.0.1", port_);
  }

 private:
  std::unique_ptr<NeutralServer> server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripsPayloadsWithEscapes) {
  Fields fields{{"op", "submit"},
                {"deck", "line one\nline \"two\"\r\n\tend\\"},
                {"label", "csp/n=100"}};
  const std::string wire = net::encode_frame(fields);
  // One line: the only '\n' is the terminator.
  EXPECT_EQ(wire.find('\n'), wire.size() - 1);
  EXPECT_EQ(net::decode_frame(wire), fields);
  // Control bytes survive via \u escapes.
  Fields control{{"k", std::string("a\x01b", 3)}};
  EXPECT_EQ(net::decode_frame(net::encode_frame(control)), control);
}

TEST(Frame, RejectsMalformedInput) {
  EXPECT_THROW(net::decode_frame("not json"), Error);
  EXPECT_THROW(net::decode_frame(""), Error);
  EXPECT_THROW(net::decode_frame("{\"a\":\"b\"} trailing"), Error);
  EXPECT_THROW(net::decode_frame("{\"a\":1}"), Error);          // number
  EXPECT_THROW(net::decode_frame("{\"a\":{\"b\":\"c\"}}"), Error);  // nested
  EXPECT_THROW(net::decode_frame("{\"a\":[\"b\"]}"), Error);    // array
  EXPECT_THROW(net::decode_frame("{\"a\":\"b\",\"a\":\"c\"}"), Error);
  EXPECT_THROW(net::decode_frame("{\"a\":\"unterminated}"), Error);
  EXPECT_THROW(net::decode_frame("{\"a\":\"bad \\x escape\"}"), Error);
  EXPECT_THROW(net::decode_frame("{\"a\":\"\\ud800\"}"), Error);
  EXPECT_NO_THROW(net::decode_frame("{}"));
  EXPECT_NO_THROW(net::decode_frame("  {\"a\":\"b\"}  "));
}

// ---------------------------------------------------------------------------
// Loopback round-trips: served physics == in-process physics, bit for bit
// ---------------------------------------------------------------------------

TEST(NetServer, LoopbackDeckMatchesInProcessRunExactly) {
  TestServer server;
  NeutralClient client = server.connect();

  const ProblemDeck deck = tiny_deck(400);
  SubmitRequest request;
  request.deck_text = format_deck(deck);
  request.threads = 1;  // bit-exactness needs one OpenMP thread (atomic tally)
  request.label = "roundtrip";
  const std::uint64_t id = client.submit(request);
  const RemoteResult result = client.wait(id);
  ASSERT_EQ(result.status, "ok") << result.error;
  ASSERT_EQ(result.rows.size(), 1u);

  SimulationConfig config;
  config.deck = deck;
  config.threads = 1;
  Simulation sim(config);
  const RunResult reference = sim.run();

  EXPECT_EQ(result.rows[0].checksum, reference.tally_checksum);
  EXPECT_EQ(result.rows[0].population, reference.population);
  EXPECT_EQ(result.rows[0].events, reference.counters.total_events());
  EXPECT_EQ(result.rows[0].status, "ok");
  EXPECT_EQ(result.rows[0].label, "roundtrip");
}

TEST(NetServer, MatrixSchemesLayoutsShardsDomainsAllBitIdentical) {
  // Every scheme x layout x shard x domain combination submitted over
  // loopback must return the same checksum/population as the equivalent
  // in-process call (Simulation::run, run_sharded, run_domains).  The
  // tally mode is NAMED atomic so server-side defaulting never diverges
  // from the reference configs.
  TestServer server;
  NeutralClient client = server.connect();
  batch::BatchEngine local_engine;

  const ProblemDeck deck = tiny_deck(300, 2);
  for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      for (const std::int32_t shards : {1, 2}) {
        for (const char* domains : {"", "2x1"}) {
          SimulationConfig config;
          config.deck = deck;
          config.scheme = scheme;
          config.layout = layout;
          config.tally_mode = TallyMode::kAtomic;
          config.threads = 1;

          double want_checksum = 0.0;
          std::int64_t want_population = 0;
          if (domains[0] != '\0') {
            batch::DomainOptions opt;
            opt.rows = 2;
            opt.cols = 1;
            opt.shards = shards;
            opt.threads_per_domain = 1;
            const batch::DomainRunReport reference =
                run_domains(local_engine, config, opt);
            ASSERT_TRUE(reference.ok) << reference.error;
            want_checksum = reference.merged.tally_checksum;
            want_population = reference.merged.population;
          } else if (shards > 1) {
            batch::ShardOptions opt;
            opt.shards = shards;
            const batch::ShardedRunReport reference =
                run_sharded(local_engine, config, opt);
            ASSERT_TRUE(reference.ok) << reference.error;
            want_checksum = reference.merged.tally_checksum;
            want_population = reference.merged.population;
          } else {
            Simulation sim(config);
            const RunResult reference = sim.run();
            want_checksum = reference.tally_checksum;
            want_population = reference.population;
          }

          SubmitRequest request;
          request.deck_text = format_deck(deck);
          request.scheme = to_string(scheme);
          request.layout = to_string(layout);
          request.tally = "atomic";
          request.threads = 1;
          request.shards = shards > 1 ? shards : 0;
          request.domains = domains;
          // Streamed wait (the watch op): domain-mode events carry
          // worker = -1 and must still parse client-side.
          std::size_t events_seen = 0;
          const RemoteResult result = client.wait(
              client.submit(request),
              [&events_seen](const net::RemoteEvent&) { ++events_seen; });
          const std::string cell = std::string(to_string(scheme)) + "/" +
                                   to_string(layout) + "/shards=" +
                                   std::to_string(shards) + "/domains=" +
                                   (domains[0] ? domains : "-");
          EXPECT_GE(events_seen, 1u) << cell;
          ASSERT_EQ(result.status, "ok") << cell << ": " << result.error;
          ASSERT_EQ(result.rows.size(), 1u) << cell;
          EXPECT_EQ(result.rows[0].checksum, want_checksum) << cell;
          EXPECT_EQ(result.rows[0].population, want_population) << cell;
        }
      }
    }
  }
}

TEST(NetServer, SweepSpecExpandsServerSide) {
  TestServer server;
  NeutralClient client = server.connect();
  SubmitRequest request;
  request.spec_text =
      "deck csp\n"
      "mesh_scale 0.02\n"
      "timesteps 1\n"
      "particles 200\n"
      "threads 1\n"
      "axis particles 100 200\n"
      "axis layout aos soa\n";
  const std::uint64_t id = client.submit(request);
  std::vector<std::string> seen;
  const RemoteResult result = client.wait(
      id, [&](const net::RemoteEvent& event) { seen.push_back(event.label); });
  ASSERT_EQ(result.status, "ok") << result.error;
  ASSERT_EQ(result.rows.size(), 4u);
  // The watch op streamed one completion event per job.
  EXPECT_EQ(seen.size(), 4u);
  // Same geometry throughout: the shared cache built one world.
  const Fields status = client.status();
  EXPECT_EQ(status.at("cache_misses"), "1");
}

// ---------------------------------------------------------------------------
// Deadlines, cancellation, malformed frames, concurrency
// ---------------------------------------------------------------------------

TEST(NetServer, RunWallDeadlineTimesOutAndServerKeepsServing) {
  ServerOptions options;
  options.engine.policy.max_run_wall = std::chrono::milliseconds(60);
  TestServer server(options);
  NeutralClient client = server.connect();

  // Many timesteps: the cooperative deadline check fires at a step
  // boundary long before the run finishes.
  SubmitRequest slow;
  slow.deck_text = format_deck(tiny_deck(2000, 500));
  slow.threads = 1;
  const RemoteResult timed_out = client.wait(client.submit(slow));
  EXPECT_EQ(timed_out.status, "timed_out") << timed_out.error;
  ASSERT_EQ(timed_out.rows.size(), 1u);
  EXPECT_EQ(timed_out.rows[0].status, "timed_out");

  // The daemon shrugs it off: the next submission completes normally.
  SubmitRequest quick;
  quick.deck_text = format_deck(tiny_deck(100, 1));
  quick.threads = 1;
  const RemoteResult ok = client.wait(client.submit(quick));
  EXPECT_EQ(ok.status, "ok") << ok.error;
}

TEST(NetServer, RunWallDeadlineCancelsShardSiblings) {
  ServerOptions options;
  options.engine.workers = 1;  // siblings still queued when the first expires
  options.engine.policy.max_run_wall = std::chrono::milliseconds(60);
  TestServer server(options);
  NeutralClient client = server.connect();

  SubmitRequest request;
  request.deck_text = format_deck(tiny_deck(2000, 500));
  request.threads = 1;
  request.shards = 3;
  const RemoteResult result = client.wait(client.submit(request));
  EXPECT_EQ(result.status, "timed_out") << result.error;
  ASSERT_EQ(result.rows.size(), 1u);
  // The reduced row reports the root cause, not a cancelled sibling.
  EXPECT_EQ(result.rows[0].status, "timed_out");
  EXPECT_NE(result.rows[0].error.find("timed out"), std::string::npos);
}

TEST(NetServer, CancelStopsARunningSubmission) {
  TestServer server;
  NeutralClient client = server.connect();

  SubmitRequest slow;
  slow.deck_text = format_deck(tiny_deck(2000, 2000));
  slow.threads = 1;
  const std::uint64_t id = client.submit(slow);
  // Wait for it to actually start, then cancel mid-run.
  while (client.status(id).at("state") == "queued") {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  client.cancel(id);
  const RemoteResult result = client.wait(id);
  EXPECT_EQ(result.status, "cancelled") << result.error;

  SubmitRequest quick;
  quick.deck_text = format_deck(tiny_deck(100, 1));
  quick.threads = 1;
  EXPECT_EQ(client.wait(client.submit(quick)).status, "ok");
}

TEST(NetServer, CancelBeforeStartSkipsExecution) {
  TestServer server;
  NeutralClient client = server.connect();

  SubmitRequest slow;
  slow.deck_text = format_deck(tiny_deck(2000, 2000));
  slow.threads = 1;
  const std::uint64_t first = client.submit(slow);
  SubmitRequest queued;
  queued.deck_text = format_deck(tiny_deck(100, 1));
  queued.threads = 1;
  const std::uint64_t second = client.submit(queued);
  client.cancel(second);  // still queued behind `first`
  client.cancel(first);   // then unblock the executor quickly
  const RemoteResult result = client.wait(second);
  EXPECT_EQ(result.status, "cancelled");
  EXPECT_TRUE(result.rows.empty());  // never expanded, never ran
}

TEST(NetServer, MalformedFramesAreRejectedWithoutKillingTheServer) {
  TestServer server;

  net::TcpStream raw =
      net::TcpStream::connect("127.0.0.1", server.port());
  raw.write_all("this is not a frame\n");
  std::string line;
  ASSERT_EQ(raw.read_line(line, 1 << 20), net::ReadStatus::kLine);
  const Fields reply = net::decode_frame(line);
  EXPECT_EQ(reply.at("ok"), "0");
  EXPECT_NE(reply.at("error").find("malformed"), std::string::npos);
  // The connection is closed after a framing error...
  EXPECT_EQ(raw.read_line(line, 1 << 20), net::ReadStatus::kEof);

  // ...but well-framed semantic mistakes keep their connection, and the
  // server keeps serving new ones.
  NeutralClient client = server.connect();
  EXPECT_THROW((void)client.call(Fields{{"op", "bogus"}}), Error);
  EXPECT_THROW((void)client.call(Fields{{"id", "1"}}), Error);  // no op
  EXPECT_NO_THROW(client.ping());
}

TEST(NetServer, ConcurrentClientsShareOneWorldCache) {
  TestServer server;

  // Two clients, same geometry, different run-control knobs: correct
  // results for both, one world build between them.
  std::vector<RemoteResult> results(2);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      NeutralClient client = server.connect();
      SubmitRequest request;
      request.deck_text = format_deck(tiny_deck(c == 0 ? 200 : 400));
      request.threads = 1;
      results[static_cast<std::size_t>(c)] =
          client.wait(client.submit(request));
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(results[static_cast<std::size_t>(c)].status, "ok")
        << results[static_cast<std::size_t>(c)].error;
    SimulationConfig config;
    config.deck = tiny_deck(c == 0 ? 200 : 400);
    config.threads = 1;
    Simulation sim(config);
    EXPECT_EQ(results[static_cast<std::size_t>(c)].rows[0].checksum,
              sim.run().tally_checksum);
  }

  NeutralClient client = server.connect();
  const Fields status = client.status();
  EXPECT_EQ(status.at("cache_misses"), "1");  // one geometry, built once
  EXPECT_EQ(status.at("done"), "2");
}

TEST(NetServer, SubmitRejectsBadDecksSpecsAndKnobs) {
  TestServer server;
  NeutralClient client = server.connect();

  SubmitRequest bad_deck;
  bad_deck.deck_text = "nx not-a-number\n";
  EXPECT_THROW((void)client.submit(bad_deck), Error);

  SubmitRequest bad_spec;
  bad_spec.spec_text = "bogus_key 1\n";
  EXPECT_THROW((void)client.submit(bad_spec), Error);

  SubmitRequest bad_knob;
  bad_knob.deck_text = format_deck(tiny_deck(100));
  bad_knob.scheme = "over-quantum";
  EXPECT_THROW((void)client.submit(bad_knob), Error);

  SubmitRequest bad_grid;
  bad_grid.deck_text = format_deck(tiny_deck(100));
  bad_grid.domains = "2by2";
  EXPECT_THROW((void)client.submit(bad_grid), Error);

  // Rejections left nothing queued; a good submission still works.
  SubmitRequest good;
  good.deck_text = format_deck(tiny_deck(100));
  good.threads = 1;
  EXPECT_EQ(client.wait(client.submit(good)).status, "ok");
}

// ---------------------------------------------------------------------------
// Event-loop hardening: shutdown under churn, admission control, slow readers
// ---------------------------------------------------------------------------

TEST(NetServer, ShutdownUnderConnectChurnIsDeterministic) {
  // Regression for the detached handler-thread lifetime hazard: the old
  // front-end detached a thread per connection, so destroying the server
  // while clients were connecting raced handler threads against dead
  // server state (ASan catches the use-after-free).  The event loop owns
  // every connection, so construct/destroy under concurrent connect churn
  // must be clean every round.
  for (int round = 0; round < 6; ++round) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint16_t> port{0};
    std::vector<std::thread> churn;
    for (int t = 0; t < 4; ++t) {
      churn.emplace_back([&, t] {
        while (!stop.load()) {
          try {
            net::TcpStream raw =
                net::TcpStream::connect("127.0.0.1", port.load());
            if (t % 2 == 0) {
              raw.write_all(net::encode_frame(Fields{{"op", "ping"}}));
              std::string line;
              (void)raw.read_line(line, 1 << 16);
            }
            // else: connect and vanish without a single byte.
          } catch (const std::exception&) {
            // Refusals/resets mid-shutdown (or before start) are expected;
            // keep churning.
          }
        }
      });
    }
    {
      TestServer server;
      port.store(server.port());
      // Let the churn overlap the server's whole lifetime...
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      // ...then ~TestServer tears it down WHILE churn threads connect.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true);
    for (std::thread& t : churn) t.join();
  }
}

TEST(NetServer, MaxConnectionsRefusesWithAStructuredFrame) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer server(options);

  NeutralClient first = server.connect();
  first.ping();  // the loop has registered connection #1

  // Connection #2 is refused with a parseable frame, then closed.
  net::TcpStream second = net::TcpStream::connect("127.0.0.1", server.port());
  std::string line;
  ASSERT_EQ(second.read_line(line, 1 << 16), net::ReadStatus::kLine);
  const Fields reply = net::decode_frame(line);
  EXPECT_EQ(reply.at("ok"), "0");
  EXPECT_EQ(reply.at("refused"), "1");
  EXPECT_NE(reply.at("error").find("max connections"), std::string::npos);
  EXPECT_EQ(second.read_line(line, 1 << 16), net::ReadStatus::kEof);

  // The admitted connection is unharmed, and the freed slot is reusable.
  first.ping();
  const Fields metrics = first.metrics();
  EXPECT_EQ(metrics.at("neutral_connections_refused_total"), "1");
}

TEST(NetServer, SubmitBackpressureAnswersRefusedNotError) {
  ServerOptions options;
  options.max_pending_submissions = 1;
  TestServer server(options);
  NeutralClient client = server.connect();

  SubmitRequest slow;
  slow.deck_text = format_deck(tiny_deck(2000, 2000));
  slow.threads = 1;
  const std::uint64_t id = client.submit(slow);

  // A second submission over a raw connection sees the structured refusal
  // frame — refused=1 distinguishes "back off and retry" from "your deck
  // is broken".
  net::TcpStream raw = net::TcpStream::connect("127.0.0.1", server.port());
  raw.write_all(net::encode_frame(Fields{{"op", "submit"},
                                         {"deck", format_deck(tiny_deck(100))},
                                         {"threads", "1"}}));
  std::string line;
  ASSERT_EQ(raw.read_line(line, 1 << 20), net::ReadStatus::kLine);
  const Fields reply = net::decode_frame(line);
  EXPECT_EQ(reply.at("ok"), "0");
  EXPECT_EQ(reply.at("refused"), "1");
  EXPECT_NE(reply.at("error").find("queue full"), std::string::npos);

  // The refusal did not poison anything: cancel the hog and the same
  // connection's next submit is accepted.
  client.cancel(id);
  ASSERT_EQ(client.wait(id).status, "cancelled");
  raw.write_all(net::encode_frame(Fields{{"op", "submit"},
                                         {"deck", format_deck(tiny_deck(100))},
                                         {"threads", "1"}}));
  ASSERT_EQ(raw.read_line(line, 1 << 20), net::ReadStatus::kLine);
  EXPECT_EQ(net::decode_frame(line).at("ok"), "1");
}

TEST(NetServer, PerConnectionInflightCapRefusesOnlyTheHog) {
  ServerOptions options;
  options.max_inflight_per_connection = 1;
  TestServer server(options);

  // One raw connection so both submits share an in-flight counter.
  net::TcpStream hog = net::TcpStream::connect("127.0.0.1", server.port());
  std::string line;
  hog.write_all(net::encode_frame(Fields{{"op", "submit"},
                                         {"deck",
                                          format_deck(tiny_deck(2000, 2000))},
                                         {"threads", "1"}}));
  ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  const Fields accepted = net::decode_frame(line);
  ASSERT_EQ(accepted.at("ok"), "1");
  const std::string id = accepted.at("id");

  hog.write_all(net::encode_frame(Fields{{"op", "submit"},
                                         {"deck", format_deck(tiny_deck(100))},
                                         {"threads", "1"}}));
  ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  const Fields refused = net::decode_frame(line);
  EXPECT_EQ(refused.at("ok"), "0");
  EXPECT_EQ(refused.at("refused"), "1");
  EXPECT_NE(refused.at("error").find("in flight"), std::string::npos);

  // The cap is per connection: a different client is admitted while the
  // hog is still at its bound.
  NeutralClient other = server.connect();
  SubmitRequest quick;
  quick.deck_text = format_deck(tiny_deck(100));
  quick.threads = 1;
  EXPECT_EQ(other.wait(other.submit(quick)).status, "ok");

  // Finishing (here: cancelling) the hog's submission releases its slot.
  hog.write_all(net::encode_frame(Fields{{"op", "cancel"}, {"id", id}}));
  ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  ASSERT_EQ(net::decode_frame(line).at("ok"), "1");
  hog.write_all(
      net::encode_frame(Fields{{"op", "result"}, {"id", id}}));
  // Drain the result header + any row frames for the cancelled submission.
  ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  const Fields header = net::decode_frame(line);
  ASSERT_EQ(header.at("ok"), "1");
  for (int rows = std::stoi(header.at("rows")); rows > 0; --rows) {
    ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  }
  hog.write_all(net::encode_frame(Fields{{"op", "submit"},
                                         {"deck", format_deck(tiny_deck(100))},
                                         {"threads", "1"}}));
  ASSERT_EQ(hog.read_line(line, 1 << 20), net::ReadStatus::kLine);
  EXPECT_EQ(net::decode_frame(line).at("ok"), "1");
}

TEST(NetServer, SlowReaderIsDroppedWhileOtherClientsStayBitIdentical) {
  // Slow-reader policy: a client that submits, asks to watch, and then
  // stops reading must be disconnected once its buffered replies pass
  // max_outbound_bytes — it cannot wedge the loop or hold memory forever.
  ServerOptions options;
  options.sndbuf_bytes = 4096;          // shrink the kernel's share
  options.max_outbound_bytes = 32768;   // the policy under test
  TestServer server(options);

  // A reply far larger than everything the kernel+client can buffer with
  // a 4 KiB server send buffer: the label is echoed into the event and
  // row frames, so this submission's watch output cannot fit and MUST
  // strand >32 KiB in the server-side outbound buffer.
  net::TcpStream slow = net::TcpStream::connect("127.0.0.1", server.port());
  Fields submit{{"op", "submit"},
                {"deck", format_deck(tiny_deck(100))},
                {"threads", "1"},
                {"label", std::string(512 * 1024, 'x')}};
  slow.write_all(net::encode_frame(submit));
  std::string line;
  ASSERT_EQ(slow.read_line(line, 4u << 20), net::ReadStatus::kLine);
  const Fields accepted = net::decode_frame(line);
  ASSERT_EQ(accepted.at("ok"), "1");
  slow.write_all(net::encode_frame(
      Fields{{"op", "watch"}, {"id", accepted.at("id")}}));
  // ... and never read another byte.

  // Meanwhile a well-behaved client gets its result, bit-identical to an
  // in-process run of the same configuration.
  NeutralClient good = server.connect();
  SubmitRequest request;
  request.deck_text = format_deck(tiny_deck(400));
  request.threads = 1;
  const RemoteResult result = good.wait(good.submit(request));
  ASSERT_EQ(result.status, "ok") << result.error;
  SimulationConfig config;
  config.deck = tiny_deck(400);
  config.threads = 1;
  Simulation sim(config);
  EXPECT_EQ(result.rows[0].checksum, sim.run().tally_checksum);

  // The slow reader is gone within the bound: blank keep-alive lines
  // (skipped by the framing layer) start failing once the server has
  // closed the connection.
  bool disconnected = false;
  for (int i = 0; i < 160 && !disconnected; ++i) {
    try {
      slow.write_all("\n");
    } catch (const Error&) {
      disconnected = true;
    }
    if (!disconnected) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(disconnected) << "slow reader was never disconnected";
  const Fields metrics = good.metrics();
  EXPECT_GE(std::stoull(metrics.at("neutral_slow_reader_disconnects_total")),
            1ull);
  EXPECT_EQ(metrics.at("neutral_connections_open"), "1");  // slow one reaped
}

TEST(NetServer, MetricsOpReportsQueueCacheAndOutcomeSeries) {
  TestServer server;
  NeutralClient client = server.connect();

  // Before any work: cache series register with the engine's cache at
  // construction and read zero (queue/engine series appear on first run).
  const auto field_u64 = [](const Fields& fields, const std::string& name) {
    const auto it = fields.find(name);
    EXPECT_NE(it, fields.end()) << "missing metric field " << name;
    return it == fields.end() ? 0ull : std::stoull(it->second);
  };
  Fields before = client.metrics();
  EXPECT_EQ(before.at("ok"), "1");
  EXPECT_EQ(field_u64(before, "neutral_world_cache_misses_total"), 0u);

  SubmitRequest request;
  request.deck_text = format_deck(tiny_deck(200));
  request.threads = 1;
  ASSERT_EQ(client.wait(client.submit(request)).status, "ok");

  // After a completed submission every layer has moved: submissions,
  // queue, engine outcomes, per-event counters, world cache.
  Fields after = client.metrics();
  EXPECT_EQ(after.at("ok"), "1");
  EXPECT_EQ(field_u64(after, "neutral_submissions_total"), 1u);
  EXPECT_EQ(field_u64(after, "neutral_submissions_pending"), 0u);
  EXPECT_EQ(field_u64(after, "neutral_jobs_ok_total"), 1u);
  EXPECT_EQ(field_u64(after, "neutral_queue_pushed_total"), 1u);
  EXPECT_EQ(field_u64(after, "neutral_queue_depth"), 0u);
  EXPECT_EQ(field_u64(after, "neutral_job_wall_seconds_count"), 1u);
  EXPECT_EQ(field_u64(after, "neutral_world_cache_misses_total"), 1u);
  EXPECT_EQ(field_u64(after, "neutral_world_cache_resident_worlds"), 1u);
  EXPECT_GT(field_u64(after, "neutral_events_collisions_total") +
                field_u64(after, "neutral_events_facets_total") +
                field_u64(after, "neutral_events_censuses_total"),
            0u);

  // A second identical submission hits the cache.
  ASSERT_EQ(client.wait(client.submit(request)).status, "ok");
  Fields cached = client.metrics();
  EXPECT_EQ(field_u64(cached, "neutral_world_cache_hits_total"), 1u);
  EXPECT_EQ(field_u64(cached, "neutral_jobs_ok_total"), 2u);
}

}  // namespace
}  // namespace neutral
