// Tests for the variance-reduction machinery (§IV-E): weighted particles,
// implicit capture, cutoff terminations, and the Russian-roulette
// extension (unbiased weight-cutoff handling).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/init.h"
#include "core/simulation.h"
#include "core/step.h"
#include "xs/synthetic.h"

namespace neutral {
namespace {

/// World tuned so the weight cutoff is reachable: min_weight close to 1
/// means the first sampled absorption crosses it.
struct RouletteWorld {
  RouletteWorld(double roulette_survival, double min_weight = 0.999)
      : mesh(8, 8, 8.0, 8.0), density(mesh, 1.0e3) {
    SyntheticXsConfig cfg;
    cfg.points = 1500;
    capture = std::make_unique<CrossSectionTable>(make_capture_table(cfg));
    scatter = std::make_unique<CrossSectionTable>(make_scatter_table(cfg));
    tally = std::make_unique<EnergyTally>(mesh.num_cells(),
                                          TallyMode::kAtomic, 1);
    ctx.mesh = &mesh;
    ctx.density = &density;
    ctx.xs_capture = capture.get();
    ctx.xs_scatter = scatter.get();
    ctx.tally = tally.get();
    ctx.molar_mass_g_mol = 1.0;
    ctx.mass_number = 100.0;
    ctx.min_energy_ev = 1.0e-4;  // keep energy cutoff out of the way
    ctx.min_weight = min_weight;
    ctx.roulette_survival = roulette_survival;
    ctx.seed = 99;
  }

  /// Run one particle at 10 eV to its first collision.  `p_abs_out`
  /// reports the actual absorption probability at that energy (the
  /// synthetic capture resonances make it energy-dependent).
  EventCounters collide_once(std::uint64_t id, double* weight_out = nullptr,
                             double* p_abs_out = nullptr) {
    Particle p;
    p.x = p.y = 4.5;
    p.omega_x = 1.0;
    p.omega_y = 0.0;
    p.energy = 10.0;
    p.weight = 1.0;
    p.dt_to_census = 1.0e-7;
    p.mfp_to_collision = 1.0e-6;
    p.cellx = p.celly = 4;
    p.state = ParticleState::kAlive;
    p.id = id;
    p.rng_counter = 4;
    AosView v(&p, 1);
    FlightState fs;
    EventCounters ec;
    NoHooks hooks;
    load_flight_state(v, 0, ctx, fs, ec, hooks);
    if (p_abs_out != nullptr) *p_abs_out = fs.sigma_a / fs.sigma_t;
    advance_one_event(v, 0, ctx, fs, ec, 0, hooks);
    if (weight_out != nullptr) {
      *weight_out = p.state == ParticleState::kDead ? 0.0 : p.weight;
    }
    return ec;
  }

  StructuredMesh2D mesh;
  DensityField density;
  std::unique_ptr<CrossSectionTable> capture;
  std::unique_ptr<CrossSectionTable> scatter;
  std::unique_ptr<EnergyTally> tally;
  TransportContext ctx;
};

// ---------------------------------------------------------------------------
// Roulette off (the paper's behaviour)
// ---------------------------------------------------------------------------

TEST(RouletteOff, WeightCutoffTerminatesAndDeposits) {
  RouletteWorld w(/*roulette_survival=*/0.0);
  for (std::uint64_t id = 0; id < 5000; ++id) {
    const EventCounters ec = w.collide_once(id);
    if (ec.absorptions == 1) {
      EXPECT_EQ(ec.deaths_weight, 1u);
      EXPECT_EQ(ec.roulette_kills, 0u);
      EXPECT_EQ(ec.roulette_survivals, 0u);
      // Everything the particle had was released.
      EXPECT_NEAR(ec.released_energy, 10.0, 1e-9);
      return;
    }
  }
  FAIL() << "no absorption in 5000 trials";
}

// ---------------------------------------------------------------------------
// Roulette on
// ---------------------------------------------------------------------------

TEST(Roulette, SurvivorsCarryBoostedWeight) {
  RouletteWorld w(/*roulette_survival=*/0.8);
  bool saw_survivor = false;
  for (std::uint64_t id = 0; id < 20000 && !saw_survivor; ++id) {
    double weight = 0.0;
    double p_abs = 0.0;
    const EventCounters ec = w.collide_once(id, &weight, &p_abs);
    if (ec.roulette_survivals == 1) {
      saw_survivor = true;
      // Exactly w' = w (1 - p_abs) / survival.
      EXPECT_GT(weight, 1.0);
      EXPECT_NEAR(weight, (1.0 - p_abs) / 0.8, 1e-12);
      EXPECT_GT(ec.roulette_gained_energy, 0.0);
    }
  }
  EXPECT_TRUE(saw_survivor);
}

TEST(Roulette, KillsDoNotDeposit) {
  RouletteWorld w(/*roulette_survival=*/0.2);  // mostly kills
  for (std::uint64_t id = 0; id < 20000; ++id) {
    const EventCounters ec = w.collide_once(id);
    if (ec.roulette_kills == 1) {
      EXPECT_EQ(ec.deaths_weight, 1u);
      // Only the absorption deposit was released; the remainder was
      // removed from the game, tracked in roulette_killed_energy.
      EXPECT_LT(ec.released_energy, 1.0);
      EXPECT_GT(ec.roulette_killed_energy, 5.0);
      return;
    }
  }
  FAIL() << "no roulette kill in 20000 trials";
}

TEST(Roulette, SurvivalStatisticsMatchProbability) {
  const double p = 0.6;
  RouletteWorld w(p);
  std::uint64_t survivals = 0, kills = 0;
  for (std::uint64_t id = 0; id < 60000; ++id) {
    const EventCounters ec = w.collide_once(id);
    survivals += ec.roulette_survivals;
    kills += ec.roulette_kills;
  }
  const auto rounds = static_cast<double>(survivals + kills);
  ASSERT_GT(rounds, 50.0);  // enough absorptions sampled
  const double observed = static_cast<double>(survivals) / rounds;
  EXPECT_NEAR(observed, p, 5.0 * std::sqrt(p * (1 - p) / rounds));
}

/// Deck in which the weight cutoff genuinely fires: a 10 eV source in a
/// fully dense medium, where 1/v capture gives per-collision absorption
/// probabilities of several percent, decaying weight through min_weight
/// within a few timesteps.
ProblemDeck roulette_deck(double survival) {
  ProblemDeck d;
  d.name = "roulette";
  d.nx = d.ny = 64;
  d.width_cm = d.height_cm = 10.0;
  d.base_density_kg_m3 = 1.0e3;
  d.src_x0 = d.src_y0 = 4.5;
  d.src_x1 = d.src_y1 = 5.5;
  d.initial_energy_ev = 10.0;
  d.n_particles = 300;
  d.dt_s = 1.0e-7;
  d.n_timesteps = 3;
  d.min_energy_ev = 1.0e-5;
  d.min_weight = 0.5;
  d.roulette_survival = survival;
  d.xs.points = 1500;
  return d;
}

TEST(Roulette, ExtendedEnergyBudgetExact) {
  // Full runs with roulette active must satisfy the extended invariant
  // initial + gained - killed == released + in_flight exactly.
  SimulationConfig cfg;
  cfg.deck = roulette_deck(0.5);
  Simulation sim(cfg);
  const RunResult r = sim.run();
  EXPECT_TRUE(r.budget.conserved(1e-9))
      << "err " << r.budget.conservation_error();
  // The deck is built so roulette genuinely fires.
  EXPECT_GT(r.counters.roulette_survivals + r.counters.roulette_kills, 0u);
}

TEST(Roulette, UnbiasedAgainstUntruncatedTransport) {
  // Roulette's guarantee: the physical estimator matches the process with
  // NO weight cutoff at all, in expectation.  (A bare cutoff — roulette
  // off — truncates histories and *loses* their tail heating; that bias
  // is exactly what roulette repairs.)
  auto heating_with = [&](double min_weight, double survival,
                          std::uint64_t seed) {
    SimulationConfig cfg;
    cfg.deck = roulette_deck(survival);
    cfg.deck.min_weight = min_weight;  // 0 disables the weight cutoff
    cfg.deck.n_particles = 400;
    cfg.deck.seed = seed;
    Simulation sim(cfg);
    return sim.run().budget.path_heating;
  };
  double untruncated = 0.0, roulette = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    untruncated += heating_with(/*min_weight=*/0.0, /*survival=*/0.0, seed);
    roulette += heating_with(/*min_weight=*/0.5, /*survival=*/0.5, seed);
  }
  EXPECT_NEAR(roulette / untruncated, 1.0, 0.05);
}

TEST(Roulette, SchemesStillAgreeWithRouletteActive) {
  // The roulette draw comes from the particle's stream: Over Particles and
  // Over Events must still sample identical histories.
  SimulationConfig op;
  op.deck = roulette_deck(0.5);
  SimulationConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  oe.layout = Layout::kSoA;
  oe.tally_mode = TallyMode::kDeferredAtomic;
  Simulation a(op), b(oe);
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.counters.roulette_kills, rb.counters.roulette_kills);
  EXPECT_EQ(ra.counters.roulette_survivals, rb.counters.roulette_survivals);
  EXPECT_NEAR(ra.budget.tally_total, rb.budget.tally_total,
              1e-9 * std::fabs(ra.budget.tally_total));
}

// ---------------------------------------------------------------------------
// Deck plumbing
// ---------------------------------------------------------------------------

TEST(RouletteDeck, DefaultsOff) {
  EXPECT_DOUBLE_EQ(csp_deck(0.05, 0.001).roulette_survival, 0.0);
}

}  // namespace
}  // namespace neutral
