// Tests for the deck text format (io/deck_io.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/deck_io.h"
#include "util/error.h"

namespace neutral {
namespace {

const char* kMinimalDeck = R"(
# a comment
nx 64
ny 32
particles 1000
)";

TEST(DeckIo, ParsesMinimalDeck) {
  const ProblemDeck d = parse_deck(kMinimalDeck);
  EXPECT_EQ(d.nx, 64);
  EXPECT_EQ(d.ny, 32);
  EXPECT_EQ(d.n_particles, 1000);
  EXPECT_DOUBLE_EQ(d.dt_s, 1.0e-7);  // default preserved
}

TEST(DeckIo, ParsesFullDeck) {
  const char* text = R"(
name mytest
nx 100
ny 100
width 50.0
height 50.0
density 1e-30
region 10 10 20 20 1000.0   # dense block
region 30 30 40 40 500.0
source 0 0 5 5
energy 2e6
particles 5000
dt 2e-7
timesteps 3
seed 99
molar_mass 2.0
mass_number 12
min_energy 0.5
min_weight 1e-12
xs_points 1234
)";
  const ProblemDeck d = parse_deck(text);
  EXPECT_EQ(d.name, "mytest");
  EXPECT_DOUBLE_EQ(d.width_cm, 50.0);
  ASSERT_EQ(d.regions.size(), 2u);
  EXPECT_DOUBLE_EQ(d.regions[0].density_kg_m3, 1000.0);
  EXPECT_DOUBLE_EQ(d.regions[1].x0, 30.0);
  EXPECT_DOUBLE_EQ(d.src_x1, 5.0);
  EXPECT_DOUBLE_EQ(d.initial_energy_ev, 2e6);
  EXPECT_EQ(d.n_timesteps, 3);
  EXPECT_EQ(d.seed, 99u);
  EXPECT_DOUBLE_EQ(d.molar_mass_g_mol, 2.0);
  EXPECT_DOUBLE_EQ(d.mass_number, 12.0);
  EXPECT_DOUBLE_EQ(d.min_energy_ev, 0.5);
  EXPECT_EQ(d.xs.points, 1234);
}

TEST(DeckIo, CommentsAndBlankLinesIgnored) {
  const ProblemDeck d = parse_deck("# hi\n\nnx 8\nny 8 # inline\nparticles 1\n");
  EXPECT_EQ(d.nx, 8);
}

TEST(DeckIo, MissingMeshRejected) {
  EXPECT_THROW(parse_deck("particles 10\n"), Error);
}

TEST(DeckIo, MissingParticlesRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\n"), Error);
}

TEST(DeckIo, UnknownKeyRejectedWithLineNumber) {
  try {
    parse_deck("nx 8\nny 8\nparticles 1\nbogus 1\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(DeckIo, WrongArityRejected) {
  EXPECT_THROW(parse_deck("nx\n"), Error);
  EXPECT_THROW(parse_deck("region 1 2 3\n"), Error);
  EXPECT_THROW(parse_deck("source 1 2 3 4 5\n"), Error);
}

TEST(DeckIo, MalformedNumbersRejected) {
  EXPECT_THROW(parse_deck("nx abc\nny 8\nparticles 1\n"), Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ndt fast\n"), Error);
}

TEST(DeckIo, InvertedRectanglesRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\nregion 5 5 1 1 10\n"),
               Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\nsource 5 5 1 1\n"), Error);
}

TEST(DeckIo, NonPositiveRunParamsRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ndt -1\n"), Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ntimesteps 0\n"), Error);
}

TEST(DeckIo, FormatRoundTripsFactoryDeck) {
  const ProblemDeck original = csp_deck(0.05, 0.001);
  const ProblemDeck reparsed = parse_deck(format_deck(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.nx, original.nx);
  EXPECT_EQ(reparsed.n_particles, original.n_particles);
  EXPECT_DOUBLE_EQ(reparsed.base_density_kg_m3, original.base_density_kg_m3);
  ASSERT_EQ(reparsed.regions.size(), original.regions.size());
  EXPECT_DOUBLE_EQ(reparsed.regions[0].density_kg_m3,
                   original.regions[0].density_kg_m3);
  EXPECT_DOUBLE_EQ(reparsed.src_x1, original.src_x1);
  EXPECT_EQ(reparsed.seed, original.seed);
  EXPECT_DOUBLE_EQ(reparsed.min_weight, original.min_weight);
}

TEST(DeckIo, SaveAndLoadFromDisk) {
  const ProblemDeck original = scatter_deck(0.05, 0.0001);
  const std::string path = ::testing::TempDir() + "/neutral_deck_test.params";
  save_deck(original, path);
  const ProblemDeck loaded = load_deck(path);
  EXPECT_EQ(loaded.name, "scatter");
  EXPECT_EQ(loaded.nx, original.nx);
  EXPECT_DOUBLE_EQ(loaded.dt_s, original.dt_s);
  std::remove(path.c_str());
}

TEST(DeckIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_deck("/nonexistent/path/deck.params"), Error);
}

// ---------------------------------------------------------------------------
// Property tests: write -> read -> write is idempotent over randomized
// decks, and malformed inputs always produce Error, never a crash.
// ---------------------------------------------------------------------------

/// splitmix64: a tiny deterministic generator for the property loops.
class PropertyRng {
 public:
  explicit PropertyRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_u64() %
                                          static_cast<std::uint64_t>(
                                              hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

ProblemDeck random_deck(PropertyRng& rng) {
  ProblemDeck d;
  d.name = "prop" + std::to_string(rng.range(0, 999));
  d.nx = static_cast<std::int32_t>(rng.range(1, 500));
  d.ny = static_cast<std::int32_t>(rng.range(1, 500));
  d.width_cm = rng.uniform(1.0, 500.0);
  d.height_cm = rng.uniform(1.0, 500.0);
  d.base_density_kg_m3 = rng.uniform(0.0, 2000.0);
  const std::int64_t n_regions = rng.range(0, 3);
  for (std::int64_t r = 0; r < n_regions; ++r) {
    RegionSpec region;
    region.x0 = rng.uniform(0.0, d.width_cm / 2);
    region.y0 = rng.uniform(0.0, d.height_cm / 2);
    region.x1 = region.x0 + rng.uniform(0.0, d.width_cm / 2);
    region.y1 = region.y0 + rng.uniform(0.0, d.height_cm / 2);
    region.density_kg_m3 = rng.uniform(0.0, 5000.0);
    d.regions.push_back(region);
  }
  d.src_x0 = rng.uniform(0.0, d.width_cm / 2);
  d.src_y0 = rng.uniform(0.0, d.height_cm / 2);
  d.src_x1 = d.src_x0 + rng.uniform(0.0, d.width_cm / 2);
  d.src_y1 = d.src_y0 + rng.uniform(0.0, d.height_cm / 2);
  d.initial_energy_ev = rng.uniform(1.0e3, 1.0e7);
  d.n_particles = rng.range(1, 1000000);
  d.dt_s = rng.uniform(1.0e-9, 1.0e-6);
  d.n_timesteps = static_cast<std::int32_t>(rng.range(1, 20));
  d.seed = rng.next_u64() >> 1;  // parse_int round-trips signed values
  d.molar_mass_g_mol = rng.uniform(0.1, 300.0);
  d.mass_number = rng.uniform(1.0, 250.0);
  d.min_energy_ev = rng.uniform(0.1, 10.0);
  d.min_weight = rng.uniform(1.0e-12, 1.0e-6);
  if (rng.range(0, 1) == 1) d.roulette_survival = rng.uniform(0.01, 0.99);
  d.xs.points = static_cast<std::int32_t>(rng.range(2, 5000));
  return d;
}

TEST(DeckIoProperty, WriteReadWriteIsIdempotent) {
  PropertyRng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const ProblemDeck original = random_deck(rng);
    const std::string first = format_deck(original);
    const ProblemDeck reparsed = parse_deck(first);
    const std::string second = format_deck(reparsed);
    // The 17-significant-digit format round-trips every double exactly,
    // so one write->read cycle reaches the fixed point immediately.
    ASSERT_EQ(first, second) << "iteration " << iter;
    ASSERT_EQ(second, format_deck(parse_deck(second)));
  }
}

TEST(DeckIoProperty, MalformedDecksErrorInsteadOfCrashing) {
  // Corrupt a valid deck line by line: truncations, swapped tokens,
  // garbage values.  Every mutation must either parse (if the damage is
  // benign, e.g. hitting a comment) or throw neutral::Error — anything
  // else (crash, uncaught exception type) fails the test harness.
  PropertyRng rng(7);
  const std::string valid = format_deck(random_deck(rng));
  const std::string garbage[] = {
      "nan", "1e999", "--3", "0x12", "", "particles", "\t", "%f", "1 2 3"};
  for (int iter = 0; iter < 300; ++iter) {
    std::string text = valid;
    const std::size_t cut = static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.range(0, 3)) {
      case 0:  // truncate mid-token
        text.resize(cut);
        break;
      case 1:  // splice garbage at a random point
        text.insert(cut, garbage[rng.range(0, 8)]);
        break;
      case 2:  // flip a character
        text[cut] = static_cast<char>('!' + (rng.next_u64() % 90));
        break;
      default:  // duplicate a prefix (repeated/conflicting keys)
        // Two appends, not `text += "\n" + text.substr(...)`: gcc 12's
        // -Wrestrict misfires on that operator+ chain (GCC PR105329).
        text += '\n';
        text += text.substr(0, cut);
        break;
    }
    try {
      (void)parse_deck(text);
    } catch (const Error&) {
      // the contract: malformed decks report, never crash
    }
  }
}

TEST(DeckIoProperty, StructuredFieldsSurviveTheRoundTrip) {
  PropertyRng rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    const ProblemDeck original = random_deck(rng);
    const ProblemDeck reparsed = parse_deck(format_deck(original));
    ASSERT_EQ(reparsed.regions.size(), original.regions.size());
    for (std::size_t r = 0; r < original.regions.size(); ++r) {
      EXPECT_EQ(reparsed.regions[r].x0, original.regions[r].x0);
      EXPECT_EQ(reparsed.regions[r].y1, original.regions[r].y1);
      EXPECT_EQ(reparsed.regions[r].density_kg_m3,
                original.regions[r].density_kg_m3);
    }
    EXPECT_EQ(reparsed.seed, original.seed);
    EXPECT_EQ(reparsed.n_particles, original.n_particles);
    EXPECT_EQ(reparsed.dt_s, original.dt_s);
    EXPECT_EQ(reparsed.roulette_survival, original.roulette_survival);
  }
}

}  // namespace
}  // namespace neutral
