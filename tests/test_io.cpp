// Tests for the deck text format (io/deck_io.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/deck_io.h"
#include "util/error.h"

namespace neutral {
namespace {

const char* kMinimalDeck = R"(
# a comment
nx 64
ny 32
particles 1000
)";

TEST(DeckIo, ParsesMinimalDeck) {
  const ProblemDeck d = parse_deck(kMinimalDeck);
  EXPECT_EQ(d.nx, 64);
  EXPECT_EQ(d.ny, 32);
  EXPECT_EQ(d.n_particles, 1000);
  EXPECT_DOUBLE_EQ(d.dt_s, 1.0e-7);  // default preserved
}

TEST(DeckIo, ParsesFullDeck) {
  const char* text = R"(
name mytest
nx 100
ny 100
width 50.0
height 50.0
density 1e-30
region 10 10 20 20 1000.0   # dense block
region 30 30 40 40 500.0
source 0 0 5 5
energy 2e6
particles 5000
dt 2e-7
timesteps 3
seed 99
molar_mass 2.0
mass_number 12
min_energy 0.5
min_weight 1e-12
xs_points 1234
)";
  const ProblemDeck d = parse_deck(text);
  EXPECT_EQ(d.name, "mytest");
  EXPECT_DOUBLE_EQ(d.width_cm, 50.0);
  ASSERT_EQ(d.regions.size(), 2u);
  EXPECT_DOUBLE_EQ(d.regions[0].density_kg_m3, 1000.0);
  EXPECT_DOUBLE_EQ(d.regions[1].x0, 30.0);
  EXPECT_DOUBLE_EQ(d.src_x1, 5.0);
  EXPECT_DOUBLE_EQ(d.initial_energy_ev, 2e6);
  EXPECT_EQ(d.n_timesteps, 3);
  EXPECT_EQ(d.seed, 99u);
  EXPECT_DOUBLE_EQ(d.molar_mass_g_mol, 2.0);
  EXPECT_DOUBLE_EQ(d.mass_number, 12.0);
  EXPECT_DOUBLE_EQ(d.min_energy_ev, 0.5);
  EXPECT_EQ(d.xs.points, 1234);
}

TEST(DeckIo, CommentsAndBlankLinesIgnored) {
  const ProblemDeck d = parse_deck("# hi\n\nnx 8\nny 8 # inline\nparticles 1\n");
  EXPECT_EQ(d.nx, 8);
}

TEST(DeckIo, MissingMeshRejected) {
  EXPECT_THROW(parse_deck("particles 10\n"), Error);
}

TEST(DeckIo, MissingParticlesRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\n"), Error);
}

TEST(DeckIo, UnknownKeyRejectedWithLineNumber) {
  try {
    parse_deck("nx 8\nny 8\nparticles 1\nbogus 1\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(DeckIo, WrongArityRejected) {
  EXPECT_THROW(parse_deck("nx\n"), Error);
  EXPECT_THROW(parse_deck("region 1 2 3\n"), Error);
  EXPECT_THROW(parse_deck("source 1 2 3 4 5\n"), Error);
}

TEST(DeckIo, MalformedNumbersRejected) {
  EXPECT_THROW(parse_deck("nx abc\nny 8\nparticles 1\n"), Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ndt fast\n"), Error);
}

TEST(DeckIo, InvertedRectanglesRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\nregion 5 5 1 1 10\n"),
               Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\nsource 5 5 1 1\n"), Error);
}

TEST(DeckIo, NonPositiveRunParamsRejected) {
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ndt -1\n"), Error);
  EXPECT_THROW(parse_deck("nx 8\nny 8\nparticles 1\ntimesteps 0\n"), Error);
}

TEST(DeckIo, FormatRoundTripsFactoryDeck) {
  const ProblemDeck original = csp_deck(0.05, 0.001);
  const ProblemDeck reparsed = parse_deck(format_deck(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.nx, original.nx);
  EXPECT_EQ(reparsed.n_particles, original.n_particles);
  EXPECT_DOUBLE_EQ(reparsed.base_density_kg_m3, original.base_density_kg_m3);
  ASSERT_EQ(reparsed.regions.size(), original.regions.size());
  EXPECT_DOUBLE_EQ(reparsed.regions[0].density_kg_m3,
                   original.regions[0].density_kg_m3);
  EXPECT_DOUBLE_EQ(reparsed.src_x1, original.src_x1);
  EXPECT_EQ(reparsed.seed, original.seed);
  EXPECT_DOUBLE_EQ(reparsed.min_weight, original.min_weight);
}

TEST(DeckIo, SaveAndLoadFromDisk) {
  const ProblemDeck original = scatter_deck(0.05, 0.0001);
  const std::string path = ::testing::TempDir() + "/neutral_deck_test.params";
  save_deck(original, path);
  const ProblemDeck loaded = load_deck(path);
  EXPECT_EQ(loaded.name, "scatter");
  EXPECT_EQ(loaded.nx, original.nx);
  EXPECT_DOUBLE_EQ(loaded.dt_s, original.dt_s);
  std::remove(path.c_str());
}

TEST(DeckIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_deck("/nonexistent/path/deck.params"), Error);
}

}  // namespace
}  // namespace neutral
