// Tests for the observability layer (src/obs/): metrics primitives under
// real concurrency, the JSON writer/parser pair, trace-log lines, the
// Prometheus exporter over a real loopback socket, the bench-record schema
// check, and the no-perturbation contract — profiling a golden deck must
// not move its checksum by a single bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulation.h"
#include "io/deck_io.h"
#include "net/socket.h"
#include "obs/bench_record.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/profiler.h"
#include "util/error.h"

namespace neutral {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(Counter, ConcurrentIncrementsAreExact) {
  // The headline contract: N threads x M increments == N*M, no lost
  // updates across the padded shards.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddN) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add(3);
  counter.add();
  EXPECT_EQ(counter.value(), 4u);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(42);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 40);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  // bounds = 1, 2, 4 (+Inf overflow).  A value exactly on a bound bins
  // into that bucket (Prometheus `le` semantics).
  Histogram hist(Histogram::Options{1.0, 3});
  ASSERT_EQ(hist.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(hist.bucket_of(0.5), 0u);
  EXPECT_EQ(hist.bucket_of(1.0), 0u);
  EXPECT_EQ(hist.bucket_of(1.001), 1u);
  EXPECT_EQ(hist.bucket_of(2.0), 1u);
  EXPECT_EQ(hist.bucket_of(4.0), 2u);
  EXPECT_EQ(hist.bucket_of(4.001), 3u);  // +Inf

  hist.observe(0.5);
  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(4.0);
  hist.observe(100.0);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 107.5);
  EXPECT_EQ(hist.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram hist(Histogram::Options{1.0, 4});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>(i % 8));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t in_buckets = 0;
  for (const std::uint64_t b : hist.bucket_counts()) in_buckets += b;
  EXPECT_EQ(in_buckets, hist.count());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, LookupIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.counter("neutral_test_total", "help text");
  Counter& b = registry.counter("neutral_test_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("neutral_test_gauge");
  Gauge& g2 = registry.gauge("neutral_test_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.histogram("neutral_test_seconds");
  Histogram& h2 = registry.histogram("neutral_test_seconds");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("neutral_test_total");
  EXPECT_THROW(registry.gauge("neutral_test_total"), Error);
  EXPECT_THROW(registry.histogram("neutral_test_total"), Error);
}

TEST(MetricsRegistry, SnapshotUnderLoadNeverTears) {
  // Writers hammer a counter and a histogram while the main thread
  // snapshots: every snapshot must be internally sane (counter monotone,
  // bucket total never exceeding the committed observation count's final
  // value) — ASan/TSan-class failures surface as crashes under the
  // sanitizer CI job.
  MetricsRegistry registry;
  Counter& counter = registry.counter("neutral_load_total");
  Histogram& hist = registry.histogram("neutral_load_seconds");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(1e-4 * static_cast<double>(i % 1000));
      }
    });
  }
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  std::uint64_t last_count = 0;
  for (int s = 0; s < 200; ++s) {
    const MetricsSnapshot snap = registry.snapshot();
    const obs::MetricValue* c = snap.find("neutral_load_total");
    ASSERT_NE(c, nullptr);
    EXPECT_GE(c->counter, last_count);  // monotone across snapshots
    EXPECT_LE(c->counter, kTotal);
    last_count = c->counter;
    const obs::MetricValue* h = snap.find("neutral_load_seconds");
    ASSERT_NE(h, nullptr);
    EXPECT_LE(h->histogram.count, kTotal);
    std::uint64_t in_buckets = 0;
    for (const std::uint64_t b : h->histogram.buckets) in_buckets += b;
    EXPECT_LE(in_buckets, kTotal);
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.find("neutral_load_total")->counter, kTotal);
  EXPECT_EQ(final_snap.find("neutral_load_seconds")->histogram.count, kTotal);
}

TEST(MetricsSnapshot, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("neutral_jobs_total", "jobs run").add(3);
  registry.gauge("neutral_depth", "queue depth").set(-2);
  Histogram& hist =
      registry.histogram("neutral_wait_seconds", "waits",
                         Histogram::Options{1.0, 2});  // bounds 1, 2
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(10.0);
  const std::string text = registry.snapshot().prometheus_text();
  EXPECT_NE(text.find("# HELP neutral_jobs_total jobs run"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE neutral_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("neutral_jobs_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE neutral_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("neutral_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE neutral_wait_seconds histogram"),
            std::string::npos);
  // Cumulative `le` buckets: 1 at le="1", 2 at le="2", 3 at +Inf.
  EXPECT_NE(text.find("neutral_wait_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("neutral_wait_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("neutral_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("neutral_wait_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("neutral_wait_seconds_sum 12"), std::string::npos);
}

TEST(MetricsSnapshot, FlatRendering) {
  MetricsRegistry registry;
  registry.counter("neutral_a_total").add(7);
  registry.gauge("neutral_b").set(9);
  registry.histogram("neutral_c_seconds").observe(2.0);
  const auto flat = registry.snapshot().flat();
  const auto get = [&flat](const std::string& name) -> std::string {
    for (const auto& [key, value] : flat) {
      if (key == name) return value;
    }
    return "<missing>";
  };
  EXPECT_EQ(get("neutral_a_total"), "7");
  EXPECT_EQ(get("neutral_b"), "9");
  EXPECT_EQ(get("neutral_c_seconds_count"), "1");
  EXPECT_EQ(get("neutral_c_seconds_sum"), "2");
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, EscapeAndNumber) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_number(1.5), "1.5");
  EXPECT_EQ(obs::json_number(0.0), "0");
}

TEST(Json, ParseRoundTrip) {
  const obs::JsonValue doc = obs::parse_json(
      R"({"s":"aA\nb","n":-1.5e2,"t":true,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  ASSERT_TRUE(doc.is(obs::JsonValue::Type::kObject));
  EXPECT_EQ(doc.find("s")->string, "aA\nb");
  EXPECT_DOUBLE_EQ(doc.find("n")->number, -150.0);
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_TRUE(doc.find("z")->is(obs::JsonValue::Type::kNull));
  ASSERT_EQ(doc.find("arr")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("arr")->array[2].number, 3.0);
  EXPECT_EQ(doc.find("obj")->find("k")->string, "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, MalformedInputThrowsWithPosition) {
  EXPECT_THROW(obs::parse_json("{"), Error);
  EXPECT_THROW(obs::parse_json("[1,]"), Error);
  EXPECT_THROW(obs::parse_json("{} trailing"), Error);
  try {
    obs::parse_json("{\"a\": nope}");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

TEST(TraceLog, LinesAreSelfContainedJson) {
  const std::string path = "test_obs_trace.jsonl";
  {
    obs::TraceLog trace(path);
    obs::TraceEvent submitted;
    submitted.event = "submitted";
    submitted.job_id = 7;
    submitted.label = "deck \"a\"";
    trace.record(submitted);
    obs::TraceEvent completed;
    completed.event = "completed";
    completed.job_id = 7;
    completed.group = 2;
    completed.worker = 3;
    completed.queue_wait_s = 0.25;
    completed.run_wall_s = 1.5;
    trace.record(completed);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<obs::JsonValue> lines;
  while (std::getline(in, line)) lines.push_back(obs::parse_json(line));
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 2u);

  EXPECT_EQ(lines[0].find("event")->string, "submitted");
  EXPECT_DOUBLE_EQ(lines[0].find("job")->number, 7.0);
  EXPECT_EQ(lines[0].find("label")->string, "deck \"a\"");
  // Unset fields are omitted, not emitted as sentinels.
  EXPECT_EQ(lines[0].find("worker"), nullptr);
  EXPECT_EQ(lines[0].find("queue_wait_s"), nullptr);
  ASSERT_NE(lines[0].find("ts_ns"), nullptr);

  EXPECT_EQ(lines[1].find("event")->string, "completed");
  EXPECT_DOUBLE_EQ(lines[1].find("group")->number, 2.0);
  EXPECT_DOUBLE_EQ(lines[1].find("worker")->number, 3.0);
  EXPECT_DOUBLE_EQ(lines[1].find("queue_wait_s")->number, 0.25);
  EXPECT_DOUBLE_EQ(lines[1].find("run_wall_s")->number, 1.5);
  // Timestamps are monotonic within one log.
  EXPECT_GE(lines[1].find("ts_ns")->number, lines[0].find("ts_ns")->number);
}

// ---------------------------------------------------------------------------
// MetricsExporter (real loopback HTTP)
// ---------------------------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& request) {
  net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
  stream.set_read_timeout(std::chrono::milliseconds(5000));
  stream.write_all(request);
  std::string response;
  std::string line;
  while (stream.read_line(line, 1u << 20) == net::ReadStatus::kLine) {
    response += line;
    response += "\n";
  }
  return response;
}

TEST(MetricsExporter, ServesPrometheusTextOverHttp) {
  MetricsRegistry registry;
  registry.counter("neutral_scraped_total", "scrapes").add(5);
  obs::MetricsExporter exporter(&registry, "127.0.0.1", 0);
  const std::uint16_t port = exporter.start();
  ASSERT_GT(port, 0);

  const std::string ok =
      http_get(port, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("neutral_scraped_total 5"), std::string::npos);

  const std::string missing =
      http_get(port, "GET /bogus HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string wrong_method =
      http_get(port, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(wrong_method.find("405"), std::string::npos);

  exporter.stop();
  exporter.stop();  // idempotent
}

TEST(MetricsExporter, OversizedRequestsGet413And431NotUnboundedReads) {
  // Regression for the unbounded-read bug: a request line or header block
  // longer than the 8 KiB cap used to be buffered without limit.  Now the
  // request line answers 413 and the header block 431, and the exporter
  // keeps serving afterwards.
  MetricsRegistry registry;
  registry.counter("neutral_scraped_total", "scrapes").add(1);
  obs::MetricsExporter exporter(&registry, "127.0.0.1", 0);
  const std::uint16_t port = exporter.start();

  // The server answers and then closes with part of our oversized request
  // still unread, which surfaces client-side as a reset once the status
  // line is through — keep whatever arrived before the reset.
  const auto lossy_get = [port](const std::string& request) {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    stream.set_read_timeout(std::chrono::milliseconds(5000));
    std::string response;
    try {
      stream.write_all(request);
      std::string line;
      while (stream.read_line(line, 1u << 20) == net::ReadStatus::kLine) {
        response += line;
        response += "\n";
      }
    } catch (const Error&) {
    }
    return response;
  };

  const std::string long_line =
      "GET /" + std::string(16 * 1024, 'a') + " HTTP/1.0\r\n\r\n";
  const std::string too_long = lossy_get(long_line);
  EXPECT_NE(too_long.find("413 Payload Too Large"), std::string::npos);

  const std::string big_header =
      "GET /metrics HTTP/1.0\r\nX-Junk: " + std::string(16 * 1024, 'b') +
      "\r\n\r\n";
  const std::string oversized_header = lossy_get(big_header);
  EXPECT_NE(oversized_header.find("431 Request Header Fields Too Large"),
            std::string::npos);

  std::string many_headers = "GET /metrics HTTP/1.0\r\n";
  for (int i = 0; i < 200; ++i) {
    many_headers += "X-H" + std::to_string(i) + ": v\r\n";
  }
  many_headers += "\r\n";
  const std::string endless = lossy_get(many_headers);
  EXPECT_NE(endless.find("431 Request Header Fields Too Large"),
            std::string::npos);

  // None of that wedged the exporter: a clean scrape still works.
  const std::string ok =
      http_get(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("neutral_scraped_total 1"), std::string::npos);
  exporter.stop();
}

// ---------------------------------------------------------------------------
// Bench record schema
// ---------------------------------------------------------------------------

obs::BenchDocument sample_document() {
  obs::BenchDocument doc;
  doc.cpu_model = "test cpu";
  doc.logical_cpus = 4;
  doc.openmp_max_threads = 4;
  doc.threads = 1;
  doc.repeats = 2;
  obs::BenchResult result;
  result.deck = "golden_csp";
  result.scheme = "particles";
  result.layout = "aos";
  result.particles = 400;
  result.timesteps = 2;
  result.events = 12345;
  result.seconds = 0.5;
  result.events_per_second = 24690.0;
  result.checksum = -3.25;
  result.population = 100;
  result.peak_mesh_bytes = 1 << 20;
  result.peak_bank_bytes = 1 << 16;
  obs::BenchPhase phase;
  phase.phase = "collision";
  phase.ns_per_event = 18.0;
  phase.fraction = 0.5;
  result.phases.push_back(phase);
  doc.results.push_back(result);
  return doc;
}

TEST(BenchRecord, GeneratedDocumentValidates) {
  const std::string json = sample_document().to_json();
  const std::vector<std::string> problems =
      obs::validate_bench_record(json);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  // And the emitted values survive the round trip.
  const obs::JsonValue doc = obs::parse_json(json);
  EXPECT_DOUBLE_EQ(
      doc.find("results")->array[0].find("checksum")->number, -3.25);
  EXPECT_EQ(doc.find("schema")->string, obs::kBenchTransportSchema);
}

TEST(BenchRecord, V1RecordsStillValidate) {
  // The PR-6 era baseline predates the run-config and repeat-stat fields;
  // it must keep validating so bench_compare can diff the perf trajectory
  // across the repo's own history.
  const std::string v1 = R"({
    "schema": "neutral.bench_transport/v1",
    "host": {"cpu_model": "test", "logical_cpus": 1,
             "openmp_max_threads": 1},
    "run": {"threads": 1, "repeats": 1},
    "results": [
      {"deck": "golden_stream", "scheme": "particles", "layout": "aos",
       "particles": 100, "timesteps": 2, "events": 1000, "seconds": 0.5,
       "events_per_second": 2000.0, "checksum": 1.5, "population": 100,
       "peak_mesh_bytes": 1024, "peak_bank_bytes": 1024, "phases": []}
    ]
  })";
  const std::vector<std::string> problems = obs::validate_bench_record(v1);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(BenchRecord, CorruptionIsDetected) {
  EXPECT_FALSE(obs::validate_bench_record("not json at all").empty());

  obs::BenchDocument wrong_schema = sample_document();
  wrong_schema.schema = "something/else";
  EXPECT_FALSE(obs::validate_bench_record(wrong_schema.to_json()).empty());

  obs::BenchDocument no_results = sample_document();
  no_results.results.clear();
  EXPECT_FALSE(obs::validate_bench_record(no_results.to_json()).empty());

  obs::BenchDocument bad_phase = sample_document();
  bad_phase.results[0].phases[0].phase.clear();
  EXPECT_FALSE(obs::validate_bench_record(bad_phase.to_json()).empty());

  // Field deletion at the text level (a truncated artifact).
  std::string json = sample_document().to_json();
  const std::string needle = "\"events_per_second\":";
  const std::size_t at = json.find(needle);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, needle.size(), "\"events_per_sec\":");
  EXPECT_FALSE(obs::validate_bench_record(json).empty());
}

// ---------------------------------------------------------------------------
// Profiler satellite: portable cycle source + grind table
// ---------------------------------------------------------------------------

TEST(Profiler, PortableCycleSourceAdvances) {
  const std::uint64_t a = read_cycles_portable();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const std::uint64_t b = read_cycles_portable();
  EXPECT_GT(b, a);
}

TEST(Profiler, GrindTableFormatsReport) {
  PhaseProfiler::Report empty;
  EXPECT_NE(format_grind_table(empty, 2.0).find("no phase probes"),
            std::string::npos);

  PhaseProfiler profiler(2);
  profiler.add(0, Phase::kCollision, 3600);
  profiler.add(0, Phase::kCollision, 3600);
  profiler.add(1, Phase::kFacet, 600);
  const std::string table = format_grind_table(profiler.report(), 2.0);
  EXPECT_NE(table.find("§VI-A"), std::string::npos);
  EXPECT_NE(table.find("collision"), std::string::npos);
  EXPECT_NE(table.find("facet"), std::string::npos);
  // 3600 cycles/visit at 2 GHz = 1800 ns/visit.
  EXPECT_NE(table.find("1800.0"), std::string::npos);
  // Zero-visit phases are skipped.
  EXPECT_EQ(table.find("census"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The no-perturbation contract
// ---------------------------------------------------------------------------

TEST(Profiler, ProfilingNeverMovesGoldenChecksums) {
  // Acceptance criterion: with profiling enabled, golden-deck checksums
  // stay bit-identical — probes read the TSC and nothing else.
  SimulationConfig config;
  config.deck = load_deck(std::string(NEUTRAL_GOLDEN_DIR) +
                          "/golden_csp.params");
  config.threads = 1;

  config.profile = false;
  Simulation plain(config);
  const RunResult baseline = plain.run();
  EXPECT_EQ(baseline.phases.total_visits(), 0u);

  config.profile = true;
  Simulation profiled(config);
  const RunResult observed = profiled.run();

  EXPECT_EQ(baseline.tally_checksum, observed.tally_checksum);
  EXPECT_EQ(baseline.population, observed.population);
  EXPECT_EQ(baseline.counters.total_events(),
            observed.counters.total_events());
  // And the profiled run actually collected phase data.
  EXPECT_GT(observed.phases.total_visits(), 0u);
}

}  // namespace
}  // namespace neutral
