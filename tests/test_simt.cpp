// Tests for the machine-model simulator (simt/): cache model, device
// presets, physics fidelity (simulator == native), and the qualitative
// architecture relationships the paper reports (Figs 9-14).
#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.h"
#include "simt/cache.h"
#include "simt/device.h"
#include "simt/transport_sim.h"

namespace neutral::simt {
namespace {

// ---------------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------------

TEST(Cache, ColdMissThenHit) {
  DirectMappedCache c(1 << 16, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
}

TEST(Cache, ConflictEviction) {
  DirectMappedCache c(/*capacity=*/128, /*line=*/64);  // 2 lines
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));  // maps onto slot 0 -> evicts
  EXPECT_FALSE(c.access(0));    // miss again
}

TEST(Cache, HitRateTracksAccesses) {
  DirectMappedCache c(1 << 16, 64);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
  c.reset();
  EXPECT_EQ(c.probes(), 0u);
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, CapacityRoundsToPowerOfTwoLines) {
  DirectMappedCache c(100 * 64, 64);  // 100 lines -> 64 lines
  // Distinct lines beyond capacity evict: address space walk misses.
  int misses = 0;
  for (int i = 0; i < 128; ++i) {
    if (!c.access(static_cast<std::uint64_t>(i) * 64)) ++misses;
  }
  EXPECT_EQ(misses, 128);  // cold pass all miss
  misses = 0;
  for (int i = 0; i < 128; ++i) {
    if (!c.access(static_cast<std::uint64_t>(i) * 64)) ++misses;
  }
  EXPECT_EQ(misses, 128);  // 64-line cache cannot hold 128 lines
}

TEST(Cache, RegionsDoNotAlias) {
  const auto a = make_address(Region::kDensity, 0);
  const auto b = make_address(Region::kTally, 0);
  EXPECT_NE(a, b);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(DirectMappedCache(0, 64), Error);
}

// ---------------------------------------------------------------------------
// Device presets
// ---------------------------------------------------------------------------

TEST(Devices, PresetsAreSane) {
  std::int32_t n = 0;
  const DeviceModel* devices = all_devices(&n);
  ASSERT_EQ(n, 6);
  for (std::int32_t i = 0; i < n; ++i) {
    const DeviceModel& d = devices[i];
    EXPECT_GT(d.compute_units, 0) << d.name;
    EXPECT_GT(d.clock_ghz, 0.0) << d.name;
    EXPECT_GT(d.memory.dram_bandwidth_gbps, 0.0) << d.name;
    EXPECT_GT(d.memory.dram_latency_ns, d.memory.cache_latency_ns) << d.name;
  }
}

TEST(Devices, OccupancyFollowsRegisterPressure) {
  const DeviceModel gpu = k20x();
  // 65536 regs / (102 regs x 32 lanes) = 20 warps.
  EXPECT_EQ(gpu.occupancy(102), 20);
  // 64 regs -> 32 warps: the §VI-H capping experiment.
  EXPECT_EQ(gpu.occupancy(64), 32);
  EXPECT_GT(gpu.occupancy(64), gpu.occupancy(102));
  // Unconstrained devices always report max contexts.
  EXPECT_EQ(broadwell_2699v4_dual().occupancy(200),
            broadwell_2699v4_dual().max_contexts);
}

TEST(Devices, McdramTradesLatencyForBandwidth) {
  const DeviceModel ddr = knl_7210_ddr();
  const DeviceModel mcdram = knl_7210_mcdram();
  EXPECT_GT(mcdram.memory.dram_bandwidth_gbps,
            3.0 * ddr.memory.dram_bandwidth_gbps);
  EXPECT_GT(mcdram.memory.dram_latency_ns, ddr.memory.dram_latency_ns);
}

// ---------------------------------------------------------------------------
// Simulator physics fidelity
// ---------------------------------------------------------------------------

ProblemDeck sim_deck(const std::string& name, std::int64_t particles) {
  ProblemDeck d = deck_by_name(name, /*mesh_scale=*/0.016, 1.0);
  d.n_particles = particles;
  d.n_timesteps = 1;
  // Shrink the XS tables with the mesh so they stay cache-resident, as at
  // paper scale (see bench/sim_common.h).
  d.xs.points = 480;
  d.seed = 77;
  return d;
}

TEST(Fidelity, SimulatorTallyMatchesNativeRunExactly) {
  // The simulator replays the identical physics: its tally must equal the
  // native single-thread tally bit-for-bit (same deck, same seed).
  SimtConfig sc;
  sc.device = broadwell_2699v4_dual();
  sc.deck = sim_deck("csp", 400);
  const SimtEstimate est = simulate_transport(sc);

  SimulationConfig nc;
  nc.deck = sc.deck;
  nc.threads = 1;
  Simulation native(nc);
  const RunResult r = native.run();

  EXPECT_EQ(est.counters.collisions, r.counters.collisions);
  EXPECT_EQ(est.counters.facets, r.counters.facets);
  EXPECT_EQ(est.counters.censuses, r.counters.censuses);
  EXPECT_NEAR(est.tally_total, r.budget.tally_total,
              1e-9 * std::fabs(r.budget.tally_total));
  EXPECT_NEAR(est.tally_checksum, r.tally_checksum,
              1e-9 * std::fabs(r.tally_checksum));
}

TEST(Fidelity, OverEventsSimulatorSamePhysicsAsOverParticles) {
  SimtConfig op;
  op.device = p100();
  op.deck = sim_deck("csp", 300);
  SimtConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  const SimtEstimate a = simulate_transport(op);
  const SimtEstimate b = simulate_transport(oe);
  EXPECT_EQ(a.counters.collisions, b.counters.collisions);
  EXPECT_EQ(a.counters.facets, b.counters.facets);
  EXPECT_NEAR(a.tally_total, b.tally_total, 1e-9 * std::fabs(a.tally_total));
}

// ---------------------------------------------------------------------------
// Qualitative architecture relationships (the paper's headline shapes)
// ---------------------------------------------------------------------------

TEST(Estimates, OverParticlesBeatsOverEventsOnCsp) {
  // §VII: Over Particles wins on every device for csp.
  for (const auto& device : {broadwell_2699v4_dual(), p100()}) {
    SimtConfig op;
    op.device = device;
    op.deck = sim_deck("csp", 512);
    SimtConfig oe = op;
    oe.scheme = Scheme::kOverEvents;
    const double t_op = simulate_transport(op).seconds;
    const double t_oe = simulate_transport(oe).seconds;
    EXPECT_GT(t_oe, t_op) << device.name;
  }
}

TEST(Estimates, P100FasterThanK20XForOverParticles) {
  // §VIII: 4.5x generational speedup (we accept >2x as shape-correct).
  SimtConfig old_gpu;
  old_gpu.device = k20x();
  old_gpu.deck = sim_deck("csp", 512);
  SimtConfig new_gpu = old_gpu;
  new_gpu.device = p100();
  const double t_k20x = simulate_transport(old_gpu).seconds;
  const double t_p100 = simulate_transport(new_gpu).seconds;
  EXPECT_GT(t_k20x, 2.0 * t_p100);
}

TEST(Estimates, OverEventsGainsMoreFromMcdramThanOverParticles) {
  // §VII-B: the bandwidth-hungry scheme benefits from MCDRAM (2.38x in the
  // paper); the latency-bound scheme barely moves.
  SimtConfig base;
  base.deck = sim_deck("csp", 512);

  auto runtime = [&](const DeviceModel& dev, Scheme scheme) {
    SimtConfig c = base;
    c.device = dev;
    c.scheme = scheme;
    return simulate_transport(c).seconds;
  };
  const double op_gain = runtime(knl_7210_ddr(), Scheme::kOverParticles) /
                         runtime(knl_7210_mcdram(), Scheme::kOverParticles);
  const double oe_gain = runtime(knl_7210_ddr(), Scheme::kOverEvents) /
                         runtime(knl_7210_mcdram(), Scheme::kOverEvents);
  EXPECT_GT(oe_gain, op_gain);
}

TEST(Estimates, OverEventsAchievesHigherBandwidthUtilization) {
  // §VII-D: OE hits ~50% of achievable bandwidth vs ~20% for OP, despite
  // being slower.
  SimtConfig op;
  op.device = k20x();
  op.deck = sim_deck("csp", 512);
  SimtConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  const SimtEstimate e_op = simulate_transport(op);
  const SimtEstimate e_oe = simulate_transport(oe);
  EXPECT_GT(e_oe.bandwidth_utilization, e_op.bandwidth_utilization);
}

TEST(Estimates, SmtImprovesLatencyBoundTransport) {
  // Fig 6: running all hardware threads beats one thread per core.
  SimtConfig cfg;
  cfg.device = power8_dual10();
  cfg.deck = sim_deck("csp", 512);
  cfg.threads = 20;  // one per core
  const double t_single = simulate_transport(cfg).seconds;
  cfg.threads = 160;  // SMT8
  const double t_smt = simulate_transport(cfg).seconds;
  EXPECT_LT(t_smt, t_single);
}

TEST(Estimates, MoreThreadsNeverSlowerOnCpuModel) {
  SimtConfig cfg;
  cfg.device = broadwell_2699v4_dual();
  cfg.deck = sim_deck("stream", 256);
  double prev = 1e30;
  for (std::int32_t t : {1, 4, 16, 44, 88}) {
    cfg.threads = t;
    const double s = simulate_transport(cfg).seconds;
    EXPECT_LE(s, prev * 1.001) << t << " threads";
    prev = s;
  }
}

TEST(Estimates, RegisterCappingHelpsK20X) {
  // §VI-H: capping 102 -> 64 registers improved K20X by 1.6x.  Needs
  // enough warps per SMX for the occupancy limit to bind:
  // 16384 particles = 512 warps over 14 SMX = ~36 resident candidates.
  SimtConfig cfg;
  cfg.device = k20x();
  cfg.deck = sim_deck("csp", 16384);
  cfg.regs_per_thread = 102;
  const double t_full = simulate_transport(cfg).seconds;
  cfg.regs_per_thread = 64;
  const double t_capped = simulate_transport(cfg).seconds;
  EXPECT_LT(t_capped, t_full);
}

TEST(Estimates, DivergenceVisibleOnWarpDevices) {
  // csp mixes facet and collision events: warps must show >1 path.
  SimtConfig cfg;
  cfg.device = p100();
  cfg.deck = sim_deck("csp", 512);
  const SimtEstimate e = simulate_transport(cfg);
  EXPECT_GT(e.divergence_paths, 1.0);
  EXPECT_LE(e.divergence_paths, 3.0);
  // CPU (1 lane) never diverges.
  cfg.device = broadwell_2699v4_dual();
  EXPECT_DOUBLE_EQ(simulate_transport(cfg).divergence_paths, 1.0);
}

TEST(Estimates, MemoryStallDominatesOnGpu) {
  // §VII-E: ~87% of kernel time waits on memory dependencies.
  SimtConfig cfg;
  cfg.device = p100();
  cfg.deck = sim_deck("csp", 512);
  const SimtEstimate e = simulate_transport(cfg);
  EXPECT_GT(e.memory_stall_fraction, 0.5);
}

TEST(Estimates, ScaleSecondsIsLinear) {
  SimtEstimate e;
  e.seconds = 2.0;
  EXPECT_DOUBLE_EQ(scale_seconds(e, 100, 1000), 20.0);
  EXPECT_THROW(scale_seconds(e, 0, 10), Error);
}

TEST(Estimates, EstimateFieldsPopulated) {
  SimtConfig cfg;
  cfg.device = knl_7210_mcdram();
  cfg.deck = sim_deck("scatter", 128);
  const SimtEstimate e = simulate_transport(cfg);
  EXPECT_GT(e.seconds, 0.0);
  EXPECT_GT(e.dram_bytes, 0u);
  EXPECT_GT(e.issue_cycles, 0u);
  EXPECT_GE(e.cache_hit_rate, 0.0);
  EXPECT_LE(e.cache_hit_rate, 1.0);
  EXPECT_GE(e.contexts, 1);
}

}  // namespace
}  // namespace neutral::simt
