// Tests for the energy-deposition tally (§V-C, §VI-F, §VI-G): all four
// thread-safety modes must produce identical results, under contention.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>

#include "core/tally.h"
#include "util/error.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------------

TEST(Tally, ConstructionValidates) {
  EXPECT_THROW(EnergyTally(0, TallyMode::kAtomic, 1), Error);
  EXPECT_THROW(EnergyTally(10, TallyMode::kAtomic, 0), Error);
}

TEST(Tally, SingleDepositLandsInRightCell) {
  EnergyTally t(10, TallyMode::kAtomic, 1);
  t.deposit(3, 2.5, 0);
  EXPECT_DOUBLE_EQ(t.at(3), 2.5);
  EXPECT_DOUBLE_EQ(t.at(2), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 2.5);
}

TEST(Tally, ResetZeroesEverything) {
  EnergyTally t(4, TallyMode::kPrivatized, 2);
  t.deposit(0, 1.0, 0);
  t.deposit(1, 2.0, 1);
  t.reset();
  t.merge();
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(Tally, ModeNamesStable) {
  EXPECT_STREQ(to_string(TallyMode::kAtomic), "atomic");
  EXPECT_STREQ(to_string(TallyMode::kPrivatized), "privatized");
  EXPECT_STREQ(to_string(TallyMode::kPrivatizedMergeEveryStep),
               "privatized-merge-step");
  EXPECT_STREQ(to_string(TallyMode::kDeferredAtomic), "deferred-atomic");
}

// ---------------------------------------------------------------------------
// Mode equivalence under parallel contention
// ---------------------------------------------------------------------------

class TallyModes : public ::testing::TestWithParam<TallyMode> {};

TEST_P(TallyModes, ParallelDepositsSumExactly) {
  const TallyMode mode = GetParam();
  const std::int64_t cells = 64;
  const int threads = omp_get_max_threads();
  EnergyTally t(cells, mode, threads);

  // Divisible by `cells` so every cell receives an identical share.
  const std::int64_t per_thread = 51200;
#pragma omp parallel
  {
    const int me = omp_get_thread_num();
    for (std::int64_t i = 0; i < per_thread; ++i) {
      // All threads hammer a small cell set: worst-case conflicts.
      t.deposit(i % cells, 1.0, me);
    }
  }
  t.merge();
  const double expected =
      static_cast<double>(per_thread) * omp_get_max_threads();
  EXPECT_DOUBLE_EQ(t.total(), expected);
  // Each cell got an equal share.
  EXPECT_DOUBLE_EQ(t.at(0), expected / cells);
  EXPECT_DOUBLE_EQ(t.at(cells - 1), expected / cells);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TallyModes,
    ::testing::Values(TallyMode::kAtomic, TallyMode::kPrivatized,
                      TallyMode::kPrivatizedMergeEveryStep,
                      TallyMode::kDeferredAtomic));

TEST(Tally, PrivatizedAndAtomicAgreeOnScatteredPattern) {
  const std::int64_t cells = 1000;
  const int threads = omp_get_max_threads();
  EnergyTally atomic(cells, TallyMode::kAtomic, threads);
  EnergyTally priv(cells, TallyMode::kPrivatized, threads);

#pragma omp parallel
  {
    const int me = omp_get_thread_num();
#pragma omp for
    for (std::int64_t i = 0; i < 100000; ++i) {
      const std::int64_t cell = (i * 7919) % cells;
      const double amount = 1.0 + static_cast<double>(i % 13);
      atomic.deposit(cell, amount, me);
      priv.deposit(cell, amount, me);
    }
  }
  priv.merge();
  for (std::int64_t c = 0; c < cells; c += 97) {
    EXPECT_DOUBLE_EQ(atomic.at(c), priv.at(c)) << "cell " << c;
  }
}

// ---------------------------------------------------------------------------
// Deferred mode specifics (§VI-G)
// ---------------------------------------------------------------------------

TEST(Tally, DeferredDepositsInvisibleUntilDrain) {
  EnergyTally t(8, TallyMode::kDeferredAtomic, 1);
  t.deposit(2, 5.0, 0);
  EXPECT_DOUBLE_EQ(t.at(2), 0.0);  // buffered, not applied
  t.drain_deferred();
  EXPECT_DOUBLE_EQ(t.at(2), 5.0);
}

TEST(Tally, DrainIsIdempotent) {
  EnergyTally t(8, TallyMode::kDeferredAtomic, 1);
  t.deposit(1, 3.0, 0);
  t.drain_deferred();
  t.drain_deferred();
  EXPECT_DOUBLE_EQ(t.at(1), 3.0);
}

TEST(Tally, DrainNoOpInOtherModes) {
  EnergyTally t(8, TallyMode::kAtomic, 1);
  t.deposit(1, 3.0, 0);
  t.drain_deferred();
  EXPECT_DOUBLE_EQ(t.at(1), 3.0);
}

TEST(Tally, MergeDrainsDeferredBuffers) {
  EnergyTally t(8, TallyMode::kDeferredAtomic, 2);
  t.deposit(0, 1.0, 0);
  t.deposit(0, 2.0, 1);
  t.merge();
  EXPECT_DOUBLE_EQ(t.at(0), 3.0);
}

// ---------------------------------------------------------------------------
// Merge semantics
// ---------------------------------------------------------------------------

TEST(Tally, MergeEachStepOnlyForMergeStepMode) {
  EnergyTally a(4, TallyMode::kAtomic, 2);
  EnergyTally b(4, TallyMode::kPrivatized, 2);
  EnergyTally c(4, TallyMode::kPrivatizedMergeEveryStep, 2);
  EXPECT_FALSE(a.merge_each_step());
  EXPECT_FALSE(b.merge_each_step());
  EXPECT_TRUE(c.merge_each_step());
}

TEST(Tally, RepeatedMergeDoesNotDoubleCount) {
  EnergyTally t(4, TallyMode::kPrivatized, 2);
  t.deposit(0, 1.0, 0);
  t.deposit(0, 1.0, 1);
  t.merge();
  t.merge();
  EXPECT_DOUBLE_EQ(t.at(0), 2.0);
}

TEST(Tally, TotalIncludesUnmergedPrivateCopies) {
  EnergyTally t(4, TallyMode::kPrivatized, 2);
  t.deposit(0, 1.5, 0);
  t.deposit(1, 2.5, 1);
  EXPECT_DOUBLE_EQ(t.total(), 4.0);  // before merge
  t.merge();
  EXPECT_DOUBLE_EQ(t.total(), 4.0);  // after merge
}

// ---------------------------------------------------------------------------
// Compensated accumulation + cross-shard reduction primitives
// ---------------------------------------------------------------------------

TEST(TallyCompensated, RecoversBitsPlainSummationLoses) {
  // 1e16 + 1 - 1e16 == 0 in plain doubles; the Neumaier term keeps the 1.
  EnergyTally plain(2, TallyMode::kAtomic, 1);
  EnergyTally comp(2, TallyMode::kAtomic, 1, /*compensated=*/true);
  for (EnergyTally* t : {&plain, &comp}) {
    t->deposit(0, 1.0e16, 0);
    t->deposit(0, 1.0, 0);
    t->deposit(0, -1.0e16, 0);
    t->merge();
  }
  EXPECT_DOUBLE_EQ(plain.at(0), 0.0);
  EXPECT_DOUBLE_EQ(comp.at(0), 1.0);
}

TEST(TallyCompensated, CellValueInvariantToDepositOrder) {
  // The once-rounded property: any permutation of the deposit multiset
  // yields the same stored double.
  const double deposits[] = {0.1, 1.0e12, -0.3, 7.77e-9, 3.14, -1.0e12,
                             2.5e-17, 0.2};
  const std::size_t orders[][8] = {{0, 1, 2, 3, 4, 5, 6, 7},
                                   {7, 6, 5, 4, 3, 2, 1, 0},
                                   {1, 5, 0, 7, 3, 2, 6, 4}};
  double reference = 0.0;
  for (std::size_t o = 0; o < 3; ++o) {
    EnergyTally t(1, TallyMode::kAtomic, 1, /*compensated=*/true);
    for (std::size_t i : orders[o]) t.deposit(0, deposits[i], 0);
    t.merge();
    if (o == 0) {
      reference = t.at(0);
    } else {
      EXPECT_EQ(t.at(0), reference) << "order " << o;
    }
  }
}

TEST(TallyCompensated, AccumulateSplitsMatchTheWhole) {
  // Partition a deposit sequence arbitrarily across "shards"; folding the
  // shard tallies through accumulate() reproduces the single-tally result
  // bit-for-bit, in any fold order.
  const std::int64_t cells = 16;
  EnergyTally whole(cells, TallyMode::kAtomic, 1, true);
  EnergyTally shard_a(cells, TallyMode::kAtomic, 1, true);
  EnergyTally shard_b(cells, TallyMode::kAtomic, 1, true);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t cell = (i * 7919) % cells;
    const double amount = std::pow(1.1, i % 40) * ((i % 3) ? 1.0 : -0.5);
    whole.deposit(cell, amount, 0);
    (i % 2 ? shard_a : shard_b).deposit(cell, amount, 0);
  }
  whole.merge();
  shard_a.merge();
  shard_b.merge();

  for (int order = 0; order < 2; ++order) {
    EnergyTally reduced(cells, TallyMode::kAtomic, 1, true);
    reduced.accumulate(order == 0 ? shard_a : shard_b);
    reduced.accumulate(order == 0 ? shard_b : shard_a);
    reduced.merge();
    for (std::int64_t c = 0; c < cells; ++c) {
      EXPECT_EQ(reduced.at(c), whole.at(c)) << "cell " << c;
    }
  }
}

TEST(TallyCompensated, AccumulateAcceptsImagesAndValidates) {
  EnergyTally src(8, TallyMode::kAtomic, 1, true);
  src.deposit(3, 2.5, 0);
  src.merge();
  const TallyImage image = src.image();
  ASSERT_EQ(image.cells(), 8);
  ASSERT_FALSE(image.lo.empty());

  EnergyTally dst(8, TallyMode::kAtomic, 1, true);
  dst.accumulate(image);
  dst.merge();
  EXPECT_DOUBLE_EQ(dst.at(3), 2.5);

  EnergyTally plain(8, TallyMode::kAtomic, 1);
  EXPECT_THROW(plain.accumulate(src), Error);  // target must be compensated
  EnergyTally wrong(4, TallyMode::kAtomic, 1, true);
  EXPECT_THROW(wrong.accumulate(src), Error);  // cell counts must match
}

TEST(TallyCompensated, PrivatizedMergeIsThreadCountInvariant) {
  // The same deposit multiset through 1, 2 and 8 private copies must merge
  // to identical doubles — the property that lets shard jobs run at any
  // width.
  const std::int64_t cells = 8;
  double reference[8] = {};
  for (const int threads : {1, 2, 8}) {
    EnergyTally t(cells, TallyMode::kPrivatized, threads, true);
    for (int i = 0; i < 4000; ++i) {
      t.deposit(i % cells, std::pow(1.07, i % 50), i % threads);
    }
    t.merge();
    for (std::int64_t c = 0; c < cells; ++c) {
      if (threads == 1) {
        reference[c] = t.at(c);
      } else {
        EXPECT_EQ(t.at(c), reference[c]) << threads << " threads, cell " << c;
      }
    }
  }
}

TEST(TallyCompensated, CompensatedAtomicRequiresOneThread) {
  EXPECT_THROW(EnergyTally(8, TallyMode::kAtomic, 2, true), Error);
  EXPECT_NO_THROW(EnergyTally(8, TallyMode::kAtomic, 1, true));
  EXPECT_NO_THROW(EnergyTally(8, TallyMode::kPrivatized, 2, true));
}

// ---------------------------------------------------------------------------
// Footprint accounting (§VI-F: the 0.3 GB -> 31 GB blow-up)
// ---------------------------------------------------------------------------

TEST(Tally, PrivatizedFootprintScalesWithThreads) {
  const std::int64_t cells = 1 << 12;
  EnergyTally shared(cells, TallyMode::kAtomic, 16);
  EnergyTally priv(cells, TallyMode::kPrivatized, 16);
  EXPECT_EQ(shared.footprint_bytes(), cells * sizeof(double));
  EXPECT_EQ(priv.footprint_bytes(), cells * sizeof(double) * 17ull);
}

TEST(Tally, FootprintRatioMatchesPaperExample) {
  // §VI-F: 256 threads multiply the tally footprint ~100x (0.3 -> 31 GB).
  const std::int64_t cells = 1 << 10;
  EnergyTally shared(cells, TallyMode::kAtomic, 256);
  EnergyTally priv(cells, TallyMode::kPrivatized, 256);
  const double ratio = static_cast<double>(priv.footprint_bytes()) /
                       static_cast<double>(shared.footprint_bytes());
  EXPECT_DOUBLE_EQ(ratio, 257.0);
}

}  // namespace
}  // namespace neutral
