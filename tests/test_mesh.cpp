// Tests for the mesh substrate: geometry, cell location, facet
// intersection, reflective boundaries, density fields, heat maps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "mesh/density_field.h"
#include "mesh/facet.h"
#include "mesh/heatmap.h"
#include "mesh/mesh2d.h"
#include "util/error.h"
#include "util/numeric.h"

namespace neutral {
namespace {

// ---------------------------------------------------------------------------
// StructuredMesh2D
// ---------------------------------------------------------------------------

TEST(Mesh, UniformConstructionGeometry) {
  StructuredMesh2D m(10, 20, 100.0, 50.0);
  EXPECT_EQ(m.nx(), 10);
  EXPECT_EQ(m.ny(), 20);
  EXPECT_EQ(m.num_cells(), 200);
  EXPECT_DOUBLE_EQ(m.width(), 100.0);
  EXPECT_DOUBLE_EQ(m.height(), 50.0);
  EXPECT_DOUBLE_EQ(m.cell_dx(0), 10.0);
  EXPECT_DOUBLE_EQ(m.cell_dy(0), 2.5);
  EXPECT_TRUE(m.uniform());
}

TEST(Mesh, RejectsDegenerateGeometry) {
  EXPECT_THROW(StructuredMesh2D(0, 5, 1.0, 1.0), Error);
  EXPECT_THROW(StructuredMesh2D(5, 5, -1.0, 1.0), Error);
}

TEST(Mesh, LocateFindsCorrectCell) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  EXPECT_EQ(m.locate(0.5, 0.5), (CellIndex{0, 0}));
  EXPECT_EQ(m.locate(3.5, 0.5), (CellIndex{3, 0}));
  EXPECT_EQ(m.locate(1.5, 2.5), (CellIndex{1, 2}));
}

TEST(Mesh, LocateClampsOutOfDomainPoints) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  EXPECT_EQ(m.locate(-1.0, -1.0), (CellIndex{0, 0}));
  EXPECT_EQ(m.locate(10.0, 10.0), (CellIndex{3, 3}));
}

TEST(Mesh, LocateOnTopEdgeBelongsToLastCell) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  EXPECT_EQ(m.locate(4.0, 4.0), (CellIndex{3, 3}));
}

TEST(Mesh, FlatIndexIsRowMajor) {
  StructuredMesh2D m(5, 3, 1.0, 1.0);
  EXPECT_EQ(m.flat_index({0, 0}), 0);
  EXPECT_EQ(m.flat_index({4, 0}), 4);
  EXPECT_EQ(m.flat_index({0, 1}), 5);
  EXPECT_EQ(m.flat_index({4, 2}), 14);
}

TEST(Mesh, NonUniformEdgesRespected) {
  aligned_vector<double> ex{0.0, 1.0, 4.0, 5.0};
  aligned_vector<double> ey{0.0, 2.0, 3.0};
  StructuredMesh2D m(std::move(ex), std::move(ey));
  EXPECT_EQ(m.nx(), 3);
  EXPECT_EQ(m.ny(), 2);
  EXPECT_FALSE(m.uniform());
  EXPECT_DOUBLE_EQ(m.cell_dx(1), 3.0);
  EXPECT_EQ(m.locate(2.0, 2.5), (CellIndex{1, 1}));
  EXPECT_EQ(m.locate(0.5, 0.5), (CellIndex{0, 0}));
}

TEST(Mesh, NonUniformRejectsUnsortedEdges) {
  aligned_vector<double> bad{0.0, 2.0, 1.0};
  aligned_vector<double> ok{0.0, 1.0};
  EXPECT_THROW(StructuredMesh2D(std::move(bad), std::move(ok)), Error);
}

TEST(Mesh, CellCentres) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  EXPECT_DOUBLE_EQ(m.centre_x(0), 0.5);
  EXPECT_DOUBLE_EQ(m.centre_y(3), 3.5);
}

TEST(Mesh, LocateMatchesBruteForceOnNonUniform) {
  aligned_vector<double> ex{0.0, 0.1, 0.5, 2.0, 2.1, 7.0};
  aligned_vector<double> ey{0.0, 3.0, 3.5, 9.0};
  StructuredMesh2D m(std::move(ex), std::move(ey));
  for (double x = 0.05; x < 7.0; x += 0.37) {
    for (double y = 0.05; y < 9.0; y += 0.41) {
      const CellIndex c = m.locate(x, y);
      EXPECT_LE(m.edge_x(c.x), x);
      EXPECT_LT(x, m.edge_x(c.x + 1));
      EXPECT_LE(m.edge_y(c.y), y);
      EXPECT_LT(y, m.edge_y(c.y + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Facet intersection
// ---------------------------------------------------------------------------

TEST(Facet, StraightRightMotionHitsVerticalFacet) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  const auto f = nearest_facet(m, 0.25, 0.5, 1.0, 0.0, {0, 0});
  EXPECT_DOUBLE_EQ(f.distance, 0.75);
  EXPECT_EQ(f.axis, 0);
  EXPECT_EQ(f.step, 1);
  EXPECT_FALSE(f.at_boundary);
}

TEST(Facet, StraightUpMotionHitsHorizontalFacet) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  const auto f = nearest_facet(m, 0.5, 0.25, 0.0, 1.0, {0, 0});
  EXPECT_DOUBLE_EQ(f.distance, 0.75);
  EXPECT_EQ(f.axis, 1);
  EXPECT_EQ(f.step, 1);
}

TEST(Facet, NegativeDirections) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  const auto f = nearest_facet(m, 1.25, 1.5, -1.0, 0.0, {1, 1});
  EXPECT_DOUBLE_EQ(f.distance, 0.25);
  EXPECT_EQ(f.axis, 0);
  EXPECT_EQ(f.step, -1);
}

TEST(Facet, DiagonalPicksNearerAxis) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  // From (0.9, 0.5) at 45 degrees: x facet at distance 0.1*sqrt(2) wins.
  const double inv = 1.0 / std::sqrt(2.0);
  const auto f = nearest_facet(m, 0.9, 0.5, inv, inv, {0, 0});
  EXPECT_EQ(f.axis, 0);
  EXPECT_NEAR(f.distance, 0.1 * std::sqrt(2.0), 1e-12);
}

TEST(Facet, BoundaryFlagSetAtDomainEdge) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  const auto right = nearest_facet(m, 3.5, 0.5, 1.0, 0.0, {3, 0});
  EXPECT_TRUE(right.at_boundary);
  const auto left = nearest_facet(m, 0.5, 0.5, -1.0, 0.0, {0, 0});
  EXPECT_TRUE(left.at_boundary);
  const auto top = nearest_facet(m, 0.5, 3.5, 0.0, 1.0, {0, 3});
  EXPECT_TRUE(top.at_boundary);
  const auto bottom = nearest_facet(m, 0.5, 0.5, 0.0, -1.0, {0, 0});
  EXPECT_TRUE(bottom.at_boundary);
}

TEST(Facet, DistanceNeverNegative) {
  StructuredMesh2D m(8, 8, 8.0, 8.0);
  // Position a hair past the facet it just crossed (round-off scenario).
  const auto f = nearest_facet(m, 1.0 + 1e-15, 0.5, 1.0, 0.0, {1, 0});
  EXPECT_GE(f.distance, 0.0);
}

TEST(Facet, InteriorCrossingStepsCellIndex) {
  FacetIntersection f;
  f.axis = 0;
  f.step = 1;
  f.at_boundary = false;
  CellIndex c{1, 1};
  double ox = 1.0, oy = 0.0;
  EXPECT_FALSE(apply_facet_crossing(f, c, ox, oy));
  EXPECT_EQ(c, (CellIndex{2, 1}));
  EXPECT_DOUBLE_EQ(ox, 1.0);  // direction unchanged
}

TEST(Facet, BoundaryCrossingReflectsDirection) {
  FacetIntersection f;
  f.axis = 0;
  f.step = 1;
  f.at_boundary = true;
  CellIndex c{3, 1};
  double ox = 0.8, oy = 0.6;
  EXPECT_TRUE(apply_facet_crossing(f, c, ox, oy));
  EXPECT_EQ(c, (CellIndex{3, 1}));  // cell unchanged
  EXPECT_DOUBLE_EQ(ox, -0.8);
  EXPECT_DOUBLE_EQ(oy, 0.6);
}

TEST(Facet, VerticalReflectionFlipsY) {
  FacetIntersection f;
  f.axis = 1;
  f.step = -1;
  f.at_boundary = true;
  CellIndex c{0, 0};
  double ox = 0.6, oy = -0.8;
  EXPECT_TRUE(apply_facet_crossing(f, c, ox, oy));
  EXPECT_DOUBLE_EQ(oy, 0.8);
  EXPECT_DOUBLE_EQ(ox, 0.6);
}

// Property test: a particle walked facet-to-facet across the whole mesh
// crosses exactly nx interior+boundary facets and lands where expected.
class FacetWalk : public ::testing::TestWithParam<int> {};

TEST_P(FacetWalk, StraightLineCrossesExpectedFacetCount) {
  const int n = GetParam();
  StructuredMesh2D m(n, n, static_cast<double>(n), static_cast<double>(n));
  double x = 0.5, y = 0.5;
  double ox = 1.0, oy = 0.0;
  CellIndex c{0, 0};
  int crossings = 0;
  // Walk until we reflect off the right wall.
  for (;;) {
    const auto f = nearest_facet(m, x, y, ox, oy, c);
    x += ox * f.distance;
    y += oy * f.distance;
    ++crossings;
    const bool reflected = apply_facet_crossing(f, c, ox, oy);
    if (reflected) break;
  }
  EXPECT_EQ(crossings, n);  // n-1 interior facets + 1 boundary
  EXPECT_EQ(c.x, n - 1);
  EXPECT_DOUBLE_EQ(ox, -1.0);
  EXPECT_NEAR(x, static_cast<double>(n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FacetWalk, ::testing::Values(1, 2, 3, 8, 33, 100));

// ---------------------------------------------------------------------------
// DensityField
// ---------------------------------------------------------------------------

TEST(Density, UniformFillAndUnitConversion) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  DensityField rho(m, 1000.0);  // kg/m^3
  EXPECT_DOUBLE_EQ(rho.g_cm3(0), 1.0);
  EXPECT_DOUBLE_EQ(rho.kg_m3(0), 1000.0);
}

TEST(Density, RectOverrideAppliesByCellCentre) {
  StructuredMesh2D m(4, 4, 4.0, 4.0);
  DensityField rho(m, 0.0);
  rho.fill_rect(1.0, 1.0, 3.0, 3.0, 500.0);
  // Centres at 1.5 and 2.5 are inside; 0.5 and 3.5 outside.
  EXPECT_DOUBLE_EQ(rho.kg_m3(m.flat_index({1, 1})), 500.0);
  EXPECT_DOUBLE_EQ(rho.kg_m3(m.flat_index({2, 2})), 500.0);
  EXPECT_DOUBLE_EQ(rho.kg_m3(m.flat_index({0, 0})), 0.0);
  EXPECT_DOUBLE_EQ(rho.kg_m3(m.flat_index({3, 3})), 0.0);
}

TEST(Density, RejectsNegativeDensity) {
  StructuredMesh2D m(2, 2, 1.0, 1.0);
  EXPECT_THROW(DensityField(m, -1.0), Error);
  DensityField rho(m, 1.0);
  EXPECT_THROW(rho.fill_rect(0, 0, 1, 1, -5.0), Error);
}

TEST(Density, FillOverwritesEverything) {
  StructuredMesh2D m(3, 3, 1.0, 1.0);
  DensityField rho(m, 1.0);
  rho.fill(7000.0);
  for (std::int64_t i = 0; i < rho.size(); ++i) {
    EXPECT_DOUBLE_EQ(rho.kg_m3(i), 7000.0);
  }
}

// ---------------------------------------------------------------------------
// Heatmap
// ---------------------------------------------------------------------------

TEST(Heatmap, WritesValidPpm) {
  StructuredMesh2D m(16, 8, 16.0, 8.0);
  std::vector<double> field(static_cast<std::size_t>(m.num_cells()), 0.0);
  field[10] = 1.0;
  const std::string path = ::testing::TempDir() + "/neutral_heatmap_test.ppm";
  write_heatmap_ppm(path, m, field.data());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(static_cast<std::size_t>(w) * h * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(pixels.size()));
  std::remove(path.c_str());
}

TEST(Heatmap, DownsamplesLargeMeshes) {
  StructuredMesh2D m(64, 64, 1.0, 1.0);
  std::vector<double> field(static_cast<std::size_t>(m.num_cells()), 1.0);
  const std::string path = ::testing::TempDir() + "/neutral_heatmap_ds.ppm";
  write_heatmap_ppm(path, m, field.data(), /*max_pixels=*/16);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 16);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neutral
