// Golden-reference test tier.
//
// tests/golden/ holds canonical small decks (one per paper problem) plus
// recorded population/checksum baselines (.results files).  This runner
// replays each deck through the canonical configuration — Over Particles,
// AoS, atomic tally, one OpenMP thread: zero reassociation freedom, so the
// outputs are bit-stable — and fails on ANY drift from the baseline
// (verify_results with rel_tol = 0, exact event counts).
//
// Regenerating baselines after an *intentional* physics change:
//
//   NEUTRAL_GOLDEN_UPDATE=1 ./test_golden
//
// which rewrites the .results files in the source tree and still runs the
// comparisons (against the fresh files, so the run passes); commit the
// diff alongside the change that caused it.
//
// The tier also anchors cross-scheme equivalence: on the same decks,
// over_particles, over_events and the SIMT machine model must agree —
// exactly where the pipeline is deterministic (compensated tallies round
// every cell once, so both native schemes produce bit-identical
// checksums), and within the documented 1e-9 relative tolerance for the
// machine model's independently accumulated tally.
#include <gtest/gtest.h>

#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "batch/domain.h"
#include "batch/engine.h"
#include "core/simulation.h"
#include "io/deck_io.h"
#include "io/results_io.h"
#include "simt/device.h"
#include "simt/transport_sim.h"

#ifndef NEUTRAL_GOLDEN_DIR
#error "NEUTRAL_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace neutral {
namespace {

const char* const kGoldenDecks[] = {"golden_stream", "golden_scatter",
                                    "golden_csp"};

std::string deck_path(const std::string& name) {
  return std::string(NEUTRAL_GOLDEN_DIR) + "/" + name + ".params";
}

std::string baseline_path(const std::string& name) {
  return std::string(NEUTRAL_GOLDEN_DIR) + "/" + name + ".results";
}

/// The canonical golden configuration: deterministic by construction.
SimulationConfig golden_config(const std::string& name) {
  SimulationConfig cfg;
  cfg.deck = load_deck(deck_path(name));
  cfg.scheme = Scheme::kOverParticles;
  cfg.layout = Layout::kAoS;
  cfg.tally_mode = TallyMode::kAtomic;
  cfg.threads = 1;
  return cfg;
}

RunResult run_scheme(const std::string& name, Scheme scheme, Layout layout) {
  SimulationConfig cfg = golden_config(name);
  cfg.scheme = scheme;
  cfg.layout = layout;
  // Compensated tallies round each cell's deposit multiset once, which is
  // what makes the cross-scheme checksums exactly equal, not just close.
  cfg.compensated_tally = true;
  Simulation sim(std::move(cfg));
  return sim.run();
}

// ---------------------------------------------------------------------------
// Baseline drift gate
// ---------------------------------------------------------------------------

class GoldenBaseline : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenBaseline, MatchesRecordedResultsExactly) {
  const std::string name = GetParam();
  const SimulationConfig cfg = golden_config(name);
  Simulation sim(cfg);
  const RunResult result = sim.run();

  if (std::getenv("NEUTRAL_GOLDEN_UPDATE") != nullptr) {
    save_results(make_expected(cfg, result), baseline_path(name));
  }
  const ExpectedResults expected = load_results(baseline_path(name));
  // rel_tol 0: single-threaded atomic accumulation leaves no
  // reassociation freedom, so the tier fails on any drift at all.
  const ResultsCheck check =
      verify_results(expected, cfg, result, /*rel_tol=*/0.0);
  EXPECT_TRUE(check.passed) << check.detail;
  EXPECT_EQ(result.counters.censuses, expected.censuses);
}

INSTANTIATE_TEST_SUITE_P(Decks, GoldenBaseline,
                         ::testing::ValuesIn(kGoldenDecks));

// ---------------------------------------------------------------------------
// Cross-scheme equivalence on the golden decks
// ---------------------------------------------------------------------------

class GoldenSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenSchemes, NativeSchemesAgreeBitForBit) {
  const std::string name = GetParam();
  const RunResult particles =
      run_scheme(name, Scheme::kOverParticles, Layout::kAoS);
  const RunResult events_aos =
      run_scheme(name, Scheme::kOverEvents, Layout::kAoS);
  const RunResult events_soa =
      run_scheme(name, Scheme::kOverEvents, Layout::kSoA);

  for (const RunResult* other : {&events_aos, &events_soa}) {
    // Histories are keyed by particle id, so every event count partitions
    // identically across schemes...
    EXPECT_EQ(other->counters.facets, particles.counters.facets);
    EXPECT_EQ(other->counters.collisions, particles.counters.collisions);
    EXPECT_EQ(other->counters.censuses, particles.counters.censuses);
    EXPECT_EQ(other->counters.rng_draws, particles.counters.rng_draws);
    EXPECT_EQ(other->population, particles.population);
    // ...and compensated tallies make even the float outputs exact.
    EXPECT_EQ(other->tally_checksum, particles.tally_checksum);
    EXPECT_EQ(other->budget.tally_total, particles.budget.tally_total);
  }
}

TEST_P(GoldenSchemes, DomainDecompositionPreservesEverySchemeAndLayout) {
  // Cross-scheme equivalence UNDER domain decomposition: a 2x2 tiling of
  // each golden deck, run through every scheme x layout pair, must stitch
  // back to the canonical compensated result bit for bit — the ParticleBank
  // guarantee that decomposition layers never collapse the paper's
  // scheme x layout cross-product.
  const std::string name = GetParam();
  const RunResult reference =
      run_scheme(name, Scheme::kOverParticles, Layout::kAoS);

  for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      SimulationConfig cfg = golden_config(name);
      cfg.scheme = scheme;
      cfg.layout = layout;
      batch::EngineOptions options;
      options.workers = 2;
      batch::BatchEngine engine(options);
      batch::DomainOptions opt;
      opt.rows = 2;
      opt.cols = 2;
      const batch::DomainRunReport report =
          batch::run_domains(engine, cfg, opt);
      ASSERT_TRUE(report.ok) << report.error;
      SCOPED_TRACE(std::string(to_string(scheme)) + "/" + to_string(layout));

      EXPECT_EQ(report.merged.tally_checksum, reference.tally_checksum);
      EXPECT_EQ(report.merged.budget.tally_total,
                reference.budget.tally_total);
      EXPECT_EQ(report.merged.population, reference.population);
      EXPECT_EQ(report.merged.counters.facets, reference.counters.facets);
      EXPECT_EQ(report.merged.counters.collisions,
                reference.counters.collisions);
      EXPECT_EQ(report.merged.counters.censuses,
                reference.counters.censuses);
    }
  }
}

TEST_P(GoldenSchemes, FastPathsPreserveChecksumsExactly) {
  // The perf-pass contract: every fast path — unionised XS grid, batched
  // RNG, branchless event search, event-sorted traversal, direct tally
  // deposits, over-events round fusion, multi-history pipelining — is a
  // mechanical rearrangement, not an approximation.  The full cross
  // product of scheme x layout x lookup x rng_batch x branchless x sort x
  // fuse x pipeline x tally_direct must reproduce the default path's
  // outputs bit for bit (atomic tally, one thread: zero legitimate
  // wobble, so EXPECT_EQ on doubles is correct).
  const std::string name = GetParam();
  for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
    for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
      SimulationConfig ref_cfg = golden_config(name);
      ref_cfg.scheme = scheme;
      ref_cfg.layout = layout;
      Simulation ref_sim(ref_cfg);
      const RunResult reference = ref_sim.run();

      // Round fusion only exists in the Over Events scheme (and must
      // compose with — taking precedence over — the sorted traversal);
      // the history pipeline only exists in Over Particles.
      const std::vector<bool> fuse_values =
          scheme == Scheme::kOverEvents ? std::vector<bool>{false, true}
                                        : std::vector<bool>{false};
      const std::vector<std::int32_t> pipeline_values =
          scheme == Scheme::kOverParticles ? std::vector<std::int32_t>{1, 4}
                                           : std::vector<std::int32_t>{1};
      for (const XsLookup lookup :
           {XsLookup::kBinarySearch, XsLookup::kCachedLinear,
            XsLookup::kBucketedIndex, XsLookup::kUnionised}) {
        for (const bool rng_batch : {false, true}) {
          for (const bool branchless : {false, true}) {
            // Event sorting only exists in the Over Events scheme.  A
            // named vector, not a ternary over initializer_lists: the
            // backing array of the not-chosen list is a temporary whose
            // lifetime gcc 12 (correctly) refuses to extend through the
            // conditional into the loop (-Wdangling-pointer).
            const std::vector<bool> sort_values =
                scheme == Scheme::kOverEvents ? std::vector<bool>{false, true}
                                              : std::vector<bool>{false};
            for (const bool sort : sort_values) {
              for (const bool fuse : fuse_values) {
                for (const std::int32_t pipeline : pipeline_values) {
                  for (const bool direct : {false, true}) {
                    SimulationConfig cfg = ref_cfg;
                    cfg.lookup = lookup;
                    cfg.rng_batch = rng_batch;
                    cfg.branchless_events = branchless;
                    cfg.over_events.sort_events = sort;
                    cfg.over_events.fuse_rounds = fuse;
                    cfg.pipeline_histories = pipeline;
                    cfg.tally_direct = direct;
                    Simulation sim(std::move(cfg));
                    const RunResult result = sim.run();
                    SCOPED_TRACE(std::string(to_string(scheme)) + "/" +
                                 to_string(layout) + "/" + to_string(lookup) +
                                 (rng_batch ? "/rng-batch" : "") +
                                 (branchless ? "/branchless" : "") +
                                 (sort ? "/sorted" : "") +
                                 (fuse ? "/fused" : "") +
                                 (pipeline > 1 ? "/pipelined" : "") +
                                 (direct ? "/tally-direct" : ""));
                    EXPECT_EQ(result.tally_checksum, reference.tally_checksum);
                    EXPECT_EQ(result.budget.tally_total,
                              reference.budget.tally_total);
                    EXPECT_EQ(result.population, reference.population);
                    EXPECT_EQ(result.counters.facets,
                              reference.counters.facets);
                    EXPECT_EQ(result.counters.collisions,
                              reference.counters.collisions);
                    EXPECT_EQ(result.counters.censuses,
                              reference.counters.censuses);
                    EXPECT_EQ(result.counters.rng_draws,
                              reference.counters.rng_draws);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST_P(GoldenSchemes, MachineModelAgreesWithinDocumentedTolerance) {
  const std::string name = GetParam();
  const RunResult native =
      run_scheme(name, Scheme::kOverParticles, Layout::kAoS);

  simt::SimtConfig sc;
  sc.device = simt::broadwell_2699v4_dual();
  sc.scheme = Scheme::kOverParticles;
  sc.deck = golden_config(name).deck;
  sc.threads = 1;

  // The modelled fast paths (unionised lookup, batched RNG, branchless
  // events) change the machine model's cost charging, never its physics:
  // the replayed kernels must stay inside the documented tolerance with
  // every optimisation on, for both schemes.
  for (const bool fast_paths : {false, true}) {
    sc.lookup = fast_paths ? XsLookup::kUnionised : XsLookup::kCachedLinear;
    sc.rng_batch = fast_paths;
    sc.branchless_events = fast_paths;
    for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
      sc.scheme = scheme;
      SCOPED_TRACE(std::string(to_string(scheme)) +
                   (fast_paths ? "/fast-paths" : "/default"));
      const simt::SimtEstimate est = simt::simulate_transport(sc);

      // Identical physics, independent tally accumulation: integers exact,
      // floats within 1e-9 relative (the documented cross-scheme
      // tolerance).
      EXPECT_EQ(est.counters.facets, native.counters.facets);
      EXPECT_EQ(est.counters.collisions, native.counters.collisions);
      EXPECT_EQ(est.counters.censuses, native.counters.censuses);
      EXPECT_NEAR(est.tally_total, native.budget.tally_total,
                  1e-9 * std::abs(native.budget.tally_total));
      EXPECT_NEAR(est.tally_checksum, native.tally_checksum,
                  1e-9 * std::abs(native.tally_checksum) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Decks, GoldenSchemes,
                         ::testing::ValuesIn(kGoldenDecks));

}  // namespace
}  // namespace neutral
