// Tests for the counter-based RNG substrate (rng/).
//
// The paper's reproducibility story (§IV-F) rests on this module: streams
// keyed per particle must be deterministic, independent, resumable, and
// statistically sound.  The unrolled production kernels are cross-validated
// against straightforward loop-form references.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "rng/philox.h"
#include "rng/stream.h"
#include "rng/threefry.h"

namespace neutral::rng {
namespace {

// ---------------------------------------------------------------------------
// Threefry
// ---------------------------------------------------------------------------

TEST(Threefry, UnrolledMatchesReferenceOnZeroInput) {
  const u64x2 zero{0, 0};
  EXPECT_EQ(threefry2x64(zero, zero), threefry2x64_reference(zero, zero));
}

TEST(Threefry, UnrolledMatchesReferenceOnAllOnes) {
  const u64x2 ones{~0ull, ~0ull};
  EXPECT_EQ(threefry2x64(ones, ones), threefry2x64_reference(ones, ones));
}

// Property sweep: the unrolled kernel must agree with the loop-form
// reference on a structured grid of counters and keys.
class ThreefryAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreefryAgreement, UnrolledMatchesReference) {
  const std::uint64_t base = GetParam();
  for (std::uint64_t c = 0; c < 8; ++c) {
    for (std::uint64_t k = 0; k < 8; ++k) {
      const u64x2 counter{base + c * 0x9E3779B97F4A7C15ULL, base ^ (c << 32)};
      const u64x2 key{base * 31 + k, ~base + k};
      EXPECT_EQ(threefry2x64(counter, key),
                threefry2x64_reference(counter, key))
          << "base=" << base << " c=" << c << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ThreefryAgreement,
                         ::testing::Values(0ull, 1ull, 2ull, 3ull, 0xFFull,
                                           0xFFFFull, 0xFFFFFFFFull,
                                           0x123456789ABCDEFull,
                                           0x8000000000000000ull,
                                           0xDEADBEEFCAFEBABEull));

TEST(Threefry, IsDeterministic) {
  const u64x2 counter{42, 43};
  const u64x2 key{7, 8};
  EXPECT_EQ(threefry2x64(counter, key), threefry2x64(counter, key));
}

TEST(Threefry, CounterChangeChangesOutput) {
  const u64x2 key{1234, 5678};
  const auto a = threefry2x64({0, 0}, key);
  const auto b = threefry2x64({1, 0}, key);
  EXPECT_NE(a, b);
}

TEST(Threefry, KeyChangeChangesOutput) {
  const u64x2 counter{0, 0};
  EXPECT_NE(threefry2x64(counter, {1, 0}), threefry2x64(counter, {2, 0}));
}

TEST(Threefry, AvalancheSingleBitFlipsFlipHalfTheOutput) {
  // Crypto-strength diffusion: flipping one input bit should flip ~32 of
  // the 64 output bits on average.  Allow a generous band.
  const u64x2 key{0xABCDEF, 0x123456};
  double total_flips = 0.0;
  int cases = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const u64x2 c0{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
    u64x2 c1 = c0;
    c1[0] ^= (1ull << bit);
    const auto r0 = threefry2x64(c0, key);
    const auto r1 = threefry2x64(c1, key);
    total_flips += __builtin_popcountll(r0[0] ^ r1[0]);
    ++cases;
  }
  const double mean_flips = total_flips / cases;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Threefry, ReducedRoundsDiverge) {
  // Sanity on the round-count override: fewer rounds give different output.
  const u64x2 counter{5, 6};
  const u64x2 key{7, 8};
  EXPECT_NE(threefry2x64_reference(counter, key, 13),
            threefry2x64_reference(counter, key, 20));
}

TEST(Threefry, RejectsBadRoundCounts) {
  EXPECT_THROW(threefry2x64_reference({0, 0}, {0, 0}, -1), std::exception);
  EXPECT_THROW(threefry2x64_reference({0, 0}, {0, 0}, 33), std::exception);
}

// ---------------------------------------------------------------------------
// Philox
// ---------------------------------------------------------------------------

class PhiloxAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PhiloxAgreement, UnrolledMatchesReference) {
  const std::uint32_t base = GetParam();
  for (std::uint32_t c = 0; c < 8; ++c) {
    const u32x4 counter{base + c, base ^ 0xFFFFFFFFu, base * 7919u, c};
    const u32x2 key{base, base + 0x9E3779B9u};
    EXPECT_EQ(philox4x32(counter, key), philox4x32_reference(counter, key));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PhiloxAgreement,
                         ::testing::Values(0u, 1u, 0xFFu, 0xFFFFu,
                                           0xFFFFFFFFu, 0x12345678u,
                                           0x80000000u, 0xDEADBEEFu));

TEST(Philox, IsDeterministic) {
  const u32x4 counter{1, 2, 3, 4};
  const u32x2 key{5, 6};
  EXPECT_EQ(philox4x32(counter, key), philox4x32(counter, key));
}

TEST(Philox, CounterWordsAllMatter) {
  const u32x2 key{11, 22};
  const u32x4 base{0, 0, 0, 0};
  const auto r0 = philox4x32(base, key);
  for (int w = 0; w < 4; ++w) {
    u32x4 c = base;
    c[static_cast<std::size_t>(w)] = 1;
    EXPECT_NE(philox4x32(c, key), r0) << "counter word " << w;
  }
}

TEST(Philox, RejectsBadRoundCounts) {
  EXPECT_THROW(philox4x32_reference({0, 0, 0, 0}, {0, 0}, 17), std::exception);
}

// ---------------------------------------------------------------------------
// u01 conversion
// ---------------------------------------------------------------------------

TEST(U01, RangeBoundaries) {
  EXPECT_DOUBLE_EQ(u01(0), 0.0);
  EXPECT_LT(u01(~0ull), 1.0);
  EXPECT_GT(u01(~0ull), 0.999999999);
}

TEST(U01, OpenBelowNeverZero) {
  EXPECT_GT(u01_open_below(~0ull), 0.0);
  EXPECT_DOUBLE_EQ(u01_open_below(0), 1.0);
}

TEST(U01, Monotone) {
  EXPECT_LT(u01(1ull << 11), u01(2ull << 11));
}

// ---------------------------------------------------------------------------
// ParticleStream
// ---------------------------------------------------------------------------

TEST(ParticleStream, DeterministicPerKey) {
  ParticleStream a(123, 456);
  ParticleStream b(123, 456);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(ParticleStream, DistinctParticlesDiffer) {
  ParticleStream a(123, 1);
  ParticleStream b(123, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ParticleStream, DistinctSeedsDiffer) {
  ParticleStream a(1, 42);
  ParticleStream b(2, 42);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ParticleStream, ResumeFromCounterReproducesTail) {
  ParticleStream full(99, 7);
  std::vector<double> head(10), tail(10);
  for (auto& v : head) v = full.next();
  const std::uint64_t mark = full.counter();
  for (auto& v : tail) v = full.next();

  ParticleStream resumed(99, 7, mark);
  for (double expected : tail) EXPECT_DOUBLE_EQ(resumed.next(), expected);
}

TEST(ParticleStream, ResumeMidHistoryAtAnyPoint) {
  // One draw = one counter tick: save/restore is valid at every draw.
  for (int cut = 0; cut < 16; ++cut) {
    ParticleStream a(5, 11);
    for (int i = 0; i < cut; ++i) a.next();
    ParticleStream b(5, 11, a.counter());
    EXPECT_DOUBLE_EQ(a.next(), b.next()) << "cut=" << cut;
  }
}

TEST(ParticleStream, DrawsCountsUniforms) {
  ParticleStream s(1, 1);
  EXPECT_EQ(s.draws(), 0u);
  s.next();
  s.next_exponential();
  s.next_range(2.0, 3.0);
  EXPECT_EQ(s.draws(), 3u);
}

TEST(ParticleStream, RangeRespectsBounds) {
  ParticleStream s(77, 88);
  for (int i = 0; i < 1000; ++i) {
    const double v = s.next_range(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(ParticleStream, ExponentialIsPositive) {
  ParticleStream s(3, 4);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(s.next_exponential(), 0.0);
}

// ---------------------------------------------------------------------------
// Statistical sanity (fixed seeds: deterministic tests, generous bands)
// ---------------------------------------------------------------------------

TEST(Statistics, UniformMeanAndVariance) {
  ParticleStream s(2024, 1);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = s.next();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Statistics, UniformChiSquare16Bins) {
  ParticleStream s(31337, 9);
  const int n = 160000;
  const int bins = 16;
  std::array<int, 16> counts{};
  for (int i = 0; i < n; ++i) {
    auto b = static_cast<int>(s.next() * bins);
    if (b == bins) b = bins - 1;
    counts[static_cast<std::size_t>(b)]++;
  }
  const double expected = static_cast<double>(n) / bins;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof: 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Statistics, ExponentialMeanIsOne) {
  ParticleStream s(555, 666);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += s.next_exponential();
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Statistics, LagOneAutocorrelationNegligible) {
  ParticleStream s(8080, 1);
  const int n = 100000;
  double prev = s.next();
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double cur = s.next();
    sum_xy += prev * cur;
    sum_x += prev;
    sum_x2 += prev * prev;
    prev = cur;
  }
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::fabs(cov / var), 0.02);
}

TEST(Statistics, CrossStreamCorrelationNegligible) {
  // Adjacent particle ids must be statistically independent.
  ParticleStream a(424242, 100);
  ParticleStream b(424242, 101);
  const int n = 100000;
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.next();
    const double y = b.next();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double mx = sum_x / n, my = sum_y / n;
  const double cov = sum_xy / n - mx * my;
  const double sx = std::sqrt(sum_x2 / n - mx * mx);
  const double sy = std::sqrt(sum_y2 / n - my * my);
  EXPECT_LT(std::fabs(cov / (sx * sy)), 0.02);
}

TEST(BulkStream, DeterministicAndDistinctFromParticleStream) {
  BulkStream a(9, 9);
  BulkStream b(9, 9);
  ParticleStream p(9, 9);
  bool any_diff = false;
  for (int i = 0; i < 32; ++i) {
    const double va = a.next();
    EXPECT_DOUBLE_EQ(va, b.next());
    if (va != p.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // separate sub-stream domain
}

TEST(BulkStream, UniformRange) {
  BulkStream s(1, 2);
  for (int i = 0; i < 2000; ++i) {
    const double v = s.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Batched stream (the hot-loop RNG fast path)
// ---------------------------------------------------------------------------

TEST(Threefry, BatchOfFourFirstWordsMatchesSingleCalls) {
  for (const std::uint64_t seed : {0ull, 1ull, 42ull, ~0ull}) {
    for (const std::uint64_t base :
         {0ull, 1ull, 2ull, 3ull, 1000ull, ~0ull - 7}) {
      const u64x2 key{seed, 0xDEADBEEFull ^ seed};
      const std::array<std::uint64_t, 4> batch =
          threefry2x64x4_first(base, key);
      for (std::uint64_t k = 0; k < 4; ++k) {
        const u64x2 counter{base + k, 0};
        EXPECT_EQ(batch[k], threefry2x64(counter, key)[0])
            << "seed=" << seed << " base=" << base << " lane=" << k;
      }
    }
  }
}

TEST(BatchedStream, IdenticalSequenceToParticleStream) {
  for (const std::uint64_t seed : {1ull, 7ull, 0xABCDEFull}) {
    ParticleStream plain(seed, 17);
    BatchedStream batched(seed, 17);
    for (int i = 0; i < 1000; ++i) {
      // Bit identity (not EXPECT_DOUBLE_EQ closeness) is the contract the
      // golden checksums rest on.
      ASSERT_EQ(plain.next(), batched.next()) << "draw " << i;
    }
    EXPECT_EQ(plain.counter(), batched.counter());
    EXPECT_EQ(plain.draws(), batched.draws());
  }
}

TEST(BatchedStream, ResumeMidHistoryAtAnyPoint) {
  // The per-event RNG accounting resumes streams at arbitrary counters —
  // including mid-block offsets the batch buffer must not round away.
  ParticleStream reference(3, 5);
  std::vector<double> draws(64);
  for (double& d : draws) d = reference.next();
  for (std::uint64_t at = 0; at < 64; ++at) {
    BatchedStream resumed(3, 5, at);
    EXPECT_EQ(resumed.counter(), at);
    for (std::uint64_t i = at; i < 64; ++i) {
      ASSERT_EQ(draws[i], resumed.next()) << "resume at " << at;
    }
  }
}

TEST(BatchedStream, ExponentialAndRangeMatchParticleStream) {
  ParticleStream plain(11, 23);
  BatchedStream batched(11, 23);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(plain.next_exponential(), batched.next_exponential());
    ASSERT_EQ(plain.next_range(-2.5, 7.5), batched.next_range(-2.5, 7.5));
  }
  EXPECT_EQ(plain.counter(), batched.counter());
}

}  // namespace
}  // namespace neutral::rng
