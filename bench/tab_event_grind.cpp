// §VI-A in-text measurements: event grind times and the tally fraction.
//
//   * collision grind measured on the scatter problem   (paper: ~18 ns)
//   * facet grind measured on the stream problem        (paper: ~3 ns)
//   * tally share of runtime, Over Particles vs Over Events
//     (paper: ~50% vs ~22%)
//
// Grind = aggregate node time per event (runtime x phase fraction / event
// count), matching the paper's methodology.
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "util/error.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  const std::int64_t pipeline_histories = cli.option_int(
      "pipeline-histories", 1,
      "in-flight histories per thread for the profiled Over Particles "
      "runs (grind attribution is unchanged; only the drive overlaps)");
  const bool fuse_rounds = cli.flag(
      "fuse-rounds",
      "run the Over Events tally-share row with the fused single-sweep "
      "drive (kernel shares come from the profiled TSC split)");
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  NEUTRAL_REQUIRE(pipeline_histories >= 1,
                  "--pipeline-histories must be >= 1");
  const std::string csv =
      banner("tab_event_grind", "§VI-A grind times / tally fraction", scale);
  if (pipeline_histories > 1 || fuse_rounds) {
    std::printf("# drive:%s%s\n",
                pipeline_histories > 1
                    ? (" pipeline-histories=" + std::to_string(pipeline_histories))
                          .c_str()
                    : "",
                fuse_rounds ? " fuse-rounds" : "");
  }

  ResultTable grind("§VI-A — event grind times (Over Particles, profiled)",
                    {"problem", "event", "count", "ns/event (node)",
                     "phase share"});

  for (const std::string name : {"scatter", "stream", "csp"}) {
    SimulationConfig cfg;
    cfg.deck = scale.deck(name);
    cfg.profile = true;
    cfg.pipeline_histories = static_cast<std::int32_t>(pipeline_histories);
    Simulation sim(cfg);
    const RunResult r = sim.run();
    const auto report = sim.profiler()->report();

    auto add = [&](Phase phase, const char* label, std::uint64_t count) {
      if (count == 0) return;
      const double share = report.fraction(phase);
      const double ns = r.total_seconds * share * 1.0e9 /
                        static_cast<double>(count);
      grind.add_row({name, label,
                     ResultTable::cell(static_cast<unsigned long long>(count)),
                     ResultTable::cell(ns, 1), ResultTable::cell(share, 3)});
    };
    add(Phase::kCollision, "collision", r.counters.collisions);
    add(Phase::kFacet, "facet", r.counters.facets);
    add(Phase::kTally, "tally flush", r.counters.tally_flushes);
    add(Phase::kEventSearch, "event-search", r.counters.total_events());
  }
  grind.print();
  grind.write_csv(csv);

  // Tally share per scheme on csp.
  ResultTable share("§VI-A — tally share of runtime by scheme (csp)",
                    {"scheme", "tally share"});
  {
    SimulationConfig cfg;
    cfg.deck = scale.deck("csp");
    cfg.profile = true;
    cfg.pipeline_histories = static_cast<std::int32_t>(pipeline_histories);
    Simulation sim(cfg);
    sim.run();
    share.add_row({"over-particles",
                   ResultTable::cell(
                       sim.profiler()->report().fraction(Phase::kTally), 3)});
  }
  {
    SimulationConfig cfg;
    cfg.deck = scale.deck("csp");
    cfg.scheme = Scheme::kOverEvents;
    cfg.layout = Layout::kSoA;
    cfg.tally_mode = TallyMode::kDeferredAtomic;
    cfg.over_events.fuse_rounds = fuse_rounds;
    // The fused sweep only splits kernel times when profiling (the split
    // costs two TSC reads per event); the share below needs that split.
    cfg.profile = fuse_rounds;
    const RunResult r = run_sim(cfg);
    share.add_row(
        {"over-events (tally kernel)",
         ResultTable::cell(r.kernel_times.tally / r.kernel_times.total(), 3)});
  }
  share.print();

  std::printf(
      "\npaper: ~18 ns/collision (scatter), ~3 ns/facet (stream) aggregated\n"
      "over 88 Broadwell threads; tally ~50%% of Over Particles runtime vs\n"
      "~22%% of Over Events.  Expect the same ordering, scaled by this\n"
      "machine's single-thread throughput.\n");
  return 0;
}
