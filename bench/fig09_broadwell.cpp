// Figure 9: Over Particles vs Over Events on the dual-socket Broadwell,
// all three problems (§VII-A).  Native host measurements (the schemes are
// fully implemented here) plus the Broadwell-model estimates at paper scale.
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig09_broadwell", "Fig 9 (Broadwell, OP vs OE)", scale);

  ResultTable measured("Fig 9a — measured on this host (laptop scale)",
                       {"problem", "over-particles [s]", "over-events [s]",
                        "OE/OP"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    SimulationConfig op;
    op.deck = scale.deck(name);
    const double t_op = run_sim(op).total_seconds;
    SimulationConfig oe = op;
    oe.scheme = Scheme::kOverEvents;
    oe.layout = Layout::kSoA;
    oe.tally_mode = TallyMode::kDeferredAtomic;
    const double t_oe = run_sim(oe).total_seconds;
    measured.add_row({name, ResultTable::cell(t_op, 3),
                      ResultTable::cell(t_oe, 3),
                      ResultTable::cell(t_oe / t_op, 2)});
  }
  measured.print();
  measured.write_csv(csv);

  SimScale sim_scale;
  ResultTable model(
      "Fig 9b — Broadwell-model estimate at paper scale (88 threads)",
      {"problem", "over-particles [s]", "over-events [s]", "OE/OP"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    const auto dev = simt::broadwell_2699v4_dual();
    const double t_op = estimate_paper_scale(
        sim_config(dev, Scheme::kOverParticles, name, sim_scale), name,
        sim_scale).seconds;
    const double t_oe = estimate_paper_scale(
        sim_config(dev, Scheme::kOverEvents, name, sim_scale), name,
        sim_scale).seconds;
    model.add_row({name, ResultTable::cell(t_op, 2),
                   ResultTable::cell(t_oe, 2),
                   ResultTable::cell(t_oe / t_op, 2)});
  }
  model.print();
  model.write_csv("fig09_broadwell_model.csv");
  std::printf(
      "\npaper: Over Particles wins every problem on Broadwell (4.56x on\n"
      "csp); fewer atomic conflicts, register caching, vectorisation that\n"
      "never pays for its gathers (§VII-A).\n");
  return 0;
}
