// Micro-benchmark: random-number generation cost (§IV-F).
//
// The paper chose Random123's Threefry so the RNG cost measured on every
// architecture is representative of production Monte Carlo codes.  This
// compares the two counter-based generators against std::mt19937_64 and
// measures the per-draw samplers the transport loop actually uses.
#include <benchmark/benchmark.h>

#include <random>

#include "rng/philox.h"
#include "rng/stream.h"
#include "rng/threefry.h"

namespace {

using neutral::rng::ParticleStream;
using neutral::rng::philox4x32;
using neutral::rng::threefry2x64;
using neutral::rng::u64x2;

void BM_Threefry2x64(benchmark::State& state) {
  u64x2 counter{0, 0};
  const u64x2 key{42, 7};
  for (auto _ : state) {
    ++counter[0];
    benchmark::DoNotOptimize(threefry2x64(counter, key));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // 2x64 bits per block
}
BENCHMARK(BM_Threefry2x64);

void BM_Threefry2x64Reference(benchmark::State& state) {
  u64x2 counter{0, 0};
  const u64x2 key{42, 7};
  for (auto _ : state) {
    ++counter[0];
    benchmark::DoNotOptimize(neutral::rng::threefry2x64_reference(counter, key));
  }
}
BENCHMARK(BM_Threefry2x64Reference);

void BM_Philox4x32(benchmark::State& state) {
  neutral::rng::u32x4 counter{0, 0, 0, 0};
  const neutral::rng::u32x2 key{42, 7};
  for (auto _ : state) {
    ++counter[0];
    benchmark::DoNotOptimize(philox4x32(counter, key));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // 4x32 bits per block
}
BENCHMARK(BM_Philox4x32);

void BM_Mt19937_64(benchmark::State& state) {
  std::mt19937_64 gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Mt19937_64);

void BM_ParticleStreamUniform(benchmark::State& state) {
  ParticleStream stream(42, 7);
  for (auto _ : state) benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_ParticleStreamUniform);

void BM_ParticleStreamExponential(benchmark::State& state) {
  ParticleStream stream(42, 7);
  for (auto _ : state) benchmark::DoNotOptimize(stream.next_exponential());
}
BENCHMARK(BM_ParticleStreamExponential);

// Stream re-keying cost: the Over Events scheme reconstructs the stream
// from (seed, id, counter) at every collision kernel visit.
void BM_StreamRekeyAndDraw(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    ParticleStream stream(42, 7, counter);
    benchmark::DoNotOptimize(stream.next());
    counter = stream.counter();
  }
}
BENCHMARK(BM_StreamRekeyAndDraw);

}  // namespace

BENCHMARK_MAIN();
