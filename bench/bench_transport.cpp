// `bench_transport` — the recorded perf trajectory.
//
// Runs the golden decks (the same ones tests/test_golden.cpp pins) across
// scheme x layout with phase profiling on, and writes the committed
// BENCH_transport.json record: events/sec, per-phase ns/event (§VI-A grind
// times), peak bytes, and host info.  CI regenerates the document on every
// push, schema-checks it (`--check`), and uploads it as an artifact — a
// perf trajectory over the repo's history without gating merges on timing
// noise.
//
//   $ bench_transport                      # 3 decks x 2 schemes x 2 layouts
//   $ bench_transport --particles 100000 --repeats 3
//   $ bench_transport --check BENCH_transport.json   # schema check + exit
//
// Timings default to 1 OpenMP thread so ns/event is a per-core grind time
// (comparable to the paper's table) and checksums stay bit-exact run to
// run.  The checksum column doubles as a correctness anchor: for the
// default particle count it must match across every layout at fixed
// scheme, like the golden tier proves at small scale.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "io/deck_io.h"
#include "obs/bench_record.h"
#include "perf/profiler.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

#ifndef NEUTRAL_GOLDEN_DIR
#define NEUTRAL_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace neutral;

constexpr const char* kDecks[] = {"golden_stream", "golden_scatter",
                                  "golden_csp"};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Short scheme/layout tokens for the JSON record (the long display forms
/// stay in the table).
const char* scheme_token(Scheme s) {
  return s == Scheme::kOverParticles ? "particles" : "events";
}
const char* layout_token(Layout l) {
  return l == Layout::kAoS ? "aos" : "soa";
}

int check_mode(const std::string& path) {
  const std::vector<std::string> problems =
      obs::validate_bench_record(read_file(path));
  if (problems.empty()) {
    std::printf("%s: schema ok (%s)\n", path.c_str(),
                obs::kBenchTransportSchema);
    return 0;
  }
  for (const std::string& p : problems) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    const std::string out_path = cli.option(
        "out", "BENCH_transport.json", "where to write the record");
    const std::string check_path = cli.option(
        "check", "",
        "validate an existing record against the schema and exit (CI runs "
        "this on the artifact)");
    const std::string deck_dir = cli.option(
        "deck-dir", NEUTRAL_GOLDEN_DIR, "directory with golden_*.params");
    const long particles = cli.option_int(
        "particles", 20000,
        "particles per deck (0 = the deck's own count; the default is "
        "large enough for stable grind times)");
    const auto repeats = static_cast<int>(cli.option_int(
        "repeats", 1, "timing repeats per config, best-of kept"));
    const auto threads = static_cast<std::int32_t>(cli.option_int(
        "threads", 1,
        "OpenMP threads (1 keeps ns/event a per-core grind time and "
        "checksums bit-exact)"));
    if (!cli.finish()) return 0;
    if (!check_path.empty()) return check_mode(check_path);
    NEUTRAL_REQUIRE(repeats >= 1, "--repeats must be >= 1");
    NEUTRAL_REQUIRE(particles >= 0, "--particles must be >= 0");

    const HostInfo host = probe_host();
    obs::BenchDocument doc;
    doc.cpu_model = host.cpu_model;
    doc.logical_cpus = host.logical_cpus;
    doc.openmp_max_threads = host.openmp_max_threads;
    doc.threads = threads;
    doc.repeats = repeats;

    const double ghz = PhaseProfiler::tsc_ghz();
    std::printf("# bench_transport — perf trajectory record\n");
    std::printf("# %s\n", host_banner().c_str());
    std::printf("# particles=%ld repeats=%d threads=%d tsc=%.2f GHz\n",
                particles, repeats, threads, ghz);

    ResultTable table("bench_transport",
                      {"deck", "scheme", "layout", "particles", "events",
                       "events/s", "solve [s]", "tally checksum"});
    PhaseProfiler::Report all_phases;
    for (const char* deck_name : kDecks) {
      const ProblemDeck deck =
          load_deck(deck_dir + std::string("/") + deck_name + ".params");
      for (const Scheme scheme :
           {Scheme::kOverParticles, Scheme::kOverEvents}) {
        for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
          SimulationConfig config;
          config.deck = deck;
          if (particles > 0) config.deck.n_particles = particles;
          config.scheme = scheme;
          config.layout = layout;
          config.threads = threads;
          config.profile = true;
          RunResult best;
          for (int r = 0; r < repeats; ++r) {
            Simulation sim(config);
            RunResult result = sim.run();
            if (r == 0 || result.total_seconds < best.total_seconds) {
              best = std::move(result);
            }
          }
          obs::BenchResult row;
          row.deck = deck_name;
          row.scheme = scheme_token(scheme);
          row.layout = layout_token(layout);
          row.particles = config.deck.n_particles;
          row.timesteps = deck.n_timesteps;
          row.events = best.counters.total_events();
          row.seconds = best.total_seconds;
          row.events_per_second = best.events_per_second();
          row.checksum = best.tally_checksum;
          row.population = best.population;
          row.peak_mesh_bytes = best.peak_mesh_bytes;
          row.peak_bank_bytes = best.peak_bank_bytes;
          for (int p = 0; p < kNumPhases; ++p) {
            const auto phase = static_cast<Phase>(p);
            if (best.phases.visits[static_cast<std::size_t>(p)] == 0) {
              continue;
            }
            obs::BenchPhase bench_phase;
            bench_phase.phase = to_string(phase);
            bench_phase.ns_per_event =
                best.phases.cycles_per_visit(phase) / ghz;
            bench_phase.fraction = best.phases.fraction(phase);
            row.phases.push_back(std::move(bench_phase));
          }
          all_phases += best.phases;
          doc.results.push_back(std::move(row));
          table.add_row(
              {deck_name, to_string(scheme), to_string(layout),
               ResultTable::cell(
                   static_cast<long>(config.deck.n_particles)),
               ResultTable::cell(static_cast<unsigned long long>(
                   best.counters.total_events())),
               ResultTable::cell(best.events_per_second(), 3),
               ResultTable::cell(best.total_seconds, 3),
               ResultTable::cell_full(best.tally_checksum)});
        }
      }
    }
    table.print();
    std::fputs(format_grind_table(all_phases, ghz).c_str(), stdout);

    const std::string json = doc.to_json();
    // Never commit a record the schema check would reject.
    const std::vector<std::string> problems =
        obs::validate_bench_record(json);
    for (const std::string& p : problems) {
      std::fprintf(stderr, "bench_transport: self-check: %s\n", p.c_str());
    }
    NEUTRAL_REQUIRE(problems.empty(),
                    "generated record failed its own schema check");
    std::ofstream out(out_path);
    NEUTRAL_REQUIRE(out.good(), "cannot write '" + out_path + "'");
    out << json;
    NEUTRAL_REQUIRE(out.good(), "short write to '" + out_path + "'");
    std::printf("wrote %s (%zu results, schema %s)\n", out_path.c_str(),
                doc.results.size(), obs::kBenchTransportSchema);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_transport: %s\n", e.what());
    return 2;
  }
}
