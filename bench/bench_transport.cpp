// `bench_transport` — the recorded perf trajectory.
//
// Runs the golden decks (the same ones tests/test_golden.cpp pins) across
// scheme x layout and writes the committed BENCH_transport.json record:
// events/sec, per-phase ns/event (§VI-A grind times), peak bytes, and host
// info.  CI regenerates the document on every push, schema-checks it
// (`--check`), and uploads it as an artifact — a perf trajectory over the
// repo's history without gating merges on timing noise.  The paired
// BENCH_transport.baseline.json (seed-default configuration) is what
// bench_compare diffs optimisation records against.
//
//   $ bench_transport                      # 3 decks x 2 schemes x 2 layouts
//   $ bench_transport --particles 100000 --repeats 5
//   $ bench_transport --all-opts --out BENCH_transport.json
//   $ bench_transport --check BENCH_transport.json   # schema + host check
//
// Throughput is timed with profiling OFF: the per-phase TSC probes cost
// ~60-80 cycles per event phase, enough to dilute the very ratios an
// optimisation record exists to demonstrate.  A separate profiled pass
// (not timed) supplies the grind-time table, and its checksum must match
// the timed runs bit-exactly — the probes may not perturb physics.
//
// Timings default to 1 OpenMP thread so ns/event is a per-core grind time
// (comparable to the paper's table) and checksums stay bit-exact run to
// run.  The checksum column doubles as a correctness anchor: for the
// default particle count it must match across every layout at fixed
// scheme, like the golden tier proves at small scale — and across every
// optimisation flag, which is how the record proves the fast paths honest.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "io/deck_io.h"
#include "obs/bench_record.h"
#include "obs/json.h"
#include "perf/profiler.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

#ifndef NEUTRAL_GOLDEN_DIR
#define NEUTRAL_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace neutral;

constexpr const char* kDecks[] = {"golden_stream", "golden_scatter",
                                  "golden_csp"};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Short scheme/layout tokens for the JSON record (the long display forms
/// stay in the table).
const char* scheme_token(Scheme s) {
  return s == Scheme::kOverParticles ? "particles" : "events";
}
const char* layout_token(Layout l) {
  return l == Layout::kAoS ? "aos" : "soa";
}

struct RepeatStats {
  double min = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

RepeatStats repeat_stats(std::vector<double> seconds) {
  RepeatStats stats;
  std::sort(seconds.begin(), seconds.end());
  const std::size_t n = seconds.size();
  stats.min = seconds.front();
  stats.median = n % 2 == 1 ? seconds[n / 2]
                            : 0.5 * (seconds[n / 2 - 1] + seconds[n / 2]);
  double mean = 0.0;
  for (const double s : seconds) mean += s;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double s : seconds) var += (s - mean) * (s - mean);
  stats.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return stats;
}

int check_mode(const std::string& path, bool allow_host_mismatch) {
  const std::string text = read_file(path);
  const std::vector<std::string> problems = obs::validate_bench_record(text);
  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
    }
    return 1;
  }
  // A schema-valid record from a different host shape is still not a
  // usable comparison point here: the committed baseline was once taken
  // on a 1-logical-CPU container and silently read as "no regression".
  const obs::BenchHostShape recorded = obs::read_host_shape(text);
  const HostInfo host = probe_host();
  obs::BenchHostShape current;
  current.logical_cpus = host.logical_cpus;
  current.openmp_max_threads = host.openmp_max_threads;
  current.threads = recorded.threads;  // run knob, not a host property
  if (!recorded.matches(current)) {
    std::fprintf(stderr,
                 "%s: host shape mismatch\n  record : %s\n  current: %s\n"
                 "timings are not comparable across host shapes "
                 "(--allow-host-mismatch to override)\n",
                 path.c_str(), recorded.describe().c_str(),
                 current.describe().c_str());
    if (!allow_host_mismatch) return 1;
    std::fprintf(stderr, "%s: mismatch waived by --allow-host-mismatch\n",
                 path.c_str());
  }
  const std::string schema = obs::parse_json(text).find("schema")->string;
  std::printf("%s: schema ok (%s), host shape %s\n", path.c_str(),
              schema.c_str(), recorded.describe().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    const std::string out_path = cli.option(
        "out", "BENCH_transport.json", "where to write the record");
    const std::string check_path = cli.option(
        "check", "",
        "validate an existing record against the schema, refuse a host "
        "shape that differs from this machine, and exit (CI runs this on "
        "the artifact)");
    const bool allow_host_mismatch = cli.flag(
        "allow-host-mismatch",
        "downgrade the --check host-shape refusal to a warning");
    const std::string deck_dir = cli.option(
        "deck-dir", NEUTRAL_GOLDEN_DIR, "directory with golden_*.params");
    const long particles = cli.option_int(
        "particles", 20000,
        "particles per deck (0 = the deck's own count; the default is "
        "large enough for stable grind times)");
    const auto repeats = static_cast<int>(cli.option_int(
        "repeats", 1,
        "timing repeats per config; the record keeps best-of for "
        "events/sec plus median and stddev per row"));
    const auto threads = static_cast<std::int32_t>(cli.option_int(
        "threads", 1,
        "OpenMP threads (1 keeps ns/event a per-core grind time and "
        "checksums bit-exact)"));
    const std::string lookup_name = cli.option(
        "lookup", "cached",
        "XS lookup strategy: binary|cached|bucketed|unionised");
    bool rng_batch = cli.flag(
        "rng-batch", "batched RNG draws (bit-identical sequence)");
    bool branchless_events = cli.flag(
        "branchless-events", "select-based facet/event-distance math");
    bool sort_events = cli.flag(
        "sort-events", "event-sorted Over Events traversal");
    bool tally_direct = cli.flag(
        "tally-direct",
        "non-atomic tally deposits at one thread (bit-identical)");
    bool fuse_rounds = cli.flag(
        "fuse-rounds",
        "fused Over Events search+handler sweep (bit-identical)");
    long pipeline_histories = cli.option_int(
        "pipeline-histories", 1,
        "K in-flight histories per thread in the Over Particles loop "
        "(bit-identical tallies; K >= 1, 1 = off)");
    const bool all_opts = cli.flag(
        "all-opts",
        "shorthand for --lookup unionised --rng-batch --branchless-events "
        "--sort-events --tally-direct --fuse-rounds "
        "--pipeline-histories 4 (the configuration the optimised record "
        "commits)");
    const bool no_phases = cli.flag(
        "no-phases",
        "skip the separate profiled pass (faster; record has empty phase "
        "tables)");
    if (!cli.finish()) return 0;
    if (!check_path.empty()) {
      return check_mode(check_path, allow_host_mismatch);
    }
    NEUTRAL_REQUIRE(repeats >= 1, "--repeats must be >= 1");
    NEUTRAL_REQUIRE(particles >= 0, "--particles must be >= 0");
    XsLookup lookup = lookup_from_string(lookup_name);
    if (all_opts) {
      lookup = XsLookup::kUnionised;
      rng_batch = branchless_events = sort_events = tally_direct = true;
      fuse_rounds = true;
      if (pipeline_histories == 1) pipeline_histories = 4;
    }
    NEUTRAL_REQUIRE(pipeline_histories >= 1,
                    "--pipeline-histories must be >= 1");

    const HostInfo host = probe_host();
    obs::BenchDocument doc;
    doc.cpu_model = host.cpu_model;
    doc.logical_cpus = host.logical_cpus;
    doc.openmp_max_threads = host.openmp_max_threads;
    doc.threads = threads;
    doc.repeats = repeats;
    doc.lookup = to_string(lookup);
    doc.rng_batch = rng_batch;
    doc.branchless_events = branchless_events;
    doc.sort_events = sort_events;
    doc.tally_direct = tally_direct;
    doc.fuse_rounds = fuse_rounds;
    doc.pipeline_histories = static_cast<std::int32_t>(pipeline_histories);

    const double ghz = PhaseProfiler::tsc_ghz();
    std::printf("# bench_transport — perf trajectory record\n");
    std::printf("# %s\n", host_banner().c_str());
    // The host shape gates every later comparison; print it where it
    // cannot be missed, not just inside the JSON.
    std::printf("# HOST SHAPE: %d logical CPUs, %d OpenMP max threads — "
                "records from other shapes are not comparable\n",
                host.logical_cpus, host.openmp_max_threads);
    std::printf("# particles=%ld repeats=%d threads=%d tsc=%.2f GHz\n",
                particles, repeats, threads, ghz);
    std::printf("# config: lookup=%s rng_batch=%d branchless_events=%d "
                "sort_events=%d tally_direct=%d fuse_rounds=%d "
                "pipeline_histories=%ld\n",
                to_string(lookup), rng_batch ? 1 : 0,
                branchless_events ? 1 : 0, sort_events ? 1 : 0,
                tally_direct ? 1 : 0, fuse_rounds ? 1 : 0,
                pipeline_histories);

    ResultTable table("bench_transport",
                      {"deck", "scheme", "layout", "particles", "events",
                       "events/s", "best [s]", "median [s]", "stddev [s]",
                       "tally checksum"});
    PhaseProfiler::Report all_phases;
    for (const char* deck_name : kDecks) {
      const ProblemDeck deck =
          load_deck(deck_dir + std::string("/") + deck_name + ".params");
      for (const Scheme scheme :
           {Scheme::kOverParticles, Scheme::kOverEvents}) {
        for (const Layout layout : {Layout::kAoS, Layout::kSoA}) {
          SimulationConfig config;
          config.deck = deck;
          if (particles > 0) config.deck.n_particles = particles;
          config.scheme = scheme;
          config.layout = layout;
          config.threads = threads;
          config.lookup = lookup;
          config.rng_batch = rng_batch;
          config.branchless_events = branchless_events;
          config.over_events.sort_events = sort_events;
          config.over_events.fuse_rounds = fuse_rounds;
          config.pipeline_histories =
              static_cast<std::int32_t>(pipeline_histories);
          config.tally_direct = tally_direct;
          config.profile = false;  // probes would dilute the timings
          RunResult best;
          std::vector<double> seconds;
          seconds.reserve(static_cast<std::size_t>(repeats));
          for (int r = 0; r < repeats; ++r) {
            Simulation sim(config);
            RunResult result = sim.run();
            seconds.push_back(result.total_seconds);
            if (r == 0 || result.total_seconds < best.total_seconds) {
              best = std::move(result);
            }
          }
          const RepeatStats stats = repeat_stats(seconds);

          obs::BenchResult row;
          row.deck = deck_name;
          row.scheme = scheme_token(scheme);
          row.layout = layout_token(layout);
          row.particles = config.deck.n_particles;
          row.timesteps = deck.n_timesteps;
          row.events = best.counters.total_events();
          row.seconds = stats.min;
          row.seconds_median = stats.median;
          row.seconds_stddev = stats.stddev;
          row.events_per_second = best.events_per_second();
          row.checksum = best.tally_checksum;
          row.population = best.population;
          row.peak_mesh_bytes = best.peak_mesh_bytes;
          row.peak_bank_bytes = best.peak_bank_bytes;

          if (!no_phases) {
            // Separate profiled pass: grind times without contaminating
            // the throughput numbers above.  Physics must be untouched.
            config.profile = true;
            Simulation sim(config);
            const RunResult profiled = sim.run();
            if (threads == 1) {
              NEUTRAL_REQUIRE(
                  profiled.tally_checksum == best.tally_checksum,
                  "profiled pass changed the checksum — probes are "
                  "perturbing physics");
            }
            for (int p = 0; p < kNumPhases; ++p) {
              const auto phase = static_cast<Phase>(p);
              if (profiled.phases.visits[static_cast<std::size_t>(p)] ==
                  0) {
                continue;
              }
              obs::BenchPhase bench_phase;
              bench_phase.phase = to_string(phase);
              bench_phase.ns_per_event =
                  profiled.phases.cycles_per_visit(phase) / ghz;
              bench_phase.fraction = profiled.phases.fraction(phase);
              row.phases.push_back(std::move(bench_phase));
            }
            all_phases += profiled.phases;
          }
          doc.results.push_back(std::move(row));
          table.add_row(
              {deck_name, to_string(scheme), to_string(layout),
               ResultTable::cell(
                   static_cast<long>(config.deck.n_particles)),
               ResultTable::cell(static_cast<unsigned long long>(
                   best.counters.total_events())),
               ResultTable::cell(best.events_per_second(), 3),
               ResultTable::cell(stats.min, 3),
               ResultTable::cell(stats.median, 3),
               ResultTable::cell(stats.stddev, 4),
               ResultTable::cell_full(best.tally_checksum)});
        }
      }
    }
    table.print();
    if (!no_phases) {
      std::fputs(format_grind_table(all_phases, ghz).c_str(), stdout);
    }

    const std::string json = doc.to_json();
    // Never commit a record the schema check would reject.
    const std::vector<std::string> problems =
        obs::validate_bench_record(json);
    for (const std::string& p : problems) {
      std::fprintf(stderr, "bench_transport: self-check: %s\n", p.c_str());
    }
    NEUTRAL_REQUIRE(problems.empty(),
                    "generated record failed its own schema check");
    std::ofstream out(out_path);
    NEUTRAL_REQUIRE(out.good(), "cannot write '" + out_path + "'");
    out << json;
    NEUTRAL_REQUIRE(out.good(), "short write to '" + out_path + "'");
    std::printf("wrote %s (%zu results, schema %s)\n", out_path.c_str(),
                doc.results.size(), obs::kBenchTransportSchema);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_transport: %s\n", e.what());
    return 2;
  }
}
