// Figure 5: SoA vs AoS particle storage for the Over Particles scheme
// (§VI-D).  The paper finds AoS faster on CPUs for every problem: a
// history touches all of its particle's fields, so the record layout loads
// one or two lines where SoA scatters across fourteen arrays.
//
// The layout grid is expanded by the batch sweep expander and executed by
// the batch engine with a single worker — serial execution keeps the
// timings honest, while the shared world cache means each problem's mesh,
// density field and XS tables are built once and reused across both
// layouts and every repetition.
#include "batch/engine.h"
#include "batch/sweep.h"
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;
using namespace neutral::batch;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv = banner("fig05_layout", "Fig 5 (SoA vs AoS)", scale);

  // One engine for the whole bench: worlds stay cached across problems
  // and repetitions.  workers=1 serialises jobs so per-job seconds are
  // comparable with the rest of the harness.
  EngineOptions options;
  options.workers = 1;
  BatchEngine engine(options);

  ResultTable table("Fig 5 — Over Particles runtime by particle layout",
                    {"problem", "AoS [s]", "SoA [s]", "SoA/AoS"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    SweepSpec spec;
    spec.base.deck = scale.deck(name);
    spec.axes.layouts = {Layout::kAoS, Layout::kSoA};

    // Best-of-reps, matching bench_common's best_seconds.
    double best_aos = 1.0e300;
    double best_soa = 1.0e300;
    for (int r = 0; r < scale.reps; ++r) {
      const BatchReport report = engine.run(expand_sweep(spec));
      if (report.failed() > 0) {
        std::fprintf(stderr, "fig05_layout: job failed: %s\n",
                     report.jobs[0].ok ? report.jobs[1].error.c_str()
                                       : report.jobs[0].error.c_str());
        return 1;
      }
      best_aos = std::min(best_aos, report.jobs[0].result.total_seconds);
      best_soa = std::min(best_soa, report.jobs[1].result.total_seconds);
    }
    table.add_row({name, ResultTable::cell(best_aos, 3),
                   ResultTable::cell(best_soa, 3),
                   ResultTable::cell(best_soa / best_aos, 3)});
  }

  table.print();
  table.write_csv(csv);
  std::printf("\npaper: SoA slower than AoS on CPU for all test cases.\n");
  return 0;
}
