// Figure 5: SoA vs AoS particle storage for the Over Particles scheme
// (§VI-D).  The paper finds AoS faster on CPUs for every problem: a
// history touches all of its particle's fields, so the record layout loads
// one or two lines where SoA scatters across fourteen arrays.
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv = banner("fig05_layout", "Fig 5 (SoA vs AoS)", scale);

  ResultTable table("Fig 5 — Over Particles runtime by particle layout",
                    {"problem", "AoS [s]", "SoA [s]", "SoA/AoS"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    SimulationConfig aos;
    aos.deck = scale.deck(name);
    aos.layout = Layout::kAoS;
    SimulationConfig soa = aos;
    soa.layout = Layout::kSoA;
    const double t_aos = best_seconds(aos, scale.reps);
    const double t_soa = best_seconds(soa, scale.reps);
    table.add_row({name, ResultTable::cell(t_aos, 3),
                   ResultTable::cell(t_soa, 3),
                   ResultTable::cell(t_soa / t_aos, 3)});
  }

  table.print();
  table.write_csv(csv);
  std::printf("\npaper: SoA slower than AoS on CPU for all test cases.\n");
  return 0;
}
