// Figure 7: tally privatisation (§VI-F).
//
// Removing the atomic by giving each thread a private tally mesh bought
// only 1.16-1.18x on csp in the paper, at a footprint multiplied by the
// thread count; merging every timestep (the realistic coupling mode) was a
// net loss.  All three modes are measured per problem.
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig07_tally_privatisation", "Fig 7 (tally privatisation)", scale);

  ResultTable table(
      "Fig 7 — tally thread-safety strategy (Over Particles)",
      {"problem", "mode", "seconds", "speedup vs atomic", "tally MB"});

  for (const std::string name : {"stream", "scatter", "csp"}) {
    double atomic_seconds = 0.0;
    for (const TallyMode mode :
         {TallyMode::kAtomic, TallyMode::kPrivatized,
          TallyMode::kPrivatizedMergeEveryStep}) {
      SimulationConfig cfg;
      cfg.deck = scale.deck(name);
      // Multiple timesteps expose the per-step merge cost.
      cfg.deck.n_timesteps = 2;
      cfg.tally_mode = mode;
      const double seconds = best_seconds(cfg, scale.reps);
      if (mode == TallyMode::kAtomic) atomic_seconds = seconds;

      Simulation probe(cfg);  // footprint query without timing pressure
      const double mb = static_cast<double>(probe.tally().footprint_bytes()) /
                        (1024.0 * 1024.0);
      table.add_row({name, to_string(mode), ResultTable::cell(seconds, 3),
                     ResultTable::cell(atomic_seconds / seconds, 3),
                     ResultTable::cell(mb, 1)});
    }
  }

  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: privatised ~1.16-1.18x faster on csp (BDW/KNL); merge-per-step\n"
      "slower than atomics everywhere; footprint scales with thread count\n"
      "(0.3 GB -> 31 GB at 256 threads).\n");
  return 0;
}
