// Figure 4: OpenMP schedule-clause sweep on the csp problem (§VI-C).
//
// The paper found at most 1.07x between policies — the load imbalance from
// uneven history lengths is smaller than expected.
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig04_scheduling", "Fig 4 (schedule clause, csp)", scale);

  const SchedulePolicy policies[] = {
      SchedulePolicy::statics(),        SchedulePolicy::static_chunk(1),
      SchedulePolicy::static_chunk(64), SchedulePolicy::dynamic(),
      SchedulePolicy::dynamic(64),      SchedulePolicy::guided(),
  };

  ResultTable table("Fig 4 — csp runtime by OpenMP schedule (Over Particles)",
                    {"schedule", "seconds", "vs static"});
  double static_seconds = 0.0;
  for (const SchedulePolicy& policy : policies) {
    SimulationConfig cfg;
    cfg.deck = scale.deck("csp");
    cfg.schedule = policy;
    const double seconds = best_seconds(cfg, scale.reps);
    if (policy.kind == ScheduleKind::kStatic) static_seconds = seconds;
    table.add_row({policy.name(), ResultTable::cell(seconds, 3),
                   ResultTable::cell(static_seconds > 0.0
                                         ? seconds / static_seconds
                                         : 1.0,
                                     3)});
  }

  table.print();
  table.write_csv(csv);
  std::printf("\npaper: <=1.07x spread between scheduling policies.\n");
  return 0;
}
