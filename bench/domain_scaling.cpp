// Domain-decomposition scaling: one deck, tiled over growing subdomain
// grids, with a hard determinism gate.
//
// Bank decomposition (shard_scaling) splits the particles but replicates
// the whole tally/density footprint per shard; domain decomposition splits
// the footprint itself.  The table reports, per grid, the wall clock, the
// migration traffic that pays for the split, and the per-subdomain peak
// slab bytes — the column that must SHRINK as the grid refines, because
// slab size is what decides whether a deck fits a node at all.  The
// checksum column is printed at full precision: every row must be
// bit-identical to the 1x1 run or the binary exits non-zero (the same
// reduction-determinism gate shard_scaling enforces).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "batch/domain.h"
#include "batch/engine.h"
#include "bench_common.h"
#include "runtime/host_info.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.particle_scale = 0.05;  // one "large" deck, as in shard_scaling
  const long workers_opt = cli.option_int(
      "workers", 0, "engine workers per transport round (0 = logical cpus)");
  const std::string scheme_opt = cli.option(
      "scheme", "particles", "particles|events — domains compose with both");
  const std::string layout_opt =
      cli.option("layout", "aos", "aos|soa bank layout");
  const long shards_opt = cli.option_int(
      "shards", 1, "bank shards nested inside every subdomain");
  if (!BenchScale::parse(cli, &scale)) return 0;

  const std::int32_t hw = probe_host().logical_cpus;
  const std::int32_t workers =
      workers_opt > 0 ? static_cast<std::int32_t>(workers_opt) : hw;

  SimulationConfig base;
  base.deck = scale.deck("csp");
  base.scheme = scheme_from_string(scheme_opt);
  base.layout = layout_from_string(layout_opt);
  base.threads = 1;

  const std::string csv = banner(
      "domain_scaling", "mesh decomposition scaling + determinism gate",
      scale);
  std::printf("# deck csp, %d x %d cells, %lld particles, %d workers, "
              "%s/%s x %ld bank shards\n",
              base.deck.nx, base.deck.ny,
              static_cast<long long>(base.deck.n_particles), workers,
              to_string(base.scheme), to_string(base.layout), shards_opt);

  ResultTable table("domain_scaling — one deck, R x C subdomains",
                    {"grid", "subdomains", "wall [s]", "events/s",
                     "migrations", "rounds", "peak slab [MiB]",
                     "slab vs full", "peak bank [MiB]", "tally checksum"});

  const std::pair<std::int32_t, std::int32_t> grids[] = {
      {1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 4}};

  double reference_checksum = 0.0;
  std::int64_t reference_population = 0;
  std::uint64_t full_slab = 0;
  bool identical = true;
  for (const auto& [rows, cols] : grids) {
    batch::EngineOptions options;
    options.workers = workers;
    batch::BatchEngine engine(options);
    batch::DomainOptions opt;
    opt.rows = rows;
    opt.cols = cols;
    opt.shards = static_cast<std::int32_t>(shards_opt > 0 ? shards_opt : 1);

    double wall = 1.0e300;
    batch::DomainRunReport best;
    for (int rep = 0; rep < scale.reps; ++rep) {
      batch::DomainRunReport report = batch::run_domains(engine, base, opt);
      if (!report.ok) {
        std::fprintf(stderr, "domain_scaling: %s\n", report.error.c_str());
        return 2;
      }
      if (report.wall_seconds < wall) {
        wall = report.wall_seconds;
        best = std::move(report);
      }
    }
    if (rows == 1 && cols == 1) {
      reference_checksum = best.merged.tally_checksum;
      reference_population = best.merged.population;
      full_slab = best.peak_mesh_bytes;
    } else if (best.merged.tally_checksum != reference_checksum ||
               best.merged.population != reference_population) {
      identical = false;
    }

    table.add_row(
        {std::to_string(best.grid.rows) + "x" + std::to_string(best.grid.cols),
         std::to_string(best.grid.count()),
         ResultTable::cell(wall, 4),
         ResultTable::cell(static_cast<double>(
                               best.merged.counters.total_events()) / wall,
                           3),
         ResultTable::cell(
             static_cast<unsigned long long>(best.migrations)),
         std::to_string(best.rounds),
         ResultTable::cell(
             static_cast<double>(best.peak_mesh_bytes) / (1 << 20), 3),
         ResultTable::cell(full_slab > 0
                               ? static_cast<double>(best.peak_mesh_bytes) /
                                     static_cast<double>(full_slab)
                               : 1.0,
                           3),
         ResultTable::cell(
             static_cast<double>(best.merged.peak_bank_bytes) / (1 << 20),
             3),
         ResultTable::cell_full(best.merged.tally_checksum)});
  }

  table.print();
  table.write_csv(csv);
  std::printf("\ndeterminism gate: every grid's checksum/population "
              "identical to 1x1 -> %s\n",
              identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}
