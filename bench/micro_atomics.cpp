// Micro-benchmark: the atomic read-modify-write at the heart of the tally
// (§V-C, §VI-F).  Measures the uncontended cost, the contention penalty as
// threads pile onto fewer cells, and the deferred-drain alternative.
#include <benchmark/benchmark.h>
#include <omp.h>

#include "core/tally.h"
#include "util/aligned.h"

namespace {

using neutral::EnergyTally;
using neutral::TallyMode;

/// Plain add: the no-thread-safety baseline.
void BM_PlainAdd(benchmark::State& state) {
  neutral::aligned_vector<double> cells(1024, 0.0);
  std::size_t i = 0;
  for (auto _ : state) {
    cells[i] += 1.0;
    i = (i + 1) & 1023;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_PlainAdd);

/// omp atomic on a walking index — the tally's hot operation, uncontended.
void BM_OmpAtomicAdd(benchmark::State& state) {
  neutral::aligned_vector<double> cells(1024, 0.0);
  std::size_t i = 0;
  for (auto _ : state) {
    double& slot = cells[i];
#pragma omp atomic update
    slot += 1.0;
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_OmpAtomicAdd);

/// Tally deposit through each mode (single-threaded cost of the interface).
template <TallyMode Mode>
void BM_TallyDeposit(benchmark::State& state) {
  EnergyTally tally(1024, Mode, omp_get_max_threads());
  std::int64_t i = 0;
  for (auto _ : state) {
    tally.deposit(i, 1.0, 0);
    i = (i + 1) & 1023;
  }
  tally.merge();
  benchmark::DoNotOptimize(tally.total());
}
BENCHMARK(BM_TallyDeposit<TallyMode::kAtomic>);
BENCHMARK(BM_TallyDeposit<TallyMode::kPrivatized>);
BENCHMARK(BM_TallyDeposit<TallyMode::kDeferredAtomic>);

/// Contention sweep: all threads hammer `range` cells (arg).  Smaller range
/// = more same-line conflicts, the §VII-A.1 effect.
void BM_ContendedAtomics(benchmark::State& state) {
  const auto range = static_cast<std::size_t>(state.range(0));
  static neutral::aligned_vector<double> cells;
  if (state.thread_index() == 0) cells.assign(1024, 0.0);
  std::size_t i = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    double& slot = cells[i % range];
#pragma omp atomic update
    slot += 1.0;
    ++i;
  }
}
BENCHMARK(BM_ContendedAtomics)->Arg(1)->Arg(16)->Arg(1024)->ThreadRange(1, 4);

/// Deferred mode end-to-end: buffer then drain (the §VI-G workaround).
void BM_DeferredDrain(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  EnergyTally tally(1024, TallyMode::kDeferredAtomic, 1);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < n; ++i) tally.deposit(i & 1023, 1.0, 0);
    tally.drain_deferred();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeferredDrain)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
