// Shared plumbing for the machine-model (simulator) figure benches.
//
// Figures 9-14 compare architectures this reproduction does not have
// (Broadwell node, KNL, POWER8, K20X, P100).  The simulator replays the
// real transport physics under per-device cost models (src/simt) on a
// shrunken deck, then extrapolates per-particle cost to the paper's
// particle count.  Reported seconds are therefore *estimates for the
// paper-scale problem*; their ratios are the reproduced result.
#pragma once

#include <string>

#include "bench_common.h"
#include "simt/device.h"
#include "simt/transport_sim.h"

namespace neutral::bench {

struct SimScale {
  double mesh_scale = 0.064;        ///< 4000 -> 256 cells per axis
  std::int64_t particles = 2048;    ///< simulated histories per config
  /// Fast paths to model (default: the paper's baseline kernels).  The
  /// replayed physics is bit-identical either way; only the cost charging
  /// changes, so figures can compare baseline vs optimised estimates.
  XsLookup lookup = XsLookup::kCachedLinear;
  bool rng_batch = false;
  bool branchless_events = false;

  static bool parse(CliParser& cli, SimScale* out) {
    out->mesh_scale = cli.option_double(
        "mesh-scale", env_or_double("NEUTRAL_BENCH_SCALE", out->mesh_scale),
        "mesh resolution as a fraction of the paper's 4000^2");
    out->particles = cli.option_int("particles", out->particles,
                                    "histories to replay per configuration");
    out->lookup = lookup_from_string(
        cli.option("lookup", "cached",
                   "XS lookup to model (binary|cached|bucketed|unionised)"));
    out->rng_batch =
        cli.flag("rng-batch", "model the batched counter-based RNG");
    out->branchless_events = cli.flag(
        "branchless-events",
        "model branchless event selection in the Over Events kernels");
    return cli.finish();
  }
};

/// Paper particle counts per deck (§IV-B).
inline std::int64_t paper_particles(const std::string& deck_name) {
  return deck_name == "scatter" ? 10000000 : 1000000;
}

/// Build a simulator config for (device, scheme, deck).
inline simt::SimtConfig sim_config(const simt::DeviceModel& device,
                                   Scheme scheme, const std::string& deck_name,
                                   const SimScale& scale) {
  simt::SimtConfig cfg;
  cfg.device = device;
  cfg.scheme = scheme;
  cfg.deck = deck_by_name(deck_name, scale.mesh_scale, 1.0);
  cfg.deck.n_particles = scale.particles;
  cfg.deck.n_timesteps = 1;
  // The modelled cache shrinks with the mesh (simt::SimtConfig); the XS
  // tables must shrink alongside or they thrash a cache they would be
  // resident in at paper scale (240 KB table vs 32-110 MB CPU caches).
  cfg.deck.xs.points = std::max<std::int32_t>(
      256, static_cast<std::int32_t>(30000 * scale.mesh_scale));
  cfg.lookup = scale.lookup;
  cfg.rng_batch = scale.rng_batch;
  cfg.branchless_events = scale.branchless_events;
  cfg.amortize_to_particles = paper_particles(deck_name);
  return cfg;
}

/// Run and extrapolate to the paper's particle count.
inline simt::SimtEstimate estimate_paper_scale(const simt::SimtConfig& cfg,
                                               const std::string& deck_name,
                                               const SimScale& scale) {
  simt::SimtEstimate est = simt::simulate_transport(cfg);
  est.seconds =
      simt::scale_seconds(est, scale.particles, paper_particles(deck_name));
  return est;
}

inline std::string sim_banner(const std::string& binary_name,
                              const std::string& figure,
                              const SimScale& scale) {
  std::printf("# %s — reproduces %s (machine-model estimates)\n",
              binary_name.c_str(), figure.c_str());
  std::printf(
      "# replayed %lld histories on a %.3g-scale mesh; seconds are\n"
      "# extrapolated to the paper's particle counts (hardware-gated\n"
      "# experiment — see DESIGN.md section 2)\n",
      static_cast<long long>(scale.particles), scale.mesh_scale);
  if (scale.lookup != XsLookup::kCachedLinear || scale.rng_batch ||
      scale.branchless_events) {
    std::printf("# modelled fast paths: lookup=%s%s%s\n",
                to_string(scale.lookup), scale.rng_batch ? " rng-batch" : "",
                scale.branchless_events ? " branchless-events" : "");
  }
  return binary_name + ".csv";
}

}  // namespace neutral::bench
