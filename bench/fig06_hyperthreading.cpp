// Figure 6: hyperthreading / SMT sweep (§VI-E).
//
// The paper's latency-bound transport gains 1.37x (Broadwell HT), 2.16x
// (KNL SMT4) and 6.2x (POWER8 SMT8) from filling every hardware thread,
// while the bandwidth-bound `flow` proxy gains nothing and loses ~1.2x when
// oversubscribed.  Host measurements plus the SMT model for the paper CPUs.
#include "bench_common.h"
#include "proxies/flow.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig06_hyperthreading", "Fig 6 (hyperthreading/SMT)", scale);

  const std::int32_t hw = probe_host().logical_cpus;
  ResultTable measured("Fig 6a — measured thread sweep (this host, csp)",
                       {"threads", "neutral [s]", "flow [s]"});
  for (std::int32_t t = 1; t <= 4 * hw; t *= 2) {
    set_thread_count(t);
    SimulationConfig cfg;
    cfg.deck = scale.deck("csp");
    cfg.threads = t;
    const double t_neutral = run_sim(cfg).total_seconds;

    FlowConfig fc;
    fc.nx = fc.ny = static_cast<std::int32_t>(512 * scale.mesh_scale / 0.08);
    FlowSolver flow(fc);
    flow.initialise_pulse();
    const double t_flow = flow.run(20);
    measured.add_row({ResultTable::cell(static_cast<long>(t)),
                      ResultTable::cell(t_neutral, 3),
                      ResultTable::cell(t_flow, 3)});
  }
  set_thread_count(hw);
  measured.print();
  measured.write_csv(csv);
  if (hw == 1) {
    std::printf("NOTE: 1 logical CPU — the sweep only shows oversubscription "
                "overhead; SMT gains live in the model below.\n");
  }

  SimScale sim_scale;
  sim_scale.mesh_scale = scale.mesh_scale;
  sim_scale.particles = 1024;
  ResultTable model(
      "Fig 6b — model SMT gain (csp, Over Particles): all hardware threads "
      "vs 1/core",
      {"device", "1 thread/core [s]", "all SMT [s]", "SMT speedup"});
  struct Case {
    simt::DeviceModel device;
    const char* paper;
  };
  for (const Case& c : {Case{simt::broadwell_2699v4_dual(), "1.37x"},
                        Case{simt::knl_7210_ddr(), "2.16x"},
                        Case{simt::power8_dual10(), "6.2x"}}) {
    auto cfg = sim_config(c.device, Scheme::kOverParticles, "csp", sim_scale);
    cfg.threads = c.device.compute_units;
    const double t_one = simt::simulate_transport(cfg).seconds;
    cfg.threads = c.device.compute_units * c.device.max_contexts;
    const double t_smt = simt::simulate_transport(cfg).seconds;
    model.add_row({c.device.name + std::string(" (paper ") + c.paper + ")",
                   ResultTable::cell(t_one, 4), ResultTable::cell(t_smt, 4),
                   ResultTable::cell(t_one / t_smt, 2)});
  }
  model.print();
  model.write_csv("fig06_hyperthreading_model.csv");
  std::printf(
      "\npaper: neutral gains 1.37x/2.16x/6.2x from SMT on BDW/KNL/POWER8;\n"
      "flow gains nothing (bandwidth already saturated) and loses ~1.2x when\n"
      "oversubscribed.\n");
  return 0;
}
