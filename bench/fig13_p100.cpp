// Figure 13: NVIDIA P100 (§VII-E) — OP vs OE, the register/occupancy
// study (§VI-H: 64 vs 79 vs 102 regs/thread), and the §VIII-A native
// FP64-atomic ablation.  Hardware-gated: Pascal machine model.
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  SimScale scale;
  if (!SimScale::parse(cli, &scale)) return 0;
  const std::string csv = sim_banner("fig13_p100", "Fig 13 (P100)", scale);

  ResultTable table("Fig 13 — P100 estimates at paper scale",
                    {"problem", "scheme", "seconds", "achieved GB/s",
                     "BW util", "mem-stall frac"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
      const auto est = estimate_paper_scale(
          sim_config(simt::p100(), scheme, name, scale), name, scale);
      table.add_row({name, to_string(scheme),
                     ResultTable::cell(est.seconds, 2),
                     ResultTable::cell(est.achieved_gbps, 1),
                     ResultTable::cell(est.bandwidth_utilization, 2),
                     ResultTable::cell(est.memory_stall_fraction, 2)});
    }
  }
  table.print();
  table.write_csv(csv);

  // Register/occupancy sweep on both GPU generations (§VI-H, §VII-E).
  // Needs enough warps for occupancy to bind.
  SimScale occupancy_scale = scale;
  occupancy_scale.particles = std::max<std::int64_t>(scale.particles, 16384);
  ResultTable regs("Fig 13b — register cap vs occupancy (csp, OP)",
                   {"device", "regs/thread", "resident warps", "seconds"});
  for (const auto& device : {simt::k20x(), simt::p100()}) {
    for (const std::int32_t r : {64, 79, 102}) {
      auto cfg = sim_config(device, Scheme::kOverParticles, "csp",
                            occupancy_scale);
      cfg.regs_per_thread = r;
      const auto est = estimate_paper_scale(cfg, "csp", occupancy_scale);
      regs.add_row({device.name, ResultTable::cell(static_cast<long>(r)),
                    ResultTable::cell(static_cast<long>(est.contexts)),
                    ResultTable::cell(est.seconds, 2)});
    }
  }
  regs.print();
  regs.write_csv("fig13_p100_registers.csv");

  // §VIII-A: hardware FP64 atomicAdd ablation.
  ResultTable atomics("§VIII-A — native vs emulated FP64 atomics (csp, OP, P100)",
                      {"atomics", "seconds", "speedup"});
  auto p100_native = simt::p100();
  auto p100_emulated = simt::p100();
  p100_emulated.native_fp64_atomics = false;
  const double t_native = estimate_paper_scale(
      sim_config(p100_native, Scheme::kOverParticles, "csp", scale), "csp",
      scale).seconds;
  const double t_emulated = estimate_paper_scale(
      sim_config(p100_emulated, Scheme::kOverParticles, "csp", scale), "csp",
      scale).seconds;
  atomics.add_row({"emulated (CAS)", ResultTable::cell(t_emulated, 2),
                   ResultTable::cell(1.0, 2)});
  atomics.add_row({"native atomicAdd", ResultTable::cell(t_native, 2),
                   ResultTable::cell(t_emulated / t_native, 2)});
  atomics.print();
  atomics.write_csv("fig13_p100_atomics.csv");

  std::printf(
      "\npaper: OP 3.64x faster than OE on csp; 125 GB/s (~25%% util); 87%%\n"
      "of kernel time on memory dependencies; capping to 64 regs helps K20X\n"
      "1.6x but *hurts* P100 1.07x (model reproduces the K20X direction;\n"
      "see EXPERIMENTS.md for the P100 deviation); native FP64 atomics worth\n"
      "1.20x on P100.\n");
  return 0;
}
