// Figure 8: per-method vectorisation of the Over Events scheme (§VI-G).
//
// The atomics were hoisted into a separate tally loop so the event kernels
// could vectorise; the paper then measured per-kernel speedup of the
// vectorised build (substantial on KNL, facets-only on Broadwell).  Here
// each kernel's simd variant is toggled independently and its accumulated
// kernel time compared against the scalar build.
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;

namespace {

OverEventsKernelTimes measure(const BenchScale& scale, bool fuse_rounds,
                              bool simd_search, bool simd_coll,
                              bool simd_facet) {
  SimulationConfig cfg;
  cfg.deck = scale.deck("csp");
  cfg.scheme = Scheme::kOverEvents;
  cfg.layout = Layout::kSoA;
  cfg.tally_mode = TallyMode::kDeferredAtomic;
  cfg.over_events.fuse_rounds = fuse_rounds;
  // The fused sweep only records the per-kernel time split when profiling
  // (the split costs two TSC reads per event); this figure needs the split.
  cfg.profile = fuse_rounds;
  cfg.over_events.simd_event_search = simd_search;
  cfg.over_events.simd_collisions = simd_coll;
  cfg.over_events.simd_facets = simd_facet;
  return run_sim(cfg).kernel_times;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  const bool fuse_rounds = cli.flag(
      "fuse-rounds",
      "time the fused single-sweep drive instead of the kernel-per-round "
      "drive (per-kernel times come from the profiled TSC split)");
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig08_vectorisation", "Fig 8 (Over Events vectorisation)", scale);
  if (fuse_rounds) std::printf("# drive: fused rounds (--fuse-rounds)\n");

  const OverEventsKernelTimes scalar =
      measure(scale, fuse_rounds, false, false, false);
  const OverEventsKernelTimes simd =
      measure(scale, fuse_rounds, true, true, true);

  ResultTable table("Fig 8 — per-method kernel time, scalar vs simd (csp)",
                    {"method", "scalar [s]", "simd [s]", "speedup"});
  auto row = [&](const char* method, double t_scalar, double t_simd) {
    table.add_row({method, ResultTable::cell(t_scalar, 4),
                   ResultTable::cell(t_simd, 4),
                   ResultTable::cell(t_simd > 0.0 ? t_scalar / t_simd : 0.0, 3)});
  };
  row("event-search", scalar.event_search, simd.event_search);
  row("collisions", scalar.collisions, simd.collisions);
  row("facets", scalar.facets, simd.facets);
  row("tally (separate loop)", scalar.tally, simd.tally);
  row("total", scalar.total(), simd.total());

  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: on Broadwell only the facet kernel gained from vectorisation;\n"
      "KNL (AVX-512) gained on every kernel.  Gather-dominated loops limit\n"
      "what host auto-vectorisation can extract (§VII-A.3).\n");
  return 0;
}
