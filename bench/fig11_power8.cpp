// Figure 11: POWER8 (160 SMT threads), Over Particles vs Over Events
// (§VII-C).  Hardware-gated: POWER8 machine model.
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  SimScale scale;
  if (!SimScale::parse(cli, &scale)) return 0;
  const std::string csv = sim_banner("fig11_power8", "Fig 11 (POWER8)", scale);

  ResultTable table("Fig 11 — POWER8 estimates at paper scale (160 threads)",
                    {"problem", "over-particles [s]", "over-events [s]",
                     "OE/OP"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    const auto dev = simt::power8_dual10();
    const double t_op = estimate_paper_scale(
        sim_config(dev, Scheme::kOverParticles, name, scale), name, scale)
        .seconds;
    const double t_oe = estimate_paper_scale(
        sim_config(dev, Scheme::kOverEvents, name, scale), name, scale)
        .seconds;
    table.add_row({name, ResultTable::cell(t_op, 2),
                   ResultTable::cell(t_oe, 2),
                   ResultTable::cell(t_oe / t_op, 2)});
  }
  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: Over Particles 3.75x faster on csp; POWER8 slower than the\n"
      "Broadwell on both schemes.\n");
  return 0;
}
