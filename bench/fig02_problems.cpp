// Figure 2: energy-deposition plots of the three test problems after a
// single timestep, plus the event-mix statistics that define each regime
// (stream: facet-only; scatter: collision-dominated; csp: mixed).
//
// Writes fig02_<deck>.ppm heat maps next to the binary.
#include "bench_common.h"
#include "mesh/heatmap.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv = banner("fig02_problems", "Fig 2 (test problems)", scale);

  ResultTable table("Fig 2 — test problems, one timestep",
                    {"problem", "particles", "facets/particle",
                     "collisions/particle", "reflections", "deaths",
                     "tally total [eV]", "solve [s]"});

  for (const std::string name : {"stream", "scatter", "csp"}) {
    SimulationConfig cfg;
    cfg.deck = scale.deck(name);
    cfg.deck.n_timesteps = 1;
    Simulation sim(cfg);
    const RunResult r = sim.run();

    const auto n = static_cast<double>(cfg.deck.n_particles);
    table.add_row({name, ResultTable::cell(cfg.deck.n_particles),
                   ResultTable::cell(static_cast<double>(r.counters.facets) / n, 1),
                   ResultTable::cell(static_cast<double>(r.counters.collisions) / n, 1),
                   ResultTable::cell(static_cast<unsigned long long>(r.counters.reflections)),
                   ResultTable::cell(static_cast<unsigned long long>(
                       r.counters.deaths_energy + r.counters.deaths_weight)),
                   ResultTable::cell(r.budget.tally_total, 3),
                   ResultTable::cell(r.total_seconds, 3)});

    write_heatmap_ppm("fig02_" + name + ".ppm", sim.mesh(), sim.tally().data());
    std::printf("wrote fig02_%s.ppm\n", name.c_str());
  }

  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: stream ~7000 facets/particle at full scale (scales with mesh\n"
      "resolution: expect ~7000*mesh_scale here); scatter collision-dominated;\n"
      "csp mixed.  Fig 2's plots are the PPM files.\n");
  return 0;
}
