// Figure 10: KNL 7210 with data in MCDRAM vs DDR, both schemes, all three
// problems (§VII-B).  Hardware-gated: reproduced on the KNL machine model
// (flat-mode memory flip = two memory-system parameter sets).
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  SimScale scale;
  if (!SimScale::parse(cli, &scale)) return 0;
  const std::string csv =
      sim_banner("fig10_knl_mcdram", "Fig 10 (KNL MCDRAM vs DDR)", scale);

  ResultTable table("Fig 10 — KNL 7210 estimates at paper scale (256 threads)",
                    {"problem", "scheme", "DDR [s]", "MCDRAM [s]",
                     "MCDRAM speedup"});
  double op_csp_mcdram = 0.0, oe_csp_mcdram = 0.0;
  for (const std::string name : {"stream", "scatter", "csp"}) {
    for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
      const double t_ddr = estimate_paper_scale(
          sim_config(simt::knl_7210_ddr(), scheme, name, scale), name, scale)
          .seconds;
      const double t_mcdram = estimate_paper_scale(
          sim_config(simt::knl_7210_mcdram(), scheme, name, scale), name,
          scale).seconds;
      if (name == "csp") {
        (scheme == Scheme::kOverParticles ? op_csp_mcdram : oe_csp_mcdram) =
            t_mcdram;
      }
      table.add_row({name, to_string(scheme), ResultTable::cell(t_ddr, 2),
                     ResultTable::cell(t_mcdram, 2),
                     ResultTable::cell(t_ddr / t_mcdram, 2)});
    }
  }
  table.print();
  table.write_csv(csv);
  if (op_csp_mcdram > 0.0) {
    std::printf("\ncsp OE/OP (MCDRAM): %.2fx\n",
                oe_csp_mcdram / op_csp_mcdram);
  }
  std::printf(
      "paper: OE gains 2.38x from MCDRAM on csp while OP barely moves (and\n"
      "scatter OP slightly *prefers* DDR's lower latency); OE still loses to\n"
      "OP overall except on scatter (1.73x OE win).\n");
  return 0;
}
