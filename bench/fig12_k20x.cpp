// Figure 12: NVIDIA K20X, Over Particles vs Over Events (§VII-D), plus the
// bandwidth-utilisation observation (OP ~20% of achievable, OE ~50%).
// Hardware-gated: Kepler machine model (emulated FP64 atomics, 128-thread
// blocks -> 32-lane warps).
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  SimScale scale;
  if (!SimScale::parse(cli, &scale)) return 0;
  const std::string csv = sim_banner("fig12_k20x", "Fig 12 (K20X)", scale);

  ResultTable table("Fig 12 — K20X estimates at paper scale",
                    {"problem", "scheme", "seconds", "achieved GB/s",
                     "BW util", "divergent paths/warp-step"});
  for (const std::string name : {"stream", "scatter", "csp"}) {
    for (const Scheme scheme : {Scheme::kOverParticles, Scheme::kOverEvents}) {
      const auto est = estimate_paper_scale(
          sim_config(simt::k20x(), scheme, name, scale), name, scale);
      table.add_row({name, to_string(scheme),
                     ResultTable::cell(est.seconds, 2),
                     ResultTable::cell(est.achieved_gbps, 1),
                     ResultTable::cell(est.bandwidth_utilization, 2),
                     ResultTable::cell(est.divergence_paths, 2)});
    }
  }
  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: OP ~35 GB/s (~20%% of achievable) because the access pattern\n"
      "is random; OE streams its state and reaches ~90 GB/s (~50%%) yet is\n"
      "still slower end-to-end.\n");
  return 0;
}
