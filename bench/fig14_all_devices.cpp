// Figure 14: all tested devices, Over Particles scheme (§VIII) — the
// cross-architecture summary.  Hardware-gated: all six device models, plus
// the measured host row for grounding.
#include "bench_common.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  SimScale scale;
  if (!SimScale::parse(cli, &scale)) return 0;
  const std::string csv =
      sim_banner("fig14_all_devices", "Fig 14 (all devices, OP)", scale);

  ResultTable table("Fig 14 — Over Particles across devices (paper scale)",
                    {"device", "stream [s]", "scatter [s]", "csp [s]",
                     "csp vs BDW"});
  std::int32_t count = 0;
  const simt::DeviceModel* devices = simt::all_devices(&count);
  double bdw_csp = 0.0;
  for (std::int32_t i = 0; i < count; ++i) {
    const simt::DeviceModel& device = devices[i];
    double seconds[3] = {0, 0, 0};
    const char* decks[3] = {"stream", "scatter", "csp"};
    for (int d = 0; d < 3; ++d) {
      seconds[d] = estimate_paper_scale(
          sim_config(device, Scheme::kOverParticles, decks[d], scale),
          decks[d], scale).seconds;
    }
    if (i == 0) bdw_csp = seconds[2];
    table.add_row({device.name, ResultTable::cell(seconds[0], 2),
                   ResultTable::cell(seconds[1], 2),
                   ResultTable::cell(seconds[2], 2),
                   ResultTable::cell(bdw_csp / seconds[2], 2)});
  }
  table.print();
  table.write_csv(csv);

  // Ground the model with a measured host data point at the same deck scale.
  BenchScale host_scale;
  host_scale.mesh_scale = scale.mesh_scale;
  host_scale.particle_scale = 0.002;
  SimulationConfig cfg;
  cfg.deck = host_scale.deck("csp");
  const RunResult host = run_sim(cfg);
  std::printf("\nmeasured on this host: csp %.3fs for %lld particles "
              "(%.3g events/s)\n",
              host.total_seconds,
              static_cast<long long>(cfg.deck.n_particles),
              host.events_per_second());
  std::printf(
      "paper: P100 fastest everywhere (3.2x over dual Broadwell on csp,\n"
      "4.5x over K20X); BDW 1.34x over POWER8; KNL disappoints; K20X\n"
      "slowest on csp by a small margin.\n");
  return 0;
}
