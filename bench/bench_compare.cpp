// `bench_compare` — diff two bench_transport records.
//
// Matches rows by (deck, scheme, layout), prints per-row and geometric-mean
// events/sec ratios, and exits non-zero when the candidate falls below the
// threshold.  Two safety rails make the comparison honest:
//
//   * host shape: records from different machines (or thread counts) are
//     refused outright — the committed baseline was once taken on a
//     1-logical-CPU container and silently read as "no regression";
//   * checksums: when two records ran the same problem at 1 thread, their
//     tally checksums must be bit-identical even if their optimisation
//     configs differ.  That turns every perf comparison into a correctness
//     proof for the fast paths, for free.
//
//   $ bench_compare --baseline BENCH_transport.baseline.json
//                   --candidate BENCH_transport.json    (one command)
//   $ bench_compare ... --threshold 1.3     # demand a 1.3x speedup
//
// CI runs this as a soft gate (warn on PR, artifacts always uploaded):
// timing noise must not block merges, but it should be loud.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_record.h"
#include "obs/json.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace neutral;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  NEUTRAL_REQUIRE(in.good(), "cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Row {
  std::string deck, scheme, layout;
  std::int64_t particles = 0;
  std::int64_t timesteps = 0;
  double events_per_second = 0.0;
  double checksum = 0.0;
  std::int64_t population = 0;
};

struct Record {
  obs::BenchHostShape shape;
  std::string config;  ///< short "lookup=... rng_batch=..." description
  std::vector<Row> rows;
};

double number_field(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  NEUTRAL_REQUIRE(v != nullptr && v->is(obs::JsonValue::Type::kNumber),
                  "record missing numeric field '" + std::string(key) + "'");
  return v->number;
}

std::string string_field(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.find(key);
  NEUTRAL_REQUIRE(v != nullptr && v->is(obs::JsonValue::Type::kString),
                  "record missing string field '" + std::string(key) + "'");
  return v->string;
}

Record load_record(const std::string& path) {
  const std::string text = read_file(path);
  const std::vector<std::string> problems = obs::validate_bench_record(text);
  for (const std::string& p : problems) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  }
  NEUTRAL_REQUIRE(problems.empty(),
                  "'" + path + "' failed the schema check");
  Record record;
  record.shape = obs::read_host_shape(text);
  const obs::JsonValue doc = obs::parse_json(text);
  const obs::JsonValue* run = doc.find("run");
  auto flag = [&](const char* key) {
    const obs::JsonValue* v = run->find(key);
    return v != nullptr && v->boolean ? 1 : 0;
  };
  // v1 records predate the run-config fields; they all ran the default
  // configuration, so report it as such rather than failing to load.
  const obs::JsonValue* lookup = run->find("lookup");
  const std::string lookup_name =
      lookup != nullptr && lookup->is(obs::JsonValue::Type::kString)
          ? lookup->string
          : "cached";
  // fuse_rounds/pipeline_histories are optional even in v2 records;
  // absence reads as "off", like the other flags in v1 records.
  const obs::JsonValue* pipeline = run->find("pipeline_histories");
  const int pipeline_histories =
      pipeline != nullptr && pipeline->is(obs::JsonValue::Type::kNumber)
          ? static_cast<int>(pipeline->number)
          : 1;
  record.config = "lookup=" + lookup_name +
                  " rng_batch=" + std::to_string(flag("rng_batch")) +
                  " branchless=" + std::to_string(flag("branchless_events")) +
                  " sort=" + std::to_string(flag("sort_events")) +
                  " tally_direct=" + std::to_string(flag("tally_direct")) +
                  " fuse=" + std::to_string(flag("fuse_rounds")) +
                  " pipeline=" + std::to_string(pipeline_histories);
  for (const obs::JsonValue& r : doc.find("results")->array) {
    Row row;
    row.deck = string_field(r, "deck");
    row.scheme = string_field(r, "scheme");
    row.layout = string_field(r, "layout");
    row.particles = static_cast<std::int64_t>(number_field(r, "particles"));
    row.timesteps = static_cast<std::int64_t>(number_field(r, "timesteps"));
    row.events_per_second = number_field(r, "events_per_second");
    row.checksum = number_field(r, "checksum");
    row.population = static_cast<std::int64_t>(number_field(r, "population"));
    record.rows.push_back(std::move(row));
  }
  return record;
}

const Row* find_row(const Record& record, const Row& like) {
  for (const Row& r : record.rows) {
    if (r.deck == like.deck && r.scheme == like.scheme &&
        r.layout == like.layout) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliParser cli(argc, argv);
    const std::string baseline_path = cli.option(
        "baseline", "BENCH_transport.baseline.json",
        "reference record (e.g. the committed seed-default baseline)");
    const std::string candidate_path = cli.option(
        "candidate", "BENCH_transport.json", "record under test");
    const double threshold = cli.option_double(
        "threshold", 0.95,
        "minimum acceptable geometric-mean events/sec ratio "
        "(candidate / baseline); 0.95 tolerates noise, 1.3 demands a "
        "1.3x speedup");
    const bool allow_host_mismatch = cli.flag(
        "allow-host-mismatch",
        "compare records from differing host shapes anyway (ratios are "
        "then NOT meaningful; checksum cross-checks still run)");
    if (!cli.finish()) return 0;
    NEUTRAL_REQUIRE(threshold > 0.0, "--threshold must be positive");

    const Record baseline = load_record(baseline_path);
    const Record candidate = load_record(candidate_path);

    std::printf("# bench_compare\n");
    std::printf("# baseline : %s (%s)\n#   host   : %s\n",
                baseline_path.c_str(), baseline.config.c_str(),
                baseline.shape.describe().c_str());
    std::printf("# candidate: %s (%s)\n#   host   : %s\n",
                candidate_path.c_str(), candidate.config.c_str(),
                candidate.shape.describe().c_str());

    if (!baseline.shape.matches(candidate.shape)) {
      std::fprintf(stderr,
                   "bench_compare: host shape mismatch — timings from "
                   "different shapes are not comparable%s\n",
                   allow_host_mismatch ? " (waived by --allow-host-mismatch)"
                                       : " (--allow-host-mismatch to force)");
      if (!allow_host_mismatch) return 1;
    }

    ResultTable table("bench_compare",
                      {"deck", "scheme", "layout", "baseline ev/s",
                       "candidate ev/s", "ratio", "checksum"});
    double log_ratio_sum = 0.0;
    int matched = 0;
    int checksum_failures = 0;
    int unmatched = 0;
    for (const Row& base : baseline.rows) {
      const Row* cand = find_row(candidate, base);
      if (cand == nullptr) {
        std::fprintf(stderr,
                     "bench_compare: no candidate row for %s/%s/%s\n",
                     base.deck.c_str(), base.scheme.c_str(),
                     base.layout.c_str());
        ++unmatched;
        continue;
      }
      const double ratio = base.events_per_second > 0.0
                               ? cand->events_per_second /
                                     base.events_per_second
                               : 0.0;
      // Same problem at 1 thread -> the fast paths promise bit-identical
      // physics regardless of which optimisations either record enabled.
      std::string checksum_note = "n/a";
      if (base.particles == cand->particles &&
          base.timesteps == cand->timesteps &&
          baseline.shape.threads == 1 && candidate.shape.threads == 1) {
        const bool same = base.checksum == cand->checksum &&
                          base.population == cand->population;
        checksum_note = same ? "match" : "MISMATCH";
        if (!same) {
          ++checksum_failures;
          std::fprintf(stderr,
                       "bench_compare: checksum mismatch for %s/%s/%s: "
                       "baseline %.17g (pop %lld) vs candidate %.17g "
                       "(pop %lld)\n",
                       base.deck.c_str(), base.scheme.c_str(),
                       base.layout.c_str(), base.checksum,
                       static_cast<long long>(base.population),
                       cand->checksum,
                       static_cast<long long>(cand->population));
        }
      }
      table.add_row({base.deck, base.scheme, base.layout,
                     ResultTable::cell(base.events_per_second, 3),
                     ResultTable::cell(cand->events_per_second, 3),
                     ResultTable::cell(ratio, 4), checksum_note});
      if (ratio > 0.0) {
        log_ratio_sum += std::log(ratio);
        ++matched;
      }
    }
    table.print();
    NEUTRAL_REQUIRE(matched > 0, "no comparable rows between the records");
    const double geomean =
        std::exp(log_ratio_sum / static_cast<double>(matched));
    std::printf("geometric-mean events/sec ratio: %.4fx over %d row(s) "
                "(threshold %.4fx)\n",
                geomean, matched, threshold);

    bool failed = false;
    if (checksum_failures > 0) {
      std::fprintf(stderr,
                   "bench_compare: FAIL — %d checksum mismatch(es); the "
                   "records disagree on physics, not just speed\n",
                   checksum_failures);
      failed = true;
    }
    if (unmatched > 0) {
      std::fprintf(stderr,
                   "bench_compare: FAIL — %d baseline row(s) missing from "
                   "the candidate\n",
                   unmatched);
      failed = true;
    }
    if (geomean < threshold) {
      std::fprintf(stderr,
                   "bench_compare: FAIL — ratio %.4fx is below the "
                   "%.4fx threshold\n",
                   geomean, threshold);
      failed = true;
    }
    if (!failed) std::printf("bench_compare: OK\n");
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
