// Shared plumbing for the figure/table reproduction benchmarks.
//
// Every bench binary:
//   * accepts --quick / --full / --mesh-scale / --particle-scale / --reps,
//     with environment overrides NEUTRAL_BENCH_SCALE / NEUTRAL_BENCH_FULL;
//   * prints the rows the corresponding paper figure reports (ResultTable);
//   * mirrors the rows into <binary>.csv beside the executable.
//
// Default scales are laptop-sized: the event *mix* per problem matches the
// paper (deck densities scale with mesh resolution — DESIGN.md §5), so
// ratios and crossovers are meaningful even though absolute runtimes are
// thousands of times smaller than the 4000^2 x 1e6-particle originals.
#pragma once

#include <cstdio>
#include <string>

#include "core/simulation.h"
#include "runtime/host_info.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/table.h"

namespace neutral::bench {

struct BenchScale {
  double mesh_scale = 0.08;      ///< 4000 -> 320 cells per axis
  double particle_scale = 0.02;  ///< 1e6 -> 2e4 particles (1e7 -> 2e5)
  int reps = 1;                  ///< repetitions (best-of)
  bool full = false;

  /// Parse the standard options; returns false if --help was requested.
  static bool parse(CliParser& cli, BenchScale* out) {
    out->mesh_scale = cli.option_double(
        "mesh-scale", env_or_double("NEUTRAL_BENCH_SCALE", out->mesh_scale),
        "mesh resolution as a fraction of the paper's 4000^2");
    out->particle_scale = cli.option_double(
        "particle-scale", out->particle_scale,
        "particle count as a fraction of the paper's 1e6/1e7");
    out->reps = static_cast<int>(
        cli.option_int("reps", out->reps, "repetitions, best time kept"));
    const bool quick = cli.flag("quick", "extra-small problems (CI smoke)");
    out->full = cli.flag("full", "paper-scale problems (hours of runtime)") ||
                env_flag("NEUTRAL_BENCH_FULL");
    if (!cli.finish()) return false;
    if (quick) {
      out->mesh_scale = 0.03;
      out->particle_scale = 0.004;
    }
    if (out->full) {
      out->mesh_scale = 1.0;
      out->particle_scale = 1.0;
    }
    return true;
  }

  [[nodiscard]] ProblemDeck deck(const std::string& name) const {
    return deck_by_name(name, mesh_scale, particle_scale);
  }
};

/// Construct, run, and return the result of one configured solve.
inline RunResult run_sim(const SimulationConfig& cfg) {
  Simulation sim(cfg);
  return sim.run();
}

/// Best wall time over `reps` identical solves.
inline double best_seconds(const SimulationConfig& cfg, int reps) {
  double best = 1.0e300;
  for (int r = 0; r < reps; ++r) {
    const RunResult result = run_sim(cfg);
    if (result.total_seconds < best) best = result.total_seconds;
  }
  return best;
}

/// Print the standard banner and return the CSV path for this binary.
inline std::string banner(const std::string& binary_name,
                          const std::string& figure,
                          const BenchScale& scale) {
  std::printf("# %s — reproduces %s\n", binary_name.c_str(), figure.c_str());
  std::printf("# %s\n", host_banner().c_str());
  std::printf("# mesh-scale=%.4g particle-scale=%.4g reps=%d%s\n",
              scale.mesh_scale, scale.particle_scale, scale.reps,
              scale.full ? " (PAPER SCALE)" : "");
  return binary_name + ".csv";
}

}  // namespace neutral::bench
