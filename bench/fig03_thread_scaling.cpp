// Figure 3: parallel efficiency vs thread count — neutral (both schemes)
// against the bandwidth-bound arch proxies flow and hot (§VI-B).
//
// Two parts:
//   1. measured host sweep (on a 1-core VM the oversubscribed points are
//      still printed, but flagged);
//   2. machine-model efficiency curves for the paper's dual-socket
//      Broadwell and POWER8, where the NUMA/SMT structure lives.
#include <omp.h>

#include "bench_common.h"
#include "proxies/flow.h"
#include "proxies/hot.h"
#include "sim_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("fig03_thread_scaling", "Fig 3 (parallel efficiency)", scale);

  const std::int32_t hw = probe_host().logical_cpus;
  std::vector<std::int32_t> threads{1};
  for (std::int32_t t = 2; t <= 2 * hw; t *= 2) threads.push_back(t);

  ResultTable table("Fig 3a — measured parallel efficiency (this host)",
                    {"threads", "neutral-OP eff", "neutral-OE eff",
                     "flow eff", "hot eff"});

  // Baselines at 1 thread.
  double base_op = 0.0, base_oe = 0.0, base_flow = 0.0, base_hot = 0.0;
  for (const std::int32_t t : threads) {
    set_thread_count(t);

    SimulationConfig op;
    op.deck = scale.deck("csp");
    op.threads = t;
    const double t_op = run_sim(op).total_seconds;

    SimulationConfig oe = op;
    oe.scheme = Scheme::kOverEvents;
    oe.layout = Layout::kSoA;
    oe.tally_mode = TallyMode::kDeferredAtomic;
    const double t_oe = run_sim(oe).total_seconds;

    FlowConfig fc;
    fc.nx = fc.ny = static_cast<std::int32_t>(512 * scale.mesh_scale / 0.08);
    FlowSolver flow(fc);
    flow.initialise_pulse();
    const double t_flow = flow.run(20);

    HotConfig hc;
    hc.nx = hc.ny = fc.nx;
    HotSolver hot(hc);
    hot.initialise_hot_square();
    const double t_hot = hot.solve().seconds;

    if (t == 1) {
      base_op = t_op;
      base_oe = t_oe;
      base_flow = t_flow;
      base_hot = t_hot;
    }
    auto eff = [&](double base, double now) {
      return base / (now * static_cast<double>(t));
    };
    table.add_row({ResultTable::cell(static_cast<long>(t)),
                   ResultTable::cell(eff(base_op, t_op), 3),
                   ResultTable::cell(eff(base_oe, t_oe), 3),
                   ResultTable::cell(eff(base_flow, t_flow), 3),
                   ResultTable::cell(eff(base_hot, t_hot), 3)});
  }
  set_thread_count(hw);
  table.print();
  table.write_csv(csv);
  if (hw == 1) {
    std::printf("NOTE: 1 logical CPU — points beyond 1 thread are "
                "oversubscribed; see the model curves below.\n");
  }

  // Part 2: the model's efficiency curves for the paper's CPUs.
  SimScale sim_scale;
  sim_scale.mesh_scale = scale.mesh_scale;
  sim_scale.particles = 1024;
  ResultTable model("Fig 3b — model parallel efficiency (paper CPUs, csp, OP)",
                    {"device", "threads", "efficiency"});
  for (const auto& device :
       {simt::broadwell_2699v4_dual(), simt::power8_dual10()}) {
    double base = 0.0;
    const std::int32_t total =
        device.compute_units * device.max_contexts;
    for (std::int32_t t = 1; t <= total; t *= 2) {
      auto cfg = sim_config(device, Scheme::kOverParticles, "csp", sim_scale);
      cfg.threads = t;
      const double seconds = simt::simulate_transport(cfg).seconds;
      if (t == 1) base = seconds;
      model.add_row({device.name, ResultTable::cell(static_cast<long>(t)),
                     ResultTable::cell(
                         base / (seconds * static_cast<double>(t)), 3)});
    }
  }
  model.print();
  model.write_csv("fig03_thread_scaling_model.csv");
  std::printf(
      "\npaper: neutral scales well within a socket, drops crossing the NUMA\n"
      "boundary; flow/hot saturate memory bandwidth earlier; POWER8 SMT lanes\n"
      "step at 6 and 11 threads.\n");
  return 0;
}
