// §VI-A in-text: the cached linear cross-section search bought 1.3x over a
// binary search on csp.  All four lookup strategies are swept over the
// problems (the effect concentrates where collisions are frequent), and a
// microbench isolates the lookup itself: ns per capture+scatter pair and
// search steps per lookup, on the correlated energy walk collisions
// actually produce (§VI-A: energy changes slowly, so the cached walk stays
// short — and the unionised grid fuses both table searches into one).
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/world.h"
#include "rng/stream.h"
#include "xs/union_grid.h"

using namespace neutral;
using namespace neutral::bench;

namespace {

/// Correlated multiplicative energy walk in the table's range — the access
/// pattern a collision loop produces (slow energy loss with jitter).
std::vector<double> energy_walk(const CrossSectionTable& xs, std::size_t n) {
  std::vector<double> energies(n);
  rng::ParticleStream stream(/*seed=*/1234, /*particle_id=*/1);
  const double lo = xs.min_energy();
  const double hi = xs.max_energy();
  double e = hi * 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    // Mostly small losses, occasional large scatter — and rare excursions
    // past the table edges to exercise the clamp path.
    const double u = stream.next();
    e *= u < 0.9 ? (0.8 + 0.2 * stream.next()) : (0.05 + stream.next());
    if (e < lo * 0.5) e = hi * (0.25 + 0.5 * stream.next());
    energies[i] = e;
  }
  return energies;
}

struct MicroResult {
  double ns_per_lookup = 0.0;
  double steps_per_lookup = 0.0;
  double sum = 0.0;  ///< checksum over all interpolated values (anti-DCE)
};

MicroResult micro_lookup(const World& world, XsLookup mode,
                         const std::vector<double>& energies, int reps) {
  MicroResult out;
  double best_ns = 1.0e300;
  for (int rep = 0; rep < reps; ++rep) {
    std::int32_t idx_a = 0;
    std::int32_t idx_s = 0;
    double sum = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    if (mode == XsLookup::kUnionised) {
      for (const double e : energies) {
        double a = 0.0;
        double s = 0.0;
        world.xs_union.microscopic_pair(e, idx_a, a, s);
        sum += a + s;
      }
    } else {
      for (const double e : energies) {
        sum += world.xs_capture.microscopic(e, mode, idx_a);
        sum += world.xs_scatter.microscopic(e, mode, idx_s);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(energies.size());
    if (ns < best_ns) best_ns = ns;
    out.sum = sum;
  }
  out.ns_per_lookup = best_ns;

  // Steps are deterministic — count them once, outside the timed loop.
  // Both tables share one energy grid, so the capture-side count is the
  // per-table story; the unionised grid only searches once per pair.
  std::int64_t steps = 0;
  std::int32_t idx = 0;
  for (const double e : energies) {
    if (mode == XsLookup::kUnionised) {
      (void)world.xs_union.find_bin_counted(e, steps);
    } else {
      (void)world.xs_capture.find_bin_counted(e, mode, idx, steps);
    }
  }
  out.steps_per_lookup =
      static_cast<double>(steps) / static_cast<double>(energies.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("tab_xs_lookup", "§VI-A XS lookup strategies", scale);

  constexpr XsLookup kModes[] = {XsLookup::kBinarySearch,
                                 XsLookup::kCachedLinear,
                                 XsLookup::kBucketedIndex,
                                 XsLookup::kUnionised};

  ResultTable table("§VI-A — cross-section lookup strategy (Over Particles)",
                    {"problem", "strategy", "seconds", "binary/this"});
  for (const std::string name : {"csp", "scatter"}) {
    double binary_seconds = 0.0;
    for (const XsLookup mode : kModes) {
      SimulationConfig cfg;
      cfg.deck = scale.deck(name);
      cfg.lookup = mode;
      const double seconds = best_seconds(cfg, scale.reps);
      if (mode == XsLookup::kBinarySearch) binary_seconds = seconds;
      table.add_row({name, to_string(mode), ResultTable::cell(seconds, 3),
                     ResultTable::cell(binary_seconds / seconds, 3)});
    }
  }
  table.print();
  table.write_csv(csv);

  // Isolated lookup microbench: one capture+scatter pair per energy of a
  // correlated collision-style walk.
  const ProblemDeck deck = scale.deck("csp");
  const std::shared_ptr<const World> world = build_world(deck);
  const std::vector<double> energies =
      energy_walk(world->xs_capture, 1u << 18);
  ResultTable micro("§VI-A — isolated lookup (capture+scatter pair, "
                    "collision-style energy walk)",
                    {"strategy", "ns/lookup", "steps/lookup", "checksum"});
  for (const XsLookup mode : kModes) {
    const MicroResult r = micro_lookup(*world, mode, energies, scale.reps);
    micro.add_row({to_string(mode), ResultTable::cell(r.ns_per_lookup, 2),
                   ResultTable::cell(r.steps_per_lookup, 3),
                   ResultTable::cell(r.sum, 6)});
  }
  micro.print();
  micro.write_csv("tab_xs_lookup_micro.csv");

  std::printf(
      "\npaper: cached linear search 1.3x faster than binary search on csp\n"
      "(collisions change energy slowly, so the walk stays in cache).\n"
      "The checksum column must agree across all four strategies — the\n"
      "fast paths are bit-identical, not approximations.\n");
  return 0;
}
