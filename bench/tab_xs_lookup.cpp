// §VI-A in-text: the cached linear cross-section search bought 1.3x over a
// binary search on csp.  All three lookup strategies are swept over the
// three problems (the effect concentrates where collisions are frequent).
#include "bench_common.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.reps = 3;
  if (!BenchScale::parse(cli, &scale)) return 0;
  const std::string csv =
      banner("tab_xs_lookup", "§VI-A XS lookup strategies", scale);

  ResultTable table("§VI-A — cross-section lookup strategy (Over Particles)",
                    {"problem", "strategy", "seconds", "binary/this"});
  for (const std::string name : {"csp", "scatter"}) {
    double binary_seconds = 0.0;
    for (const XsLookup mode :
         {XsLookup::kBinarySearch, XsLookup::kCachedLinear,
          XsLookup::kBucketedIndex}) {
      SimulationConfig cfg;
      cfg.deck = scale.deck(name);
      cfg.lookup = mode;
      const double seconds = best_seconds(cfg, scale.reps);
      if (mode == XsLookup::kBinarySearch) binary_seconds = seconds;
      table.add_row({name, to_string(mode), ResultTable::cell(seconds, 3),
                     ResultTable::cell(binary_seconds / seconds, 3)});
    }
  }

  table.print();
  table.write_csv(csv);
  std::printf(
      "\npaper: cached linear search 1.3x faster than binary search on csp\n"
      "(collisions change energy slowly, so the walk stays in cache).\n");
  return 0;
}
