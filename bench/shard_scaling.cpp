// Strong scaling of single-deck sharding: one large deck, split into 1..N
// fork-join shard jobs on the batch engine (1 OpenMP thread per shard, so
// concurrency comes purely from the shard decomposition).
//
// This attacks the paper's load-imbalance ceiling from the other side:
// instead of threads pulling uneven histories from one shared loop, each
// shard is an independent job and the worker pool load-balances whole
// shards.  The table reports wall-clock speedup over the 1-shard run and
// the per-shard imbalance (max/mean shard time); the checksum column is
// printed at full precision because it must be IDENTICAL on every row —
// the deterministic reduction is what makes this decomposition safe.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "batch/engine.h"
#include "batch/shard.h"
#include "bench_common.h"
#include "runtime/host_info.h"

using namespace neutral;
using namespace neutral::bench;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  BenchScale scale;
  scale.particle_scale = 0.05;  // one "large" deck is the whole point
  const long max_shards_opt = cli.option_int(
      "max-shards", 0, "largest shard count (0 = logical cpus)");
  if (!BenchScale::parse(cli, &scale)) return 0;

  const std::int32_t hw = probe_host().logical_cpus;
  const std::int32_t max_shards =
      max_shards_opt > 0 ? static_cast<std::int32_t>(max_shards_opt) : hw;

  SimulationConfig base;
  base.deck = scale.deck("csp");
  base.threads = 1;

  const std::string csv = banner("shard_scaling",
                                 "single-deck fork-join strong scaling",
                                 scale);
  std::printf("# deck csp, %lld particles, shards x 1 thread each\n",
              static_cast<long long>(base.deck.n_particles));

  ResultTable table("shard_scaling — one deck, N shards",
                    {"shards", "workers", "wall [s]", "speedup", "efficiency",
                     "events/s", "imbalance", "tally checksum"});

  std::vector<std::int32_t> shard_counts;
  for (std::int32_t n = 1; n <= max_shards; n *= 2) shard_counts.push_back(n);
  if (shard_counts.back() != max_shards) shard_counts.push_back(max_shards);

  double base_wall = 0.0;
  double reference_checksum = 0.0;
  std::int64_t reference_population = 0;
  bool identical = true;
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    const std::int32_t shards = shard_counts[i];
    batch::EngineOptions options;
    options.workers = shards;
    options.threads_per_job = 1;
    batch::BatchEngine engine(options);
    batch::ShardOptions shard_options;
    shard_options.shards = shards;

    double wall = 1.0e300;
    batch::ShardedRunReport best;
    for (int rep = 0; rep < scale.reps; ++rep) {
      batch::ShardedRunReport report =
          batch::run_sharded(engine, base, shard_options);
      if (!report.ok) {
        std::fprintf(stderr, "shard_scaling: %s\n", report.error.c_str());
        return 2;
      }
      if (report.wall_seconds < wall) {
        wall = report.wall_seconds;
        best = std::move(report);
      }
    }
    if (i == 0) {
      base_wall = wall;
      reference_checksum = best.merged.tally_checksum;
      reference_population = best.merged.population;
    } else if (best.merged.tally_checksum != reference_checksum ||
               best.merged.population != reference_population) {
      identical = false;
    }

    const double speedup = wall > 0.0 ? base_wall / wall : 0.0;
    table.add_row({std::to_string(shards),
                   std::to_string(best.batch.workers),
                   ResultTable::cell(wall, 4),
                   ResultTable::cell(speedup, 2),
                   ResultTable::cell(speedup / shards, 2),
                   ResultTable::cell(static_cast<double>(
                       best.merged.counters.total_events()) / wall, 3),
                   ResultTable::cell(best.imbalance(), 2),
                   ResultTable::cell_full(best.merged.tally_checksum)});
  }

  table.print();
  table.write_csv(csv);
  std::printf("\nreduction determinism: every row's checksum/population "
              "identical -> %s\n",
              identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}
