#!/usr/bin/env python3
"""clang-tidy runner with a committed-baseline diff gate.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit in the compile database and compares the
findings against tools/tidy/baseline.txt:

  - a finding present in the baseline is tolerated (legacy backlog);
  - a finding NOT in the baseline fails the run (exit 1) — new code may
    not add violations;
  - a baseline entry that no longer fires is reported so the baseline can
    shrink (burn-down is ratcheted by re-running --update-baseline, which
    can only ever be a net win in review).

Baseline entries are `path [check] message` — deliberately WITHOUT line
numbers, so unrelated edits shifting a file do not churn the gate.

Usage:
  python3 tools/tidy/run_tidy.py [--build-dir build] [--update-baseline]
                                 [--clang-tidy clang-tidy-15] [--jobs N]

The build dir must hold compile_commands.json (the default CMake
configure exports it; see CMAKE_EXPORT_COMPILE_COMMANDS in
CMakeLists.txt).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import re
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
BASELINE = Path(__file__).resolve().parent / "baseline.txt"
FIRST_PARTY = ("src/", "apps/", "bench/", "tests/", "examples/")

# clang-tidy diagnostic: /abs/path.cpp:12:34: warning: message [check-name]
DIAG = re.compile(
    r"^(?P<path>/[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*) \[(?P<check>[^\]]+)\]$"
)


def first_party_sources(build_dir: Path) -> list[str]:
    database = json.loads((build_dir / "compile_commands.json").read_text())
    sources = set()
    for entry in database:
        path = Path(entry["file"])
        try:
            rel = path.relative_to(REPO)
        except ValueError:
            continue
        if str(rel).startswith(FIRST_PARTY):
            sources.add(str(path))
    return sorted(sources)


def run_one(clang_tidy: str, build_dir: Path, source: str) -> str:
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", source],
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    return proc.stdout


def normalise(raw: str) -> set[str]:
    findings = set()
    for line in raw.splitlines():
        match = DIAG.match(line)
        if match is None:
            continue
        path = Path(match.group("path"))
        try:
            rel = path.relative_to(REPO)
        except ValueError:
            continue  # system/third-party header
        if not str(rel).startswith(FIRST_PARTY):
            continue
        findings.add(
            f"{rel} [{match.group('check')}] {match.group('message')}"
        )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument(
        "--jobs", type=int, default=multiprocessing.cpu_count()
    )
    args = parser.parse_args()

    build_dir = (
        args.build_dir
        if args.build_dir.is_absolute()
        else REPO / args.build_dir
    )
    if not (build_dir / "compile_commands.json").exists():
        print(f"no compile_commands.json under {build_dir}; configure first",
              file=sys.stderr)
        return 2

    sources = first_party_sources(build_dir)
    print(f"clang-tidy over {len(sources)} first-party TUs ...")
    findings: set[str] = set()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for raw in pool.map(
            lambda s: run_one(args.clang_tidy, build_dir, s), sources
        ):
            findings |= normalise(raw)

    if args.update_baseline:
        BASELINE.write_text(
            "".join(line + "\n" for line in sorted(findings))
        )
        print(f"baseline updated: {len(findings)} entries")
        return 0

    baseline = {
        line
        for line in (
            BASELINE.read_text().splitlines() if BASELINE.exists() else []
        )
        if line and not line.startswith("#")
    }
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)
    if fixed:
        print(f"{len(fixed)} baseline entries no longer fire "
              "(re-run --update-baseline to ratchet down):")
        for line in fixed:
            print(f"  stale: {line}")
    if new:
        print(f"FAIL: {len(new)} finding(s) not in the baseline:")
        for line in new:
            print(f"  {line}")
        return 1
    print(f"OK: no new findings ({len(findings)} total, "
          f"{len(baseline)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
