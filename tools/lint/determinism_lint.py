#!/usr/bin/env python3
"""Determinism lint: machine-enforce the repo's bit-identity bans.

The project's core promise (ROADMAP) is that every scheme x layout x
shard x domain x worker combination reproduces a golden checksum
bit-for-bit.  That only holds while the transport and reduction paths stay
free of hidden nondeterminism, so this checker bans, in `src/`:

  R1  libc RNG (std::rand / rand() / srand()) and std::random_device —
      everywhere.  All randomness must flow through the counter-based
      streams in src/rng/, which are seeded from the deck and replayable.
  R2  wall-clock reads (system_clock, time(), gettimeofday, clock_gettime,
      std::clock) outside src/obs/ and src/perf/ — observability may
      timestamp, physics may not.  steady_clock is allowed everywhere:
      deadlines and timers never feed a tally.
  R3  unordered-container iteration in the reduction paths (src/core,
      src/mesh, src/xs, src/rng, src/tally, src/batch/shard*,
      src/batch/domain*): hash-order is pointer/seed dependent, so a loop
      over an unordered_map that deposits into a tally or folds a
      reduction reorders float adds between runs.  Enforced bluntly — the
      listed files may not mention unordered_map/unordered_set at all
      (none do today; ordered or indexed containers serve there).
  R4  memory_order_relaxed outside src/obs/metrics.h/.cpp — the sharded
      metric counters are the one audited relaxed-ordering site (their
      happens-before contract is documented on obs::Counter); everything
      else uses acquire/release or seq_cst so the next reader does not
      have to re-derive a memory-model argument.

Zero-config: `python3 tools/lint/determinism_lint.py` from the repo root
(or anywhere; paths resolve relative to this file).  Exit 0 = clean,
exit 1 = findings listed one per line as path:line: rule message.
There is deliberately no waiver syntax: a legitimate new exception should
widen an allowlist here, in a reviewed diff, not hide behind a comment.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"

# Rule -> (regex, allowed-path predicate, message).
REDUCTION_DIRS = ("core", "mesh", "xs", "rng", "tally")
REDUCTION_BATCH = ("shard", "domain")


def rel(path: Path) -> str:
    return str(path.relative_to(REPO))


def in_reduction_paths(path: Path) -> bool:
    parts = path.relative_to(SRC).parts
    if parts[0] in REDUCTION_DIRS:
        return True
    return parts[0] == "batch" and any(
        parts[-1].startswith(stem) for stem in REDUCTION_BATCH
    )


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure."""

    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i = min(i + 2, n)
        elif ch == '"':
            # Skip string literals so a message mentioning a banned name
            # does not trip the lint (escapes handled, newlines end it).
            i += 1
            while i < n and text[i] not in '"\n':
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


RULES = [
    (
        "R1-banned-rng",
        re.compile(
            r"std::rand\b|(?<![A-Za-z0-9_])s?rand\s*\(|std::random_device"
        ),
        lambda path: False,  # nowhere
        "libc RNG/random_device: use the deck-seeded streams in src/rng/",
    ),
    (
        "R2-wall-clock",
        re.compile(
            r"system_clock|gettimeofday|clock_gettime"
            r"|(?<![A-Za-z0-9_.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|(?<![A-Za-z0-9_.])clock\s*\(\s*\)"
        ),
        lambda path: path.relative_to(SRC).parts[0] in ("obs", "perf"),
        "wall-clock read outside src/obs|src/perf: use steady_clock",
    ),
    (
        "R3-unordered-reduction",
        re.compile(r"unordered_map|unordered_set"),
        lambda path: not in_reduction_paths(path),
        "unordered container in a reduction path: hash order would "
        "reorder float folds between runs",
    ),
    (
        "R4-relaxed-ordering",
        re.compile(r"memory_order_relaxed"),
        lambda path: rel(path)
        in ("src/obs/metrics.h", "src/obs/metrics.cpp"),
        "memory_order_relaxed outside the audited metrics shards "
        "(contract: obs::Counter in src/obs/metrics.h)",
    ),
]


def main() -> int:
    findings: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        for name, pattern, allowed, message in RULES:
            if allowed(path):
                continue
            for lineno, line in enumerate(text.splitlines(), start=1):
                if pattern.search(line):
                    findings.append(
                        f"{rel(path)}:{lineno}: [{name}] {message}"
                    )
    if findings:
        print("determinism lint: FAIL")
        for finding in findings:
            print(finding)
        return 1
    print("determinism lint: OK (src/ clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
