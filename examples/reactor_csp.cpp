// Reactor-style workload: the centre-square problem end to end.
//
// Demonstrates the deck-file workflow (write a .params file, reload it),
// runs several timesteps with both parallelisation schemes, verifies they
// produce the same physics, and renders the energy-deposition heat map —
// the kind of map a reactor shielding/criticality analysis consumes
// (paper §III-A).
//
//   $ ./reactor_csp [--timesteps N] [--out csp_deposition.ppm]
#include <cmath>
#include <cstdio>

#include "core/simulation.h"
#include "io/deck_io.h"
#include "mesh/heatmap.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;

  CliParser cli(argc, argv);
  const long timesteps = cli.option_int("timesteps", 2, "timesteps to run");
  const std::string out =
      cli.option("out", "csp_deposition.ppm", "heat-map output path");
  if (!cli.finish()) return 0;

  // Author a deck, save it, and load it back — the .params workflow.
  ProblemDeck deck = csp_deck(/*mesh_scale=*/0.08, /*particle_scale=*/0.02);
  deck.n_timesteps = static_cast<std::int32_t>(timesteps);
  const std::string deck_path = "reactor_csp.params";
  save_deck(deck, deck_path);
  std::printf("wrote %s:\n%s\n", deck_path.c_str(),
              format_deck(deck).c_str());
  const ProblemDeck loaded = load_deck(deck_path);

  // Run both schemes on the identical deck.
  SimulationConfig op;
  op.deck = loaded;
  op.scheme = Scheme::kOverParticles;

  SimulationConfig oe = op;
  oe.scheme = Scheme::kOverEvents;
  oe.layout = Layout::kSoA;
  oe.tally_mode = TallyMode::kDeferredAtomic;

  Simulation sim_op(op);
  const RunResult r_op = sim_op.run();
  Simulation sim_oe(oe);
  const RunResult r_oe = sim_oe.run();

  std::printf("over-particles : %.3f s, tally %.6g eV\n", r_op.total_seconds,
              r_op.budget.tally_total);
  std::printf("over-events    : %.3f s, tally %.6g eV  (OE/OP %.2fx)\n",
              r_oe.total_seconds, r_oe.budget.tally_total,
              r_oe.total_seconds / r_op.total_seconds);

  // The schemes sample identical histories (§IV-F): same tallies.
  const double rel = std::fabs(r_op.budget.tally_total -
                               r_oe.budget.tally_total) /
                     r_op.budget.tally_total;
  std::printf("scheme agreement: relative tally difference %.3g\n", rel);
  if (rel > 1e-9) {
    std::printf("ERROR: schemes disagree\n");
    return 1;
  }

  write_heatmap_ppm(out, sim_op.mesh(), sim_op.tally().data());
  std::printf("wrote %s — beam entering from the bottom-left, heating\n"
              "concentrated where it strikes the dense centre square.\n",
              out.c_str());
  return 0;
}
