// Medical-physics workload: radiation dose in a layered phantom.
//
// The paper motivates Monte Carlo transport with radiation-dosage
// calculations (§III-A).  This example builds a custom deck — a beam
// entering a phantom of tissue / bone / tissue layers — and reports the
// depth-dose profile (energy deposited per depth slab) plus a 2D dose map.
//
//   $ ./dose_map [--particles N] [--out dose_map.ppm]
#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "mesh/heatmap.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;

  CliParser cli(argc, argv);
  const long particles = cli.option_int("particles", 20000, "histories");
  const std::string out = cli.option("out", "dose_map.ppm", "dose map path");
  if (!cli.finish()) return 0;

  // A 40 cm x 40 cm phantom, 320^2 cells.  Beam enters from the left edge.
  ProblemDeck deck;
  deck.name = "phantom";
  deck.nx = deck.ny = 320;
  deck.width_cm = deck.height_cm = 40.0;
  deck.base_density_kg_m3 = 1.5;  // "tissue" (dummy-material units)
  // A dense "bone" slab from 18 to 24 cm depth.
  RegionSpec bone;
  bone.x0 = 18.0; bone.x1 = 24.0;
  bone.y0 = 0.0;  bone.y1 = 40.0;
  bone.density_kg_m3 = 25.0;  // "bone": ~17x denser than tissue
  deck.regions.push_back(bone);
  // Narrow source column at the left, mid-height: an entering beam.
  deck.src_x0 = 0.0;  deck.src_x1 = 0.5;
  deck.src_y0 = 17.0; deck.src_y1 = 23.0;
  deck.initial_energy_ev = 1.0e6;
  deck.n_particles = particles;
  deck.dt_s = 5.0e-8;
  deck.n_timesteps = 1;
  deck.seed = 2026;

  SimulationConfig config;
  config.deck = deck;
  Simulation sim(config);
  const RunResult result = sim.run();
  std::printf("transported %lld particles in %.3f s (%llu collisions)\n",
              static_cast<long long>(deck.n_particles), result.total_seconds,
              static_cast<unsigned long long>(result.counters.collisions));

  // Depth-dose: sum tally columns into 20 depth slabs.
  const StructuredMesh2D& mesh = sim.mesh();
  const double* tally = sim.tally().data();
  const int slabs = 20;
  std::vector<double> dose(slabs, 0.0);
  for (std::int32_t j = 0; j < mesh.ny(); ++j) {
    for (std::int32_t i = 0; i < mesh.nx(); ++i) {
      const int s = i * slabs / mesh.nx();
      dose[static_cast<std::size_t>(s)] +=
          tally[mesh.flat_index({i, j})];
    }
  }
  double peak = 0.0;
  for (double d : dose) peak = std::max(peak, d);
  std::printf("\ndepth-dose profile (normalised to peak):\n");
  for (int s = 0; s < slabs; ++s) {
    const double depth = (s + 0.5) * deck.width_cm / slabs;
    const double frac = peak > 0.0 ? dose[static_cast<std::size_t>(s)] / peak : 0.0;
    std::printf("%5.1f cm | %-50.*s %.3f\n", depth,
                static_cast<int>(frac * 50.0),
                "##################################################", frac);
  }
  std::printf("\nexpect the dose to build through the tissue, spike inside\n"
              "the dense bone slab (18-24 cm), and fall beyond it.\n");

  write_heatmap_ppm(out, mesh, tally);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
