// Monte Carlo convergence and throughput study, run on the batch engine.
//
// Demonstrates the central-limit behaviour the method rests on (§III): the
// per-particle mean deposition stabilises as the bank grows, with the
// spread between independent seeds shrinking ~1/sqrt(N) — while throughput
// (events/s) stays flat, which is what makes particle count a pure
// accuracy/time trade-off.
//
// The (bank size x seed) grid is exactly the shape src/batch exists for:
// one SweepSpec expands it, every job shares one cached world, and the
// engine fills the node instead of running the grid serially.
//
//   $ ./scaling_study [--max-particles N] [--workers N]
#include <cmath>
#include <cstdio>
#include <vector>

#include "batch/engine.h"
#include "batch/sweep.h"
#include "core/simulation.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;
  using namespace neutral::batch;

  CliParser cli(argc, argv);
  const long max_particles =
      cli.option_int("max-particles", 32000, "largest bank size");
  const long workers = cli.option_int("workers", 0, "worker threads (0 = auto)");
  if (!cli.finish()) return 0;

  // One sweep: bank sizes x three independent seeds (the spread between
  // seeds estimates the statistical error at each size).
  SweepSpec spec;
  spec.base.deck = csp_deck(/*mesh_scale=*/0.05, /*particle_scale=*/1.0);
  spec.axes.seeds = {1, 2, 3};
  for (long n = 1000; n <= max_particles; n *= 2) {
    spec.axes.particles.push_back(n);
  }

  EngineOptions options;
  options.workers = static_cast<std::int32_t>(workers);
  BatchEngine engine(options);
  const BatchReport report = engine.run(expand_sweep(spec));
  if (report.failed() > 0) {
    std::fprintf(stderr, "scaling_study: %zu jobs failed\n", report.failed());
    return 1;
  }

  std::printf(
      "particles | mean dep/particle [eV] | seed spread | events/s\n");
  std::printf(
      "----------+------------------------+-------------+---------\n");

  // Jobs are in sweep order: particles outermost, seeds innermost.
  const std::size_t n_seeds = spec.axes.seeds.size();
  double spread_prev = 0.0;
  for (std::size_t size_idx = 0; size_idx < spec.axes.particles.size();
       ++size_idx) {
    const auto n = static_cast<double>(spec.axes.particles[size_idx]);
    std::vector<double> per_particle;
    double events_per_second = 0.0;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      const JobOutcome& job = report.jobs[size_idx * n_seeds + s];
      per_particle.push_back(job.result.budget.tally_total / n);
      events_per_second = job.result.events_per_second();
    }
    double mean = 0.0;
    for (double v : per_particle) mean += v;
    mean /= static_cast<double>(per_particle.size());
    double spread = 0.0;
    for (double v : per_particle) spread = std::fmax(spread, std::fabs(v - mean));

    std::printf("%9ld | %22.6g | %11.3g | %.3g%s\n",
                static_cast<long>(spec.axes.particles[size_idx]), mean,
                spread / mean, events_per_second,
                spread_prev > 0.0 && spread / mean > spread_prev
                    ? "  (spread up: statistical noise)"
                    : "");
    spread_prev = spread / mean;
  }

  std::printf("\nbatch: %zu jobs on %d workers x %d threads, %.2fs wall, "
              "world cache %llu/%llu hits\n",
              report.jobs.size(), report.workers, report.threads_per_job,
              report.wall_seconds,
              static_cast<unsigned long long>(report.cache.hits),
              static_cast<unsigned long long>(
                  report.cache.hits + report.cache.misses));
  std::printf("the relative seed spread falls roughly as 1/sqrt(N) — the\n"
              "central-limit convergence that justifies simulating enough\n"
              "particles (§III); throughput is independent of N.\n");
  return 0;
}
