// Monte Carlo convergence and throughput study.
//
// Demonstrates the central-limit behaviour the method rests on (§III): the
// per-particle mean deposition stabilises as the bank grows, with the
// spread between independent seeds shrinking ~1/sqrt(N) — while throughput
// (events/s) stays flat, which is what makes particle count a pure
// accuracy/time trade-off.
//
//   $ ./scaling_study [--max-particles N]
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simulation.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;

  CliParser cli(argc, argv);
  const long max_particles =
      cli.option_int("max-particles", 32000, "largest bank size");
  if (!cli.finish()) return 0;

  std::printf(
      "particles | mean dep/particle [eV] | seed spread | events/s\n");
  std::printf(
      "----------+------------------------+-------------+---------\n");

  double spread_prev = 0.0;
  for (long n = 1000; n <= max_particles; n *= 2) {
    // Three independent seeds: the spread estimates the statistical error.
    std::vector<double> per_particle;
    double events_per_second = 0.0;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      SimulationConfig config;
      config.deck = csp_deck(/*mesh_scale=*/0.05, /*particle_scale=*/1.0);
      config.deck.n_particles = n;
      config.deck.seed = seed;
      const RunResult r = [&] {
        Simulation sim(config);
        return sim.run();
      }();
      per_particle.push_back(r.budget.tally_total / static_cast<double>(n));
      events_per_second = r.events_per_second();
    }
    double mean = 0.0;
    for (double v : per_particle) mean += v;
    mean /= static_cast<double>(per_particle.size());
    double spread = 0.0;
    for (double v : per_particle) spread = std::fmax(spread, std::fabs(v - mean));

    std::printf("%9ld | %22.6g | %11.3g | %.3g%s\n", n, mean, spread / mean,
                events_per_second,
                spread_prev > 0.0 && spread / mean > spread_prev
                    ? "  (spread up: statistical noise)"
                    : "");
    spread_prev = spread / mean;
  }

  std::printf("\nthe relative seed spread falls roughly as 1/sqrt(N) — the\n"
              "central-limit convergence that justifies simulating enough\n"
              "particles (§III); throughput is independent of N.\n");
  return 0;
}
