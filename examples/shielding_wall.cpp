// Shielding workload: transmission through a wall of increasing thickness.
//
// Shielding calculations are the other reactor use-case the paper cites
// (§III-A).  A source shines at a wall; a detector slab behind the wall
// tallies the transmitted dose.  Sweeping the wall thickness produces the
// classic deep-penetration attenuation curve: transmission falls roughly
// exponentially with thickness.
//
//   $ ./shielding_wall [--particles N]
#include <cmath>
#include <cstdio>

#include "core/simulation.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;

  CliParser cli(argc, argv);
  const long particles = cli.option_int("particles", 10000, "histories");
  if (!cli.finish()) return 0;

  std::printf("thickness | transmitted fraction | attenuation\n");
  std::printf("----------+----------------------+------------\n");

  double previous = 0.0;
  for (const double thickness_cm : {1.0, 2.0, 4.0, 6.0, 8.0}) {
    ProblemDeck deck;
    deck.name = "shield";
    deck.nx = deck.ny = 256;
    deck.width_cm = deck.height_cm = 40.0;
    deck.base_density_kg_m3 = kVacuumDensityKgM3;
    // The wall spans the full height, starting at x = 15 cm.
    RegionSpec wall;
    wall.x0 = 15.0;
    wall.x1 = 15.0 + thickness_cm;
    wall.y0 = 0.0;
    wall.y1 = deck.height_cm;
    wall.density_kg_m3 = 10.0;  // ~0.7/cm removal at 1 MeV
    deck.regions.push_back(wall);
    // Detector slab behind the wall: transmitted particles deposit here.
    RegionSpec detector;
    detector.x0 = 30.0;
    detector.x1 = deck.width_cm;
    detector.y0 = 0.0;
    detector.y1 = deck.height_cm;
    detector.density_kg_m3 = 10.0;
    deck.regions.push_back(detector);
    // Source column in front of the wall.
    deck.src_x0 = 2.0; deck.src_x1 = 3.0;
    deck.src_y0 = 15.0; deck.src_y1 = 25.0;
    deck.n_particles = particles;
    deck.dt_s = 2.0e-8;  // one transit, little re-reflection
    deck.seed = 7;

    SimulationConfig config;
    config.deck = deck;
    Simulation sim(config);
    const RunResult result = sim.run();

    // Dose tallied inside the detector slab.
    const StructuredMesh2D& mesh = sim.mesh();
    const double* tally = sim.tally().data();
    double beyond = 0.0;
    for (std::int32_t j = 0; j < mesh.ny(); ++j) {
      for (std::int32_t i = 0; i < mesh.nx(); ++i) {
        if (mesh.centre_x(i) > detector.x0) {
          beyond += tally[mesh.flat_index({i, j})];
        }
      }
    }
    const double frac = beyond / result.budget.initial;
    std::printf("  %4.1f cm |      %12.4e    |   %s%.2fx\n", thickness_cm,
                frac, previous > 0.0 ? "" : " ",
                previous > 0.0 ? previous / frac : 1.0);
    previous = frac;
  }

  std::printf("\nthicker walls attenuate the transmitted dose; the ratio\n"
              "column approximates exp(Sigma_removal * delta_thickness).\n");
  return 0;
}
