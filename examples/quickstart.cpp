// Quickstart: the smallest complete neutral-mc program.
//
// Builds the paper's csp problem at laptop scale, runs one timestep with
// the Over Particles scheme, prints the event statistics and checks the
// energy-conservation invariants.
//
//   $ ./quickstart [--deck stream|scatter|csp] [--particles N]
#include <cstdio>

#include "core/simulation.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace neutral;

  CliParser cli(argc, argv);
  const std::string deck_name =
      cli.option("deck", "csp", "problem: stream|scatter|csp");
  const long particles =
      cli.option_int("particles", 20000, "number of particle histories");
  if (!cli.finish()) return 0;

  // 1. Configure: a deck (problem description) plus scheme choices.
  SimulationConfig config;
  config.deck = deck_by_name(deck_name, /*mesh_scale=*/0.08,
                             /*particle_scale=*/1.0);
  config.deck.n_particles = particles;
  config.scheme = Scheme::kOverParticles;  // §V-A — the winning scheme
  config.layout = Layout::kAoS;            // §VI-D — best on CPUs
  config.tally_mode = TallyMode::kAtomic;  // §V-C
  config.lookup = XsLookup::kCachedLinear; // §VI-A — worth 1.3x

  // 2. Run.
  Simulation sim(config);
  const RunResult result = sim.run();

  // 3. Inspect.
  std::printf("problem            : %s (%d x %d cells, %lld particles)\n",
              config.deck.name.c_str(), config.deck.nx, config.deck.ny,
              static_cast<long long>(config.deck.n_particles));
  std::printf("solve time         : %.3f s  (%.3g events/s)\n",
              result.total_seconds, result.events_per_second());
  std::printf("facet events       : %llu\n",
              static_cast<unsigned long long>(result.counters.facets));
  std::printf("collision events   : %llu  (%llu absorbed, %llu scattered)\n",
              static_cast<unsigned long long>(result.counters.collisions),
              static_cast<unsigned long long>(result.counters.absorptions),
              static_cast<unsigned long long>(result.counters.scatters));
  std::printf("census / deaths    : %llu / %llu\n",
              static_cast<unsigned long long>(result.counters.censuses),
              static_cast<unsigned long long>(result.counters.deaths_energy +
                                              result.counters.deaths_weight));
  std::printf("energy deposited   : %.6g eV across %lld cells\n",
              result.budget.tally_total,
              static_cast<long long>(sim.tally().cells()));

  // 4. Validate: reflective boundaries mean nothing escapes (§IV-C).
  std::printf("conservation error : %.3g (tally consistency %.3g)\n",
              result.budget.conservation_error(),
              result.budget.tally_consistency_error());
  if (!result.budget.conserved(1e-9)) {
    std::printf("ERROR: energy balance violated\n");
    return 1;
  }
  std::printf("OK: energy conserved to 1e-9\n");
  return 0;
}
