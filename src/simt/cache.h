// Direct-mapped cache model over synthesised addresses.
//
// The simulator needs hit/miss decisions for the random-access streams the
// paper identifies (density mesh, XS tables, tally): a direct-mapped tag
// array at line granularity is enough to capture the capacity behaviour
// (fields larger than the LLC miss at rate ~ 1 - cache/footprint) while
// staying O(1) per probe.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace neutral::simt {

/// Synthetic address regions keep the simulated data structures disjoint
/// without depending on host pointer values.
enum class Region : std::uint64_t {
  kDensity = 1,
  kXsEnergy = 2,
  kXsValue = 3,
  kTally = 4,
  kParticleState = 5,  ///< Over Events streamed flight-state arrays
  kSpill = 6,          ///< register-spill slots (§VI-H)
};

constexpr std::uint64_t make_address(Region r, std::uint64_t byte_offset) {
  return (static_cast<std::uint64_t>(r) << 40) | byte_offset;
}

class DirectMappedCache {
 public:
  DirectMappedCache(std::int64_t capacity_bytes, std::int32_t line_bytes)
      : line_bytes_(line_bytes) {
    NEUTRAL_REQUIRE(capacity_bytes > 0 && line_bytes > 0,
                    "cache geometry must be positive");
    std::int64_t lines = capacity_bytes / line_bytes;
    // Round down to a power of two for mask indexing.
    while ((lines & (lines - 1)) != 0) lines &= lines - 1;
    lines = std::max<std::int64_t>(lines, 1);
    tags_.assign(static_cast<std::size_t>(lines), kEmpty);
    index_mask_ = static_cast<std::uint64_t>(lines) - 1;
    shift_ = 0;
    while ((1 << shift_) < line_bytes_) ++shift_;
  }

  /// Probe one byte address; fills the line on miss.  Returns hit?
  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr >> shift_;
    const std::uint64_t slot = line & index_mask_;
    ++probes_;
    if (tags_[slot] == line) {
      ++hits_;
      return true;
    }
    tags_[slot] = line;
    return false;
  }

  [[nodiscard]] std::int32_t line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] double hit_rate() const {
    return probes_ > 0 ? static_cast<double>(hits_) / probes_ : 0.0;
  }

  void reset() {
    std::fill(tags_.begin(), tags_.end(), kEmpty);
    probes_ = hits_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;
  std::int32_t line_bytes_;
  std::int32_t shift_ = 6;
  std::uint64_t index_mask_ = 0;
  std::vector<std::uint64_t> tags_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace neutral::simt
