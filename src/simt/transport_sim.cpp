#include "simt/transport_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/init.h"
#include "core/step.h"
#include "simt/cache.h"
#include "util/error.h"
#include "xs/synthetic.h"
#include "xs/union_grid.h"

namespace neutral::simt {
namespace {

// ---------------------------------------------------------------------------
// Cost constants (cycles unless stated).  These are architectural folklore
// numbers, not fitted parameters: a counter-based RNG block is ~16 ALU ops,
// a cached table-walk step is a compare + increment against resident lines,
// and every event carries bookkeeping beyond its recorded FLOPs.
// ---------------------------------------------------------------------------
constexpr double kEventBaseCycles = 60.0;  ///< branchy scalar pipeline work
/// Branchless event selection (--branchless-events) trades the breadth-first
/// sweep's mispredicting compare-and-branch ladder for select chains: the
/// ~12-cycle mispredict tax per event mostly disappears, the selects
/// themselves are nearly free on the vector units.
constexpr double kEventBaseCyclesBranchless = 48.0;
constexpr double kRngCyclesPerDraw = 16.0;
/// Batched RNG (--rng-batch): one Threefry block yields four draws, so the
/// ~16-cycle block cost amortises to ~4 plus a buffer load/rotate.
constexpr double kRngCyclesPerDrawBatched = 5.0;
constexpr double kXsStepCycles = 3.0;
constexpr double kMaskCheckCycles = 2.0;
/// Issue cost of one gathered/scattered lane in the Over Events kernels —
/// the indirection penalty §VII-A.3 blames for vectorisation not paying.
constexpr double kGatherCyclesPerLane = 6.0;
constexpr double kMissOverlapCycles = 10.0;  ///< extra per additional miss
constexpr double kEmulatedAtomicMult = 3.0;  ///< CAS loop vs native (§VIII-A)
/// Streamed flight-state block per particle in the Over Events scheme:
/// 8 particle fields + 8 cached-state fields + cell/tally bookkeeping.
constexpr std::int32_t kOeStateBytes = 136;
/// Spill traffic per register below the compiler's natural allocation, per
/// event (§VI-H: capping 102 -> 64 regs forces locals into memory).  Spills
/// mostly stay in L1/L2: charged as extra issue work, not DRAM traffic.
constexpr double kSpillBytesPerReg = 1.0;
constexpr double kSpillCyclesPerByte = 1.0 / 8.0;

/// Per-lane trace of one advance_one_event call.
struct LaneRecord {
  bool active = false;
  EventType event = EventType::kCensus;
  std::int32_t flops = 0;
  std::int32_t rng = 0;
  std::int32_t xs_steps = 0;
  std::int32_t xs_index = -1;
  std::int64_t density_flat = -1;
  std::int64_t tally_flat = -1;
};

/// Hooks implementation that fills a LaneRecord.
class RecordingHooks {
 public:
  static constexpr bool kTracing = true;
  explicit RecordingHooks(LaneRecord* rec) : rec_(rec) {}

  void phase_start(Phase) {}
  void phase_stop(Phase) {}
  void event(EventType e) { rec_->event = e; }
  void density_load(std::int64_t flat) { rec_->density_flat = flat; }
  void xs_walk(std::int32_t steps, std::int32_t index) {
    rec_->xs_steps += steps;
    rec_->xs_index = index;
  }
  void tally_flush(std::int64_t flat) { rec_->tally_flat = flat; }
  void rng_draw(std::int32_t n) { rec_->rng += n; }
  void flops(std::int32_t n) { rec_->flops += n; }

 private:
  LaneRecord* rec_;
};

/// Per-compute-unit cycle ledger.
struct UnitLedger {
  double issue = 0.0;
  double stall = 0.0;
};

/// The cost engine: owns the cache, the ledgers and the statistics.
class CostEngine {
 public:
  CostEngine(const SimtConfig& cfg, std::int32_t units_used,
             std::int32_t contexts)
      : device_(cfg.device),
        cache_(scaled_cache_bytes(cfg), cfg.device.memory.line_bytes),
        units_(units_used),
        contexts_(contexts),
        ledgers_(static_cast<std::size_t>(units_used)),
        rng_cycles_per_draw_(cfg.rng_batch ? kRngCyclesPerDrawBatched
                                           : kRngCyclesPerDraw),
        oe_event_base_cycles_(cfg.branchless_events
                                  ? kEventBaseCyclesBranchless
                                  : kEventBaseCycles),
        unionised_(cfg.lookup == XsLookup::kUnionised) {
    if (cfg.amortize_to_particles > 0) {
      fixed_cost_scale_ =
          std::min(1.0, static_cast<double>(cfg.deck.n_particles) /
                            static_cast<double>(cfg.amortize_to_particles));
    }
    const std::int32_t regs = cfg.regs_per_thread > 0
                                  ? cfg.regs_per_thread
                                  : device_.default_regs_per_thread;
    if (device_.default_regs_per_thread > 0 &&
        regs < device_.default_regs_per_thread) {
      spill_bytes_per_event_ =
          kSpillBytesPerReg * (device_.default_regs_per_thread - regs);
    }
  }

  [[nodiscard]] static std::int64_t scaled_cache_bytes(const SimtConfig& cfg) {
    if (!cfg.scale_cache_to_deck) return cfg.device.memory.cache_bytes;
    // Preserve the paper-scale cache:footprint ratio on shrunken decks.
    const double paper_cells = 4000.0 * 4000.0;
    const double deck_cells =
        static_cast<double>(cfg.deck.nx) * static_cast<double>(cfg.deck.ny);
    const double ratio = std::min(1.0, deck_cells / paper_cells);
    const auto scaled = static_cast<std::int64_t>(
        static_cast<double>(cfg.device.memory.cache_bytes) * ratio);
    return std::max<std::int64_t>(scaled, 4096);
  }

  /// Charge one Over Particles warp-step: records for `width` lanes, the
  /// active ones marked.  `unit` receives the cycles.
  void charge_warp_step(const std::vector<LaneRecord>& records,
                        std::int32_t unit) {
    ++warp_steps_;
    double issue = 0.0;

    // Path divergence: the warp serially executes every distinct event path
    // taken by its active lanes (§V-A).
    double path_max[3] = {0.0, 0.0, 0.0};
    bool path_present[3] = {false, false, false};
    std::int32_t active = 0;
    for (const LaneRecord& r : records) {
      if (!r.active) continue;
      ++active;
      const int p = static_cast<int>(r.event);
      path_present[p] = true;
      const double alu = kEventBaseCycles + r.flops +
                         rng_cycles_per_draw_ * r.rng +
                         kXsStepCycles * r.xs_steps;
      path_max[p] = std::max(path_max[p], alu);
    }
    if (active == 0) return;
    std::int32_t paths = 0;
    for (int p = 0; p < 3; ++p) {
      if (path_present[p]) {
        ++paths;
        issue += path_max[p];
      }
    }
    divergence_paths_sum_ += paths;
    active_lane_sum_ += active;
    lane_slots_sum_ += static_cast<double>(records.size());

    issue /= device_.issue_per_cycle;

    // Memory transactions: coalesce the semantic loads across lanes into
    // unique cache lines, probe, and charge latency + bandwidth.  Spills
    // stay on-chip: extra issue work only (§VI-H).
    line_scratch_.clear();
    std::int32_t spill_events = 0;
    for (const LaneRecord& r : records) {
      if (!r.active) continue;
      if (spill_bytes_per_event_ > 0.0) ++spill_events;
      if (r.density_flat >= 0) {
        push_line(make_address(Region::kDensity,
                               static_cast<std::uint64_t>(r.density_flat) * 8));
      }
      push_xs_lines(r, /*include_walk_lines=*/true);
    }
    // One spill reload/store sequence is a warp-wide instruction: charge it
    // per warp-step, not per lane.
    if (spill_events > 0) {
      issue += spill_bytes_per_event_ * kSpillCyclesPerByte;
    }
    double stall = probe_random_lines();

    // Tally flushes: same-cell conflicts serialise; CAS emulation multiplies
    // (§VIII-A).
    conflict_scratch_.clear();
    for (const LaneRecord& r : records) {
      if (r.active && r.tally_flat >= 0) {
        conflict_scratch_.push_back(r.tally_flat);
      }
    }
    stall += charge_atomics(conflict_scratch_, /*parallel_units=*/1);

    ledgers_[static_cast<std::size_t>(unit)].issue += issue;
    ledgers_[static_cast<std::size_t>(unit)].stall += stall;
  }

  /// Charge an Over Events kernel visit of one warp: the masked pass reads
  /// the whole state span, processes `records`, writes back active lanes.
  void charge_oe_warp(const std::vector<LaneRecord>& records,
                      std::int32_t unit, std::uint64_t first_particle,
                      bool streams_state) {
    ++warp_steps_;
    double issue = 0.0;
    std::int32_t active = 0;
    std::int32_t gather_lanes = 0;
    double alu_max = 0.0;
    for (const LaneRecord& r : records) {
      if (!r.active) continue;
      ++active;
      if (r.density_flat >= 0 || r.xs_index >= 0) ++gather_lanes;
      const double alu = oe_event_base_cycles_ + r.flops +
                         rng_cycles_per_draw_ * r.rng +
                         kXsStepCycles * r.xs_steps;
      alu_max = std::max(alu_max, alu);
    }
    // Mask checks for the whole warp (the kernel visits every particle).
    issue += kMaskCheckCycles * static_cast<double>(records.size());
    // Single event path per kernel (§V-B), but the masked vector lanes only
    // sustain a fraction of their width on these gather-heavy bodies.
    const double effective_lanes = std::max(
        1.0, device_.simd_lanes * device_.simd_efficiency);
    issue += alu_max * std::max(1.0, active / effective_lanes);
    // Per-lane gather/scatter issue (§VII-A.3).
    issue += kGatherCyclesPerLane * gather_lanes;
    issue /= device_.issue_per_cycle;
    divergence_paths_sum_ += 1.0;
    active_lane_sum_ += active;
    lane_slots_sum_ += static_cast<double>(records.size());

    double stall = 0.0;
    if (streams_state && active > 0) {
      // Contiguous state span: read the whole warp footprint, write the
      // active lanes back — the §VII-A.2 streaming traffic.  Streamed
      // arrays are prefetchable: charge bandwidth for the misses plus a
      // single on-chip latency, never the full DRAM latency.
      line_scratch_.clear();
      const std::uint64_t span_begin = first_particle * kOeStateBytes;
      const std::uint64_t span_bytes =
          static_cast<std::uint64_t>(records.size()) * kOeStateBytes;
      for (std::uint64_t off = 0; off < span_bytes;
           off += static_cast<std::uint64_t>(device_.memory.line_bytes)) {
        push_line(make_address(Region::kParticleState, span_begin + off));
      }
      stall += probe_stream_lines();
      // Write-back of the active lanes.
      dram_bytes_ += static_cast<std::uint64_t>(active) * kOeStateBytes;
    }
    // Random accesses performed by the handlers (density reloads, table
    // walks): full dependent-latency accounting.
    line_scratch_.clear();
    for (const LaneRecord& r : records) {
      if (!r.active) continue;
      if (r.density_flat >= 0) {
        push_line(make_address(Region::kDensity,
                               static_cast<std::uint64_t>(r.density_flat) * 8));
      }
      push_xs_lines(r, /*include_walk_lines=*/false);
    }
    stall += probe_random_lines();
    ledgers_[static_cast<std::size_t>(unit)].issue += issue;
    ledgers_[static_cast<std::size_t>(unit)].stall += stall;
  }

  /// Charge a batch of tally flushes (the Over Events drain kernel): the
  /// batch spreads over all units; same-cell chains serialise.
  void charge_drain(const std::vector<std::int64_t>& cells) {
    if (cells.empty()) return;
    const double stall = charge_atomics(cells, units_);
    for (auto& ledger : ledgers_) ledger.stall += stall;
  }

  /// Kernel-launch/barrier overhead: a serial per-iteration cost on every
  /// unit, amortized to the extrapolation particle count (the paper-scale
  /// run pays the same launches over far more particles).
  void charge_barrier(std::int32_t launches) {
    const double cycles = device_.kernel_launch_ns * device_.clock_ghz *
                          static_cast<double>(launches) * fixed_cost_scale_;
    for (auto& ledger : ledgers_) ledger.stall += cycles;
  }

  /// Assemble the final estimate.
  void finalise(SimtEstimate& out) const {
    double worst = 0.0;
    double issue_total = 0.0;
    double stall_total = 0.0;
    for (const UnitLedger& ledger : ledgers_) {
      issue_total += ledger.issue;
      stall_total += ledger.stall;
      // Latency hiding: `contexts_` resident warps/threads overlap their
      // stalls (§VIII "architectures that are tolerant to latencies").
      worst = std::max(worst,
                       ledger.issue + ledger.stall / std::max(1, contexts_));
    }
    const double exec_seconds = worst / (device_.clock_ghz * 1.0e9);
    const double bw_seconds =
        static_cast<double>(dram_bytes_) /
        (device_.memory.dram_bandwidth_gbps * 1.0e9);
    out.seconds = std::max(exec_seconds, bw_seconds);
    out.issue_cycles = static_cast<std::uint64_t>(issue_total);
    out.stall_cycles = static_cast<std::uint64_t>(stall_total);
    out.dram_bytes = dram_bytes_;
    out.achieved_gbps =
        out.seconds > 0.0 ? static_cast<double>(dram_bytes_) / out.seconds / 1.0e9
                          : 0.0;
    out.bandwidth_utilization =
        out.achieved_gbps / device_.memory.dram_bandwidth_gbps;
    out.memory_stall_fraction =
        (issue_total + stall_total) > 0.0
            ? stall_total / (issue_total + stall_total)
            : 0.0;
    out.divergence_paths =
        warp_steps_ > 0 ? divergence_paths_sum_ / static_cast<double>(warp_steps_)
                        : 1.0;
    out.lane_activity =
        lane_slots_sum_ > 0.0 ? active_lane_sum_ / lane_slots_sum_ : 1.0;
    out.contexts = contexts_;
    out.atomic_conflict_depth =
        conflict_batches_ > 0
            ? conflict_depth_sum_ / static_cast<double>(conflict_batches_)
            : 1.0;
    out.cache_hit_rate = cache_.hit_rate();
  }

 private:
  /// Collect the table lines one lane's XS lookup touches.  The default
  /// tables read an energy line and a value line per reaction walk; the
  /// unionised grid reads one energy line plus one interleaved
  /// (capture, scatter) run — 16 bytes per grid point, so one value line
  /// serves both reactions — and its <=1-step walk never spills into
  /// extra table lines.
  void push_xs_lines(const LaneRecord& r, bool include_walk_lines) {
    if (r.xs_index < 0) return;
    const auto off = static_cast<std::uint64_t>(r.xs_index) * 8;
    push_line(make_address(Region::kXsEnergy, off));
    if (unionised_) {
      push_line(make_address(Region::kXsValue,
                             static_cast<std::uint64_t>(r.xs_index) * 16));
      return;
    }
    push_line(make_address(Region::kXsValue, off));
    if (!include_walk_lines) return;
    // A long cached-linear walk touches extra table lines.
    const std::int32_t extra_lines =
        (r.xs_steps * 8) / device_.memory.line_bytes;
    for (std::int32_t l = 1; l <= extra_lines; ++l) {
      push_line(make_address(
          Region::kXsEnergy,
          off + static_cast<std::uint64_t>(l) *
                    static_cast<std::uint64_t>(device_.memory.line_bytes)));
    }
  }

  void push_line(std::uint64_t addr) {
    const std::uint64_t line =
        addr / static_cast<std::uint64_t>(device_.memory.line_bytes);
    if (std::find(line_scratch_.begin(), line_scratch_.end(), line) ==
        line_scratch_.end()) {
      line_scratch_.push_back(line);
    }
  }

  /// Probe the collected unique lines as *dependent* random accesses: the
  /// transport chain cannot start the next event before these loads land,
  /// so every region with a miss costs a full DRAM latency (§VI-A "waiting
  /// for memory to come into L2").  Misses also charge bandwidth.
  double probe_random_lines() {
    std::int32_t misses = 0;
    std::int32_t hits = 0;
    std::uint64_t missed_regions = 0;  // bitset over Region ids
    for (std::uint64_t line : line_scratch_) {
      const std::uint64_t addr =
          line * static_cast<std::uint64_t>(device_.memory.line_bytes);
      if (cache_.access(addr)) {
        ++hits;
      } else {
        ++misses;
        missed_regions |= 1ull << (addr >> 40);
        dram_bytes_ += static_cast<std::uint64_t>(device_.memory.line_bytes);
      }
    }
    double stall = 0.0;
    const auto dependent_chains =
        static_cast<double>(__builtin_popcountll(missed_regions));
    if (misses > 0) {
      stall = dependent_chains * device_.memory.dram_latency_ns *
                  device_.clock_ghz +
              kMissOverlapCycles * (misses - static_cast<int>(dependent_chains));
    } else if (hits > 0) {
      stall = device_.memory.cache_latency_ns * device_.clock_ghz;
    }
    return stall;
  }

  /// Probe the collected lines as a *streamed* access: hardware prefetch
  /// hides the DRAM latency, so misses cost bandwidth plus one on-chip
  /// latency for the whole batch.
  double probe_stream_lines() {
    bool any_miss = false;
    for (std::uint64_t line : line_scratch_) {
      const std::uint64_t addr =
          line * static_cast<std::uint64_t>(device_.memory.line_bytes);
      if (!cache_.access(addr)) {
        any_miss = true;
        dram_bytes_ += static_cast<std::uint64_t>(device_.memory.line_bytes);
      }
    }
    return any_miss ? device_.memory.cache_latency_ns * device_.clock_ghz : 0.0;
  }

  /// Serialisation cost of a flush batch; conflicts grouped by cell.
  double charge_atomics(const std::vector<std::int64_t>& cells,
                        std::int32_t parallel_units) {
    if (cells.empty()) return 0.0;
    conflict_map_.clear();
    std::int64_t depth_max = 1;
    for (std::int64_t c : cells) {
      const std::int64_t d = ++conflict_map_[c];
      depth_max = std::max(depth_max, d);
    }
    ++conflict_batches_;
    conflict_depth_sum_ += static_cast<double>(depth_max);
    const double mult =
        device_.native_fp64_atomics ? 1.0 : kEmulatedAtomicMult;
    const double atomic_cycles = device_.atomic_ns * device_.clock_ghz * mult;
    // Each flush pays one atomic RMW; same-cell chains serialise on top.
    // The tally lines bounce between caches rather than streaming to DRAM,
    // so atomics cost latency (atomic_ns), not memory bandwidth.
    const double total = atomic_cycles * static_cast<double>(cells.size());
    return total / std::max(1, parallel_units);
  }

  const DeviceModel& device_;
  DirectMappedCache cache_;
  std::int32_t units_;
  std::int32_t contexts_;
  std::vector<UnitLedger> ledgers_;
  double rng_cycles_per_draw_ = kRngCyclesPerDraw;
  double oe_event_base_cycles_ = kEventBaseCycles;
  bool unionised_ = false;
  std::uint64_t dram_bytes_ = 0;
  double spill_bytes_per_event_ = 0.0;
  double fixed_cost_scale_ = 1.0;

  std::uint64_t warp_steps_ = 0;
  double divergence_paths_sum_ = 0.0;
  double active_lane_sum_ = 0.0;
  double lane_slots_sum_ = 0.0;
  double conflict_depth_sum_ = 0.0;
  std::uint64_t conflict_batches_ = 0;

  std::vector<std::uint64_t> line_scratch_;
  std::vector<std::int64_t> conflict_scratch_;
  std::unordered_map<std::int64_t, std::int64_t> conflict_map_;
};

/// Shared world for a simulated run.
struct SimWorld {
  explicit SimWorld(const SimtConfig& cfg)
      : mesh(cfg.deck.nx, cfg.deck.ny, cfg.deck.width_cm, cfg.deck.height_cm),
        density(mesh, cfg.deck.base_density_kg_m3),
        capture(make_capture_table(cfg.deck.xs)),
        scatter(make_scatter_table(cfg.deck.xs)),
        xs_union(capture, scatter),
        tally(mesh.num_cells(), TallyMode::kAtomic, 1),
        particles(static_cast<std::size_t>(cfg.deck.n_particles)),
        flight(static_cast<std::size_t>(cfg.deck.n_particles)) {
    for (const RegionSpec& r : cfg.deck.regions) {
      density.fill_rect(r.x0, r.y0, r.x1, r.y1, r.density_kg_m3);
    }
    ctx.mesh = &mesh;
    ctx.density = &density;
    ctx.xs_capture = &capture;
    ctx.xs_scatter = &scatter;
    ctx.xs_union = &xs_union;
    ctx.tally = &tally;
    ctx.lookup = cfg.lookup;
    // The replayed physics honours the same fast-path gates as the native
    // drives: the batched stream resumes from the particle counter
    // (bit-identical draws) and the branchless selection is bit-identical
    // per facet.h, so flipping these can never move the 1e-9 gate.
    ctx.rng_batch = cfg.rng_batch;
    ctx.branchless_events = cfg.branchless_events;
    ctx.molar_mass_g_mol = cfg.deck.molar_mass_g_mol;
    ctx.mass_number = cfg.deck.mass_number;
    ctx.min_energy_ev = cfg.deck.min_energy_ev;
    ctx.min_weight = cfg.deck.min_weight;
    ctx.seed = cfg.deck.seed;
    initialise_particles(AosView(particles.data(), particles.size()),
                         cfg.deck, mesh);
  }

  StructuredMesh2D mesh;
  DensityField density;
  CrossSectionTable capture;
  CrossSectionTable scatter;
  UnionisedXsGrid xs_union;
  EnergyTally tally;
  std::vector<Particle> particles;
  std::vector<FlightState> flight;
  TransportContext ctx;
};

void resolve_parallelism(const SimtConfig& cfg, std::int32_t* units_used,
                         std::int32_t* contexts) {
  const DeviceModel& d = cfg.device;
  if (d.simt_lanes > 1) {
    // GPU: all SMs active; occupancy from the register model.
    *units_used = d.compute_units;
    const std::int32_t regs = cfg.regs_per_thread > 0
                                  ? cfg.regs_per_thread
                                  : d.default_regs_per_thread;
    *contexts = d.occupancy(regs);
    return;
  }
  // CPU: map `threads` onto cores, then SMT ways.
  const std::int32_t t =
      cfg.threads > 0 ? cfg.threads : d.compute_units * d.max_contexts;
  *units_used = std::min(t, d.compute_units);
  *contexts = std::clamp((t + *units_used - 1) / *units_used, 1,
                         d.max_contexts);
}

SimtEstimate simulate_over_particles(const SimtConfig& cfg) {
  SimWorld world(cfg);
  // The native per-history drive runs the branchy selection unconditionally
  // (over_particles.cpp); the replay must match it event for event.
  world.ctx.branchless_events = false;
  std::int32_t units_used = 1, contexts = 1;
  resolve_parallelism(cfg, &units_used, &contexts);
  CostEngine engine(cfg, units_used, contexts);
  const AosView view(world.particles.data(), world.particles.size());
  EventCounters ec;

  const auto n = static_cast<std::int64_t>(view.size());
  const std::int32_t width = std::max(1, cfg.device.simt_lanes);
  const std::int64_t warps = (n + width - 1) / width;
  std::vector<LaneRecord> records(static_cast<std::size_t>(width));

  for (std::int32_t step = 0; step < cfg.deck.n_timesteps; ++step) {
    // Wake survivors.
    for (std::int64_t i = 0; i < n; ++i) {
      if (view.state(i) == ParticleState::kCensus) {
        view.state(i) = ParticleState::kAlive;
        view.dt_to_census(i) = cfg.deck.dt_s;
      }
    }
    for (std::int64_t w = 0; w < warps; ++w) {
      const std::int64_t lo = w * width;
      const std::int64_t hi = std::min(n, lo + width);
      const auto unit = static_cast<std::int32_t>(w % units_used);

      // History start: the flight-state gather counts as a warp-step.
      for (std::int64_t i = lo; i < hi; ++i) {
        LaneRecord& rec = records[static_cast<std::size_t>(i - lo)];
        rec = LaneRecord{};
        if (view.state(i) != ParticleState::kAlive) continue;
        rec.active = true;
        RecordingHooks hooks(&rec);
        load_flight_state(view, static_cast<std::size_t>(i), world.ctx,
                          world.flight[static_cast<std::size_t>(i)], ec, hooks);
      }
      engine.charge_warp_step(records, unit);

      // Lock-step event loop until the warp retires (§V-A Listing 1).
      for (;;) {
        bool any_alive = false;
        for (std::int64_t i = lo; i < hi; ++i) {
          LaneRecord& rec = records[static_cast<std::size_t>(i - lo)];
          rec = LaneRecord{};
          if (view.state(i) != ParticleState::kAlive) continue;
          any_alive = true;
          rec.active = true;
          RecordingHooks hooks(&rec);
          advance_one_event(view, static_cast<std::size_t>(i), world.ctx,
                            world.flight[static_cast<std::size_t>(i)], ec,
                            /*thread=*/0, hooks);
        }
        if (!any_alive) break;
        engine.charge_warp_step(records, unit);
      }
    }
  }

  SimtEstimate out;
  engine.finalise(out);
  out.counters = ec;
  out.tally_total = world.tally.total();
  out.tally_checksum =
      positional_checksum(world.tally.data(), world.tally.cells());
  return out;
}

SimtEstimate simulate_over_events(const SimtConfig& cfg) {
  SimWorld world(cfg);
  std::int32_t units_used = 1, contexts = 1;
  resolve_parallelism(cfg, &units_used, &contexts);
  CostEngine engine(cfg, units_used, contexts);
  const AosView view(world.particles.data(), world.particles.size());
  EventCounters ec;

  const auto n = static_cast<std::int64_t>(view.size());
  const std::int32_t width = std::max(1, cfg.device.simd_lanes);
  const std::int64_t warps = (n + width - 1) / width;
  std::vector<LaneRecord> records(static_cast<std::size_t>(width));
  std::vector<EventSelection> selections(static_cast<std::size_t>(n));
  std::vector<std::int64_t> drain;

  auto for_warp = [&](std::int64_t w, auto&& body) {
    const std::int64_t lo = w * width;
    const std::int64_t hi = std::min(n, lo + width);
    for (std::int64_t i = lo; i < hi; ++i) {
      LaneRecord& rec = records[static_cast<std::size_t>(i - lo)];
      rec = LaneRecord{};
      body(i, rec);
    }
    engine.charge_oe_warp(records, static_cast<std::int32_t>(w % units_used),
                          static_cast<std::uint64_t>(lo),
                          /*streams_state=*/true);
  };

  for (std::int32_t step = 0; step < cfg.deck.n_timesteps; ++step) {
    // Wake + state build kernel.
    for (std::int64_t w = 0; w < warps; ++w) {
      for_warp(w, [&](std::int64_t i, LaneRecord& rec) {
        if (view.state(i) == ParticleState::kCensus) {
          view.state(i) = ParticleState::kAlive;
          view.dt_to_census(i) = cfg.deck.dt_s;
        }
        if (view.state(i) != ParticleState::kAlive) return;
        rec.active = true;
        RecordingHooks hooks(&rec);
        load_flight_state(view, static_cast<std::size_t>(i), world.ctx,
                          world.flight[static_cast<std::size_t>(i)], ec, hooks);
      });
    }
    engine.charge_barrier(1);

    // Breadth-first iterations (§V-B Listing 2).
    for (;;) {
      std::int64_t in_flight = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        if (view.state(i) == ParticleState::kAlive) ++in_flight;
      }
      if (in_flight == 0) break;

      // Kernel 1: event search.
      for (std::int64_t w = 0; w < warps; ++w) {
        for_warp(w, [&](std::int64_t i, LaneRecord& rec) {
          if (view.state(i) != ParticleState::kAlive) return;
          rec.active = true;
          RecordingHooks hooks(&rec);
          selections[static_cast<std::size_t>(i)] = select_and_move(
              view, static_cast<std::size_t>(i), world.ctx,
              world.flight[static_cast<std::size_t>(i)], ec, hooks);
        });
      }

      // Snapshot the drain produced by the handlers below: deposits are
      // deferred to the separate tally kernel (§VI-G), so intercept the
      // tally_flat records.
      drain.clear();

      // Kernel 2: collisions.
      for (std::int64_t w = 0; w < warps; ++w) {
        for_warp(w, [&](std::int64_t i, LaneRecord& rec) {
          if (view.state(i) != ParticleState::kAlive) return;
          if (selections[static_cast<std::size_t>(i)].event !=
              EventType::kCollision) {
            return;
          }
          rec.active = true;
          RecordingHooks hooks(&rec);
          handle_collision(view, static_cast<std::size_t>(i), world.ctx,
                           world.flight[static_cast<std::size_t>(i)], ec,
                           /*thread=*/0, hooks);
          if (rec.tally_flat >= 0) {
            drain.push_back(rec.tally_flat);
            rec.tally_flat = -1;  // cost moves to the drain kernel
          }
        });
      }

      // Kernel 3: facets.
      for (std::int64_t w = 0; w < warps; ++w) {
        for_warp(w, [&](std::int64_t i, LaneRecord& rec) {
          if (view.state(i) != ParticleState::kAlive) return;
          if (selections[static_cast<std::size_t>(i)].event !=
              EventType::kFacet) {
            return;
          }
          rec.active = true;
          RecordingHooks hooks(&rec);
          handle_facet(view, static_cast<std::size_t>(i), world.ctx,
                       selections[static_cast<std::size_t>(i)].facet,
                       world.flight[static_cast<std::size_t>(i)], ec,
                       /*thread=*/0, hooks);
          if (rec.tally_flat >= 0) {
            drain.push_back(rec.tally_flat);
            rec.tally_flat = -1;
          }
        });
      }

      // Kernel 4: census.
      for (std::int64_t w = 0; w < warps; ++w) {
        for_warp(w, [&](std::int64_t i, LaneRecord& rec) {
          if (view.state(i) != ParticleState::kAlive) return;
          if (selections[static_cast<std::size_t>(i)].event !=
              EventType::kCensus) {
            return;
          }
          rec.active = true;
          RecordingHooks hooks(&rec);
          handle_census(view, static_cast<std::size_t>(i), world.ctx,
                        world.flight[static_cast<std::size_t>(i)], ec,
                        /*thread=*/0, hooks);
          if (rec.tally_flat >= 0) {
            drain.push_back(rec.tally_flat);
            rec.tally_flat = -1;
          }
        });
      }

      // Kernel 5: the separate tally loop.
      engine.charge_drain(drain);
      engine.charge_barrier(5);
    }
  }

  SimtEstimate out;
  engine.finalise(out);
  out.counters = ec;
  out.tally_total = world.tally.total();
  out.tally_checksum =
      positional_checksum(world.tally.data(), world.tally.cells());
  return out;
}

}  // namespace

SimtEstimate simulate_transport(const SimtConfig& config) {
  NEUTRAL_REQUIRE(config.deck.n_particles > 0, "deck must define particles");
  if (config.scheme == Scheme::kOverParticles) {
    return simulate_over_particles(config);
  }
  return simulate_over_events(config);
}

double scale_seconds(const SimtEstimate& estimate,
                     std::int64_t simulated_particles,
                     std::int64_t target_particles) {
  NEUTRAL_REQUIRE(simulated_particles > 0 && target_particles > 0,
                  "particle counts must be positive");
  return estimate.seconds * static_cast<double>(target_particles) /
         static_cast<double>(simulated_particles);
}

}  // namespace neutral::simt
