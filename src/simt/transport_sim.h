// Machine-model transport simulator (reproduces paper Figs 9-14).
//
// Replays the *actual* transport physics (core/step.h) lane by lane in
// lock-step warps under a DeviceModel cost model:
//
//   * the warp executes every distinct event path its active lanes need,
//     serially — SIMT divergence (§V-A "deep branches");
//   * semantic memory operations (density loads, XS walks, tally RMWs) are
//     coalesced across the warp into line transactions, probed against a
//     capacity cache, and charged latency/bandwidth;
//   * tally flushes landing on the same cell serialise — atomic conflicts
//     (§VII-A.1), with a CAS-emulation multiplier on devices without native
//     FP64 atomics (§VIII-A);
//   * per-unit stall cycles are hidden by the resident contexts (SMT ways /
//     occupancy-limited warps) — the latency-tolerance mechanism the paper
//     credits for the GPU win (§VIII);
//   * the Over Events variant replays the breadth-first kernel pipeline,
//     charging the per-kernel streaming of the flight-state arrays that the
//     Over Particles scheme keeps in registers (§VII-A.2).
//
// Because the physics is bit-identical to the native code (same RNG keys,
// same decks), the simulator's tally must match the native tally exactly —
// one of the integration tests.
#pragma once

#include <cstdint>
#include <memory>

#include "core/counters.h"
#include "core/simulation.h"
#include "simt/device.h"

namespace neutral::simt {

struct SimtConfig {
  DeviceModel device;
  Scheme scheme = Scheme::kOverParticles;
  ProblemDeck deck;
  XsLookup lookup = XsLookup::kCachedLinear;
  /// Model the batched counter-based RNG (--rng-batch): four Threefry
  /// draws per keystream call amortise the block cost, so each draw costs
  /// a fraction of the standalone block.  Physics is bit-identical (the
  /// batched stream replays the same counter sequence); only the cycle
  /// charge changes.
  bool rng_batch = false;
  /// Model branchless event selection (--branchless-events) in the Over
  /// Events kernels: select chains replace the mispredicting branches of
  /// breadth-first sweeps.  Ignored (forced off) for Over Particles,
  /// exactly as the native scheme does.  Physics stays bit-identical.
  bool branchless_events = false;
  /// Registers per thread for the occupancy model; 0 = device default.
  std::int32_t regs_per_thread = 0;
  /// Threads to run (CPU devices); 0 = all contexts of all units.
  std::int32_t threads = 0;
  /// Scale the modelled cache capacity by (deck cells / paper cells) so a
  /// laptop-scale deck keeps the paper-scale cache:footprint ratio.
  bool scale_cache_to_deck = true;
  /// Fixed per-iteration costs (kernel launches/barriers) are charged as if
  /// the deck ran this many particles, i.e. scaled by
  /// min(1, n_particles/amortize_to_particles).  Combined with
  /// scale_seconds() this reproduces the fixed-cost share the paper-scale
  /// run would see.  Set to the paper's particle count for the deck.
  std::int64_t amortize_to_particles = 1000000;
};

struct SimtEstimate {
  /// Estimated wall seconds for the configured deck on the device.
  double seconds = 0.0;
  /// Achieved DRAM bandwidth implied by the estimate.
  double achieved_gbps = 0.0;
  double bandwidth_utilization = 0.0;  ///< achieved / device achievable
  /// Mean distinct event paths executed per warp-step (1 = converged).
  double divergence_paths = 1.0;
  /// Mean fraction of lanes active per warp-step.
  double lane_activity = 1.0;
  /// Resident contexts used per unit.
  std::int32_t contexts = 1;
  /// Fraction of cycles stalled on memory (before latency hiding).
  double memory_stall_fraction = 0.0;
  /// Mean depth of same-cell tally conflicts per flush batch.
  double atomic_conflict_depth = 1.0;
  double cache_hit_rate = 0.0;

  std::uint64_t issue_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t dram_bytes = 0;

  /// Physics outputs (exactly equal to a native run of the same deck).
  EventCounters counters;
  double tally_total = 0.0;
  double tally_checksum = 0.0;
};

/// Run the deck through the device model.  Deck sizes are simulated in
/// full; callers hand in laptop-scale decks and extrapolate with
/// `scale_seconds` if they want paper-scale numbers.
SimtEstimate simulate_transport(const SimtConfig& config);

/// Linear per-particle extrapolation helper: estimated seconds if the same
/// deck ran `target_particles` histories instead of `simulated_particles`.
double scale_seconds(const SimtEstimate& estimate,
                     std::int64_t simulated_particles,
                     std::int64_t target_particles);

}  // namespace neutral::simt
