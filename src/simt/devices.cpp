#include "simt/device.h"

#include <algorithm>
#include <array>

namespace neutral::simt {

std::int32_t DeviceModel::occupancy(std::int32_t regs_per_thread) const {
  if (registers_per_unit <= 0 || regs_per_thread <= 0) return max_contexts;
  // A resident context (warp) holds simt_lanes threads' registers.
  const std::int64_t regs_per_context =
      static_cast<std::int64_t>(regs_per_thread) * std::max(1, simt_lanes);
  const auto fit = static_cast<std::int32_t>(registers_per_unit /
                                             std::max<std::int64_t>(1, regs_per_context));
  return std::clamp(fit, 1, max_contexts);
}

DeviceModel broadwell_2699v4_dual() {
  DeviceModel d;
  d.name = "2x Broadwell E5-2699v4";
  d.compute_units = 44;   // 22 cores x 2 sockets
  d.max_contexts = 2;     // HyperThreading
  d.simt_lanes = 1;
  d.simd_lanes = 4;       // AVX2 x FP64
  d.simd_efficiency = 0.4;
  d.clock_ghz = 2.6;      // all-core turbo
  d.issue_per_cycle = 2.0;
  d.memory.dram_latency_ns = 95.0;
  d.memory.dram_bandwidth_gbps = 130.0;  // 2 sockets DDR4-2400
  d.memory.cache_latency_ns = 18.0;
  d.memory.cache_bytes = 110ll << 20;    // 2 x 55 MB LLC
  d.memory.line_bytes = 64;
  d.atomic_ns = 10.0;
  d.native_fp64_atomics = true;  // lock add / cached RMW
  return d;
}

DeviceModel knl_7210_ddr() {
  DeviceModel d;
  d.name = "KNL 7210 (DDR)";
  d.compute_units = 64;
  d.max_contexts = 4;     // 4-way SMT
  d.simt_lanes = 1;
  d.simd_lanes = 8;       // AVX-512 x FP64
  d.simd_efficiency = 0.4;
  d.clock_ghz = 1.3;
  // Silvermont-derived cores: 2-wide decode but ~1 sustained op/cycle on
  // dependent branchy scalar code — the §VIII observation that the KNL
  // disappoints on this algorithm.
  d.issue_per_cycle = 1.0;
  d.memory.dram_latency_ns = 130.0;
  d.memory.dram_bandwidth_gbps = 90.0;
  d.memory.cache_latency_ns = 20.0;
  d.memory.cache_bytes = 32ll << 20;  // distributed L2 (no LLC)
  d.memory.line_bytes = 64;
  d.atomic_ns = 18.0;     // mesh-interconnect RMW
  d.native_fp64_atomics = true;
  return d;
}

DeviceModel knl_7210_mcdram() {
  DeviceModel d = knl_7210_ddr();
  d.name = "KNL 7210 (MCDRAM)";
  // MCDRAM: far higher bandwidth, slightly *higher* latency than DDR — the
  // §VII-B observation that latency-bound work can prefer DDR.
  d.memory.dram_latency_ns = 155.0;
  d.memory.dram_bandwidth_gbps = 420.0;
  return d;
}

DeviceModel power8_dual10() {
  DeviceModel d;
  d.name = "2x POWER8 10c";
  d.compute_units = 20;
  d.max_contexts = 8;     // SMT8
  d.simt_lanes = 1;
  d.simd_lanes = 2;       // VSX x FP64
  d.simd_efficiency = 0.5;
  d.clock_ghz = 3.5;
  d.issue_per_cycle = 2.0;
  d.memory.dram_latency_ns = 110.0;  // via Centaur buffers
  d.memory.dram_bandwidth_gbps = 230.0;  // 8 channels/socket
  d.memory.cache_latency_ns = 25.0;
  d.memory.cache_bytes = 160ll << 20;  // 8 MB eDRAM L3 per core
  d.memory.line_bytes = 128;
  d.atomic_ns = 16.0;     // larx/stcx pair
  d.native_fp64_atomics = false;  // LL/SC retry loop
  return d;
}

DeviceModel k20x() {
  DeviceModel d;
  d.name = "NVIDIA K20X";
  d.compute_units = 14;   // SMX count
  d.max_contexts = 64;    // resident warps per SMX
  d.simt_lanes = 32;
  d.simd_lanes = 32;
  d.clock_ghz = 0.732;
  d.issue_per_cycle = 4.0;  // per-SMX scheduler slots (per warp-lane group)
  d.memory.dram_latency_ns = 440.0;
  d.memory.dram_bandwidth_gbps = 180.0;  // achievable (250 peak)
  d.memory.cache_latency_ns = 80.0;
  d.memory.cache_bytes = 1536ll << 10;   // 1.5 MB L2
  d.memory.line_bytes = 128;
  d.atomic_ns = 30.0;
  d.native_fp64_atomics = false;  // FP64 atomicAdd emulated via CAS (§VIII-A)
  d.kernel_launch_ns = 5000.0;    // CUDA launch + device sync
  d.registers_per_unit = 65536;
  d.default_regs_per_thread = 102;  // what the compiler allocated (§VI-H)
  return d;
}

DeviceModel p100() {
  DeviceModel d;
  d.name = "NVIDIA P100";
  d.compute_units = 56;   // SM count
  d.max_contexts = 64;
  d.simt_lanes = 32;
  d.simd_lanes = 32;
  d.clock_ghz = 1.328;
  d.issue_per_cycle = 2.0;  // smaller SMs than Kepler SMX
  d.memory.dram_latency_ns = 380.0;
  d.memory.dram_bandwidth_gbps = 510.0;  // achievable (732 peak HBM2)
  d.memory.cache_latency_ns = 70.0;
  d.memory.cache_bytes = 4096ll << 10;   // 4 MB L2
  d.memory.line_bytes = 128;
  d.atomic_ns = 16.0;
  d.native_fp64_atomics = true;  // hardware FP64 atomicAdd (§VIII-A)
  d.kernel_launch_ns = 4000.0;
  d.registers_per_unit = 65536;
  d.default_regs_per_thread = 79;  // CUDA arch 6.0 allocation (§VII-E)
  return d;
}

const DeviceModel* all_devices(std::int32_t* count) {
  static const std::array<DeviceModel, 6> devices = {
      broadwell_2699v4_dual(), knl_7210_ddr(), knl_7210_mcdram(),
      power8_dual10(),         k20x(),         p100()};
  *count = static_cast<std::int32_t>(devices.size());
  return devices.data();
}

}  // namespace neutral::simt
