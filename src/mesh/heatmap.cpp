#include "mesh/heatmap.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "mesh/mesh2d.h"
#include "util/error.h"

namespace neutral {
namespace {

struct Rgb {
  unsigned char r, g, b;
};

// Simple "fire" ramp: black -> red -> orange -> yellow -> white.
Rgb fire(double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto lerp = [](double a, double b, double u) { return a + (b - a) * u; };
  double r, g, b;
  if (t < 0.33) {
    const double u = t / 0.33;
    r = lerp(0, 200, u); g = lerp(0, 30, u); b = lerp(0, 20, u);
  } else if (t < 0.66) {
    const double u = (t - 0.33) / 0.33;
    r = lerp(200, 255, u); g = lerp(30, 165, u); b = lerp(20, 0, u);
  } else {
    const double u = (t - 0.66) / 0.34;
    r = lerp(255, 255, u); g = lerp(165, 255, u); b = lerp(0, 230, u);
  }
  return {static_cast<unsigned char>(r), static_cast<unsigned char>(g),
          static_cast<unsigned char>(b)};
}

}  // namespace

void write_heatmap_ppm(const std::string& path, const StructuredMesh2D& mesh,
                       const double* field, std::int32_t max_pixels) {
  NEUTRAL_REQUIRE(field != nullptr, "field must not be null");
  NEUTRAL_REQUIRE(max_pixels >= 1, "max_pixels must be positive");

  const std::int32_t nx = mesh.nx();
  const std::int32_t ny = mesh.ny();
  const std::int32_t longest = std::max(nx, ny);
  const std::int32_t bin = std::max<std::int32_t>(1, (longest + max_pixels - 1) / max_pixels);
  const std::int32_t px = (nx + bin - 1) / bin;
  const std::int32_t py = (ny + bin - 1) / bin;

  // Box-filter down-sample.
  std::vector<double> img(static_cast<std::size_t>(px) * py, 0.0);
  std::vector<std::int32_t> cnt(img.size(), 0);
  for (std::int32_t j = 0; j < ny; ++j) {
    for (std::int32_t i = 0; i < nx; ++i) {
      const auto p = static_cast<std::size_t>(j / bin) * px + i / bin;
      img[p] += field[static_cast<std::int64_t>(j) * nx + i];
      ++cnt[p];
    }
  }
  double vmax = 0.0;
  for (std::size_t p = 0; p < img.size(); ++p) {
    img[p] /= std::max(1, cnt[p]);
    vmax = std::max(vmax, img[p]);
  }

  // Log scale spanning 6 decades below the max, as energy deposition falls
  // off exponentially away from the source.
  const double log_max = vmax > 0.0 ? std::log10(vmax) : 0.0;
  const double log_min = log_max - 6.0;

  std::ofstream out(path, std::ios::binary);
  NEUTRAL_REQUIRE(out.good(), "cannot open heatmap output " + path);
  out << "P6\n" << px << ' ' << py << "\n255\n";
  // PPM rows run top-to-bottom; mesh rows bottom-to-top.
  for (std::int32_t j = py - 1; j >= 0; --j) {
    for (std::int32_t i = 0; i < px; ++i) {
      const double v = img[static_cast<std::size_t>(j) * px + i];
      Rgb c{0, 0, 0};
      if (v > 0.0 && vmax > 0.0) {
        c = fire((std::log10(v) - log_min) / (log_max - log_min));
      }
      out.put(static_cast<char>(c.r));
      out.put(static_cast<char>(c.g));
      out.put(static_cast<char>(c.b));
    }
  }
}

}  // namespace neutral
