#include "mesh/mesh2d.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/numeric.h"

namespace neutral {

StructuredMesh2D::StructuredMesh2D(std::int32_t nx, std::int32_t ny,
                                   double width, double height)
    : nx_(nx), ny_(ny) {
  NEUTRAL_REQUIRE(nx >= 1 && ny >= 1, "mesh needs at least one cell per axis");
  NEUTRAL_REQUIRE(width > 0.0 && height > 0.0, "mesh extents must be positive");
  edge_x_.resize(static_cast<std::size_t>(nx) + 1);
  edge_y_.resize(static_cast<std::size_t>(ny) + 1);
  for (std::int32_t i = 0; i <= nx; ++i) {
    edge_x_[i] = width * static_cast<double>(i) / nx;
  }
  for (std::int32_t j = 0; j <= ny; ++j) {
    edge_y_[j] = height * static_cast<double>(j) / ny;
  }
  uniform_ = true;
  inv_dx_ = nx / width;
  inv_dy_ = ny / height;
}

StructuredMesh2D::StructuredMesh2D(aligned_vector<double> edge_x,
                                   aligned_vector<double> edge_y)
    : edge_x_(std::move(edge_x)), edge_y_(std::move(edge_y)) {
  NEUTRAL_REQUIRE(edge_x_.size() >= 2 && edge_y_.size() >= 2,
                  "edge arrays need at least two entries");
  NEUTRAL_REQUIRE(std::is_sorted(edge_x_.begin(), edge_x_.end()) &&
                      std::adjacent_find(edge_x_.begin(), edge_x_.end()) ==
                          edge_x_.end(),
                  "x edges must be strictly increasing");
  NEUTRAL_REQUIRE(std::is_sorted(edge_y_.begin(), edge_y_.end()) &&
                      std::adjacent_find(edge_y_.begin(), edge_y_.end()) ==
                          edge_y_.end(),
                  "y edges must be strictly increasing");
  nx_ = static_cast<std::int32_t>(edge_x_.size()) - 1;
  ny_ = static_cast<std::int32_t>(edge_y_.size()) - 1;
  uniform_ = false;
}

std::int32_t StructuredMesh2D::locate_1d(const aligned_vector<double>& edges,
                                         double v) const {
  // upper_bound yields the first edge strictly greater than v; the cell is
  // one to the left.  Clamp so points exactly on the top edge belong to the
  // last cell.
  const auto it = std::upper_bound(edges.begin(), edges.end(), v);
  auto idx = static_cast<std::int64_t>(std::distance(edges.begin(), it)) - 1;
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(edges.size()) - 2);
  return static_cast<std::int32_t>(idx);
}

CellIndex StructuredMesh2D::locate(double x, double y) const {
  const double cx = clamp(x, x_min(), x_max());
  const double cy = clamp(y, y_min(), y_max());
  if (uniform_) {
    auto ix = static_cast<std::int32_t>((cx - x_min()) * inv_dx_);
    auto iy = static_cast<std::int32_t>((cy - y_min()) * inv_dy_);
    ix = std::clamp(ix, 0, nx_ - 1);
    iy = std::clamp(iy, 0, ny_ - 1);
    return {ix, iy};
  }
  return {locate_1d(edge_x_, cx), locate_1d(edge_y_, cy)};
}

}  // namespace neutral
