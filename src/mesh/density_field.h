// Cell-centred mass-density field (paper §IV-B).
//
// The transport kernels read this field once per facet crossing — the
// random-access pattern the paper identifies as the dominant latency
// bottleneck — so the storage is a flat row-major aligned array.
//
// Units: the public API accepts kg/m^3 (the paper quotes densities in
// kg/m^3) and stores g/cm^3 because the cross-section module computes
// number densities in CGS.
#pragma once

#include <cstdint>

#include "mesh/mesh2d.h"
#include "mesh/window.h"
#include "util/aligned.h"

namespace neutral {

/// kg/m^3 -> g/cm^3.
inline constexpr double kKgM3ToGCm3 = 1.0e-3;

class DensityField {
 public:
  /// All cells initialised to `uniform_kg_m3`.
  DensityField(const StructuredMesh2D& mesh, double uniform_kg_m3);

  /// Slab variant: allocate only `window.num_cells()` cells (domain
  /// decomposition).  Fills address the window's cells through the same
  /// global cell-centre tests as the full field, so a windowed field holds
  /// exactly the full field's values restricted to the window.
  DensityField(const StructuredMesh2D& mesh, const DomainWindow& window,
               double uniform_kg_m3);

  /// Overwrite every cell.
  void fill(double kg_m3);

  /// Overwrite cells whose *centres* fall inside the axis-aligned rectangle
  /// [x0,x1] x [y0,y1] (coordinates in mesh units).  Used to build the csp
  /// centre square and layered-phantom examples.
  void fill_rect(double x0, double y0, double x1, double y1, double kg_m3);

  /// Density of a flat-indexed cell in g/cm^3 (kernel hot path).  The
  /// index is window-local: DomainWindow::local_flat for slab fields, which
  /// degrades to the mesh's flat index for full-mesh fields.
  [[nodiscard]] double g_cm3(std::int64_t flat) const { return rho_[flat]; }

  /// Density in the deck's native unit, for reporting.
  [[nodiscard]] double kg_m3(std::int64_t flat) const {
    return rho_[flat] / kKgM3ToGCm3;
  }

  [[nodiscard]] const double* data() const { return rho_.data(); }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(rho_.size());
  }
  [[nodiscard]] const StructuredMesh2D& mesh() const { return *mesh_; }
  /// The mesh window this field's storage covers (full mesh by default).
  [[nodiscard]] const DomainWindow& window() const { return window_; }

 private:
  const StructuredMesh2D* mesh_;
  DomainWindow window_;
  aligned_vector<double> rho_;  // g/cm^3
};

}  // namespace neutral
