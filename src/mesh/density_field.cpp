#include "mesh/density_field.h"

#include "util/error.h"

namespace neutral {

DensityField::DensityField(const StructuredMesh2D& mesh, double uniform_kg_m3)
    : DensityField(mesh, DomainWindow::full(mesh), uniform_kg_m3) {}

DensityField::DensityField(const StructuredMesh2D& mesh,
                           const DomainWindow& window, double uniform_kg_m3)
    : mesh_(&mesh), window_(window) {
  NEUTRAL_REQUIRE(uniform_kg_m3 >= 0.0, "density must be non-negative");
  NEUTRAL_REQUIRE(window_.within(mesh), "density window must fit the mesh");
  rho_.assign(static_cast<std::size_t>(window_.num_cells()),
              uniform_kg_m3 * kKgM3ToGCm3);
}

void DensityField::fill(double kg_m3) {
  NEUTRAL_REQUIRE(kg_m3 >= 0.0, "density must be non-negative");
  std::fill(rho_.begin(), rho_.end(), kg_m3 * kKgM3ToGCm3);
}

void DensityField::fill_rect(double x0, double y0, double x1, double y1,
                             double kg_m3) {
  NEUTRAL_REQUIRE(kg_m3 >= 0.0, "density must be non-negative");
  NEUTRAL_REQUIRE(x0 <= x1 && y0 <= y1, "rectangle must be well-formed");
  const auto& m = *mesh_;
  // Walk only the window's cells, but test GLOBAL cell centres: a slab
  // field reproduces the full field's membership decisions exactly.
  for (std::int32_t j = window_.y0; j < window_.y0 + window_.ny; ++j) {
    const double cy = m.centre_y(j);
    if (cy < y0 || cy > y1) continue;
    for (std::int32_t i = window_.x0; i < window_.x0 + window_.nx; ++i) {
      const double cx = m.centre_x(i);
      if (cx < x0 || cx > x1) continue;
      rho_[window_.local_flat({i, j})] = kg_m3 * kKgM3ToGCm3;
    }
  }
}

}  // namespace neutral
