#include "mesh/density_field.h"

#include "util/error.h"

namespace neutral {

DensityField::DensityField(const StructuredMesh2D& mesh, double uniform_kg_m3)
    : mesh_(&mesh) {
  NEUTRAL_REQUIRE(uniform_kg_m3 >= 0.0, "density must be non-negative");
  rho_.assign(static_cast<std::size_t>(mesh.num_cells()),
              uniform_kg_m3 * kKgM3ToGCm3);
}

void DensityField::fill(double kg_m3) {
  NEUTRAL_REQUIRE(kg_m3 >= 0.0, "density must be non-negative");
  std::fill(rho_.begin(), rho_.end(), kg_m3 * kKgM3ToGCm3);
}

void DensityField::fill_rect(double x0, double y0, double x1, double y1,
                             double kg_m3) {
  NEUTRAL_REQUIRE(kg_m3 >= 0.0, "density must be non-negative");
  NEUTRAL_REQUIRE(x0 <= x1 && y0 <= y1, "rectangle must be well-formed");
  const auto& m = *mesh_;
  for (std::int32_t j = 0; j < m.ny(); ++j) {
    const double cy = m.centre_y(j);
    if (cy < y0 || cy > y1) continue;
    for (std::int32_t i = 0; i < m.nx(); ++i) {
      const double cx = m.centre_x(i);
      if (cx < x0 || cx > x1) continue;
      rho_[m.flat_index({i, j})] = kg_m3 * kKgM3ToGCm3;
    }
  }
}

}  // namespace neutral
