// Domain windows: rectangular cell-index slabs of a StructuredMesh2D.
//
// Domain (spatial) decomposition splits the O(nx*ny) mesh-resident state —
// the tally and the density field, the memory floor of the mini-app — while
// the O(nx+ny) edge-coordinate arrays stay replicated on every subdomain.
// Cell indices therefore remain GLOBAL everywhere: a window never changes
// the facet-distance arithmetic or the boundary tests (they read edge
// coordinates and the full mesh extents), it only remaps *storage*, so a
// windowed transport replays bit-identical particle histories and differs
// from the unsharded run only in which slab its deposits land on.
#pragma once

#include <cstdint>

#include "mesh/mesh2d.h"

namespace neutral {

/// Half-open cell-index window [x0, x0+nx) x [y0, y0+ny).  A
/// default-constructed window (nx == ny == 0) is inactive and means "the
/// full mesh" wherever a window is optional (SimulationConfig::window).
struct DomainWindow {
  std::int32_t x0 = 0;
  std::int32_t y0 = 0;
  std::int32_t nx = 0;
  std::int32_t ny = 0;

  friend bool operator==(const DomainWindow&, const DomainWindow&) = default;

  [[nodiscard]] bool active() const { return nx > 0 && ny > 0; }

  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(nx) * ny;
  }

  [[nodiscard]] bool contains(CellIndex c) const {
    return c.x >= x0 && c.x < x0 + nx && c.y >= y0 && c.y < y0 + ny;
  }

  /// Row-major index into the window's slab storage.  Only valid when
  /// contains(c); for the full-mesh window this is exactly
  /// StructuredMesh2D::flat_index.
  [[nodiscard]] std::int64_t local_flat(CellIndex c) const {
    return static_cast<std::int64_t>(c.y - y0) * nx + (c.x - x0);
  }

  /// Does this window fit inside `mesh`?
  [[nodiscard]] bool within(const StructuredMesh2D& mesh) const {
    return x0 >= 0 && y0 >= 0 && nx >= 1 && ny >= 1 &&
           x0 + nx <= mesh.nx() && y0 + ny <= mesh.ny();
  }

  /// Is this window exactly the whole of `mesh`?
  [[nodiscard]] bool covers(const StructuredMesh2D& mesh) const {
    return x0 == 0 && y0 == 0 && nx == mesh.nx() && ny == mesh.ny();
  }

  /// The window covering all of `mesh`.
  static DomainWindow full(const StructuredMesh2D& mesh) {
    return DomainWindow{0, 0, mesh.nx(), mesh.ny()};
  }
};

}  // namespace neutral
