// Facet intersection and reflective boundaries (paper §IV-C).
//
// The structured grid lets facet checking collapse to two axis-aligned
// distance computations in Cartesian space.  These helpers are header-only:
// they sit on the hottest path in the whole mini-app (~3 ns per facet event
// on the paper's Broadwell) and must inline into both the native kernels
// and the machine-model simulator's lane functors.
//
// Robustness note: the *cell index* is the source of truth for which cell a
// particle occupies, never its floating-point position.  Every facet event
// advances the index by exactly one cell, so round-off in the position can
// never produce an infinite loop of zero-length steps.
#pragma once

#include <cstdint>

#include "mesh/mesh2d.h"
#include "util/numeric.h"

namespace neutral {

/// Outcome of the nearest-facet search for one particle.
struct FacetIntersection {
  double distance = kInf;  ///< flight distance to the facet (>= 0)
  std::int8_t axis = 0;    ///< 0: vertical facet (x), 1: horizontal (y)
  std::int8_t step = 0;    ///< -1 or +1: cell-index delta along `axis`
  bool at_boundary = false;  ///< facet lies on the domain boundary
};

/// Distance along the flight direction to the nearest facet of cell `c`.
///
/// Direction components may be zero (motion parallel to an axis); the
/// corresponding facet is then unreachable and reported as infinity.
inline FacetIntersection nearest_facet(const StructuredMesh2D& mesh, double x,
                                       double y, double omega_x, double omega_y,
                                       CellIndex c) {
  // Distance to the vertical facet in the direction of travel.
  double dist_x = kInf;
  std::int8_t step_x = 0;
  if (omega_x > 0.0) {
    dist_x = (mesh.edge_x(c.x + 1) - x) / omega_x;
    step_x = 1;
  } else if (omega_x < 0.0) {
    dist_x = (mesh.edge_x(c.x) - x) / omega_x;
    step_x = -1;
  }

  double dist_y = kInf;
  std::int8_t step_y = 0;
  if (omega_y > 0.0) {
    dist_y = (mesh.edge_y(c.y + 1) - y) / omega_y;
    step_y = 1;
  } else if (omega_y < 0.0) {
    dist_y = (mesh.edge_y(c.y) - y) / omega_y;
    step_y = -1;
  }

  FacetIntersection out;
  if (dist_x <= dist_y) {
    out.distance = dist_x;
    out.axis = 0;
    out.step = step_x;
    out.at_boundary = (step_x > 0 && c.x + 1 == mesh.nx()) ||
                      (step_x < 0 && c.x == 0);
  } else {
    out.distance = dist_y;
    out.axis = 1;
    out.step = step_y;
    out.at_boundary = (step_y > 0 && c.y + 1 == mesh.ny()) ||
                      (step_y < 0 && c.y == 0);
  }
  // Round-off can yield a marginally negative distance when the position
  // sits a ULP past the facet it just crossed; clamp — the index update
  // below still advances the particle through the mesh.
  if (out.distance < 0.0) out.distance = 0.0;
  return out;
}

/// Branch-light variant of nearest_facet: identical floating-point
/// operands, operations and results — the direction-sign branches (taken
/// essentially at random across a particle population, so mispredicted in
/// the Over Events kernels' breadth-first sweeps) become select-style
/// conditional moves the compiler can turn into cmov/blend, and the body
/// becomes a single straight-line block that autovectorises.  Selected at
/// runtime by TransportContext::branchless_events; bit-identity with
/// nearest_facet is enforced by the golden tier.
inline FacetIntersection nearest_facet_branchless(const StructuredMesh2D& mesh,
                                                  double x, double y,
                                                  double omega_x,
                                                  double omega_y, CellIndex c) {
  const bool pos_x = omega_x > 0.0;
  const bool neg_x = omega_x < 0.0;
  // The selected edge is exactly the one the branchy version divides by;
  // when omega_x == 0 the division is skipped (same kInf result), and the
  // loaded edge value is simply unused.
  const double edge_x = mesh.edge_x(pos_x ? c.x + 1 : c.x);
  const double dist_x = (pos_x || neg_x) ? (edge_x - x) / omega_x : kInf;
  const std::int8_t step_x = pos_x ? std::int8_t{1}
                                   : (neg_x ? std::int8_t{-1} : std::int8_t{0});

  const bool pos_y = omega_y > 0.0;
  const bool neg_y = omega_y < 0.0;
  const double edge_y = mesh.edge_y(pos_y ? c.y + 1 : c.y);
  const double dist_y = (pos_y || neg_y) ? (edge_y - y) / omega_y : kInf;
  const std::int8_t step_y = pos_y ? std::int8_t{1}
                                   : (neg_y ? std::int8_t{-1} : std::int8_t{0});

  const bool take_x = dist_x <= dist_y;
  FacetIntersection out;
  out.distance = take_x ? dist_x : dist_y;
  out.axis = take_x ? std::int8_t{0} : std::int8_t{1};
  out.step = take_x ? step_x : step_y;
  const bool boundary_x =
      (step_x > 0 && c.x + 1 == mesh.nx()) || (step_x < 0 && c.x == 0);
  const bool boundary_y =
      (step_y > 0 && c.y + 1 == mesh.ny()) || (step_y < 0 && c.y == 0);
  out.at_boundary = take_x ? boundary_x : boundary_y;
  if (out.distance < 0.0) out.distance = 0.0;
  return out;
}

/// Apply a facet crossing to the cell index / direction.
///
/// Interior facet: the index steps into the neighbour cell.  Boundary
/// facet: reflective boundary conditions (§IV-C) flip the direction
/// component normal to the facet and the index stays put.  Returns true if
/// the particle was reflected.
inline bool apply_facet_crossing(const FacetIntersection& f, CellIndex& c,
                                 double& omega_x, double& omega_y) {
  if (f.at_boundary) {
    if (f.axis == 0) {
      omega_x = -omega_x;
    } else {
      omega_y = -omega_y;
    }
    return true;
  }
  if (f.axis == 0) {
    c.x += f.step;
  } else {
    c.y += f.step;
  }
  return false;
}

}  // namespace neutral
