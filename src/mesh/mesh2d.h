// 2D structured computational mesh (paper §IV-B/C).
//
// neutral deliberately uses a structured Cartesian grid so that facet
// intersection reduces to two axis-aligned distance computations, exposing
// the *memory system* issues (random access to cell-centred data) rather
// than geometry cost.  Edge coordinate arrays are stored explicitly — the
// same representation the mini-app uses — so a future non-uniform grid
// changes no kernel code.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace neutral {

/// Cell index pair.  Kept as two ints (not a flattened index) because the
/// transport kernels update x and y independently on facet crossings.
struct CellIndex {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const CellIndex&, const CellIndex&) = default;
};

class StructuredMesh2D {
 public:
  /// Uniform mesh covering [0,width] x [0,height] with nx x ny cells.
  StructuredMesh2D(std::int32_t nx, std::int32_t ny, double width,
                   double height);

  /// Fully general constructor from explicit edge coordinate arrays
  /// (strictly increasing; sizes nx+1 and ny+1).
  StructuredMesh2D(aligned_vector<double> edge_x, aligned_vector<double> edge_y);

  [[nodiscard]] std::int32_t nx() const { return nx_; }
  [[nodiscard]] std::int32_t ny() const { return ny_; }
  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(nx_) * ny_;
  }

  [[nodiscard]] double width() const { return edge_x_.back() - edge_x_.front(); }
  [[nodiscard]] double height() const { return edge_y_.back() - edge_y_.front(); }
  [[nodiscard]] double x_min() const { return edge_x_.front(); }
  [[nodiscard]] double x_max() const { return edge_x_.back(); }
  [[nodiscard]] double y_min() const { return edge_y_.front(); }
  [[nodiscard]] double y_max() const { return edge_y_.back(); }

  /// Edge coordinates; index i gives the left/bottom face of cell i.
  [[nodiscard]] double edge_x(std::int32_t i) const { return edge_x_[i]; }
  [[nodiscard]] double edge_y(std::int32_t j) const { return edge_y_[j]; }

  [[nodiscard]] double cell_dx(std::int32_t i) const {
    return edge_x_[i + 1] - edge_x_[i];
  }
  [[nodiscard]] double cell_dy(std::int32_t j) const {
    return edge_y_[j + 1] - edge_y_[j];
  }

  /// Flattened row-major cell index (used by density and tally fields).
  [[nodiscard]] std::int64_t flat_index(CellIndex c) const {
    return static_cast<std::int64_t>(c.y) * nx_ + c.x;
  }

  /// Locate the cell containing (x, y); coordinates are clamped into the
  /// domain first (particles sit exactly on edges during facet handling).
  [[nodiscard]] CellIndex locate(double x, double y) const;

  [[nodiscard]] bool uniform() const { return uniform_; }

  /// Cell centre coordinates — used by the source sampler and plots.
  [[nodiscard]] double centre_x(std::int32_t i) const {
    return 0.5 * (edge_x_[i] + edge_x_[i + 1]);
  }
  [[nodiscard]] double centre_y(std::int32_t j) const {
    return 0.5 * (edge_y_[j] + edge_y_[j + 1]);
  }

 private:
  [[nodiscard]] std::int32_t locate_1d(const aligned_vector<double>& edges,
                                       double v) const;

  std::int32_t nx_ = 0;
  std::int32_t ny_ = 0;
  aligned_vector<double> edge_x_;
  aligned_vector<double> edge_y_;
  bool uniform_ = false;
  double inv_dx_ = 0.0;  // fast-path locate for uniform meshes
  double inv_dy_ = 0.0;
};

}  // namespace neutral
