// Binary PPM heat-map writer for mesh-shaped scalar fields.
//
// Regenerates the paper's Figure 2 (energy-deposition plots of the three
// test problems) without any plotting dependency.  Values are mapped through
// log10 onto a perceptually-ordered fire palette.
#pragma once

#include <cstdint>
#include <string>

namespace neutral {

class StructuredMesh2D;

/// Write `field` (row-major, mesh.num_cells() entries) as a PPM image.
/// `max_pixels` caps the longest image edge; the field is box-down-sampled
/// when the mesh is larger than that.  Zero/negative cells render black.
void write_heatmap_ppm(const std::string& path, const StructuredMesh2D& mesh,
                       const double* field, std::int32_t max_pixels = 1024);

}  // namespace neutral
