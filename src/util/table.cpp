#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace neutral {

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  NEUTRAL_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void ResultTable::add_row(std::vector<std::string> cells) {
  NEUTRAL_REQUIRE(cells.size() == columns_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void ResultTable::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "| " : " | ", static_cast<int>(widths[c]),
                  row[c].c_str());
    }
    std::printf(" |\n");
  };
  print_row(columns_);
  std::size_t total = 4;
  for (auto w : widths) total += w + 3;
  for (std::size_t i = 0; i < total - 3; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void ResultTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  NEUTRAL_REQUIRE(out.good(), "cannot open CSV output file " + path);
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << esc(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << esc(row[c]);
    }
    out << '\n';
  }
}

std::string ResultTable::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision >= 0 ? precision + 3 : 6, v);
  // Use fixed for "nice" magnitudes, %g already handles extremes.
  if (v != 0.0 && (std::abs(v) >= 1e-3 && std::abs(v) < 1e6)) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  return buf;
}

std::string ResultTable::cell_full(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string ResultTable::cell(long v) { return std::to_string(v); }
std::string ResultTable::cell(unsigned long long v) { return std::to_string(v); }

}  // namespace neutral
