// Cache-line aligned allocation for hot arrays.
//
// Monte Carlo transport is memory-latency bound (paper §VI); aligning the
// particle field arrays and the tally mesh to cache-line boundaries keeps
// the SoA layout honest in the layout experiments (Fig 5) and avoids false
// sharing between per-thread private tallies (Fig 7).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace neutral {

/// Size in bytes of a destructive-interference-free block.  64 bytes on all
/// x86-64 and POWER parts the paper evaluates.
inline constexpr std::size_t kCacheLine = 64;

/// Minimal C++17 aligned allocator.  Alignment must be a power of two and a
/// multiple of sizeof(void*).
template <class T, std::size_t Alignment = kCacheLine>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t alignment = Alignment;

  /// allocator_traits cannot synthesise rebind across a non-type template
  /// parameter, so it must be spelled out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector whose storage starts on a cache-line boundary.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// A value padded out to a full cache line; used for per-thread counters so
/// that neighbouring threads never invalidate each other's lines.
template <class T>
struct alignas(kCacheLine) Padded {
  T value{};
  // NOLINTNEXTLINE(*-avoid-c-arrays): explicit padding, never accessed.
  char pad_[kCacheLine > sizeof(T) ? kCacheLine - sizeof(T) : 1];
};

}  // namespace neutral
