// Environment-variable helpers.
//
// Benchmarks honour NEUTRAL_BENCH_SCALE / NEUTRAL_BENCH_FULL so the whole
// suite can be flipped between laptop-scale and paper-scale without editing
// every binary.
#pragma once

#include <string>

namespace neutral {

/// Returns the value of `name` or `def` if unset/empty.
std::string env_or(const std::string& name, const std::string& def);

/// Numeric variants; malformed values raise neutral::Error.
long env_or_int(const std::string& name, long def);
double env_or_double(const std::string& name, double def);

/// True when the variable is set to a truthy value (1/true/yes/on).
bool env_flag(const std::string& name);

}  // namespace neutral
