// Thread-safe errno formatting.
//
// std::strerror returns a pointer into internal static storage and is not
// required to be reentrant (clang-tidy concurrency-mt-unsafe flags it); a
// multi-threaded daemon must use strerror_r.  Which strerror_r depends on
// feature macros — XSI returns int and fills the buffer, GNU returns a
// char* that may ignore the buffer — so dispatch on the return type
// instead of on brittle #ifdefs.
#pragma once

#include <cstring>
#include <string>

namespace neutral {

namespace detail {
// XSI strerror_r: int result, message written into buf.
inline const char* errno_text(int /*result*/, const char* buf) { return buf; }
// GNU strerror_r: the returned pointer is the message (buf may be unused).
inline const char* errno_text(const char* result, const char* /*buf*/) {
  return result;
}
}  // namespace detail

/// strerror(err) without the shared static buffer: safe from any thread.
inline std::string errno_string(int err) {
  char buf[256] = {};
  return detail::errno_text(strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace neutral
