// Small numeric helpers used throughout the transport kernels.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace neutral {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// x*x without repeating a (possibly expensive) expression.
constexpr double sqr(double x) { return x * x; }

/// Clamp into [lo, hi]; constexpr so table generators can use it.
constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Relative-or-absolute closeness check for validation code.
inline bool approx_equal(double a, double b, double rel = 1e-12,
                         double abs = 1e-300) {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

/// Kahan-compensated accumulator: tally checksums must be stable enough to
/// compare across parallelisation schemes whose additions reorder freely.
class KahanSum {
 public:
  void add(double x) {
    const double y = x - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Positive infinity shorthand for event-distance comparisons.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace neutral
