// Annotated mutex vocabulary: the lockable types the thread-safety
// analysis can see.
//
// std::mutex / std::lock_guard / std::condition_variable carry no
// capability attributes under libstdc++, so clang's -Wthread-safety treats
// them as opaque.  These wrappers add exactly that metadata and nothing
// else — Mutex IS a std::mutex, MutexLock IS a std::unique_lock, CondVar
// IS a std::condition_variable; the wrappers compile away entirely.
//
// Discipline they encode:
//   - Declare shared state NEUTRAL_GUARDED_BY(mutex_); the analysis then
//     rejects any access outside a MutexLock scope (or a function
//     annotated NEUTRAL_REQUIRES(mutex_)).
//   - Private helpers that assume the lock take the `_locked` suffix AND
//     the NEUTRAL_REQUIRES annotation — the suffix is for humans, the
//     annotation is what the compiler enforces.
//   - Condition-variable waits spell their predicate as an explicit
//     `while (!cond) cv.wait(lock);` loop instead of a predicate lambda:
//     lambdas cannot carry REQUIRES annotations, so guarded reads inside
//     them would need analysis waivers; the explicit loop keeps every
//     guarded access visibly inside the locked scope.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace neutral {

/// std::mutex with a capability attribute.  Prefer MutexLock over calling
/// lock()/unlock() directly.
class NEUTRAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NEUTRAL_ACQUIRE() { mutex_.lock(); }
  void unlock() NEUTRAL_RELEASE() { mutex_.unlock(); }
  bool try_lock() NEUTRAL_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The raw mutex, for CondVar only — going around the wrapper drops the
  /// capability tracking.
  [[nodiscard]] std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII lock over a Mutex, visible to the analysis as a scoped capability.
/// Internally a std::unique_lock so CondVar can wait on it.
class NEUTRAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NEUTRAL_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() NEUTRAL_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable that waits on a MutexLock.  From the analysis'
/// static viewpoint the capability stays held across a wait (the transient
/// release/reacquire inside is invisible, which is the standard treatment
/// — the caller's guarded accesses before and after the wait are both
/// genuinely under the lock).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace neutral
