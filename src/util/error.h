// Error handling helpers shared across the neutral-mc libraries.
//
// The library throws `neutral::Error` (a std::runtime_error) for programmer
// and configuration mistakes.  Hot transport loops never throw; all argument
// checking happens at setup boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace neutral {

/// Exception type thrown by all neutral-mc components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A run aborted because a wall-clock deadline expired (cooperative checks
/// at timestep/round boundaries — core/simulation.h).  Kept distinct from
/// Error so schedulers can report `timed_out` rather than a plain failure.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace neutral

/// Precondition check used on configuration/setup paths (never in kernels).
/// Throws neutral::Error with file/line context on failure.
#define NEUTRAL_REQUIRE(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::neutral::detail::fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
