// Fixed-width console tables plus CSV emission.
//
// Every benchmark binary prints the rows the corresponding paper figure/table
// reports, and mirrors them into a CSV file for plotting, via this one class.
#pragma once

#include <string>
#include <vector>

namespace neutral {

class ResultTable {
 public:
  /// `title` is printed above the table; `columns` are the header names.
  ResultTable(std::string title, std::vector<std::string> columns);

  /// Append a row; cells are preformatted strings (see `cell` helpers).
  void add_row(std::vector<std::string> cells);

  /// Render to stdout with aligned columns.
  void print() const;

  /// Write `<path>` as RFC-4180-ish CSV (header + rows).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formatting helpers for uniform numeric cells.
  static std::string cell(double v, int precision = 3);
  static std::string cell(long v);
  static std::string cell(unsigned long long v);
  /// Round-trippable %.17g cell — for values diffed bit-for-bit across
  /// runs (shard-reduction checksums).
  static std::string cell_full(double v);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace neutral
