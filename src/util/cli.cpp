#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace neutral {

CliParser::CliParser(int argc, const char* const* argv) {
  NEUTRAL_REQUIRE(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  used_.assign(args_.size(), false);
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (args_[i] == "--help" || args_[i] == "-h") {
      help_requested_ = true;
      used_[i] = true;
    }
  }
}

std::optional<std::string> CliParser::take(const std::string& name,
                                           bool wants_value) {
  const std::string key = "--" + name;
  const std::string key_eq = key + "=";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (used_[i]) continue;
    if (args_[i] == key) {
      used_[i] = true;
      if (!wants_value) return std::string{};
      NEUTRAL_REQUIRE(i + 1 < args_.size() && !used_[i + 1],
                      "option " + key + " expects a value");
      used_[i + 1] = true;
      return args_[i + 1];
    }
    if (args_[i].rfind(key_eq, 0) == 0) {
      used_[i] = true;
      NEUTRAL_REQUIRE(wants_value, "flag " + key + " does not take a value");
      return args_[i].substr(key_eq.size());
    }
  }
  return std::nullopt;
}

void CliParser::note_help(const std::string& name, const std::string& def,
                          const std::string& help) {
  std::string line = "  --" + name;
  if (!def.empty()) line += " (default: " + def + ")";
  line += "\n      " + help;
  help_lines_.push_back(line);
}

bool CliParser::flag(const std::string& name, const std::string& help) {
  note_help(name, "", help);
  return take(name, /*wants_value=*/false).has_value();
}

std::string CliParser::option(const std::string& name, const std::string& def,
                              const std::string& help) {
  note_help(name, def, help);
  auto v = take(name, /*wants_value=*/true);
  return v.value_or(def);
}

long CliParser::option_int(const std::string& name, long def,
                           const std::string& help) {
  note_help(name, std::to_string(def), help);
  auto v = take(name, /*wants_value=*/true);
  if (!v) return def;
  char* end = nullptr;
  const long out = std::strtol(v->c_str(), &end, 10);
  NEUTRAL_REQUIRE(end != nullptr && *end == '\0',
                  "option --" + name + " expects an integer, got '" + *v + "'");
  return out;
}

double CliParser::option_double(const std::string& name, double def,
                                const std::string& help) {
  note_help(name, std::to_string(def), help);
  auto v = take(name, /*wants_value=*/true);
  if (!v) return def;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  NEUTRAL_REQUIRE(end != nullptr && *end == '\0',
                  "option --" + name + " expects a number, got '" + *v + "'");
  return out;
}

bool CliParser::finish() {
  if (help_requested_) {
    std::printf("usage: %s [options]\n", program_.c_str());
    for (const auto& line : help_lines_) std::printf("%s\n", line.c_str());
    return false;
  }
  for (std::size_t i = 0; i < args_.size(); ++i) {
    NEUTRAL_REQUIRE(used_[i], "unknown argument '" + args_[i] + "'");
  }
  return true;
}

}  // namespace neutral
