// Minimal command-line option parser for the example and benchmark binaries.
//
// Supports `--flag`, `--key=value` and `--key value` forms.  Unknown options
// are an error so that typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace neutral {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// Declare a boolean flag; returns true when present.
  bool flag(const std::string& name, const std::string& help);

  /// Declare a string option with a default.
  std::string option(const std::string& name, const std::string& def,
                     const std::string& help);

  /// Declare numeric options with defaults.
  long option_int(const std::string& name, long def, const std::string& help);
  double option_double(const std::string& name, double def,
                       const std::string& help);

  /// Call after all declarations: errors on unknown arguments, prints help
  /// and returns false if --help was given.
  bool finish();

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::optional<std::string> take(const std::string& name, bool wants_value);
  void note_help(const std::string& name, const std::string& def,
                 const std::string& help);

  std::string program_;
  std::vector<std::string> args_;
  std::vector<bool> used_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;
};

}  // namespace neutral
