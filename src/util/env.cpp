#include "util/env.h"

#include <algorithm>
#include <cstdlib>

#include "util/error.h"

namespace neutral {

std::string env_or(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  return v;
}

long env_or_int(const std::string& name, long def) {
  const std::string v = env_or(name, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  NEUTRAL_REQUIRE(end != nullptr && *end == '\0',
                  name + " expects an integer, got '" + v + "'");
  return out;
}

double env_or_double(const std::string& name, double def) {
  const std::string v = env_or(name, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  NEUTRAL_REQUIRE(end != nullptr && *end == '\0',
                  name + " expects a number, got '" + v + "'");
  return out;
}

bool env_flag(const std::string& name) {
  std::string v = env_or(name, "");
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace neutral
