// Clang thread-safety-analysis macro shims.
//
// Wraps the capability attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so lock discipline
// is part of the type system: a clang build with
//   -Wthread-safety -Werror=thread-safety
// refuses to compile code that touches a NEUTRAL_GUARDED_BY member without
// holding its mutex, calls a NEUTRAL_REQUIRES function unlocked, or leaks a
// NEUTRAL_SCOPED_CAPABILITY guard.  Off clang (gcc, MSVC) every macro
// expands to nothing, so the annotations cost non-clang builds exactly
// zero — they are compiled documentation that one compiler happens to
// machine-check.  CI runs that clang configuration (see the clang-tidy job
// in .github/workflows/ci.yml), so a lock-discipline bug fails the build
// there instead of waiting for a flaky test.
//
// Use the neutral::Mutex / neutral::MutexLock / neutral::CondVar wrappers
// from util/mutex.h — std::mutex itself carries no capability attribute,
// so the analysis cannot see it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define NEUTRAL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEUTRAL_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define NEUTRAL_CAPABILITY(x) NEUTRAL_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define NEUTRAL_SCOPED_CAPABILITY NEUTRAL_THREAD_ANNOTATION(scoped_lockable)

/// Data member attribute: reads and writes require holding `x`.
#define NEUTRAL_GUARDED_BY(x) NEUTRAL_THREAD_ANNOTATION(guarded_by(x))

/// Data member attribute: the pointed-to data (not the pointer itself)
/// requires holding `x`.
#define NEUTRAL_PT_GUARDED_BY(x) NEUTRAL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: the caller must hold the listed capabilities
/// exclusively on entry (they stay held on exit).
#define NEUTRAL_REQUIRES(...) \
  NEUTRAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: the caller must hold the listed capabilities at
/// least shared.
#define NEUTRAL_REQUIRES_SHARED(...) \
  NEUTRAL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the listed capabilities (must not be held
/// on entry; held on exit).
#define NEUTRAL_ACQUIRE(...) \
  NEUTRAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities.
#define NEUTRAL_RELEASE(...) \
  NEUTRAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capabilities iff the return value
/// equals the first argument.
#define NEUTRAL_TRY_ACQUIRE(...) \
  NEUTRAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the listed capabilities
/// (deadlock prevention for functions that take them internally).
#define NEUTRAL_EXCLUDES(...) \
  NEUTRAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (at runtime, from the analysis' viewpoint)
/// that the capability is held — escape hatch for code the analysis cannot
/// follow.
#define NEUTRAL_ASSERT_CAPABILITY(x) \
  NEUTRAL_THREAD_ANNOTATION(assert_capability(x))

/// Function attribute: the returned reference is guarded by the returned
/// capability.
#define NEUTRAL_RETURN_CAPABILITY(x) \
  NEUTRAL_THREAD_ANNOTATION(lock_returned(x))

/// Function attribute: opt this function out of the analysis entirely.
/// Every use must carry a comment justifying why the analysis cannot see
/// the invariant.
#define NEUTRAL_NO_THREAD_SAFETY_ANALYSIS \
  NEUTRAL_THREAD_ANNOTATION(no_thread_safety_analysis)
