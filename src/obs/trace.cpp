#include "obs/trace.h"

#include <cinttypes>

#include "obs/json.h"
#include "util/error.h"

namespace neutral::obs {

TraceLog::TraceLog(const std::string& path)
    : path_(path), epoch_(std::chrono::steady_clock::now()) {
  MutexLock lock(mutex_);
  file_ = std::fopen(path.c_str(), "w");
  NEUTRAL_REQUIRE(file_ != nullptr, "cannot open trace log '" + path + "'");
}

TraceLog::~TraceLog() {
  // Locked even though a destructor implies exclusivity: the analysis has
  // no such notion, and the uncontended acquire is free next to fclose.
  MutexLock lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

void TraceLog::record(const TraceEvent& event) {
  const auto now = std::chrono::steady_clock::now();
  const auto ts_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count();
  std::string line = "{\"ts_ns\":" + std::to_string(ts_ns);
  line += ",\"event\":\"" + json_escape(event.event) + "\"";
  line += ",\"job\":" + std::to_string(event.job_id);
  if (event.group != 0) {
    line += ",\"group\":" + std::to_string(event.group);
  }
  if (!event.label.empty()) {
    line += ",\"label\":\"" + json_escape(event.label) + "\"";
  }
  if (event.worker >= 0) {
    line += ",\"worker\":" + std::to_string(event.worker);
  }
  if (event.queue_wait_s >= 0.0) {
    line += ",\"queue_wait_s\":" + json_number(event.queue_wait_s);
  }
  if (event.run_wall_s >= 0.0) {
    line += ",\"run_wall_s\":" + json_number(event.run_wall_s);
  }
  if (!event.detail.empty()) {
    line += ",\"detail\":\"" + json_escape(event.detail) + "\"";
  }
  line += "}\n";
  MutexLock lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace neutral::obs
