// Minimal JSON: escaping for the writers (TraceLog, bench records) and a
// small strict recursive-descent parser for the readers (the bench-record
// schema check, tests that re-parse trace lines).
//
// Deliberately tiny — no external dependency, no DOM mutation API.  Numbers
// parse to double; the inputs we produce stay well inside its exact range.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace neutral::obs {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Render `v` as a JSON number token (%.17g round-trip); non-finite values
/// are not representable in JSON and render as 0.
std::string json_number(double v);

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  [[nodiscard]] bool is(Type t) const { return type == t; }
  /// Object member lookup; null when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse one complete JSON document.  Throws neutral::Error (with position)
/// on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace neutral::obs
