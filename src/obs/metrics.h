// Low-overhead process metrics: counters, gauges, log-bucket histograms.
//
// The serving stack (queue, engine, world cache, neutrald) needs liveness
// numbers — queue depth, cache hit rate, per-outcome job counts — without
// perturbing the transport loops it observes.  Hot-path increments touch a
// per-thread cache-line-padded shard with a relaxed atomic add, so worker
// threads never contend on a metrics line; reads (snapshots) sum the shards.
//
// Everything is registered by name in a MetricsRegistry, and a snapshot can
// render either Prometheus text exposition (for the --metrics-port HTTP
// listener) or a flat name->value map (for the neutrald `metrics` frame op).
//
// Instrumented code holds plain pointers that may be null — "no registry"
// is the fast path and costs one predictable branch, mirroring the
// PhaseProfiler contract in src/perf/profiler.h.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/aligned.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace neutral::obs {

/// Number of padded shards per counter/histogram.  Power of two; threads
/// hash onto shards round-robin, so up to 16 writers proceed without any
/// shared line.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard index (assigned round-robin on first use).
std::size_t metric_shard() noexcept;

/// Monotonic counter.  add() is wait-free and contention-free across up to
/// kMetricShards concurrent writers; value() sums the shards (exact once
/// writers quiesce, monotone under load).
///
/// Memory-ordering contract (the only place in the tree where
/// memory_order_relaxed is permitted — the determinism lint enforces
/// that scope).  Both sides are relaxed on purpose:
///
///  - Atomicity and per-object modification-order coherence are unaffected
///    by the ordering argument: each fetch_add is indivisible and each
///    load returns some fully committed value of that shard — never a torn
///    word, never a value that later "decreases".  A single scraper thread
///    therefore sees every counter monotone across successive snapshots.
///  - EXACTNESS after quiescence comes from a happens-before edge that is
///    established OUTSIDE the counter: writers quiesce via std::thread
///    join (engine teardown), or via an acquire/release mutex pair (e.g.
///    the engine's report mutex, the server's submission mutex) that the
///    reader also passes through.  Any such edge sequences the writer's
///    relaxed add before the reader's relaxed load, so the sum over shards
///    is exact.  test_tsan_stress asserts this end-to-end under TSan.
///  - UNDER LOAD (scraper racing live writers) no cross-shard ordering is
///    promised: a snapshot may include shard A's newest add but not shard
///    B's older one.  That is acceptable for liveness metrics and is why
///    no seq_cst/acquire fence is bought here — the whole point of the
///    padded shards is that transport workers never pay for observation.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[metric_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<Padded<std::atomic<std::uint64_t>>, kMetricShards> shards_{};
};

/// Instantaneous signed value (queue depth, resident bytes).  Gauges are
/// updated under their owner's lock already, so one atomic suffices.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log-2-bucket histogram: bucket b spans up to first_bound * 2^b,
/// plus a +Inf overflow bucket.  Same padded-shard scheme as Counter:
/// observe() touches only this thread's shard.
class Histogram {
 public:
  struct Options {
    double first_bound = 1e-4;  ///< inclusive upper bound of bucket 0
    int buckets = 22;           ///< finite buckets (bounds double each step)
  };

  Histogram() : Histogram(Options()) {}
  explicit Histogram(Options options);

  void observe(double v) noexcept {
    const std::size_t shard = metric_shard();
    std::atomic<std::uint64_t>* cells = &cells_[shard * stride_];
    cells[0].fetch_add(1, std::memory_order_relaxed);
    cells[1 + bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sums_[shard].value.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Per-bucket counts, bounds().size() + 1 entries (last is +Inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept;

 private:
  std::vector<double> bounds_;
  std::size_t stride_ = 0;  ///< uint64 cells per shard, cache-line multiple
  // Layout per shard: [count][bucket 0]...[bucket n (+Inf)], shards
  // back-to-back in one aligned block so each starts on its own line.
  aligned_vector<std::atomic<std::uint64_t>> cells_;
  std::array<Padded<std::atomic<double>>, kMetricShards> sums_{};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric's value at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  struct Hist {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size()+1, last = +Inf
    std::uint64_t count = 0;
    double sum = 0.0;
  } histogram;
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< registration order

  /// Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
  /// cumulative `le` buckets for histograms.
  [[nodiscard]] std::string prometheus_text() const;

  /// Flat name -> value rendering for the neutrald `metrics` frame op:
  /// counters and gauges verbatim, histograms as name_count / name_sum.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> flat() const;

  [[nodiscard]] const MetricValue* find(const std::string& name) const;
};

/// Named metric registry.  Lookup is idempotent — the first caller creates,
/// later callers get the same instance — and returned references stay valid
/// for the registry's lifetime (instruments cache them once, then write
/// lock-free).  Asking for an existing name as a different type throws.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "")
      NEUTRAL_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help = "")
      NEUTRAL_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       Histogram::Options options = Histogram::Options())
      NEUTRAL_EXCLUDES(mutex_);

  /// Consistent-enough point-in-time read: each metric is internally
  /// coherent (counters monotone, histogram count == sum of buckets is not
  /// guaranteed under load, but every cell is a valid committed value —
  /// never a torn word).
  [[nodiscard]] MetricsSnapshot snapshot() const NEUTRAL_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, const std::string& help,
               MetricType type) NEUTRAL_REQUIRES(mutex_);

  /// Guards the registry structure (entries_/index_) only — never the
  /// metric cells themselves, which are lock-free atomics (see Counter).
  mutable Mutex mutex_;
  /// Registration order.
  std::vector<std::unique_ptr<Entry>> entries_ NEUTRAL_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::size_t> index_
      NEUTRAL_GUARDED_BY(mutex_);
};

}  // namespace neutral::obs
