#include "obs/bench_record.h"

#include "obs/json.h"
#include "util/error.h"

namespace neutral::obs {

namespace {

std::string quoted(const std::string& s) {
  // Built with += rather than `"\"" + json_escape(s) + "\""`: gcc 12's
  // -Wrestrict misfires on that operator+ chain (GCC PR105329) and this
  // tree builds warnings-as-errors.
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

void check_number(const JsonValue& obj, const char* key,
                  const std::string& where, bool allow_negative,
                  std::vector<std::string>& problems) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is(JsonValue::Type::kNumber)) {
    problems.push_back(where + ": missing or non-numeric field '" +
                       std::string(key) + "'");
    return;
  }
  if (!allow_negative && v->number < 0.0) {
    problems.push_back(where + ": field '" + std::string(key) +
                       "' is negative");
  }
}

void check_string(const JsonValue& obj, const char* key,
                  const std::string& where,
                  std::vector<std::string>& problems) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is(JsonValue::Type::kString) || v->string.empty()) {
    problems.push_back(where + ": missing or empty string field '" +
                       std::string(key) + "'");
  }
}

void check_bool(const JsonValue& obj, const char* key,
                const std::string& where,
                std::vector<std::string>& problems) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is(JsonValue::Type::kBool)) {
    problems.push_back(where + ": missing or non-boolean field '" +
                       std::string(key) + "'");
  }
}

/// Optional fields added after the v2 schema shipped: absence is fine
/// (reads as the default), but a present field must still be well-typed.
void check_optional_bool(const JsonValue& obj, const char* key,
                         const std::string& where,
                         std::vector<std::string>& problems) {
  const JsonValue* v = obj.find(key);
  if (v != nullptr && !v->is(JsonValue::Type::kBool)) {
    problems.push_back(where + ": non-boolean field '" + std::string(key) +
                       "'");
  }
}

void check_optional_min(const JsonValue& obj, const char* key, double min,
                        const std::string& where,
                        std::vector<std::string>& problems) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return;
  if (!v->is(JsonValue::Type::kNumber) || v->number < min) {
    problems.push_back(where + ": field '" + std::string(key) +
                       "' must be a number >= " + std::to_string(min));
  }
}

}  // namespace

std::string BenchDocument::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": " + quoted(schema) + ",\n";
  out += "  \"host\": {\n";
  out += "    \"cpu_model\": " + quoted(cpu_model) + ",\n";
  out += "    \"logical_cpus\": " + std::to_string(logical_cpus) + ",\n";
  out += "    \"openmp_max_threads\": " + std::to_string(openmp_max_threads) +
         "\n  },\n";
  out += "  \"run\": {\n";
  out += "    \"threads\": " + std::to_string(threads) + ",\n";
  out += "    \"repeats\": " + std::to_string(repeats) + ",\n";
  out += "    \"lookup\": " + quoted(lookup) + ",\n";
  out += "    \"rng_batch\": " + std::string(rng_batch ? "true" : "false") +
         ",\n";
  out += "    \"branchless_events\": " +
         std::string(branchless_events ? "true" : "false") + ",\n";
  out += "    \"sort_events\": " +
         std::string(sort_events ? "true" : "false") + ",\n";
  out += "    \"tally_direct\": " +
         std::string(tally_direct ? "true" : "false") + ",\n";
  out += "    \"fuse_rounds\": " +
         std::string(fuse_rounds ? "true" : "false") + ",\n";
  out += "    \"pipeline_histories\": " + std::to_string(pipeline_histories) +
         "\n  },\n";
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out += "    {\n";
    out += "      \"deck\": " + quoted(r.deck) + ",\n";
    out += "      \"scheme\": " + quoted(r.scheme) + ",\n";
    out += "      \"layout\": " + quoted(r.layout) + ",\n";
    out += "      \"particles\": " + std::to_string(r.particles) + ",\n";
    out += "      \"timesteps\": " + std::to_string(r.timesteps) + ",\n";
    out += "      \"events\": " + std::to_string(r.events) + ",\n";
    out += "      \"seconds\": " + json_number(r.seconds) + ",\n";
    out += "      \"seconds_median\": " + json_number(r.seconds_median) +
           ",\n";
    out += "      \"seconds_stddev\": " + json_number(r.seconds_stddev) +
           ",\n";
    out += "      \"events_per_second\": " + json_number(r.events_per_second) +
           ",\n";
    out += "      \"checksum\": " + json_number(r.checksum) + ",\n";
    out += "      \"population\": " + std::to_string(r.population) + ",\n";
    out += "      \"peak_mesh_bytes\": " + std::to_string(r.peak_mesh_bytes) +
           ",\n";
    out += "      \"peak_bank_bytes\": " + std::to_string(r.peak_bank_bytes) +
           ",\n";
    out += "      \"phases\": [";
    for (std::size_t p = 0; p < r.phases.size(); ++p) {
      const BenchPhase& ph = r.phases[p];
      out += (p == 0 ? "\n" : ",\n");
      out += "        {\"phase\": " + quoted(ph.phase) +
             ", \"ns_per_event\": " + json_number(ph.ns_per_event) +
             ", \"fraction\": " + json_number(ph.fraction) + "}";
    }
    out += r.phases.empty() ? "]\n" : "\n      ]\n";
    out += i + 1 < results.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::vector<std::string> validate_bench_record(const std::string& json_text) {
  std::vector<std::string> problems;
  JsonValue doc;
  try {
    doc = parse_json(json_text);
  } catch (const std::exception& e) {
    problems.emplace_back(e.what());
    return problems;
  }
  if (!doc.is(JsonValue::Type::kObject)) {
    problems.emplace_back("document root is not an object");
    return problems;
  }
  const JsonValue* schema = doc.find("schema");
  bool v1 = false;
  if (schema == nullptr || !schema->is(JsonValue::Type::kString)) {
    problems.emplace_back("missing string field 'schema'");
  } else if (schema->string == kBenchTransportSchemaV1) {
    v1 = true;  // pre-config record: run-object knobs and stats optional
  } else if (schema->string != kBenchTransportSchema) {
    problems.push_back("unknown schema '" + schema->string + "' (expected " +
                       kBenchTransportSchema + " or " +
                       kBenchTransportSchemaV1 + ")");
  }
  const JsonValue* host = doc.find("host");
  if (host == nullptr || !host->is(JsonValue::Type::kObject)) {
    problems.emplace_back("missing object field 'host'");
  } else {
    check_string(*host, "cpu_model", "host", problems);
    check_number(*host, "logical_cpus", "host", false, problems);
    check_number(*host, "openmp_max_threads", "host", false, problems);
  }
  const JsonValue* run = doc.find("run");
  if (run == nullptr || !run->is(JsonValue::Type::kObject)) {
    problems.emplace_back("missing object field 'run'");
  } else {
    check_number(*run, "threads", "run", false, problems);
    check_number(*run, "repeats", "run", false, problems);
    if (!v1) {
      check_string(*run, "lookup", "run", problems);
      check_bool(*run, "rng_batch", "run", problems);
      check_bool(*run, "branchless_events", "run", problems);
      check_bool(*run, "sort_events", "run", problems);
      check_bool(*run, "tally_direct", "run", problems);
    }
    check_optional_bool(*run, "fuse_rounds", "run", problems);
    check_optional_min(*run, "pipeline_histories", 1.0, "run", problems);
  }
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is(JsonValue::Type::kArray)) {
    problems.emplace_back("missing array field 'results'");
    return problems;
  }
  if (results->array.empty()) {
    problems.emplace_back("'results' is empty");
  }
  for (std::size_t i = 0; i < results->array.size(); ++i) {
    const JsonValue& r = results->array[i];
    const std::string where = "results[" + std::to_string(i) + "]";
    if (!r.is(JsonValue::Type::kObject)) {
      problems.push_back(where + ": not an object");
      continue;
    }
    check_string(r, "deck", where, problems);
    check_string(r, "scheme", where, problems);
    check_string(r, "layout", where, problems);
    check_number(r, "particles", where, false, problems);
    check_number(r, "timesteps", where, false, problems);
    check_number(r, "events", where, false, problems);
    check_number(r, "seconds", where, false, problems);
    if (!v1) {
      check_number(r, "seconds_median", where, false, problems);
      check_number(r, "seconds_stddev", where, false, problems);
    }
    check_number(r, "events_per_second", where, false, problems);
    check_number(r, "checksum", where, true, problems);
    check_number(r, "population", where, false, problems);
    check_number(r, "peak_mesh_bytes", where, false, problems);
    check_number(r, "peak_bank_bytes", where, false, problems);
    const JsonValue* phases = r.find("phases");
    if (phases == nullptr || !phases->is(JsonValue::Type::kArray)) {
      problems.push_back(where + ": missing array field 'phases'");
      continue;
    }
    for (std::size_t p = 0; p < phases->array.size(); ++p) {
      const JsonValue& ph = phases->array[p];
      const std::string pwhere = where + ".phases[" + std::to_string(p) + "]";
      if (!ph.is(JsonValue::Type::kObject)) {
        problems.push_back(pwhere + ": not an object");
        continue;
      }
      check_string(ph, "phase", pwhere, problems);
      check_number(ph, "ns_per_event", pwhere, false, problems);
      check_number(ph, "fraction", pwhere, false, problems);
    }
  }
  return problems;
}

std::string BenchHostShape::describe() const {
  return std::to_string(logical_cpus) + " logical CPU(s), " +
         std::to_string(openmp_max_threads) + " OpenMP max thread(s), run at " +
         std::to_string(threads) + " thread(s)";
}

BenchHostShape read_host_shape(const std::string& json_text) {
  const JsonValue doc = parse_json(json_text);
  const JsonValue* host = doc.find("host");
  const JsonValue* run = doc.find("run");
  NEUTRAL_REQUIRE(host != nullptr && host->is(JsonValue::Type::kObject) &&
                      run != nullptr && run->is(JsonValue::Type::kObject),
                  "bench record has no host/run objects");
  BenchHostShape shape;
  auto number = [](const JsonValue& obj, const char* key) {
    const JsonValue* v = obj.find(key);
    NEUTRAL_REQUIRE(v != nullptr && v->is(JsonValue::Type::kNumber),
                    "bench record missing numeric field '" +
                        std::string(key) + "'");
    return static_cast<std::int32_t>(v->number);
  };
  shape.logical_cpus = number(*host, "logical_cpus");
  shape.openmp_max_threads = number(*host, "openmp_max_threads");
  shape.threads = number(*run, "threads");
  return shape;
}

}  // namespace neutral::obs
