#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "util/error.h"

namespace neutral::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string format_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::size_t metric_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

Histogram::Histogram(Options options) {
  NEUTRAL_REQUIRE(options.first_bound > 0.0,
                  "histogram first_bound must be positive");
  NEUTRAL_REQUIRE(options.buckets >= 1 && options.buckets <= 64,
                  "histogram bucket count out of range [1, 64]");
  bounds_.reserve(static_cast<std::size_t>(options.buckets));
  double bound = options.first_bound;
  for (int b = 0; b < options.buckets; ++b) {
    bounds_.push_back(bound);
    bound *= 2.0;
  }
  // count + finite buckets + overflow, rounded up to whole cache lines so
  // each shard's region starts on its own line.
  const std::size_t cells = 1 + bounds_.size() + 1;
  const std::size_t per_line = kCacheLine / sizeof(std::atomic<std::uint64_t>);
  stride_ = (cells + per_line - 1) / per_line * per_line;
  cells_ = aligned_vector<std::atomic<std::uint64_t>>(kMetricShards * stride_);
}

std::size_t Histogram::bucket_of(double v) const noexcept {
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    if (v <= bounds_[b]) return b;
  }
  return bounds_.size();  // +Inf overflow
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    total += cells_[s * stride_].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& shard : sums_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    const std::atomic<std::uint64_t>* cells = &cells_[s * stride_];
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += cells[1 + b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               const std::string& help,
                                               MetricType type) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& existing = *entries_[it->second];
    NEUTRAL_REQUIRE(existing.type == type,
                    "metric '" + name + "' already registered as " +
                        type_name(existing.type) + ", requested as " +
                        type_name(type));
    return existing;
  }
  auto created = std::make_unique<Entry>();
  created->name = name;
  created->help = help;
  created->type = type;
  entries_.push_back(std::move(created));
  index_.emplace(name, entries_.size() - 1);
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  Entry& e = entry(name, help, MetricType::kCounter);
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mutex_);
  Entry& e = entry(name, help, MetricType::kGauge);
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      Histogram::Options options) {
  MutexLock lock(mutex_);
  Entry& e = entry(name, help, MetricType::kHistogram);
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>(options);
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricValue v;
    v.name = e->name;
    v.help = e->help;
    v.type = e->type;
    switch (e->type) {
      case MetricType::kCounter:
        v.counter = e->counter->value();
        break;
      case MetricType::kGauge:
        v.gauge = e->gauge->value();
        break;
      case MetricType::kHistogram:
        v.histogram.bounds = e->histogram->bounds();
        v.histogram.buckets = e->histogram->bucket_counts();
        v.histogram.count = e->histogram->count();
        v.histogram.sum = e->histogram->sum();
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

std::string MetricsSnapshot::prometheus_text() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + m.help + "\n";
    }
    out += "# TYPE " + m.name + " ";
    out += type_name(m.type);
    out += "\n";
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name + " " + format_u64(m.counter) + "\n";
        break;
      case MetricType::kGauge:
        out += m.name + " " + format_i64(m.gauge) + "\n";
        break;
      case MetricType::kHistogram: {
        // Prometheus buckets are cumulative.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.histogram.buckets.size(); ++b) {
          cumulative += m.histogram.buckets[b];
          const std::string le = b < m.histogram.bounds.size()
                                     ? format_double(m.histogram.bounds[b])
                                     : std::string("+Inf");
          out += m.name + "_bucket{le=\"" + le + "\"} " +
                 format_u64(cumulative) + "\n";
        }
        out += m.name + "_sum " + format_double(m.histogram.sum) + "\n";
        out += m.name + "_count " + format_u64(m.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> MetricsSnapshot::flat()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(metrics.size());
  for (const MetricValue& m : metrics) {
    switch (m.type) {
      case MetricType::kCounter:
        out.emplace_back(m.name, format_u64(m.counter));
        break;
      case MetricType::kGauge:
        out.emplace_back(m.name, format_i64(m.gauge));
        break;
      case MetricType::kHistogram:
        out.emplace_back(m.name + "_count", format_u64(m.histogram.count));
        out.emplace_back(m.name + "_sum", format_double(m.histogram.sum));
        break;
    }
  }
  return out;
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace neutral::obs
