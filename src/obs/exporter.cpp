#include "obs/exporter.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace neutral::obs {

namespace {

constexpr std::chrono::milliseconds kAcceptPoll{200};
constexpr std::chrono::milliseconds kIoTimeout{2000};
constexpr std::size_t kMaxRequestLine = 8192;
constexpr std::size_t kMaxHeaderLines = 128;

std::string http_response(const std::string& status,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + status + "\r\n";
  out += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(const MetricsRegistry* registry,
                                 std::string host, std::uint16_t port)
    : registry_(registry), host_(std::move(host)), requested_port_(port) {
  NEUTRAL_REQUIRE(registry != nullptr, "exporter needs a registry");
}

MetricsExporter::~MetricsExporter() { stop(); }

std::uint16_t MetricsExporter::start() {
  NEUTRAL_REQUIRE(!thread_.joinable(), "exporter already started");
  listener_ = std::make_unique<net::TcpListener>(host_, requested_port_);
  bound_port_ = listener_->port();
  stopping_.store(false);
  thread_ = std::thread([this] { serve_loop(); });
  return bound_port_;
}

void MetricsExporter::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

void MetricsExporter::serve_loop() {
  while (!stopping_.load()) {
    std::optional<net::TcpStream> stream;
    try {
      stream = listener_->accept(kAcceptPoll);
    } catch (const std::exception&) {
      // Listener torn down underneath us (shutdown race) — exit quietly.
      return;
    }
    if (!stream.has_value()) continue;
    try {
      handle_connection(std::move(*stream));
    } catch (const std::exception&) {
      // A broken scraper connection must not take the exporter down.
    }
  }
}

void MetricsExporter::handle_connection(net::TcpStream stream) {
  stream.set_read_timeout(kIoTimeout);
  stream.set_write_timeout(kIoTimeout);
  // write_all already loops over partial sends and retries EINTR, so the
  // multi-kilobyte /metrics body survives small socket buffers; what this
  // handler must add is the inbound bounds: a request line or header that
  // would exceed kMaxRequestLine answers 413/431 instead of being read
  // unboundedly (read_line throws once the buffer passes the cap), and the
  // header block is capped at kMaxHeaderLines lines.
  std::string request_line;
  try {
    if (stream.read_line(request_line, kMaxRequestLine) !=
        net::ReadStatus::kLine) {
      return;
    }
  } catch (const Error&) {
    stream.write_all(http_response("413 Payload Too Large",
                                   "request line too long\n"));
    return;
  }
  // Drain the header block so well-behaved clients see a clean exchange —
  // but never unboundedly: an oversized or endless header block gets 431.
  std::string header;
  std::size_t header_lines = 0;
  try {
    while (stream.read_line(header, kMaxRequestLine) ==
               net::ReadStatus::kLine &&
           !header.empty()) {
      if (++header_lines > kMaxHeaderLines) {
        stream.write_all(http_response("431 Request Header Fields Too Large",
                                       "too many header fields\n"));
        return;
      }
    }
  } catch (const Error&) {
    stream.write_all(http_response("431 Request Header Fields Too Large",
                                   "header line too long\n"));
    return;
  }
  // "GET <path> HTTP/1.x"
  const std::size_t first_space = request_line.find(' ');
  const std::size_t second_space =
      first_space == std::string::npos
          ? std::string::npos
          : request_line.find(' ', first_space + 1);
  const std::string method = request_line.substr(0, first_space);
  const std::string path =
      first_space == std::string::npos
          ? std::string()
          : request_line.substr(first_space + 1,
                                second_space - first_space - 1);
  if (method != "GET") {
    stream.write_all(http_response("405 Method Not Allowed",
                                   "only GET is supported\n"));
    return;
  }
  if (path != "/metrics" && path != "/") {
    stream.write_all(http_response("404 Not Found", "try /metrics\n"));
    return;
  }
  stream.write_all(
      http_response("200 OK", registry_->snapshot().prometheus_text()));
}

}  // namespace neutral::obs
