// Structured JSONL trace of job lifecycles.
//
// One line per span edge — submitted, queued, started, round, then exactly
// one of completed/failed/timed_out/cancelled — with monotonic timestamps
// (ns since the log opened) and the two durations operators actually chart:
// queue wait and run wall.  Lines are self-contained JSON objects so the
// log tails cleanly mid-run and standard tools (jq, pandas) read it as-is.
//
// Writers share one mutex; the engine only records span *edges* (a handful
// per job), never per-event data, so the lock is nowhere near any hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace neutral::obs {

struct TraceEvent {
  std::string event;          ///< submitted|queued|started|round|completed|...
  std::uint64_t job_id = 0;
  std::uint64_t group = 0;    ///< fork-join group (0 = none)
  std::string label;
  std::int32_t worker = -1;   ///< worker index (< 0 = not yet assigned)
  double queue_wait_s = -1.0; ///< pop time - submit time (< 0 = unknown)
  double run_wall_s = -1.0;   ///< solve wall seconds (< 0 = unknown)
  std::string detail;         ///< error text, round summary, ...
};

/// Append-only JSONL sink.  Thread-safe; flushes per line.  Throws
/// neutral::Error when the path cannot be opened.
class TraceLog {
 public:
  explicit TraceLog(const std::string& path);
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void record(const TraceEvent& event) NEUTRAL_EXCLUDES(mutex_);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  Mutex mutex_;
  /// The stream (not the pointer) is what the lock serialises; writers
  /// format off-lock and hold mutex_ only across fwrite+fflush.
  std::FILE* file_ NEUTRAL_GUARDED_BY(mutex_) = nullptr;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace neutral::obs
