// Plain-HTTP Prometheus text-exposition listener.
//
// One background thread, blocking accepts with a short timeout so stop()
// never wedges, one request served at a time — a scrape every few seconds
// from one Prometheus is the entire load profile, so there is no reason to
// carry a real HTTP stack.  Speaks just enough HTTP/1.0 for `curl` and the
// Prometheus scraper: GET /metrics -> 200 text/plain; version=0.0.4.
//
// Robustness contract: responses survive partial writes and EINTR
// (write_all loops), the listener sets SO_REUSEADDR so daemon restarts
// don't trip over TIME_WAIT, and oversized requests are answered 413
// (request line) / 431 (header block) instead of being read unboundedly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/socket.h"

namespace neutral::obs {

class MetricsRegistry;

class MetricsExporter {
 public:
  /// Binds lazily in start(); port 0 picks an ephemeral port.
  MetricsExporter(const MetricsRegistry* registry, std::string host,
                  std::uint16_t port);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Bind + spawn the serving thread; returns the bound port.  Throws
  /// neutral::Error when the address is unavailable.
  std::uint16_t start();

  /// Idempotent; joins the serving thread.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  void serve_loop();
  void handle_connection(net::TcpStream stream);

  const MetricsRegistry* registry_;
  std::string host_;
  std::uint16_t requested_port_;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace neutral::obs
