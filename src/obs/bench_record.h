// The committed perf-trajectory record: BENCH_transport.json.
//
// bench_transport runs the golden decks across scheme x layout and writes
// one of these documents — events/sec, per-phase ns/event, peak bytes, and
// host info — so later optimisation PRs have a recorded baseline to beat.
// The format is part of the repo contract: `validate_bench_record` is the
// schema check CI runs on the uploaded artifact, deliberately structural
// (fields present, right types, sane ranges) and not perf-gated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neutral::obs {

inline constexpr const char* kBenchTransportSchema =
    "neutral.bench_transport/v2";
/// v1: no run-configuration fields, no repeat statistics.  Still accepted
/// by the validator and bench_compare (missing config = the default
/// config, which is what every v1 record ran) so the perf trajectory can
/// be diffed across the repo's own history.
inline constexpr const char* kBenchTransportSchemaV1 =
    "neutral.bench_transport/v1";

struct BenchPhase {
  std::string phase;          ///< profiler phase name ("collision", ...)
  double ns_per_event = 0.0;  ///< mean ns per visit (§VI-A grind time)
  double fraction = 0.0;      ///< share of profiled cycles
};

struct BenchResult {
  std::string deck;    ///< golden deck name
  std::string scheme;  ///< "particles" | "events"
  std::string layout;  ///< "aos" | "soa"
  std::int64_t particles = 0;
  std::int32_t timesteps = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;  ///< best (minimum) wall time over the repeats
  /// Repeat statistics (v2): equal to `seconds` when repeats == 1, so the
  /// fields are always present and old single-shot records stay readable.
  double seconds_median = 0.0;
  double seconds_stddev = 0.0;
  double events_per_second = 0.0;  ///< from the best repeat
  double checksum = 0.0;  ///< deterministic tally checksum for the config
  std::int64_t population = 0;
  std::uint64_t peak_mesh_bytes = 0;
  std::uint64_t peak_bank_bytes = 0;
  std::vector<BenchPhase> phases;  ///< empty for schemes without probes
};

struct BenchDocument {
  std::string schema = kBenchTransportSchema;
  std::string cpu_model = "unknown";
  std::int32_t logical_cpus = 1;
  std::int32_t openmp_max_threads = 1;
  std::int32_t threads = 1;  ///< OpenMP threads the bench ran with
  std::int32_t repeats = 1;  ///< timing repeats (best-of)
  /// Run configuration (v2): which fast paths the record timed.  Two
  /// records are only comparable when bench_compare can see what each ran.
  std::string lookup = "cached";  ///< XS lookup strategy name
  bool rng_batch = false;
  bool branchless_events = false;
  bool sort_events = false;
  bool tally_direct = false;
  /// Round-fusion / history-pipeline knobs.  OPTIONAL in the v2 schema —
  /// records written before these existed validate unchanged and read as
  /// "off" (fuse_rounds=false, pipeline_histories=1), so the committed
  /// perf trajectory keeps diffing across the repo's history.
  bool fuse_rounds = false;
  std::int32_t pipeline_histories = 1;
  std::vector<BenchResult> results;

  [[nodiscard]] std::string to_json() const;
};

/// Structural schema check.  Returns the list of problems (empty = valid):
/// wrong schema marker, missing/mistyped fields, empty results, negative
/// quantities, non-JSON input.
std::vector<std::string> validate_bench_record(const std::string& json_text);

/// The part of a record that must match before timings are comparable.
/// The committed baseline was once taken on a 1-logical-CPU container and
/// silently compared against multi-core runs; both bench_transport --check
/// and bench_compare now refuse that by default.
struct BenchHostShape {
  std::int32_t logical_cpus = 0;
  std::int32_t openmp_max_threads = 0;
  std::int32_t threads = 0;  ///< run.threads, not a host property, but a
                             ///< mismatch poisons comparisons identically

  [[nodiscard]] bool matches(const BenchHostShape& other) const {
    return logical_cpus == other.logical_cpus &&
           openmp_max_threads == other.openmp_max_threads &&
           threads == other.threads;
  }
  [[nodiscard]] std::string describe() const;
};

/// Extract the host shape from a record.  Throws neutral::Error on
/// malformed input (run validate_bench_record first for a full report).
BenchHostShape read_host_shape(const std::string& json_text);

}  // namespace neutral::obs
