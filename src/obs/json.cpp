#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace neutral::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }
  void require(bool ok, const std::string& what) const {
    if (!ok) fail(what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    require(peek() == c, std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        require(consume_literal("null"), "bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our writers only emit \u00xx for control bytes; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0U | (code >> 6U));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          } else {
            out += static_cast<char>(0xE0U | (code >> 12U));
            out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
            out += static_cast<char>(0x80U | (code & 0x3FU));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    require(end != nullptr && *end == '\0' && end != token.c_str(),
            "bad number '" + token + "'");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace neutral::obs
