// Per-event-phase profiler (paper §VI-A).
//
// The paper reports grind times (18 ns per collision, 3 ns per facet) and
// the fraction of runtime spent tallying (50% Over Particles, 22% Over
// Events).  Events are too fine for call-graph profilers, so the drivers
// optionally timestamp phase boundaries with the TSC — a ~20-cycle probe —
// and accumulate cycles per phase per thread (padded; no sharing).
//
// Profiling is a runtime choice: drivers take a `PhaseProfiler*` and skip
// all probes when it is null, so production runs pay a single predictable
// branch per phase.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/aligned.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace neutral {

enum class Phase : std::uint8_t {
  kEventSearch = 0,  ///< time-to-event calculation + event selection
  kCollision = 1,    ///< collision handling incl. XS lookup
  kFacet = 2,        ///< facet crossing (geometry + density reload)
  kTally = 3,        ///< energy-deposition flush (the atomic)
  kCensus = 4,       ///< census handling
  kOther = 5,        ///< gather/scatter & bookkeeping outside phases
};
inline constexpr int kNumPhases = 6;

const char* to_string(Phase p);

/// Portable cycle source: steady_clock ticks (nanoseconds on the platforms
/// we build for).  Always compiled so non-x86 builds cannot rot unseen; the
/// compile-only check forces `read_cycles()` through it on x86 too.
inline std::uint64_t read_cycles_portable() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// Raw cycle counter.  Falls back to `read_cycles_portable()` on non-x86
/// (or when NEUTRAL_FORCE_PORTABLE_CYCLES is defined, for the compile-only
/// fallback test — an OBJECT-library TU that is never linked, so the forced
/// definition cannot ODR-clash with the rest of the build).
inline std::uint64_t read_cycles() {
#if (defined(__x86_64__) || defined(_M_X64)) && \
    !defined(NEUTRAL_FORCE_PORTABLE_CYCLES)
  return __rdtsc();
#else
  return read_cycles_portable();
#endif
}

class PhaseProfiler {
 public:
  /// `max_threads` sizes the per-thread slots (use omp_get_max_threads()).
  explicit PhaseProfiler(std::int32_t max_threads);

  /// Accumulate `cycles` and one visit into (thread, phase).
  void add(std::int32_t thread, Phase phase, std::uint64_t cycles) {
    auto& slot = slots_[static_cast<std::size_t>(thread)].value;
    slot.cycles[static_cast<int>(phase)] += cycles;
    slot.visits[static_cast<int>(phase)] += 1;
  }

  /// Aggregated results across threads.  Extensive: summing reports from
  /// shard/domain partial solves yields the whole solve's profile.
  struct Report {
    std::array<std::uint64_t, kNumPhases> cycles{};
    std::array<std::uint64_t, kNumPhases> visits{};
    [[nodiscard]] std::uint64_t total_cycles() const;
    [[nodiscard]] std::uint64_t total_visits() const;
    /// Fraction of profiled cycles spent in `p`.
    [[nodiscard]] double fraction(Phase p) const;
    /// Mean cycles per visit of `p` (0 when never visited).
    [[nodiscard]] double cycles_per_visit(Phase p) const;
    Report& operator+=(const Report& o);
  };
  [[nodiscard]] Report report() const;

  void reset();

  /// Calibrated TSC frequency in GHz (measured once, cached); converts
  /// cycles to nanoseconds for the grind-time table.
  static double tsc_ghz();

 private:
  struct Slot {
    std::array<std::uint64_t, kNumPhases> cycles{};
    std::array<std::uint64_t, kNumPhases> visits{};
  };
  aligned_vector<Padded<Slot>> slots_;
};

/// RAII phase probe: measures from construction to destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, std::int32_t thread, Phase phase)
      : profiler_(profiler), thread_(thread), phase_(phase),
        start_(profiler ? read_cycles() : 0) {}
  ~ScopedPhase() {
    if (profiler_ != nullptr) {
      profiler_->add(thread_, phase_, read_cycles() - start_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_;
  std::int32_t thread_;
  Phase phase_;
  std::uint64_t start_;
};

/// The paper's §VI-A grind-time table: per-phase visits, ns/visit
/// (cycles_per_visit / ghz) and share of profiled cycles.  `ghz` is usually
/// PhaseProfiler::tsc_ghz().  Shared by `neutral --profile`, the batch
/// sweep table and bench_transport so all three agree.  Returns a
/// one-line note instead when the report holds no visits (profiling off,
/// or a scheme without phase probes).
std::string format_grind_table(const PhaseProfiler::Report& report,
                               double ghz);

}  // namespace neutral
