#include "perf/profiler.h"

#include <chrono>
#include <cstdio>

#include "util/error.h"

namespace neutral {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kEventSearch: return "event-search";
    case Phase::kCollision: return "collision";
    case Phase::kFacet: return "facet";
    case Phase::kTally: return "tally";
    case Phase::kCensus: return "census";
    case Phase::kOther: return "other";
  }
  return "?";
}

PhaseProfiler::PhaseProfiler(std::int32_t max_threads) {
  NEUTRAL_REQUIRE(max_threads >= 1, "profiler needs at least one slot");
  slots_.resize(static_cast<std::size_t>(max_threads));
}

std::uint64_t PhaseProfiler::Report::total_cycles() const {
  std::uint64_t t = 0;
  for (auto c : cycles) t += c;
  return t;
}

std::uint64_t PhaseProfiler::Report::total_visits() const {
  std::uint64_t t = 0;
  for (auto v : visits) t += v;
  return t;
}

PhaseProfiler::Report& PhaseProfiler::Report::operator+=(const Report& o) {
  for (int p = 0; p < kNumPhases; ++p) {
    cycles[static_cast<std::size_t>(p)] += o.cycles[static_cast<std::size_t>(p)];
    visits[static_cast<std::size_t>(p)] += o.visits[static_cast<std::size_t>(p)];
  }
  return *this;
}

double PhaseProfiler::Report::fraction(Phase p) const {
  const std::uint64_t total = total_cycles();
  if (total == 0) return 0.0;
  return static_cast<double>(cycles[static_cast<int>(p)]) /
         static_cast<double>(total);
}

double PhaseProfiler::Report::cycles_per_visit(Phase p) const {
  const std::uint64_t v = visits[static_cast<int>(p)];
  if (v == 0) return 0.0;
  return static_cast<double>(cycles[static_cast<int>(p)]) /
         static_cast<double>(v);
}

PhaseProfiler::Report PhaseProfiler::report() const {
  Report r;
  for (const auto& padded : slots_) {
    for (int p = 0; p < kNumPhases; ++p) {
      r.cycles[p] += padded.value.cycles[p];
      r.visits[p] += padded.value.visits[p];
    }
  }
  return r;
}

void PhaseProfiler::reset() {
  for (auto& padded : slots_) padded.value = Slot{};
}

std::string format_grind_table(const PhaseProfiler::Report& report,
                               double ghz) {
  if (report.total_visits() == 0 || ghz <= 0.0) {
    return "(no phase probes recorded — profile an over-particles run to "
           "collect §VI-A grind times)\n";
  }
  std::string out = "\n== §VI-A phase profile ==\n";
  char line[160];
  std::snprintf(line, sizeof line, "%-14s %12s %14s %10s\n", "phase",
                "visits", "ns/visit", "share");
  out += line;
  for (int p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    if (report.visits[static_cast<std::size_t>(p)] == 0) continue;
    std::snprintf(line, sizeof line, "%-14s %12llu %14.1f %9.1f%%\n",
                  to_string(phase),
                  static_cast<unsigned long long>(
                      report.visits[static_cast<std::size_t>(p)]),
                  report.cycles_per_visit(phase) / ghz,
                  100.0 * report.fraction(phase));
    out += line;
  }
  std::snprintf(line, sizeof line,
                "%-14s %12llu %14s %10s   (%.4f s profiled @ %.2f GHz)\n",
                "total", static_cast<unsigned long long>(report.total_visits()),
                "", "",
                static_cast<double>(report.total_cycles()) / (ghz * 1.0e9),
                ghz);
  out += line;
  return out;
}

double PhaseProfiler::tsc_ghz() {
  static const double ghz = [] {
    // Calibrate the TSC against steady_clock over ~20 ms.
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = read_cycles();
    for (;;) {
      const auto t1 = std::chrono::steady_clock::now();
      const std::chrono::duration<double> dt = t1 - t0;
      if (dt.count() >= 0.02) {
        const std::uint64_t c1 = read_cycles();
        return static_cast<double>(c1 - c0) / dt.count() / 1.0e9;
      }
    }
  }();
  return ghz;
}

}  // namespace neutral
