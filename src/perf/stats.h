// Summary statistics for repeated benchmark measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace neutral {

struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t n = 0;
};

inline SampleStats summarize(std::vector<double> xs) {
  NEUTRAL_REQUIRE(!xs.empty(), "cannot summarise an empty sample");
  SampleStats s;
  s.n = xs.size();
  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(ss / static_cast<double>(s.n - 1)) : 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = s.n / 2;
  s.median = (s.n % 2 != 0) ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
  return s;
}

}  // namespace neutral
