#include "xs/union_grid.h"

#include "util/error.h"

namespace neutral {

UnionisedXsGrid::UnionisedXsGrid(const CrossSectionTable& capture,
                                 const CrossSectionTable& scatter) {
  NEUTRAL_REQUIRE(capture.size() == scatter.size(),
                  "unionised grid needs tables with one shared energy grid");
  const auto n = static_cast<std::size_t>(capture.size());
  for (std::size_t i = 0; i < n; ++i) {
    NEUTRAL_REQUIRE(
        capture.energy(static_cast<std::int32_t>(i)) ==
            scatter.energy(static_cast<std::int32_t>(i)),
        "unionised grid needs tables with one shared energy grid");
  }

  energy_.assign(capture.energies_data(), capture.energies_data() + n);
  pair_.resize(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    pair_[2 * i] = capture.value(static_cast<std::int32_t>(i));
    pair_[2 * i + 1] = scatter.value(static_cast<std::int32_t>(i));
  }

  // ~4 buckets per table point (versus ~4 points per bucket for the
  // in-table BucketedIndex): 16x finer, so on a log-uniform grid every
  // bucket boundary falls inside a bin and the post-load walk is <= 1.
  const auto n_buckets = std::max<std::int64_t>(8, 4 * capture.size());
  log_min_ = std::log(energy_.front());
  const double log_max = std::log(energy_.back());
  inv_log_bucket_width_ = static_cast<double>(n_buckets) / (log_max - log_min_);

  bin_of_.assign(static_cast<std::size_t>(n_buckets) + 1, 0);
  std::int32_t idx = 0;
  for (std::int64_t b = 0; b <= n_buckets; ++b) {
    const double e_lo =
        std::exp(log_min_ + static_cast<double>(b) / inv_log_bucket_width_);
    while (idx + 2 < static_cast<std::int32_t>(n) &&
           energy_[static_cast<std::size_t>(idx) + 1] <= e_lo) {
      ++idx;
    }
    bin_of_[static_cast<std::size_t>(b)] = idx;
  }
}

}  // namespace neutral
