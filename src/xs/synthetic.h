// Synthetic microscopic cross-section data (paper §IV-D).
//
// The mini-app ships "two dummy data tables that mimic the capture and
// scatter cross sections for a single material".  These generators produce
// deterministic tables with the qualitative structure of real neutron data:
//
//   * capture: 1/v behaviour at thermal energies plus a resonance region of
//     Lorentzian peaks between ~1 eV and ~10 keV;
//   * elastic scatter: a broad, slowly varying potential-scattering level
//     with shallower resonances.
//
// Sizes default to 30k points per table (~0.5 MB each) to be representative
// of the nuclear-data footprint the paper calls out as a known bottleneck.
#pragma once

#include <cstdint>

#include "xs/table.h"

namespace neutral {

struct SyntheticXsConfig {
  std::int32_t points = 30000;     ///< table entries
  double min_energy_ev = 1.0e-5;   ///< thermal floor
  double max_energy_ev = 2.0e7;    ///< 20 MeV ceiling
  std::int32_t resonances = 120;   ///< Lorentzian peaks in the resonance region
  std::uint64_t seed = 1234;       ///< placement of the resonances
};

/// Capture (absorption) cross section table.
CrossSectionTable make_capture_table(const SyntheticXsConfig& cfg = {});

/// Elastic-scattering cross section table.
CrossSectionTable make_scatter_table(const SyntheticXsConfig& cfg = {});

}  // namespace neutral
