#include "xs/table.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/numeric.h"

namespace neutral {

namespace {
/// Avogadro's number [1/mol].
constexpr double kAvogadro = 6.02214076e23;
/// One barn in cm^2.
constexpr double kBarn = 1.0e-24;
}  // namespace

const char* to_string(XsLookup mode) {
  switch (mode) {
    case XsLookup::kBinarySearch: return "binary";
    case XsLookup::kCachedLinear: return "cached-linear";
    case XsLookup::kBucketedIndex: return "bucketed";
    case XsLookup::kUnionised: return "unionised";
  }
  return "?";
}

CrossSectionTable::CrossSectionTable(aligned_vector<double> energy_ev,
                                     aligned_vector<double> barns)
    : energy_(std::move(energy_ev)), barns_(std::move(barns)) {
  NEUTRAL_REQUIRE(energy_.size() >= 2, "table needs at least two points");
  NEUTRAL_REQUIRE(energy_.size() == barns_.size(),
                  "energy/value arrays must have equal length");
  NEUTRAL_REQUIRE(energy_.front() > 0.0, "energies must be positive");
  for (std::size_t i = 1; i < energy_.size(); ++i) {
    NEUTRAL_REQUIRE(energy_[i] > energy_[i - 1],
                    "energies must be strictly increasing");
  }
  for (double v : barns_) {
    NEUTRAL_REQUIRE(v >= 0.0, "cross sections must be non-negative");
  }
  build_buckets();
}

void CrossSectionTable::build_buckets() {
  // ~4 table points per bucket keeps the post-bucket walk short while the
  // index stays small relative to the table itself.
  const auto n_buckets =
      std::max<std::int32_t>(8, static_cast<std::int32_t>(energy_.size() / 4));
  log_min_ = std::log(energy_.front());
  const double log_max = std::log(energy_.back());
  inv_log_bucket_width_ = n_buckets / (log_max - log_min_);

  bucket_start_.assign(static_cast<std::size_t>(n_buckets) + 1, 0);
  std::int32_t idx = 0;
  for (std::int32_t b = 0; b <= n_buckets; ++b) {
    const double e_lo = std::exp(log_min_ + b / inv_log_bucket_width_);
    while (idx + 2 < static_cast<std::int32_t>(energy_.size()) &&
           energy_[idx + 1] <= e_lo) {
      ++idx;
    }
    bucket_start_[b] = idx;
  }
}

std::int32_t CrossSectionTable::find_binary(double ev) const {
  const auto it = std::upper_bound(energy_.begin(), energy_.end(), ev);
  auto idx = static_cast<std::int64_t>(std::distance(energy_.begin(), it)) - 1;
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(energy_.size()) - 2);
  return static_cast<std::int32_t>(idx);
}

std::int32_t CrossSectionTable::find_cached(double ev, std::int32_t hint) const {
  const auto last = static_cast<std::int32_t>(energy_.size()) - 2;
  std::int32_t i = std::clamp(hint, 0, last);
  // Walk toward the target bin.  Collisions move energy by modest factors,
  // so this loop usually executes 0-2 iterations and touches cache-resident
  // lines — the §VI-A optimisation worth 1.3x.  Large energy jumps (a cold
  // hint at history start, or a hard down-scatter) would degrade the walk
  // to O(n) — the failure mode §VI-A anticipates — so after a bounded
  // number of steps the search reseeds from the O(1) bucketed index.
  constexpr std::int32_t kMaxWalk = 16;
  for (std::int32_t step = 0; i < last && energy_[i + 1] <= ev; ++i) {
    if (++step > kMaxWalk) return find_bucketed(ev);
  }
  for (std::int32_t step = 0; i > 0 && energy_[i] > ev; --i) {
    if (++step > kMaxWalk) return find_bucketed(ev);
  }
  return i;
}

std::int32_t CrossSectionTable::find_bucketed(double ev) const {
  const double e = clamp(ev, energy_.front(), energy_.back());
  auto b = static_cast<std::int32_t>((std::log(e) - log_min_) *
                                     inv_log_bucket_width_);
  b = std::clamp(b, 0, static_cast<std::int32_t>(bucket_start_.size()) - 2);
  std::int32_t i = bucket_start_[b];
  const auto last = static_cast<std::int32_t>(energy_.size()) - 2;
  while (i < last && energy_[i + 1] <= e) ++i;
  return i;
}

std::int32_t CrossSectionTable::find_bin(double ev, XsLookup mode,
                                         std::int32_t& cached_index) const {
  std::int32_t i = 0;
  switch (mode) {
    case XsLookup::kBinarySearch: i = find_binary(ev); break;
    case XsLookup::kCachedLinear: i = find_cached(ev, cached_index); break;
    case XsLookup::kBucketedIndex: i = find_bucketed(ev); break;
    // The fused unionised path lives on UnionisedXsGrid; a bare table
    // degrades to the other O(1) index, which locates the same bin.
    case XsLookup::kUnionised: i = find_bucketed(ev); break;
  }
  cached_index = i;
  return i;
}

std::int32_t CrossSectionTable::find_bin_counted(double ev, XsLookup mode,
                                                 std::int32_t& cached_index,
                                                 std::int64_t& steps) const {
  const double e = clamp(ev, energy_.front(), energy_.back());
  const auto last = static_cast<std::int32_t>(energy_.size()) - 2;

  // Mirrors find_bucketed, counting post-index walk advances.
  const auto bucketed_counted = [&]() {
    auto b = static_cast<std::int32_t>((std::log(e) - log_min_) *
                                       inv_log_bucket_width_);
    b = std::clamp(b, 0, static_cast<std::int32_t>(bucket_start_.size()) - 2);
    std::int32_t i = bucket_start_[b];
    while (i < last && energy_[i + 1] <= e) {
      ++i;
      ++steps;
    }
    return i;
  };

  std::int32_t i = 0;
  switch (mode) {
    case XsLookup::kBinarySearch: {
      // Count the halving probes an explicit binary search performs.
      std::int32_t lo = 0;
      std::int32_t hi = static_cast<std::int32_t>(energy_.size());
      while (hi - lo > 1) {
        const std::int32_t mid = lo + (hi - lo) / 2;
        ++steps;
        if (energy_[mid] <= e) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      i = std::clamp(lo, 0, last);
      break;
    }
    case XsLookup::kCachedLinear: {
      // Mirrors find_cached, including the bounded-walk reseed through
      // the bucketed index.
      constexpr std::int32_t kMaxWalk = 16;
      i = std::clamp(cached_index, 0, last);
      std::int32_t walked = 0;
      bool reseeded = false;
      while (i < last && energy_[i + 1] <= e) {
        ++i;
        ++steps;
        if (++walked > kMaxWalk) {
          reseeded = true;
          break;
        }
      }
      if (!reseeded) {
        while (i > 0 && energy_[i] > e) {
          --i;
          ++steps;
          if (++walked > kMaxWalk) {
            reseeded = true;
            break;
          }
        }
      }
      if (reseeded) i = bucketed_counted();
      break;
    }
    case XsLookup::kBucketedIndex:
    case XsLookup::kUnionised:
      i = bucketed_counted();
      break;
  }
  cached_index = i;
  return i;
}

double CrossSectionTable::microscopic(double ev, XsLookup mode,
                                      std::int32_t& cached_index) const {
  const double e = clamp(ev, energy_.front(), energy_.back());
  const std::int32_t i = find_bin(e, mode, cached_index);
  const double e0 = energy_[i];
  const double e1 = energy_[i + 1];
  const double t = (e - e0) / (e1 - e0);
  return barns_[i] + t * (barns_[i + 1] - barns_[i]);
}

double number_density(double rho_g_cm3, double molar_mass_g_mol) {
  NEUTRAL_REQUIRE(molar_mass_g_mol > 0.0, "molar mass must be positive");
  return rho_g_cm3 * kAvogadro / molar_mass_g_mol;
}

double macroscopic(double micro_barns, double n_per_cm3) {
  return micro_barns * kBarn * n_per_cm3;
}

}  // namespace neutral
