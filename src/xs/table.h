// Microscopic cross-section tables and lookup strategies (paper §IV-D, VI-A).
//
// A table maps continuous particle energy (eV) to a microscopic cross
// section (barns) by locating the enclosing energy bin and linearly
// interpolating.  Real nuclear-data tables hold 10^4..10^5 points per
// nuclide and are a well-known cache bottleneck [Siegel et al. 2014]; the
// synthetic tables here (synthetic.h) reproduce that footprint.
//
// Four bin-search strategies are provided because the paper measures their
// effect (§VI-A: the cached linear search bought 1.3x on csp):
//   * BinarySearch  — stateless O(log n) baseline.
//   * CachedLinear  — walk linearly from the particle's previous index;
//     collisions change energy slowly, so the walk is usually 0-2 steps and
//     stays in the cache lines already resident.
//   * BucketedIndex — O(1) via a precomputed log-uniform bucket -> index
//     acceleration grid (the "hash" option real codes use).
//   * Unionised     — O(1) via the per-World unionised energy grid
//     (xs/union_grid.h): one fused search serves both reaction tables.
//     The fused path lives on UnionisedXsGrid; a bare table asked for
//     kUnionised degrades to the bucketed index (same bin, same values),
//     which is what hand-built contexts without a World get.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace neutral {

enum class XsLookup : std::uint8_t {
  kBinarySearch = 0,
  kCachedLinear = 1,
  kBucketedIndex = 2,
  kUnionised = 3,
};

const char* to_string(XsLookup mode);

class CrossSectionTable {
 public:
  /// Build from parallel arrays: energies strictly increasing, in eV;
  /// values in barns, non-negative.
  CrossSectionTable(aligned_vector<double> energy_ev,
                    aligned_vector<double> barns);

  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(energy_.size());
  }
  [[nodiscard]] double energy(std::int32_t i) const { return energy_[i]; }
  [[nodiscard]] double value(std::int32_t i) const { return barns_[i]; }
  [[nodiscard]] double min_energy() const { return energy_.front(); }
  [[nodiscard]] double max_energy() const { return energy_.back(); }

  /// Locate the bin for energy `ev` with the requested strategy, starting
  /// from `cached_index` (in/out; ignored unless CachedLinear).  Result bin
  /// i satisfies energy(i) <= ev < energy(i+1) after clamping `ev` into the
  /// table range.
  [[nodiscard]] std::int32_t find_bin(double ev, XsLookup mode,
                                      std::int32_t& cached_index) const;

  /// Linear interpolation of the microscopic cross section at `ev` (barns).
  /// `cached_index` carries the per-particle search hint across calls.
  [[nodiscard]] double microscopic(double ev, XsLookup mode,
                                   std::int32_t& cached_index) const;

  /// Convenience overload for code without a cache slot (tests, plots).
  [[nodiscard]] double microscopic(double ev) const {
    std::int32_t idx = 0;
    return microscopic(ev, XsLookup::kBinarySearch, idx);
  }

  /// Instrumented find_bin for the lookup benchmark: identical result,
  /// but also accumulates the number of search steps (probes/walk
  /// advances beyond the first) into `steps`.  Off the hot path.
  [[nodiscard]] std::int32_t find_bin_counted(double ev, XsLookup mode,
                                              std::int32_t& cached_index,
                                              std::int64_t& steps) const;

  [[nodiscard]] const double* energies_data() const { return energy_.data(); }
  [[nodiscard]] const double* values_data() const { return barns_.data(); }

 private:
  [[nodiscard]] std::int32_t find_binary(double ev) const;
  [[nodiscard]] std::int32_t find_cached(double ev, std::int32_t hint) const;
  [[nodiscard]] std::int32_t find_bucketed(double ev) const;
  void build_buckets();

  aligned_vector<double> energy_;
  aligned_vector<double> barns_;

  // Log-uniform acceleration grid: bucket b spans
  // [min_e * ratio^b, min_e * ratio^(b+1)) and stores the smallest table
  // index whose bin can contain an energy in that bucket.
  aligned_vector<std::int32_t> bucket_start_;
  double log_min_ = 0.0;
  double inv_log_bucket_width_ = 0.0;
};

/// Number density [atoms / cm^3] of a material with mass density
/// `rho_g_cm3` and molar mass `molar_mass_g_mol`.
double number_density(double rho_g_cm3, double molar_mass_g_mol);

/// Macroscopic cross section [1/cm] from a microscopic value in barns and a
/// number density in atoms/cm^3 (paper §IV-D2: the density coupling that
/// ties every particle to the mesh).
double macroscopic(double micro_barns, double n_per_cm3);

}  // namespace neutral
