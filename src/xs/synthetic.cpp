#include "xs/synthetic.h"

#include <cmath>
#include <vector>

#include "rng/stream.h"
#include "util/error.h"
#include "util/numeric.h"

namespace neutral {
namespace {

struct Resonance {
  double energy_ev;
  double amplitude_barns;
  double width_ev;
};

/// Deterministically place resonances log-uniformly across [1 eV, 10 keV].
std::vector<Resonance> place_resonances(std::int32_t count, std::uint64_t seed,
                                        double amp_scale) {
  std::vector<Resonance> out;
  out.reserve(count);
  rng::BulkStream rng(seed, /*stream_id=*/7);
  const double log_lo = std::log(1.0);
  const double log_hi = std::log(1.0e4);
  for (std::int32_t i = 0; i < count; ++i) {
    Resonance r;
    r.energy_ev = std::exp(log_lo + (log_hi - log_lo) * rng.next());
    r.amplitude_barns = amp_scale * (0.5 + 4.5 * rng.next());
    // Widths grow with resonance energy, as in real data.
    r.width_ev = r.energy_ev * (0.002 + 0.01 * rng.next());
    out.push_back(r);
  }
  return out;
}

double lorentzian_sum(const std::vector<Resonance>& rs, double e) {
  double v = 0.0;
  for (const auto& r : rs) {
    const double d = (e - r.energy_ev) / r.width_ev;
    v += r.amplitude_barns / (1.0 + d * d);
  }
  return v;
}

aligned_vector<double> log_grid(const SyntheticXsConfig& cfg) {
  NEUTRAL_REQUIRE(cfg.points >= 2, "need at least two table points");
  NEUTRAL_REQUIRE(cfg.min_energy_ev > 0.0 &&
                      cfg.max_energy_ev > cfg.min_energy_ev,
                  "bad energy range");
  aligned_vector<double> e(static_cast<std::size_t>(cfg.points));
  const double log_lo = std::log(cfg.min_energy_ev);
  const double log_hi = std::log(cfg.max_energy_ev);
  for (std::int32_t i = 0; i < cfg.points; ++i) {
    e[i] = std::exp(log_lo + (log_hi - log_lo) * i / (cfg.points - 1));
  }
  return e;
}

}  // namespace

CrossSectionTable make_capture_table(const SyntheticXsConfig& cfg) {
  const auto grid = log_grid(cfg);
  const auto resonances =
      place_resonances(cfg.resonances, cfg.seed, /*amp_scale=*/30.0);
  aligned_vector<double> barns(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double e = grid[i];
    // 1/v capture: sigma ~ 1/sqrt(E), normalised to ~10 barns at 0.025 eV.
    const double one_over_v = 10.0 * std::sqrt(0.025 / e);
    barns[i] = one_over_v + lorentzian_sum(resonances, e);
  }
  return CrossSectionTable(grid, std::move(barns));
}

CrossSectionTable make_scatter_table(const SyntheticXsConfig& cfg) {
  const auto grid = log_grid(cfg);
  // Shallower, sparser resonances on a different deterministic layout.
  SyntheticXsConfig shifted = cfg;
  shifted.seed = cfg.seed ^ 0x5ca77e5u;
  const auto resonances =
      place_resonances(cfg.resonances / 2, shifted.seed, /*amp_scale=*/4.0);
  aligned_vector<double> barns(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double e = grid[i];
    // Broad potential-scattering level rolling off log-linearly from 170
    // barns (thermal) to 90 barns (20 MeV).  The magnitude is part of the
    // dummy-material calibration: at the paper's 1e3 kg/m^3 it puts the
    // mean free path at ~0.5 cells of the 4000^2 mesh, which is what makes
    // the scatter problem collision-dominated and confines particles near
    // their birth cells (§IV-B) — see DESIGN.md §5.
    const double level =
        170.0 - 80.0 * clamp(std::log10(e / 1.0e4) / 3.3, 0.0, 1.0);
    barns[i] = level + lorentzian_sum(resonances, e);
  }
  return CrossSectionTable(grid, std::move(barns));
}

}  // namespace neutral
