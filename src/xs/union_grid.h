// Unionised energy grid: the XsLookup::kUnionised acceleration structure.
//
// A World carries one capture table and one scatter table that share a
// single energy grid (the World constructor enforces it — the per-particle
// cached bin hint is only sound because of it).  The unionised grid is the
// union of those grids — here, the shared grid itself — stored once with the
// two reactions' values interleaved per point, plus a fine log-uniform
// direct-index table.  A lookup becomes:
//
//   1. one O(1) index-table load (the log-uniform synthetic grid makes the
//      post-load walk almost always zero steps, never more than one), and
//   2. one interpolation parameter `t` applied to a single 32-byte run of
//      interleaved (capture, scatter) values — one cache line instead of
//      two table walks touching two separate tables.
//
// Bit-identity contract: for any energy, the located bin equals
// CrossSectionTable::find_bin's and the interpolated values are computed
// with the exact expressions CrossSectionTable::microscopic uses, so
// switching a run to kUnionised can never move a golden checksum.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/aligned.h"
#include "util/numeric.h"
#include "xs/table.h"

namespace neutral {

class UnionisedXsGrid {
 public:
  UnionisedXsGrid() = default;

  /// Build from the two per-World tables.  Requires bitwise-identical
  /// energy grids: interpolating a table on refined (strictly-union) knots
  /// would change the rounding of `t` and break the bit-identity contract,
  /// so the merged grid is only taken when it is exactly the shared grid.
  UnionisedXsGrid(const CrossSectionTable& capture,
                  const CrossSectionTable& scatter);

  [[nodiscard]] bool active() const { return !energy_.empty(); }
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(energy_.size());
  }

  /// Bin for an energy already clamped into the table range; identical to
  /// CrossSectionTable::find_bin for every strategy.
  [[nodiscard]] std::int32_t find_bin(double e) const {
    auto b = static_cast<std::int32_t>((std::log(e) - log_min_) *
                                       inv_log_bucket_width_);
    b = std::clamp(b, 0, static_cast<std::int32_t>(bin_of_.size()) - 2);
    std::int32_t i = bin_of_[b];
    const std::int32_t last = size() - 2;
    while (i < last && energy_[i + 1] <= e) ++i;
    return i;
  }

  /// Instrumented find_bin for the lookup benchmark: also accumulates the
  /// number of post-index walk steps into `steps`.
  [[nodiscard]] std::int32_t find_bin_counted(double ev,
                                              std::int64_t& steps) const {
    const double e = clamp(ev, energy_.front(), energy_.back());
    auto b = static_cast<std::int32_t>((std::log(e) - log_min_) *
                                       inv_log_bucket_width_);
    b = std::clamp(b, 0, static_cast<std::int32_t>(bin_of_.size()) - 2);
    std::int32_t i = bin_of_[b];
    const std::int32_t last = size() - 2;
    while (i < last && energy_[i + 1] <= e) {
      ++i;
      ++steps;
    }
    return i;
  }

  /// Fused lookup: one bin search, one interpolation parameter, both
  /// reactions.  Bit-identical to two CrossSectionTable::microscopic calls
  /// (same clamp, same bin, same interpolation expressions).  `index`
  /// receives the bin so callers keep the per-particle hint current for
  /// mid-run strategy switches.
  void microscopic_pair(double ev, std::int32_t& index, double& capture_barns,
                        double& scatter_barns) const {
    const double e = clamp(ev, energy_.front(), energy_.back());
    const std::int32_t i = find_bin(e);
    const double e0 = energy_[i];
    const double e1 = energy_[i + 1];
    const double t = (e - e0) / (e1 - e0);
    const double* p = pair_.data() + 2 * static_cast<std::size_t>(i);
    capture_barns = p[0] + t * (p[2] - p[0]);
    scatter_barns = p[1] + t * (p[3] - p[1]);
    index = i;
  }

  /// Resident bytes of the grid + interleaved values + direct-index table
  /// (the memory side of the speed/memory tradeoff; see README).
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return energy_.size() * sizeof(double) + pair_.size() * sizeof(double) +
           bin_of_.size() * sizeof(std::int32_t);
  }

 private:
  aligned_vector<double> energy_;  ///< the shared (union) grid
  aligned_vector<double> pair_;    ///< interleaved [capture_i, scatter_i]
  /// Fine log-uniform direct index: ~4 buckets per grid point, so the walk
  /// after the load is 0 or 1 steps on the log-uniform synthetic grids.
  aligned_vector<std::int32_t> bin_of_;
  double log_min_ = 0.0;
  double inv_log_bucket_width_ = 0.0;
};

}  // namespace neutral
