#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "util/errno_string.h"
#include "util/error.h"

namespace neutral::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + errno_string(errno));
}

/// Resolve host:port to every usable IPv4/IPv6 address, in resolver
/// order.  Callers try each in turn: a dual-stack name like `localhost`
/// may list ::1 first while the peer bound 127.0.0.1 only.
struct Resolved {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = AF_INET;
};

std::vector<Resolved> resolve(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc =
      getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &list);
  NEUTRAL_REQUIRE(rc == 0 && list != nullptr,
                  "cannot resolve '" + host + "': " +
                      (rc == 0 ? "no addresses" : gai_strerror(rc)));
  std::vector<Resolved> out;
  for (const addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    Resolved entry;
    std::memcpy(&entry.addr, ai->ai_addr, ai->ai_addrlen);
    entry.len = static_cast<socklen_t>(ai->ai_addrlen);
    entry.family = ai->ai_family;
    out.push_back(entry);
  }
  freeaddrinfo(list);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpStream
// ---------------------------------------------------------------------------

TcpStream::TcpStream(TcpStream&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), buffer_(std::move(o.buffer_)) {}

TcpStream& TcpStream::operator=(TcpStream&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    buffer_ = std::move(o.buffer_);
  }
  return *this;
}

TcpStream::~TcpStream() { close(); }

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  int last_err = ECONNREFUSED;
  for (const Resolved& to : resolve(host, port)) {
    const int fd = ::socket(to.family, SOCK_STREAM, 0);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&to.addr),
                  to.len) == 0) {
      return TcpStream(fd);
    }
    last_err = errno;
    ::close(fd);
  }
  errno = last_err;
  fail_errno("connect to " + host + ":" + std::to_string(port));
}

void TcpStream::set_read_timeout(std::chrono::milliseconds timeout) {
  NEUTRAL_REQUIRE(valid(), "set_read_timeout on a closed stream");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    fail_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void TcpStream::set_write_timeout(std::chrono::milliseconds timeout) {
  NEUTRAL_REQUIRE(valid(), "set_write_timeout on a closed stream");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv) != 0) {
    fail_errno("setsockopt(SO_SNDTIMEO)");
  }
}

ReadStatus TcpStream::read_line(std::string& line, std::size_t max_bytes) {
  NEUTRAL_REQUIRE(valid(), "read_line on a closed stream");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    NEUTRAL_REQUIRE(buffer_.size() <= max_bytes,
                    "frame exceeds " + std::to_string(max_bytes) + " bytes");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Clean EOF; a buffered partial line means the peer died mid-frame.
      NEUTRAL_REQUIRE(buffer_.empty(),
                      "connection closed mid-frame (partial line)");
      return ReadStatus::kEof;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kTimedOut;
    fail_errno("recv");
  }
}

void TcpStream::write_all(const std::string& data) {
  NEUTRAL_REQUIRE(valid(), "write_all on a closed stream");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         int backlog) {
  // Try every resolved address: a dual-stack name may list a family this
  // host cannot bind first (mirrors TcpStream::connect).
  int last_err = EADDRNOTAVAIL;
  for (const Resolved& at : resolve(host, port)) {
    fd_ = ::socket(at.family, SOCK_STREAM, 0);
    if (fd_ < 0) {
      last_err = errno;
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&at.addr), at.len) ==
        0) {
      break;
    }
    last_err = errno;
    ::close(fd_);
    fd_ = -1;
  }
  if (fd_ < 0) {
    errno = last_err;
    fail_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    fail_errno("listen");
  }
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = bound.ss_family == AF_INET6
              ? ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port)
              : ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
}

TcpListener::TcpListener(TcpListener&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), port_(std::exchange(o.port_, 0)) {}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  NEUTRAL_REQUIRE(fd_ >= 0, "accept on a closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc == 0) return std::nullopt;
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;
    fail_errno("poll");
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    fail_errno("accept");
  }
  return TcpStream(client);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail_errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
}

}  // namespace neutral::net
