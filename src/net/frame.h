// Wire framing for the neutrald protocol: one flat JSON object per line.
//
// Every protocol message — request, reply, streamed event — is a single
// '\n'-terminated line holding a flat JSON object whose keys and values
// are both strings: {"op":"submit","deck":"...","shards":"4"}.  Multi-line
// payloads (deck text, sweep specs) ride inside a value with '\n' escaped,
// so the framing layer never needs a length prefix and a human can drive
// the daemon with netcat.  Numbers travel as strings too: a checksum is
// printed with %.17g (round-trips IEEE doubles exactly) and re-parsed with
// strtod, which is what makes loopback results bit-comparable.
//
// decode_frame is deliberately strict — no nested objects, arrays,
// numbers, booleans, duplicate keys, or trailing bytes — because a served
// queue must reject garbage at the boundary instead of guessing.  Any
// deviation throws neutral::Error with a reason; the server answers with
// an error frame and drops the connection (a desynced stream cannot be
// re-framed reliably).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace neutral::net {

/// One frame's key-value pairs.  std::map keeps emission order sorted and
/// therefore deterministic — frames diff cleanly in tests and logs.
using Fields = std::map<std::string, std::string>;

/// Serialise one frame: a single line ending in '\n'.
std::string encode_frame(const Fields& fields);

/// Parse one line (with or without its trailing '\n').  Throws
/// neutral::Error describing the first violation.
Fields decode_frame(const std::string& line);

/// Fetch `key` or throw Error("frame missing field 'key'").
const std::string& require_field(const Fields& fields,
                                 const std::string& key);

/// Fetch `key` parsed as a non-negative integer; `def` when absent.
/// Throws on unparseable or negative values.
std::int64_t field_int(const Fields& fields, const std::string& key,
                       std::int64_t def);

/// Same, but negative values are legal — for fields like a worker index
/// where -1 means "never ran".
std::int64_t field_int_signed(const Fields& fields, const std::string& key,
                              std::int64_t def);

/// Fetch `key` parsed with strtod (full %.17g round-trip); `def` when
/// absent.  Throws on unparseable values.
double field_double(const Fields& fields, const std::string& key, double def);

}  // namespace neutral::net
