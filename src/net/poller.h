// Thin RAII wrappers over epoll and eventfd for the neutrald event loop.
//
// Poller is level-triggered on purpose: the server's handlers drain as
// much as they choose per wakeup and rely on the next epoll_wait to
// re-report whatever is left, which keeps the per-connection code free of
// the drain-to-EAGAIN discipline edge-triggered epoll would demand.
//
// WakeupFd is the cross-thread doorbell: the executor thread (and
// request_shutdown, from any thread) signals it to pull the loop out of
// epoll_wait — e.g. when a watched submission gains events or completes —
// so the loop never needs a polling timeout just to notice internal state.
#pragma once

#include <vector>

namespace neutral::net {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  // EPOLLERR / EPOLLHUP: peer gone or socket broken
};

class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Register `fd` for readiness notification.
  void add(int fd, bool read, bool write);
  /// Change the interest set of an already-registered fd.
  void modify(int fd, bool read, bool write);
  /// Deregister `fd`.  Must be called before the fd is closed.
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = indefinitely) and fill `out` with the
  /// ready fds.  Returns the number of events (0 on timeout); EINTR is
  /// retried internally.
  std::size_t wait(std::vector<PollEvent>& out, int timeout_ms);

 private:
  int fd_ = -1;
};

class WakeupFd {
 public:
  WakeupFd();
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  /// Make the poller's next (or current) wait report fd() readable.
  /// Callable from any thread; signals coalesce.
  void signal();
  /// Consume pending signals so the fd stops reporting readable.  Loop
  /// thread only.
  void drain();
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace neutral::net
