#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "batch/domain.h"
#include "batch/shard.h"
#include "batch/sweep.h"
#include "io/deck_io.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "util/errno_string.h"
#include "util/error.h"

namespace neutral::net {

using batch::BatchReport;
using batch::DomainOptions;
using batch::DomainRunReport;
using batch::GroupReduction;
using batch::Job;
using batch::JobOutcome;
using batch::ShardOptions;
using batch::SweepSpec;

namespace {

std::string format_double(double v, const char* fmt = "%.17g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

const char* state_name(bool queued, bool running) {
  return queued ? "queued" : running ? "running" : "done";
}

Fields error_reply(const std::string& message) {
  return Fields{{"ok", "0"}, {"error", message}};
}

/// Overload answers carry refused=1 so clients can tell "back off and
/// retry" apart from a hard failure.
Fields refused_reply(const std::string& message) {
  return Fields{{"ok", "0"}, {"refused", "1"}, {"error", message}};
}

/// Did this error text come from the cooperative cancel check
/// (Simulation::check_interrupt)?  Used to tell a job the CLIENT stopped
/// apart from one that genuinely failed before the cancel arrived.
bool is_cancel_abort(const std::string& error) {
  return error.find("run cancelled") != std::string::npos;
}

/// Map one engine outcome to the protocol's row status vocabulary.  The
/// cancel flag alone never relabels a row: a job that failed on its own
/// before the client's cancel arrived stays "failed".
std::string outcome_status(const JobOutcome& outcome, bool cancel_requested) {
  if (outcome.ok) return "ok";
  if (outcome.timed_out) return "timed_out";
  if (outcome.cancelled) return "cancelled";
  if (cancel_requested && is_cancel_abort(outcome.error)) return "cancelled";
  return "failed";
}

/// Point the engine at the server's registry/trace.  The daemon always
/// meters itself — the cost is nullptr-guarded counters, and `metrics` is
/// how operators see a headless process at all.
batch::EngineOptions instrumented(batch::EngineOptions engine,
                                  obs::MetricsRegistry* metrics,
                                  obs::TraceLog* trace) {
  engine.metrics = metrics;
  engine.trace = trace;
  return engine;
}

}  // namespace

NeutralServer::NeutralServer(ServerOptions options)
    : options_(std::move(options)),
      trace_(options_.trace_path.empty()
                 ? nullptr
                 : std::make_unique<obs::TraceLog>(options_.trace_path)),
      engine_(instrumented(options_.engine, &metrics_, trace_.get())) {
  submissions_total_ = &metrics_.counter(
      "neutral_submissions_total", "submissions accepted by the daemon");
  submissions_refused_ = &metrics_.counter(
      "neutral_submissions_refused_total",
      "submissions refused by admission control (daemon or per-connection "
      "in-flight bound)");
  conn_total_ = &metrics_.counter("neutral_connections_total",
                                  "TCP connections accepted");
  conn_refused_ = &metrics_.counter(
      "neutral_connections_refused_total",
      "connections refused at the max_connections bound");
  slow_reader_disconnects_ = &metrics_.counter(
      "neutral_slow_reader_disconnects_total",
      "connections dropped by the slow-reader policy (outbound buffer "
      "overflow or write stall)");
  conn_open_ =
      &metrics_.gauge("neutral_connections_open", "TCP connections open");
}

NeutralServer::~NeutralServer() {
  request_shutdown();
  if (exporter_ != nullptr) exporter_->stop();
  if (executor_.joinable()) executor_.join();
}

std::uint16_t NeutralServer::start() {
  NEUTRAL_REQUIRE(listener_ == nullptr, "server already started");
  listener_ =
      std::make_unique<TcpListener>(options_.host, options_.port);
  port_ = listener_->port();
  if (options_.metrics_port != 0) {
    exporter_ = std::make_unique<obs::MetricsExporter>(
        &metrics_, options_.host, options_.metrics_port);
    metrics_port_ = exporter_->start();
    log("metrics on http://" + options_.host + ":" +
        std::to_string(metrics_port_) + "/metrics");
  }
  executor_ = std::thread(&NeutralServer::executor_loop, this);
  return port_;
}

void NeutralServer::request_shutdown() {
  stopping_.store(true);
  cv_.notify_all();
  wake_.signal();  // pull serve() out of epoll_wait
}

void NeutralServer::log(const std::string& line) {
  if (!options_.verbose) return;
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

void NeutralServer::trace_connection(const char* event,
                                     const Connection& conn,
                                     const std::string& detail) {
  if (trace_ == nullptr) return;
  obs::TraceEvent span;
  span.event = event;
  span.job_id = conn.id;
  span.label = "connection";
  span.detail = detail;
  trace_->record(span);
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void NeutralServer::serve() {
  NEUTRAL_REQUIRE(listener_ != nullptr, "call start() before serve()");
  // A hard loop error converts into a shutdown instead of propagating past
  // the teardown: every connection must be closed and the executor joined
  // before serve() returns, whatever happened.
  try {
    set_nonblocking(listener_->fd());
    poller_.add(listener_->fd(), /*read=*/true, /*write=*/false);
    poller_.add(wake_.fd(), /*read=*/true, /*write=*/false);
    event_loop();
    poller_.remove(listener_->fd());
    poller_.remove(wake_.fd());
  } catch (const std::exception& e) {
    log(std::string("event loop failed: ") + e.what());
    request_shutdown();
  }
  listener_->close();
  teardown_connections();
  if (executor_.joinable()) executor_.join();
  if (exporter_ != nullptr) exporter_->stop();
  log("neutrald stopped");
}

void NeutralServer::event_loop() {
  std::vector<PollEvent> events;
  while (!stopping_.load()) {
    poller_.wait(events, next_timeout_ms());
    for (const PollEvent& ev : events) {
      if (ev.fd == wake_.fd()) {
        wake_.drain();
        continue;
      }
      if (ev.fd == listener_->fd()) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;  // closed earlier this pass
      Connection& conn = *it->second;
      // Readable data (a final request, or the EOF itself) is drained
      // before honouring an error flag: EPOLLHUP arrives together with the
      // peer's last bytes.
      if (ev.writable && !conn.closed) flush(conn);
      if (ev.readable && !conn.closed) drain_readable(conn);
      if (ev.error && !conn.closed && !ev.readable) {
        close_connection(conn, "socket error/hangup");
      }
    }
    // Executor progress (wake_) and watcher/stall deadlines (timeout) both
    // land here: pump every live watcher, then enforce the write-stall
    // bound, then release memory for connections closed this pass.
    pump_watchers();
    check_stalls();
    graveyard_.clear();
  }
}

int NeutralServer::next_timeout_ms() const {
  auto nearest = std::chrono::steady_clock::time_point::max();
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    if (conn->watcher.has_value() && conn->watcher->has_deadline) {
      nearest = std::min(nearest, conn->watcher->deadline);
    }
    if (conn->stalled) {
      nearest =
          std::min(nearest, conn->stall_since + options_.write_stall_timeout);
    }
  }
  if (nearest == std::chrono::steady_clock::time_point::max()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (nearest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      nearest - now)
                      .count() +
                  1;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

void NeutralServer::note_connections_open() {
  conn_open_->set(static_cast<std::int64_t>(connections_.size()));
}

void NeutralServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listener_->fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE and friends: transient resource pressure — log and
      // retry on the next readiness instead of killing the loop.
      log("accept failed: " + errno_string(errno));
      break;
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    if (connections_.size() >= options_.max_connections) {
      // Best-effort structured refusal (the socket is fresh, so the tiny
      // frame virtually always fits the send buffer), then close.
      const std::string frame = encode_frame(refused_reply(
          "refused: server at max connections (" +
          std::to_string(options_.max_connections) + ")"));
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      conn_refused_->add();
      log("connection refused (max_connections)");
      continue;
    }
    if (options_.sndbuf_bytes > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                         sizeof options_.sndbuf_bytes);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->inflight = std::make_shared<std::atomic<std::int64_t>>(0);
    poller_.add(fd, /*read=*/true, /*write=*/false);
    conn_total_->add();
    trace_connection("conn_open", *conn, "");
    log("connection #" + std::to_string(conn->id) + " open");
    connections_.emplace(fd, std::move(conn));
    note_connections_open();
  }
}

void NeutralServer::close_connection(Connection& conn,
                                     const std::string& reason) {
  if (conn.closed) return;
  conn.closed = true;
  conn.watcher.reset();
  poller_.remove(conn.fd);
  const auto it = connections_.find(conn.fd);
  ::close(conn.fd);
  trace_connection("conn_close", conn, reason);
  log("connection #" + std::to_string(conn.id) + " closed (" + reason + ")");
  // Park the object until the end of the loop pass: callers up the stack
  // still hold a reference to it.
  graveyard_.push_back(std::move(it->second));
  connections_.erase(it);
  note_connections_open();
}

void NeutralServer::disconnect_slow_reader(Connection& conn,
                                           const std::string& why) {
  slow_reader_disconnects_->add();
  close_connection(conn, "slow reader: " + why);
}

void NeutralServer::flush(Connection& conn) {
  if (conn.closed) return;
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      conn.stalled = false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: arm EPOLLOUT and start the stall clock — a
      // peer that never drains trips check_stalls().
      if (!conn.want_write) {
        poller_.modify(conn.fd, /*read=*/!conn.read_eof, /*write=*/true);
        conn.want_write = true;
      }
      if (!conn.stalled) {
        conn.stalled = true;
        conn.stall_since = std::chrono::steady_clock::now();
      }
      return;
    }
    close_connection(conn, "send failed");  // peer vanished mid-reply
    return;
  }
  conn.stalled = false;
  if (conn.want_write) {
    poller_.modify(conn.fd, /*read=*/!conn.read_eof, /*write=*/false);
    conn.want_write = false;
  }
  if (conn.close_after_flush) close_connection(conn, "flushed and done");
}

void NeutralServer::send_frame(Connection& conn, const Fields& frame) {
  if (conn.closed) return;
  conn.outbuf += encode_frame(frame);
  flush(conn);
  if (!conn.closed && conn.outbuf.size() > options_.max_outbound_bytes) {
    disconnect_slow_reader(conn, "outbound buffer over " +
                                     std::to_string(
                                         options_.max_outbound_bytes) +
                                     " bytes");
  }
}

void NeutralServer::check_stalls() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    if (conn->stalled &&
        now - conn->stall_since >= options_.write_stall_timeout) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    disconnect_slow_reader(*it->second, "write stalled");
  }
}

void NeutralServer::drain_readable(Connection& conn) {
  if (conn.read_eof) return;  // read interest already dropped
  char chunk[4096];
  while (!conn.closed) {
    if (conn.inbuf.size() > options_.max_frame_bytes) {
      // Consume complete frames before buffering more.  If the buffer is
      // still over the bound afterwards the peer is abusing the stream:
      // either one giant line (process_input answered and is closing) or
      // pipelining past a streaming watcher faster than we will ever
      // consume.
      process_input(conn);
      if (conn.closed) return;
      if (conn.inbuf.size() > options_.max_frame_bytes) {
        if (conn.watcher.has_value()) {
          close_connection(conn, "inbound buffer overflow while streaming");
        }
        return;
      }
    }
    const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      // A connection already winding down (close_after_flush) has nothing
      // left to answer; drop the bytes instead of buffering them.
      if (!conn.close_after_flush) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(n));
      }
      continue;
    }
    if (n == 0) {
      conn.read_eof = true;
      // Drop read interest, or level-triggered epoll would report the EOF
      // forever while a watcher keeps the connection open.
      poller_.modify(conn.fd, /*read=*/false, conn.want_write);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(conn, "recv failed");
    return;
  }
  process_input(conn);
}

void NeutralServer::maybe_close_after_eof(Connection& conn) {
  if (!conn.read_eof || conn.closed || conn.watcher.has_value() ||
      conn.close_after_flush) {
    return;
  }
  if (!conn.inbuf.empty() && conn.inbuf.find('\n') == std::string::npos) {
    // Mirror the blocking stream's contract: dying mid-frame is reported.
    send_frame(conn, error_reply("connection closed mid-frame (partial "
                                 "line)"));
  }
  if (conn.closed) return;
  conn.close_after_flush = true;
  if (conn.outbuf.empty()) close_connection(conn, "eof");
}

void NeutralServer::process_input(Connection& conn) {
  // One request at a time, in arrival order.  While a watcher streams, the
  // rest of the input stays buffered — the protocol is serial per
  // connection, exactly as the thread-per-connection design was.
  while (!conn.closed && !conn.close_after_flush &&
         !conn.watcher.has_value()) {
    const std::size_t nl = conn.inbuf.find('\n');
    if (nl == std::string::npos) {
      if (conn.inbuf.size() > options_.max_frame_bytes) {
        send_frame(conn, error_reply(
                             "frame exceeds " +
                             std::to_string(options_.max_frame_bytes) +
                             " bytes"));
        if (!conn.closed) conn.close_after_flush = true;
      }
      break;
    }
    std::string line = conn.inbuf.substr(0, nl);
    conn.inbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    if (line.size() > options_.max_frame_bytes) {
      send_frame(conn, error_reply("frame exceeds " +
                                   std::to_string(options_.max_frame_bytes) +
                                   " bytes"));
      if (!conn.closed) conn.close_after_flush = true;
      break;
    }
    Fields request;
    try {
      request = decode_frame(line);
    } catch (const Error& e) {
      // A stream that does not decode cannot be re-framed: report, close.
      send_frame(conn, error_reply(e.what()));
      if (!conn.closed) conn.close_after_flush = true;
      break;
    }
    if (!dispatch_line(conn, request)) break;
  }
  if (!conn.closed && conn.close_after_flush && conn.outbuf.empty()) {
    close_connection(conn, "request asked to close");
    return;
  }
  maybe_close_after_eof(conn);
}

bool NeutralServer::dispatch_line(Connection& conn, const Fields& request) {
  // Every well-framed request gets a reply, whatever goes wrong inside —
  // a missing "op", a bad knob, or an unexpected exception all answer
  // ok=0 and keep the connection.
  Fields reply;
  bool keep = true;
  try {
    const std::string& op = require_field(request, "op");
    if (op == "result" || op == "watch") {
      start_watch(conn, request, /*stream_events=*/op == "watch");
      return true;
    }
    if (op == "ping") {
      reply = Fields{{"ok", "1"}, {"server", "neutrald"}};
    } else if (op == "submit") {
      reply = handle_submit(conn, request);
    } else if (op == "status") {
      reply = handle_status(request);
    } else if (op == "cancel") {
      reply = handle_cancel(request);
    } else if (op == "metrics") {
      reply = handle_metrics();
    } else if (op == "shutdown") {
      reply = Fields{{"ok", "1"}};
      keep = false;
      request_shutdown();
    } else {
      reply = error_reply("unknown op '" + op + "'");
    }
  } catch (const std::exception& e) {
    reply = error_reply(e.what());
  }
  send_frame(conn, reply);
  if (!keep && !conn.closed) conn.close_after_flush = true;
  return keep;
}

void NeutralServer::start_watch(Connection& conn, const Fields& request,
                                bool stream_events) {
  std::shared_ptr<Submission> sub;
  try {
    const std::uint64_t id =
        static_cast<std::uint64_t>(field_int(request, "id", 0));
    MutexLock lock(mutex_);
    const auto it = submissions_.find(id);
    NEUTRAL_REQUIRE(it != submissions_.end(),
                    "unknown submission id " + std::to_string(id));
    sub = it->second;
  } catch (const Error& e) {
    send_frame(conn, error_reply(e.what()));
    return;  // semantic mistake: keep the connection
  }
  Watcher watcher;
  watcher.sub = std::move(sub);
  watcher.stream_events = stream_events;
  const std::int64_t timeout_ms = field_int(request, "timeout_ms", 0);
  if (timeout_ms > 0) {
    watcher.has_deadline = true;
    watcher.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  }
  conn.watcher = std::move(watcher);
  pump_watcher(conn);
}

void NeutralServer::pump_watchers() {
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    if (conn->watcher.has_value()) fds.push_back(fd);
  }
  for (const int fd : fds) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    pump_watcher(*it->second);
  }
}

void NeutralServer::pump_watcher(Connection& conn) {
  if (conn.closed || !conn.watcher.has_value()) return;
  Watcher& watcher = *conn.watcher;
  std::vector<Event> fresh;
  bool done = false;
  Fields header;
  std::vector<RemoteRow> rows;
  {
    MutexLock lock(mutex_);
    const Submission& sub = *watcher.sub;
    if (watcher.stream_events && sub.events.size() > watcher.next_event) {
      fresh.assign(sub.events.begin() +
                       static_cast<std::ptrdiff_t>(watcher.next_event),
                   sub.events.end());
      watcher.next_event = sub.events.size();
    }
    done = sub.state == State::kDone;
    if (done) {
      rows = sub.rows;
      header = Fields{{"ok", "1"},
                      {"id", std::to_string(sub.id)},
                      {"status", sub.status}};
      if (!sub.error.empty()) header["error"] = sub.error;
    }
  }
  for (const Event& e : fresh) {
    send_frame(conn,
               Fields{{"event", "job"},
                      {"label", e.label},
                      {"status", e.status},
                      {"seconds", format_double(e.seconds, "%.6g")},
                      {"worker", std::to_string(e.worker)}});
    if (conn.closed) return;
  }
  if (done) {
    header["rows"] = std::to_string(rows.size());
    send_frame(conn, header);
    for (std::size_t i = 0; i < rows.size() && !conn.closed; ++i) {
      const RemoteRow& r = rows[i];
      Fields frame{{"row", std::to_string(i)},
                   {"label", r.label},
                   {"particles", std::to_string(r.particles)},
                   {"tally", r.tally},
                   {"scheme", r.scheme},
                   {"layout", r.layout},
                   {"events", std::to_string(r.events)},
                   {"seconds", format_double(r.seconds, "%.6g")},
                   {"checksum", format_double(r.checksum)},
                   {"population", std::to_string(r.population)},
                   {"status", r.status}};
      if (!r.error.empty()) frame["error"] = r.error;
      send_frame(conn, frame);
    }
    if (conn.closed) return;
    conn.watcher.reset();
    process_input(conn);  // pipelined requests buffered behind the watch
    return;
  }
  if (stopping_.load()) {
    send_frame(conn, error_reply("server is shutting down"));
    conn.watcher.reset();
    if (!conn.closed) {
      conn.close_after_flush = true;
      if (conn.outbuf.empty()) close_connection(conn, "shutdown");
    }
    return;
  }
  if (watcher.has_deadline &&
      std::chrono::steady_clock::now() >= watcher.deadline) {
    const std::uint64_t id = watcher.sub->id;
    send_frame(conn, error_reply("pending: submission " + std::to_string(id) +
                                 " not finished within timeout_ms"));
    if (conn.closed) return;
    conn.watcher.reset();
    process_input(conn);
  }
}

void NeutralServer::teardown_connections() {
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    if (conn->watcher.has_value()) {
      conn->watcher.reset();
      conn->outbuf +=
          encode_frame(error_reply("server is shutting down"));
    }
    if (!conn->outbuf.empty()) {
      // One best-effort non-blocking push; a peer that cannot take it now
      // loses the tail, exactly like the old write-timeout did.
      (void)::send(conn->fd, conn->outbuf.data(), conn->outbuf.size(),
                   MSG_NOSIGNAL);
    }
    ::close(conn->fd);
    trace_connection("conn_close", *conn, "server shutdown");
  }
  connections_.clear();
  graveyard_.clear();
  note_connections_open();
}

// ---------------------------------------------------------------------------
// Request handlers
// ---------------------------------------------------------------------------

Fields NeutralServer::handle_submit(Connection& conn, const Fields& request) {
  // Per-connection admission: a single client cannot monopolise the
  // daemon-wide submission budget.
  if (conn.inflight->load() >=
      static_cast<std::int64_t>(options_.max_inflight_per_connection)) {
    submissions_refused_->add();
    return refused_reply(
        "refused: connection has " +
        std::to_string(options_.max_inflight_per_connection) +
        " submissions in flight (per-connection bound)");
  }

  auto sub = std::make_shared<Submission>();
  const auto deck_it = request.find("deck");
  const auto spec_it = request.find("spec");
  NEUTRAL_REQUIRE((deck_it != request.end()) != (spec_it != request.end()),
                  "submit needs exactly one of 'deck' or 'spec'");
  const auto copy = [&](const char* key, std::string& into) {
    const auto it = request.find(key);
    if (it != request.end()) into = it->second;
  };
  copy("label", sub->label);
  copy("scheme", sub->scheme);
  copy("layout", sub->layout);
  copy("tally", sub->tally);
  copy("schedule", sub->schedule);
  copy("domains", sub->domains);
  sub->threads = static_cast<std::int32_t>(field_int(request, "threads", 0));
  sub->shards = static_cast<std::int32_t>(field_int(request, "shards", 0));

  // Validate everything parseable up front so the client hears about a
  // bad deck/spec/knob now, not from a failed row later.  The executor
  // re-parses from text; decks are tiny and this keeps one code path.
  std::size_t jobs = 1;
  if (deck_it != request.end()) {
    sub->deck_text = deck_it->second;
    (void)parse_deck(sub->deck_text);
  } else {
    sub->spec_text = spec_it->second;
    jobs = batch::sweep_size(batch::parse_sweep(sub->spec_text));
    // A sweep spec names its own base knobs; per-request overrides would
    // be silently ignored, so refuse them (shards/domains are execution
    // options and still apply).
    NEUTRAL_REQUIRE(sub->scheme.empty() && sub->layout.empty() &&
                        sub->tally.empty() && sub->schedule.empty() &&
                        sub->threads == 0,
                    "spec submissions carry scheme/layout/tally/schedule/"
                    "threads inside the spec text, not as request fields");
  }
  if (!sub->scheme.empty()) (void)scheme_from_string(sub->scheme);
  if (!sub->layout.empty()) (void)layout_from_string(sub->layout);
  if (!sub->tally.empty()) (void)tally_mode_from_string(sub->tally);
  if (!sub->schedule.empty()) (void)schedule_from_string(sub->schedule);
  if (!sub->domains.empty()) (void)batch::parse_domain_grid(sub->domains);
  NEUTRAL_REQUIRE(sub->shards >= 0, "shards must be >= 0");

  {
    MutexLock lock(mutex_);
    NEUTRAL_REQUIRE(!stopping_.load(), "server is shutting down");
    std::size_t active = pending_.size();
    for (const auto& [id, existing] : submissions_) {
      active += existing->state == State::kRunning ? 1 : 0;
    }
    if (active >= options_.max_pending_submissions) {
      // Daemon-wide backpressure: a structured refusal, not an error — the
      // client should back off and retry, not debug its deck.
      submissions_refused_->add();
      return refused_reply(
          "refused: submission queue full (" +
          std::to_string(options_.max_pending_submissions) + " in flight)");
    }
    sub->id = next_id_++;
    sub->owner_inflight = conn.inflight;
    conn.inflight->fetch_add(1);
    submissions_.emplace(sub->id, sub);
    pending_.push_back(sub);
    submissions_total_->add();
    note_submissions_locked();
  }
  cv_.notify_all();
  log("submit #" + std::to_string(sub->id) + " (" +
      (sub->deck_text.empty() ? "spec" : "deck") + ", " +
      std::to_string(jobs) + " jobs)");
  return Fields{{"ok", "1"},
                {"id", std::to_string(sub->id)},
                {"jobs", std::to_string(jobs)}};
}

Fields NeutralServer::handle_metrics() {
  Fields reply{{"ok", "1"}};
  for (const auto& [name, value] : metrics_.snapshot().flat()) {
    reply.emplace(name, value);
  }
  return reply;
}

void NeutralServer::note_submissions_locked() {
  std::size_t active = pending_.size();
  for (const auto& [id, sub] : submissions_) {
    (void)id;
    active += sub->state == State::kRunning ? 1 : 0;
  }
  metrics_
      .gauge("neutral_submissions_pending",
             "submissions queued or running")
      .set(static_cast<std::int64_t>(active));
}

void NeutralServer::finish_locked(Submission& sub) {
  sub.state = State::kDone;
  if (sub.owner_inflight != nullptr) {
    sub.owner_inflight->fetch_sub(1);
    sub.owner_inflight.reset();
  }
}

Fields NeutralServer::handle_status(const Fields& request) {
  MutexLock lock(mutex_);
  const auto id_it = request.find("id");
  if (id_it == request.end()) {
    std::size_t queued = 0, running = 0, done = 0;
    for (const auto& [id, sub] : submissions_) {
      queued += sub->state == State::kQueued ? 1 : 0;
      running += sub->state == State::kRunning ? 1 : 0;
      done += sub->state == State::kDone ? 1 : 0;
    }
    const batch::WorldCache::Stats cache = engine_.cache().stats();
    return Fields{{"ok", "1"},
                  {"queued", std::to_string(queued)},
                  {"running", std::to_string(running)},
                  {"done", std::to_string(done)},
                  {"cache_hits", std::to_string(cache.hits)},
                  {"cache_misses", std::to_string(cache.misses)},
                  {"cache_evictions", std::to_string(cache.evictions)},
                  {"cache_resident_worlds",
                   std::to_string(cache.resident_worlds)},
                  {"cache_resident_bytes",
                   std::to_string(cache.resident_bytes)}};
  }
  const std::uint64_t id =
      static_cast<std::uint64_t>(field_int(request, "id", 0));
  const auto it = submissions_.find(id);
  NEUTRAL_REQUIRE(it != submissions_.end(),
                  "unknown submission id " + std::to_string(id));
  const Submission& sub = *it->second;
  Fields reply{{"ok", "1"},
               {"id", std::to_string(id)},
               {"state", state_name(sub.state == State::kQueued,
                                    sub.state == State::kRunning)},
               {"jobs", std::to_string(sub.jobs_total)},
               {"events", std::to_string(sub.events.size())}};
  if (sub.state == State::kDone) {
    reply["status"] = sub.status;
    if (!sub.error.empty()) reply["error"] = sub.error;
  }
  return reply;
}

Fields NeutralServer::handle_cancel(const Fields& request) {
  const std::uint64_t id =
      static_cast<std::uint64_t>(field_int(request, "id", 0));
  const char* state = nullptr;
  {
    MutexLock lock(mutex_);
    const auto it = submissions_.find(id);
    NEUTRAL_REQUIRE(it != submissions_.end(),
                    "unknown submission id " + std::to_string(id));
    Submission& sub = *it->second;
    if (sub.state != State::kDone) sub.cancel->store(true);
    state = state_name(sub.state == State::kQueued,
                       sub.state == State::kRunning);
  }
  cv_.notify_all();
  log("cancel #" + std::to_string(id));
  return Fields{
      {"ok", "1"}, {"id", std::to_string(id)}, {"state", state}};
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void NeutralServer::evict_done_locked() {
  std::size_t done = 0;
  for (const auto& [id, sub] : submissions_) {
    done += sub->state == State::kDone ? 1 : 0;
  }
  // Ids are monotonic and std::map iterates in id order, so the first
  // finished entries seen are the oldest results.
  for (auto it = submissions_.begin();
       done > options_.max_retained_results &&
       it != submissions_.end();) {
    if (it->second->state == State::kDone) {
      it = submissions_.erase(it);
      --done;
    } else {
      ++it;
    }
  }
}

void NeutralServer::executor_loop() {
  while (true) {
    std::shared_ptr<Submission> sub;
    {
      MutexLock lock(mutex_);
      while (!stopping_.load() && pending_.empty()) cv_.wait(lock);
      if (pending_.empty()) break;  // stopping and drained
      sub = pending_.front();
      pending_.pop_front();
      if (stopping_.load() || sub->cancel->load()) {
        sub->status = "cancelled";
        sub->error = stopping_.load() ? "server shutting down"
                                      : "cancelled before it started";
        finish_locked(*sub);
        evict_done_locked();
        note_submissions_locked();
        cv_.notify_all();
        wake_.signal();
        continue;
      }
      sub->state = State::kRunning;
    }
    cv_.notify_all();
    execute(sub);
    {
      MutexLock lock(mutex_);
      finish_locked(*sub);
      evict_done_locked();
      note_submissions_locked();
    }
    cv_.notify_all();
    wake_.signal();  // watchers of this submission live in the event loop
    log("done #" + std::to_string(sub->id) + " (" + sub->status + ")");
  }
}

void NeutralServer::execute(const std::shared_ptr<Submission>& sub) {
  std::vector<RemoteRow> rows;
  std::string status = "ok";
  std::string error;
  try {
    SweepSpec spec;
    if (!sub->spec_text.empty()) {
      spec = batch::parse_sweep(sub->spec_text);
    } else {
      spec.base.deck = parse_deck(sub->deck_text);
      if (!sub->scheme.empty()) {
        spec.base.scheme = scheme_from_string(sub->scheme);
      }
      if (!sub->layout.empty()) {
        spec.base.layout = layout_from_string(sub->layout);
      }
      if (!sub->tally.empty()) {
        spec.base.tally_mode = tally_mode_from_string(sub->tally);
        spec.tally_mode_named = true;
      }
      if (!sub->schedule.empty()) {
        spec.base.schedule = schedule_from_string(sub->schedule);
      }
      spec.base.threads = sub->threads;
    }
    std::vector<Job> sweep_jobs = batch::expand_sweep(spec);
    if (!sub->label.empty() && sweep_jobs.size() == 1) {
      sweep_jobs.front().label = sub->label;
    }
    // Every job of the submission shares one cooperative cancel flag, so a
    // client `cancel` stops in-flight work at the next timestep boundary.
    for (Job& job : sweep_jobs) job.config.cancel = sub->cancel.get();
    {
      MutexLock lock(mutex_);
      sub->jobs_total = sweep_jobs.size();
    }

    auto push_event = [&](std::string label, std::string row_status,
                          double seconds, std::int32_t worker) {
      {
        MutexLock lock(mutex_);
        sub->events.push_back(Event{std::move(label), std::move(row_status),
                                    seconds, worker});
      }
      cv_.notify_all();
      wake_.signal();  // stream the event to any watcher promptly
    };

    auto row_base = [](const Job& job) {
      RemoteRow row;
      row.label = job.label;
      row.particles = job.config.deck.n_particles;
      row.scheme = to_string(job.config.scheme);
      row.layout = to_string(job.config.layout);
      return row;
    };

    if (!sub->domains.empty()) {
      // Mirror `neutral_batch --domains`: decks decompose one after
      // another (each solve is itself a fork-join over the pool), the
      // tally mode defaults to atomic unless the spec named one.
      const auto [rows_n, cols_n] = batch::parse_domain_grid(sub->domains);
      for (const Job& job : sweep_jobs) {
        RemoteRow row = row_base(job);
        if (sub->cancel->load()) {
          row.status = "cancelled";
          row.error = "cancelled";
          row.tally = to_string(job.config.tally_mode);
          rows.push_back(std::move(row));
          continue;
        }
        SimulationConfig config = job.config;
        if (!spec.tally_mode_named) config.tally_mode = TallyMode::kAtomic;
        row.tally = to_string(config.tally_mode);
        DomainOptions opt;
        opt.rows = rows_n;
        opt.cols = cols_n;
        opt.shards = std::max(sub->shards, 1);
        opt.group = job.id + 1;
        opt.threads_per_domain = engine_.options().threads_per_job > 0
                                     ? engine_.options().threads_per_job
                                     : 1;
        const DomainRunReport report = run_domains(engine_, config, opt);
        row.seconds = report.wall_seconds;
        if (report.ok && !report.merged.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
        } else if (report.ok) {
          row.status = "ok";
          row.events = report.merged.counters.total_events();
          row.checksum = report.merged.tally_checksum;
          row.population = report.merged.population;
        } else {
          row.status = report.timed_out ? "timed_out"
                       : sub->cancel->load() && is_cancel_abort(report.error)
                           ? "cancelled"
                           : "failed";
          row.error = report.error;
        }
        push_event(row.label, row.status, row.seconds, -1);
        rows.push_back(std::move(row));
      }
    } else if (sub->shards > 1) {
      // Mirror `neutral_batch --shards`: each sweep job becomes one
      // fork-join group, reduced back to a single row.
      const std::int32_t threads_per_shard =
          engine_.options().threads_per_job > 0
              ? engine_
                    .thread_budget(sweep_jobs.size() *
                                   static_cast<std::size_t>(sub->shards))
                    .second
              : 0;
      std::vector<Job> jobs;
      jobs.reserve(sweep_jobs.size() *
                   static_cast<std::size_t>(sub->shards));
      for (const Job& job : sweep_jobs) {
        ShardOptions opt;
        opt.shards = sub->shards;
        opt.threads_per_shard = threads_per_shard;
        opt.priority = job.priority;
        opt.group = job.id + 1;
        std::vector<Job> group = batch::make_shard_jobs(
            job.config, opt,
            job.id * static_cast<std::uint64_t>(sub->shards),
            job.label + "/");
        for (Job& shard_job : group) jobs.push_back(std::move(shard_job));
      }
      const BatchReport report = engine_.run(
          std::move(jobs), [&](const JobOutcome& outcome) {
            push_event(outcome.label,
                       outcome_status(outcome, sub->cancel->load()),
                       outcome.seconds, outcome.worker);
          });
      std::size_t next = 0;
      for (const Job& job : sweep_jobs) {
        const std::size_t group_size = std::min<std::size_t>(
            static_cast<std::size_t>(sub->shards),
            static_cast<std::size_t>(job.config.deck.n_particles));
        const GroupReduction group = batch::reduce_outcome_group(
            &report.jobs.at(next), group_size);
        next += group_size;
        RemoteRow row = row_base(job);
        // make_shard_jobs may promote the tally mode; report as executed.
        row.tally = to_string(report.jobs.at(next - 1).config.tally_mode);
        if (group.ok && !group.merged.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
          row.seconds = group.max_shard_seconds;
        } else if (group.ok) {
          row.status = "ok";
          row.events = group.merged.counters.total_events();
          row.seconds = group.max_shard_seconds;
          row.checksum = group.merged.tally_checksum;
          row.population = group.merged.population;
        } else {
          row.status = group.timed_out ? "timed_out"
                       : sub->cancel->load() && is_cancel_abort(group.error)
                           ? "cancelled"
                           : "failed";
          row.error = group.error;
        }
        rows.push_back(std::move(row));
      }
    } else {
      const BatchReport report = engine_.run(
          std::move(sweep_jobs), [&](const JobOutcome& outcome) {
            push_event(outcome.label,
                       outcome_status(outcome, sub->cancel->load()),
                       outcome.seconds, outcome.worker);
          });
      for (const JobOutcome& outcome : report.jobs) {
        RemoteRow row;
        row.label = outcome.label;
        row.particles = outcome.config.deck.n_particles;
        row.tally = to_string(outcome.config.tally_mode);
        row.scheme = to_string(outcome.config.scheme);
        row.layout = to_string(outcome.config.layout);
        row.events = outcome.result.counters.total_events();
        row.seconds = outcome.seconds;
        row.checksum = outcome.result.tally_checksum;
        row.population = outcome.result.population;
        row.status = outcome_status(outcome, sub->cancel->load());
        row.error = outcome.error;
        if (outcome.ok && !outcome.result.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
        }
        rows.push_back(std::move(row));
      }
    }

    for (const RemoteRow& row : rows) {
      if (row.status != "ok") {
        status = row.status;
        error = row.label + ": " + row.error;
        break;
      }
    }
  } catch (const std::exception& e) {
    status = "failed";
    error = e.what();
  }

  {
    MutexLock lock(mutex_);
    sub->rows = std::move(rows);
    sub->status = status;
    sub->error = error;
  }
}

}  // namespace neutral::net
