#include "net/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "batch/domain.h"
#include "batch/shard.h"
#include "batch/sweep.h"
#include "io/deck_io.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "util/error.h"

namespace neutral::net {

using batch::BatchReport;
using batch::DomainOptions;
using batch::DomainRunReport;
using batch::GroupReduction;
using batch::Job;
using batch::JobOutcome;
using batch::ShardOptions;
using batch::SweepSpec;

namespace {

std::string format_double(double v, const char* fmt = "%.17g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

const char* state_name(bool queued, bool running) {
  return queued ? "queued" : running ? "running" : "done";
}

Fields error_reply(const std::string& message) {
  return Fields{{"ok", "0"}, {"error", message}};
}

/// Did this error text come from the cooperative cancel check
/// (Simulation::check_interrupt)?  Used to tell a job the CLIENT stopped
/// apart from one that genuinely failed before the cancel arrived.
bool is_cancel_abort(const std::string& error) {
  return error.find("run cancelled") != std::string::npos;
}

/// Map one engine outcome to the protocol's row status vocabulary.  The
/// cancel flag alone never relabels a row: a job that failed on its own
/// before the client's cancel arrived stays "failed".
std::string outcome_status(const JobOutcome& outcome, bool cancel_requested) {
  if (outcome.ok) return "ok";
  if (outcome.timed_out) return "timed_out";
  if (outcome.cancelled) return "cancelled";
  if (cancel_requested && is_cancel_abort(outcome.error)) return "cancelled";
  return "failed";
}

/// Point the engine at the server's registry/trace.  The daemon always
/// meters itself — the cost is nullptr-guarded counters, and `metrics` is
/// how operators see a headless process at all.
batch::EngineOptions instrumented(batch::EngineOptions engine,
                                  obs::MetricsRegistry* metrics,
                                  obs::TraceLog* trace) {
  engine.metrics = metrics;
  engine.trace = trace;
  return engine;
}

}  // namespace

NeutralServer::NeutralServer(ServerOptions options)
    : options_(std::move(options)),
      trace_(options_.trace_path.empty()
                 ? nullptr
                 : std::make_unique<obs::TraceLog>(options_.trace_path)),
      engine_(instrumented(options_.engine, &metrics_, trace_.get())) {}

NeutralServer::~NeutralServer() {
  request_shutdown();
  if (exporter_ != nullptr) exporter_->stop();
  if (executor_.joinable()) executor_.join();
}

std::uint16_t NeutralServer::start() {
  NEUTRAL_REQUIRE(listener_ == nullptr, "server already started");
  listener_ =
      std::make_unique<TcpListener>(options_.host, options_.port);
  port_ = listener_->port();
  if (options_.metrics_port != 0) {
    exporter_ = std::make_unique<obs::MetricsExporter>(
        &metrics_, options_.host, options_.metrics_port);
    metrics_port_ = exporter_->start();
    log("metrics on http://" + options_.host + ":" +
        std::to_string(metrics_port_) + "/metrics");
  }
  executor_ = std::thread(&NeutralServer::executor_loop, this);
  return port_;
}

void NeutralServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void NeutralServer::log(const std::string& line) {
  if (!options_.verbose) return;
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

void NeutralServer::serve() {
  NEUTRAL_REQUIRE(listener_ != nullptr, "call start() before serve()");
  // The accept loop must NEVER skip the drain below — detached handler
  // threads hold `this` — so a hard listener error converts into a
  // shutdown instead of propagating past the teardown.
  try {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
      }
      // The timeout is the shutdown latency bound: every blocking wait in
      // the daemon polls `stopping_` at least this often.
      std::optional<TcpStream> stream =
          listener_->accept(std::chrono::milliseconds(200));
      if (!stream.has_value()) continue;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
        ++active_connections_;
      }
      try {
        std::thread(&NeutralServer::handle_connection, this,
                    std::move(*stream))
            .detach();
      } catch (...) {
        // Thread exhaustion: undo the count the handler would have
        // decremented, or the teardown wait below never reaches zero.
        std::lock_guard<std::mutex> lock(mutex_);
        --active_connections_;
        throw;
      }
    }
  } catch (const std::exception& e) {
    log(std::string("accept loop failed: ") + e.what());
    request_shutdown();
  }
  listener_->close();
  // Handlers poll the stop flag on their read timeout; wait them out so no
  // detached thread outlives the server object.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return active_connections_ == 0; });
  lock.unlock();
  if (executor_.joinable()) executor_.join();
  if (exporter_ != nullptr) exporter_->stop();
  log("neutrald stopped");
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

void NeutralServer::handle_connection(TcpStream stream) {
  stream.set_read_timeout(std::chrono::milliseconds(250));
  // A peer that stops reading must not pin this thread in send() forever
  // (it would also pin shutdown, which waits for every handler to exit).
  stream.set_write_timeout(std::chrono::seconds(10));
  try {
    std::string line;
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) break;
      }
      ReadStatus status;
      try {
        status = stream.read_line(line, options_.max_frame_bytes);
      } catch (const Error& e) {
        // Oversized or truncated frame: report, then drop the connection —
        // the byte stream can no longer be re-framed safely.
        stream.write_all(encode_frame(error_reply(e.what())));
        break;
      }
      if (status == ReadStatus::kTimedOut) continue;
      if (status == ReadStatus::kEof) break;
      if (line.empty()) continue;  // tolerate blank keep-alive lines
      Fields request;
      try {
        request = decode_frame(line);
      } catch (const Error& e) {
        stream.write_all(encode_frame(error_reply(e.what())));
        break;  // desynced stream: close
      }
      if (!dispatch(stream, request)) break;
    }
  } catch (const std::exception&) {
    // Socket error (peer vanished mid-write): nothing to report to.
  }
  {
    // Notify WHILE holding the lock: serve()'s teardown wait destroys the
    // server right after it observes zero, so the notify must not touch
    // members after the count is published.
    std::lock_guard<std::mutex> lock(mutex_);
    --active_connections_;
    cv_.notify_all();
  }
}

bool NeutralServer::dispatch(TcpStream& stream, const Fields& request) {
  // Every well-framed request gets a reply, whatever goes wrong inside —
  // a missing "op", a bad knob, or an unexpected exception all answer
  // ok=0 and keep the connection; only transport errors drop it (thrown
  // by write_all and handled by the connection loop).
  Fields reply;
  bool keep = true;
  try {
    const std::string& op = require_field(request, "op");
    if (op == "result" || op == "watch") {
      return send_result(stream, request, /*stream_events=*/op == "watch");
    }
    if (op == "ping") {
      reply = Fields{{"ok", "1"}, {"server", "neutrald"}};
    } else if (op == "submit") {
      reply = handle_submit(request);
    } else if (op == "status") {
      reply = handle_status(request);
    } else if (op == "cancel") {
      reply = handle_cancel(request);
    } else if (op == "metrics") {
      reply = handle_metrics();
    } else if (op == "shutdown") {
      reply = Fields{{"ok", "1"}};
      keep = false;
      request_shutdown();
    } else {
      reply = error_reply("unknown op '" + op + "'");
    }
  } catch (const std::exception& e) {
    reply = error_reply(e.what());
  }
  stream.write_all(encode_frame(reply));
  return keep;
}

Fields NeutralServer::handle_submit(const Fields& request) {
  auto sub = std::make_shared<Submission>();
  const auto deck_it = request.find("deck");
  const auto spec_it = request.find("spec");
  NEUTRAL_REQUIRE((deck_it != request.end()) != (spec_it != request.end()),
                  "submit needs exactly one of 'deck' or 'spec'");
  const auto copy = [&](const char* key, std::string& into) {
    const auto it = request.find(key);
    if (it != request.end()) into = it->second;
  };
  copy("label", sub->label);
  copy("scheme", sub->scheme);
  copy("layout", sub->layout);
  copy("tally", sub->tally);
  copy("schedule", sub->schedule);
  copy("domains", sub->domains);
  sub->threads = static_cast<std::int32_t>(field_int(request, "threads", 0));
  sub->shards = static_cast<std::int32_t>(field_int(request, "shards", 0));

  // Validate everything parseable up front so the client hears about a
  // bad deck/spec/knob now, not from a failed row later.  The executor
  // re-parses from text; decks are tiny and this keeps one code path.
  std::size_t jobs = 1;
  if (deck_it != request.end()) {
    sub->deck_text = deck_it->second;
    (void)parse_deck(sub->deck_text);
  } else {
    sub->spec_text = spec_it->second;
    jobs = batch::sweep_size(batch::parse_sweep(sub->spec_text));
    // A sweep spec names its own base knobs; per-request overrides would
    // be silently ignored, so refuse them (shards/domains are execution
    // options and still apply).
    NEUTRAL_REQUIRE(sub->scheme.empty() && sub->layout.empty() &&
                        sub->tally.empty() && sub->schedule.empty() &&
                        sub->threads == 0,
                    "spec submissions carry scheme/layout/tally/schedule/"
                    "threads inside the spec text, not as request fields");
  }
  if (!sub->scheme.empty()) (void)scheme_from_string(sub->scheme);
  if (!sub->layout.empty()) (void)layout_from_string(sub->layout);
  if (!sub->tally.empty()) (void)tally_mode_from_string(sub->tally);
  if (!sub->schedule.empty()) (void)schedule_from_string(sub->schedule);
  if (!sub->domains.empty()) (void)batch::parse_domain_grid(sub->domains);
  NEUTRAL_REQUIRE(sub->shards >= 0, "shards must be >= 0");

  {
    std::lock_guard<std::mutex> lock(mutex_);
    NEUTRAL_REQUIRE(!stopping_, "server is shutting down");
    std::size_t active = pending_.size();
    for (const auto& [id, existing] : submissions_) {
      active += existing->state == State::kRunning ? 1 : 0;
    }
    NEUTRAL_REQUIRE(active < options_.max_pending_submissions,
                    "submission queue full (" +
                        std::to_string(options_.max_pending_submissions) +
                        " in flight)");
    sub->id = next_id_++;
    submissions_.emplace(sub->id, sub);
    pending_.push_back(sub);
    metrics_
        .counter("neutral_submissions_total",
                 "submissions accepted by the daemon")
        .add();
    note_submissions_locked();
  }
  cv_.notify_all();
  log("submit #" + std::to_string(sub->id) + " (" +
      (sub->deck_text.empty() ? "spec" : "deck") + ", " +
      std::to_string(jobs) + " jobs)");
  return Fields{{"ok", "1"},
                {"id", std::to_string(sub->id)},
                {"jobs", std::to_string(jobs)}};
}

Fields NeutralServer::handle_metrics() {
  Fields reply{{"ok", "1"}};
  for (const auto& [name, value] : metrics_.snapshot().flat()) {
    reply.emplace(name, value);
  }
  return reply;
}

void NeutralServer::note_submissions_locked() {
  std::size_t active = pending_.size();
  for (const auto& [id, sub] : submissions_) {
    (void)id;
    active += sub->state == State::kRunning ? 1 : 0;
  }
  metrics_
      .gauge("neutral_submissions_pending",
             "submissions queued or running")
      .set(static_cast<std::int64_t>(active));
}

Fields NeutralServer::handle_status(const Fields& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto id_it = request.find("id");
  if (id_it == request.end()) {
    std::size_t queued = 0, running = 0, done = 0;
    for (const auto& [id, sub] : submissions_) {
      queued += sub->state == State::kQueued ? 1 : 0;
      running += sub->state == State::kRunning ? 1 : 0;
      done += sub->state == State::kDone ? 1 : 0;
    }
    const batch::WorldCache::Stats cache = engine_.cache().stats();
    return Fields{{"ok", "1"},
                  {"queued", std::to_string(queued)},
                  {"running", std::to_string(running)},
                  {"done", std::to_string(done)},
                  {"cache_hits", std::to_string(cache.hits)},
                  {"cache_misses", std::to_string(cache.misses)},
                  {"cache_evictions", std::to_string(cache.evictions)},
                  {"cache_resident_worlds",
                   std::to_string(cache.resident_worlds)},
                  {"cache_resident_bytes",
                   std::to_string(cache.resident_bytes)}};
  }
  const std::uint64_t id =
      static_cast<std::uint64_t>(field_int(request, "id", 0));
  const auto it = submissions_.find(id);
  NEUTRAL_REQUIRE(it != submissions_.end(),
                  "unknown submission id " + std::to_string(id));
  const Submission& sub = *it->second;
  Fields reply{{"ok", "1"},
               {"id", std::to_string(id)},
               {"state", state_name(sub.state == State::kQueued,
                                    sub.state == State::kRunning)},
               {"jobs", std::to_string(sub.jobs_total)},
               {"events", std::to_string(sub.events.size())}};
  if (sub.state == State::kDone) {
    reply["status"] = sub.status;
    if (!sub.error.empty()) reply["error"] = sub.error;
  }
  return reply;
}

Fields NeutralServer::handle_cancel(const Fields& request) {
  const std::uint64_t id =
      static_cast<std::uint64_t>(field_int(request, "id", 0));
  const char* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = submissions_.find(id);
    NEUTRAL_REQUIRE(it != submissions_.end(),
                    "unknown submission id " + std::to_string(id));
    Submission& sub = *it->second;
    if (sub.state != State::kDone) sub.cancel->store(true);
    state = state_name(sub.state == State::kQueued,
                       sub.state == State::kRunning);
  }
  cv_.notify_all();
  log("cancel #" + std::to_string(id));
  return Fields{
      {"ok", "1"}, {"id", std::to_string(id)}, {"state", state}};
}

bool NeutralServer::send_result(TcpStream& stream, const Fields& request,
                                bool stream_events) {
  std::shared_ptr<Submission> sub;
  try {
    const std::uint64_t id =
        static_cast<std::uint64_t>(field_int(request, "id", 0));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = submissions_.find(id);
    NEUTRAL_REQUIRE(it != submissions_.end(),
                    "unknown submission id " + std::to_string(id));
    sub = it->second;
  } catch (const Error& e) {
    stream.write_all(encode_frame(error_reply(e.what())));
    return true;
  }

  const std::int64_t timeout_ms = field_int(request, "timeout_ms", 0);
  const auto wait_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);

  std::size_t next_event = 0;
  while (true) {
    std::vector<Event> fresh;
    bool done = false;
    bool stopped = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto ready = [&] {
        return stopping_ || sub->state == State::kDone ||
               (stream_events && sub->events.size() > next_event);
      };
      if (timeout_ms > 0) {
        if (!cv_.wait_until(lock, wait_deadline, ready)) {
          lock.unlock();
          stream.write_all(encode_frame(error_reply(
              "pending: submission " + std::to_string(sub->id) +
              " not finished within timeout_ms")));
          return true;
        }
      } else {
        cv_.wait(lock, ready);
      }
      if (stream_events) {
        fresh.assign(sub->events.begin() +
                         static_cast<std::ptrdiff_t>(next_event),
                     sub->events.end());
        next_event = sub->events.size();
      }
      done = sub->state == State::kDone;
      stopped = stopping_ && !done;
    }
    for (const Event& e : fresh) {
      stream.write_all(encode_frame(
          Fields{{"event", "job"},
                 {"label", e.label},
                 {"status", e.status},
                 {"seconds", format_double(e.seconds, "%.6g")},
                 {"worker", std::to_string(e.worker)}}));
    }
    if (done) break;
    if (stopped) {
      stream.write_all(
          encode_frame(error_reply("server is shutting down")));
      return false;
    }
  }

  // Final frames: header, then one row frame per result row.
  std::vector<RemoteRow> rows;
  Fields header{{"ok", "1"}, {"id", std::to_string(sub->id)}};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows = sub->rows;
    header["status"] = sub->status;
    if (!sub->error.empty()) header["error"] = sub->error;
  }
  header["rows"] = std::to_string(rows.size());
  stream.write_all(encode_frame(header));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RemoteRow& r = rows[i];
    Fields frame{{"row", std::to_string(i)},
                 {"label", r.label},
                 {"particles", std::to_string(r.particles)},
                 {"tally", r.tally},
                 {"scheme", r.scheme},
                 {"layout", r.layout},
                 {"events", std::to_string(r.events)},
                 {"seconds", format_double(r.seconds, "%.6g")},
                 {"checksum", format_double(r.checksum)},
                 {"population", std::to_string(r.population)},
                 {"status", r.status}};
    if (!r.error.empty()) frame["error"] = r.error;
    stream.write_all(encode_frame(frame));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void NeutralServer::evict_done_locked() {
  std::size_t done = 0;
  for (const auto& [id, sub] : submissions_) {
    done += sub->state == State::kDone ? 1 : 0;
  }
  // Ids are monotonic and std::map iterates in id order, so the first
  // finished entries seen are the oldest results.
  for (auto it = submissions_.begin();
       done > options_.max_retained_results &&
       it != submissions_.end();) {
    if (it->second->state == State::kDone) {
      it = submissions_.erase(it);
      --done;
    } else {
      ++it;
    }
  }
}

void NeutralServer::executor_loop() {
  while (true) {
    std::shared_ptr<Submission> sub;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) break;  // stopping and drained
      sub = pending_.front();
      pending_.pop_front();
      if (stopping_ || sub->cancel->load()) {
        sub->state = State::kDone;
        sub->status = "cancelled";
        sub->error = stopping_ ? "server shutting down"
                               : "cancelled before it started";
        evict_done_locked();
        note_submissions_locked();
        cv_.notify_all();
        continue;
      }
      sub->state = State::kRunning;
    }
    cv_.notify_all();
    execute(sub);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sub->state = State::kDone;
      evict_done_locked();
      note_submissions_locked();
    }
    cv_.notify_all();
    log("done #" + std::to_string(sub->id) + " (" + sub->status + ")");
  }
}

void NeutralServer::execute(const std::shared_ptr<Submission>& sub) {
  std::vector<RemoteRow> rows;
  std::string status = "ok";
  std::string error;
  try {
    SweepSpec spec;
    if (!sub->spec_text.empty()) {
      spec = batch::parse_sweep(sub->spec_text);
    } else {
      spec.base.deck = parse_deck(sub->deck_text);
      if (!sub->scheme.empty()) {
        spec.base.scheme = scheme_from_string(sub->scheme);
      }
      if (!sub->layout.empty()) {
        spec.base.layout = layout_from_string(sub->layout);
      }
      if (!sub->tally.empty()) {
        spec.base.tally_mode = tally_mode_from_string(sub->tally);
        spec.tally_mode_named = true;
      }
      if (!sub->schedule.empty()) {
        spec.base.schedule = schedule_from_string(sub->schedule);
      }
      spec.base.threads = sub->threads;
    }
    std::vector<Job> sweep_jobs = batch::expand_sweep(spec);
    if (!sub->label.empty() && sweep_jobs.size() == 1) {
      sweep_jobs.front().label = sub->label;
    }
    // Every job of the submission shares one cooperative cancel flag, so a
    // client `cancel` stops in-flight work at the next timestep boundary.
    for (Job& job : sweep_jobs) job.config.cancel = sub->cancel.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sub->jobs_total = sweep_jobs.size();
    }

    auto push_event = [&](std::string label, std::string row_status,
                          double seconds, std::int32_t worker) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        sub->events.push_back(Event{std::move(label), std::move(row_status),
                                    seconds, worker});
      }
      cv_.notify_all();
    };

    auto row_base = [](const Job& job) {
      RemoteRow row;
      row.label = job.label;
      row.particles = job.config.deck.n_particles;
      row.scheme = to_string(job.config.scheme);
      row.layout = to_string(job.config.layout);
      return row;
    };

    if (!sub->domains.empty()) {
      // Mirror `neutral_batch --domains`: decks decompose one after
      // another (each solve is itself a fork-join over the pool), the
      // tally mode defaults to atomic unless the spec named one.
      const auto [rows_n, cols_n] = batch::parse_domain_grid(sub->domains);
      for (const Job& job : sweep_jobs) {
        RemoteRow row = row_base(job);
        if (sub->cancel->load()) {
          row.status = "cancelled";
          row.error = "cancelled";
          row.tally = to_string(job.config.tally_mode);
          rows.push_back(std::move(row));
          continue;
        }
        SimulationConfig config = job.config;
        if (!spec.tally_mode_named) config.tally_mode = TallyMode::kAtomic;
        row.tally = to_string(config.tally_mode);
        DomainOptions opt;
        opt.rows = rows_n;
        opt.cols = cols_n;
        opt.shards = std::max(sub->shards, 1);
        opt.group = job.id + 1;
        opt.threads_per_domain = engine_.options().threads_per_job > 0
                                     ? engine_.options().threads_per_job
                                     : 1;
        const DomainRunReport report = run_domains(engine_, config, opt);
        row.seconds = report.wall_seconds;
        if (report.ok && !report.merged.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
        } else if (report.ok) {
          row.status = "ok";
          row.events = report.merged.counters.total_events();
          row.checksum = report.merged.tally_checksum;
          row.population = report.merged.population;
        } else {
          row.status = report.timed_out ? "timed_out"
                       : sub->cancel->load() && is_cancel_abort(report.error)
                           ? "cancelled"
                           : "failed";
          row.error = report.error;
        }
        push_event(row.label, row.status, row.seconds, -1);
        rows.push_back(std::move(row));
      }
    } else if (sub->shards > 1) {
      // Mirror `neutral_batch --shards`: each sweep job becomes one
      // fork-join group, reduced back to a single row.
      const std::int32_t threads_per_shard =
          engine_.options().threads_per_job > 0
              ? engine_
                    .thread_budget(sweep_jobs.size() *
                                   static_cast<std::size_t>(sub->shards))
                    .second
              : 0;
      std::vector<Job> jobs;
      jobs.reserve(sweep_jobs.size() *
                   static_cast<std::size_t>(sub->shards));
      for (const Job& job : sweep_jobs) {
        ShardOptions opt;
        opt.shards = sub->shards;
        opt.threads_per_shard = threads_per_shard;
        opt.priority = job.priority;
        opt.group = job.id + 1;
        std::vector<Job> group = batch::make_shard_jobs(
            job.config, opt,
            job.id * static_cast<std::uint64_t>(sub->shards),
            job.label + "/");
        for (Job& shard_job : group) jobs.push_back(std::move(shard_job));
      }
      const BatchReport report = engine_.run(
          std::move(jobs), [&](const JobOutcome& outcome) {
            push_event(outcome.label,
                       outcome_status(outcome, sub->cancel->load()),
                       outcome.seconds, outcome.worker);
          });
      std::size_t next = 0;
      for (const Job& job : sweep_jobs) {
        const std::size_t group_size = std::min<std::size_t>(
            static_cast<std::size_t>(sub->shards),
            static_cast<std::size_t>(job.config.deck.n_particles));
        const GroupReduction group = batch::reduce_outcome_group(
            &report.jobs.at(next), group_size);
        next += group_size;
        RemoteRow row = row_base(job);
        // make_shard_jobs may promote the tally mode; report as executed.
        row.tally = to_string(report.jobs.at(next - 1).config.tally_mode);
        if (group.ok && !group.merged.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
          row.seconds = group.max_shard_seconds;
        } else if (group.ok) {
          row.status = "ok";
          row.events = group.merged.counters.total_events();
          row.seconds = group.max_shard_seconds;
          row.checksum = group.merged.tally_checksum;
          row.population = group.merged.population;
        } else {
          row.status = group.timed_out ? "timed_out"
                       : sub->cancel->load() && is_cancel_abort(group.error)
                           ? "cancelled"
                           : "failed";
          row.error = group.error;
        }
        rows.push_back(std::move(row));
      }
    } else {
      const BatchReport report = engine_.run(
          std::move(sweep_jobs), [&](const JobOutcome& outcome) {
            push_event(outcome.label,
                       outcome_status(outcome, sub->cancel->load()),
                       outcome.seconds, outcome.worker);
          });
      for (const JobOutcome& outcome : report.jobs) {
        RemoteRow row;
        row.label = outcome.label;
        row.particles = outcome.config.deck.n_particles;
        row.tally = to_string(outcome.config.tally_mode);
        row.scheme = to_string(outcome.config.scheme);
        row.layout = to_string(outcome.config.layout);
        row.events = outcome.result.counters.total_events();
        row.seconds = outcome.seconds;
        row.checksum = outcome.result.tally_checksum;
        row.population = outcome.result.population;
        row.status = outcome_status(outcome, sub->cancel->load());
        row.error = outcome.error;
        if (outcome.ok && !outcome.result.budget.conserved(1e-9)) {
          row.status = "failed";
          row.error = "energy not conserved";
        }
        rows.push_back(std::move(row));
      }
    }

    for (const RemoteRow& row : rows) {
      if (row.status != "ok") {
        status = row.status;
        error = row.label + ": " + row.error;
        break;
      }
    }
  } catch (const std::exception& e) {
    status = "failed";
    error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    sub->rows = std::move(rows);
    sub->status = status;
    sub->error = error;
  }
}

}  // namespace neutral::net
