// Thin RAII wrappers over POSIX TCP sockets.
//
// The blocking TcpStream/TcpListener pair serves the *client* side
// (NeutralClient, tests, the metrics exporter), where a thread per
// conversation is the natural shape: reads carry timeouts so loops can
// poll a stop flag instead of wedging in a syscall, and writes use
// MSG_NOSIGNAL so a peer that vanished mid-reply surfaces as an Error
// instead of killing the process with SIGPIPE.
//
// neutrald's serving path is different: it runs a non-blocking epoll event
// loop (net/poller.h, net/server.cpp) over raw fds it owns, so the only
// extra affordances it needs from here are the listener's fd() and the
// set_nonblocking() helper below.
//
// Loopback and real interfaces look identical from here; tests bind
// 127.0.0.1 port 0 and read the ephemeral port back from the listener.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace neutral::net {

/// Outcome of a buffered line read.
enum class ReadStatus : std::uint8_t {
  kLine,     ///< one full line delivered (terminator stripped)
  kEof,      ///< peer closed with no buffered partial line
  kTimedOut  ///< read timeout expired first (set_read_timeout)
};

/// One connected TCP stream (move-only; closes on destruction).
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  TcpStream(TcpStream&& o) noexcept;
  TcpStream& operator=(TcpStream&& o) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;
  ~TcpStream();

  /// Blocking connect to host:port (numeric or resolvable name); throws
  /// neutral::Error on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Bound any single blocking read; zero restores "wait forever".
  void set_read_timeout(std::chrono::milliseconds timeout);

  /// Bound any single blocking write; zero restores "wait forever".  A
  /// server sets this so a peer that stops reading cannot pin a handler
  /// thread in send() forever (the expired write throws Error).
  void set_write_timeout(std::chrono::milliseconds timeout);

  /// Read up to the next '\n' (stripped, along with a preceding '\r') into
  /// `line`.  Throws Error on socket errors or when a line exceeds
  /// `max_bytes` (an unframed or hostile peer).
  ReadStatus read_line(std::string& line, std::size_t max_bytes);

  /// Write the whole buffer; throws Error on failure (SIGPIPE suppressed).
  void write_all(const std::string& data);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last delivered '\n'
};

/// A listening TCP socket (move-only; closes on destruction).
class TcpListener {
 public:
  /// Bind + listen on host:port; port 0 picks an ephemeral port (read it
  /// back with port()).  SO_REUSEADDR is set so restarts don't trip over
  /// TIME_WAIT.  Throws neutral::Error on failure.
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 16);
  TcpListener(TcpListener&& o) noexcept;
  TcpListener& operator=(TcpListener&&) = delete;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// The bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening fd, for event-loop registration (epoll).  The listener
  /// keeps ownership; callers must not close it.
  [[nodiscard]] int fd() const { return fd_; }

  /// Wait up to `timeout` for a connection; nullopt on timeout — the
  /// accept loop's chance to check its stop flag.  Throws on socket
  /// errors.
  std::optional<TcpStream> accept(std::chrono::milliseconds timeout);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Put `fd` into non-blocking mode (O_NONBLOCK); throws Error on failure.
void set_nonblocking(int fd);

}  // namespace neutral::net
