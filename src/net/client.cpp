#include "net/client.h"

#include <utility>

#include "util/error.h"

namespace neutral::net {

NeutralClient::NeutralClient(const std::string& host, std::uint16_t port)
    : stream_(TcpStream::connect(host, port)),
      max_frame_bytes_(ServerOptions{}.max_frame_bytes) {}

std::pair<std::string, std::uint16_t> NeutralClient::parse_endpoint(
    const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  NEUTRAL_REQUIRE(colon != std::string::npos && colon > 0 &&
                      colon + 1 < endpoint.size(),
                  "bad endpoint '" + endpoint +
                      "' (expected host:port, e.g. 127.0.0.1:4817)");
  const std::string host = endpoint.substr(0, colon);
  long port = 0;
  try {
    std::size_t used = 0;
    port = std::stol(endpoint.substr(colon + 1), &used);
    NEUTRAL_REQUIRE(colon + 1 + used == endpoint.size() && port > 0 &&
                        port <= 65535,
                    "bad port in '" + endpoint + "'");
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("bad port in '" + endpoint + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

Fields NeutralClient::read_frame() {
  std::string line;
  const ReadStatus status = stream_.read_line(line, max_frame_bytes_);
  NEUTRAL_REQUIRE(status == ReadStatus::kLine,
                  "connection closed by server");
  return decode_frame(line);
}

Fields NeutralClient::call(const Fields& request) {
  stream_.write_all(encode_frame(request));
  Fields reply = read_frame();
  if (require_field(reply, "ok") != "1") {
    throw Error("server error: " + require_field(reply, "error"));
  }
  return reply;
}

void NeutralClient::ping() { (void)call(Fields{{"op", "ping"}}); }

std::uint64_t NeutralClient::submit(const SubmitRequest& request) {
  NEUTRAL_REQUIRE(request.deck_text.empty() != request.spec_text.empty(),
                  "submit needs exactly one of deck_text or spec_text");
  Fields fields{{"op", "submit"}};
  if (!request.deck_text.empty()) fields["deck"] = request.deck_text;
  if (!request.spec_text.empty()) fields["spec"] = request.spec_text;
  const auto put = [&](const char* key, const std::string& value) {
    if (!value.empty()) fields[key] = value;
  };
  put("label", request.label);
  put("scheme", request.scheme);
  put("layout", request.layout);
  put("tally", request.tally);
  put("schedule", request.schedule);
  put("domains", request.domains);
  if (request.threads > 0) {
    fields["threads"] = std::to_string(request.threads);
  }
  if (request.shards > 0) fields["shards"] = std::to_string(request.shards);
  const Fields reply = call(fields);
  return static_cast<std::uint64_t>(field_int(reply, "id", 0));
}

RemoteResult NeutralClient::read_result_frames(
    const std::function<void(const RemoteEvent&)>& on_event) {
  // Event frames stream first (watch op); the header frame carries "rows"
  // and is followed by exactly that many row frames.
  Fields frame = read_frame();
  while (frame.count("event") != 0) {
    if (on_event) {
      RemoteEvent event;
      event.label = frame["label"];
      event.status = frame["status"];
      event.seconds = field_double(frame, "seconds", 0.0);
      event.worker = static_cast<std::int32_t>(
          field_int_signed(frame, "worker", -1));
      on_event(event);
    }
    frame = read_frame();
  }
  if (require_field(frame, "ok") != "1") {
    throw Error("server error: " + require_field(frame, "error"));
  }
  return read_rows_after_header(std::move(frame));
}

RemoteResult NeutralClient::read_rows_after_header(Fields header) {
  RemoteResult result;
  result.id = static_cast<std::uint64_t>(field_int(header, "id", 0));
  result.status = require_field(header, "status");
  const auto error_it = header.find("error");
  if (error_it != header.end()) result.error = error_it->second;
  const std::int64_t rows = field_int(header, "rows", 0);
  result.rows.reserve(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    Fields row_frame = read_frame();
    RemoteRow row;
    row.label = row_frame["label"];
    row.particles = field_int(row_frame, "particles", 0);
    row.tally = row_frame["tally"];
    row.scheme = row_frame["scheme"];
    row.layout = row_frame["layout"];
    row.events =
        static_cast<std::uint64_t>(field_int(row_frame, "events", 0));
    row.seconds = field_double(row_frame, "seconds", 0.0);
    row.checksum = field_double(row_frame, "checksum", 0.0);
    row.population = field_int(row_frame, "population", 0);
    row.status = require_field(row_frame, "status");
    const auto row_error = row_frame.find("error");
    if (row_error != row_frame.end()) row.error = row_error->second;
    result.rows.push_back(std::move(row));
  }
  return result;
}

RemoteResult NeutralClient::wait(
    std::uint64_t id,
    const std::function<void(const RemoteEvent&)>& on_event) {
  stream_.write_all(encode_frame(
      Fields{{"op", on_event ? "watch" : "result"},
             {"id", std::to_string(id)}}));
  return read_result_frames(on_event);
}

std::optional<RemoteResult> NeutralClient::try_result(
    std::uint64_t id, std::int64_t timeout_ms) {
  stream_.write_all(
      encode_frame(Fields{{"op", "result"},
                          {"id", std::to_string(id)},
                          {"timeout_ms", std::to_string(timeout_ms)}}));
  Fields frame = read_frame();
  if (require_field(frame, "ok") != "1") {
    const std::string& error = require_field(frame, "error");
    if (error.rfind("pending:", 0) == 0) return std::nullopt;
    throw Error("server error: " + error);
  }
  return read_rows_after_header(std::move(frame));
}

Fields NeutralClient::status(std::optional<std::uint64_t> id) {
  Fields request{{"op", "status"}};
  if (id.has_value()) request["id"] = std::to_string(*id);
  return call(request);
}

Fields NeutralClient::metrics() { return call(Fields{{"op", "metrics"}}); }

void NeutralClient::cancel(std::uint64_t id) {
  (void)call(Fields{{"op", "cancel"}, {"id", std::to_string(id)}});
}

void NeutralClient::shutdown_server() {
  (void)call(Fields{{"op", "shutdown"}});
}

}  // namespace neutral::net
