#include "net/poller.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "util/errno_string.h"
#include "util/error.h"

namespace neutral::net {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + errno_string(errno));
}

std::uint32_t interest_mask(bool read, bool write) {
  std::uint32_t events = 0;
  if (read) events |= EPOLLIN;
  if (write) events |= EPOLLOUT;
  return events;
}

}  // namespace

Poller::Poller() {
  fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd_ < 0) fail_errno("epoll_create1 failed");
}

Poller::~Poller() {
  if (fd_ >= 0) ::close(fd_);
}

void Poller::add(int fd, bool read, bool write) {
  ::epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(ADD) failed");
  }
}

void Poller::modify(int fd, bool read, bool write) {
  ::epoll_event ev{};
  ev.events = interest_mask(read, write);
  ev.data.fd = fd;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(MOD) failed");
  }
}

void Poller::remove(int fd) {
  if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    fail_errno("epoll_ctl(DEL) failed");
  }
}

std::size_t Poller::wait(std::vector<PollEvent>& out, int timeout_ms) {
  ::epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail_errno("epoll_wait failed");
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PollEvent ev;
    ev.fd = events[i].data.fd;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(ev);
  }
  return static_cast<std::size_t>(n);
}

WakeupFd::WakeupFd() {
  fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd_ < 0) fail_errno("eventfd failed");
}

WakeupFd::~WakeupFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeupFd::signal() {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the loop is already due to
  // wake, so dropping the increment is exactly the coalescing we want.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void WakeupFd::drain() {
  std::uint64_t value = 0;
  while (::read(fd_, &value, sizeof(value)) > 0) {
  }
}

}  // namespace neutral::net
