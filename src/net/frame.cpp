#include "net/frame.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace neutral::net {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\r' ||
            text_[at_] == '\n')) {
      ++at_;
    }
  }

  [[nodiscard]] bool done() const { return at_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    NEUTRAL_REQUIRE(!done(), "malformed frame: truncated");
    return text_[at_];
  }

  void expect(char c) {
    NEUTRAL_REQUIRE(!done() && text_[at_] == c,
                    std::string("malformed frame: expected '") + c + "'");
    ++at_;
  }

  /// Parse a JSON string literal (cursor on the opening quote).
  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      NEUTRAL_REQUIRE(!done(), "malformed frame: unterminated string");
      const char c = text_[at_++];
      if (c == '"') return out;
      NEUTRAL_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                      "malformed frame: raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      NEUTRAL_REQUIRE(!done(), "malformed frame: truncated escape");
      const char e = text_[at_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          NEUTRAL_REQUIRE(at_ + 4 <= text_.size(),
                          "malformed frame: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              NEUTRAL_REQUIRE(false, "malformed frame: bad \\u escape digit");
          }
          NEUTRAL_REQUIRE(code < 0xD800 || code > 0xDFFF,
                          "malformed frame: surrogate escapes unsupported");
          // Encode the code point as UTF-8 (payloads are byte strings; the
          // encoder only ever emits \u00xx control bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          NEUTRAL_REQUIRE(false, std::string("malformed frame: unsupported "
                                             "escape '\\") +
                                     e + "'");
      }
    }
  }

 private:
  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

std::string encode_frame(const Fields& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, key);
    out += "\":\"";
    append_escaped(out, value);
    out += '"';
  }
  out += "}\n";
  return out;
}

Fields decode_frame(const std::string& line) {
  Fields fields;
  Cursor cur(line);
  cur.skip_ws();
  cur.expect('{');
  cur.skip_ws();
  if (!cur.done() && cur.peek() == '}') {
    cur.expect('}');
  } else {
    while (true) {
      cur.skip_ws();
      NEUTRAL_REQUIRE(!cur.done() && cur.peek() == '"',
                      "malformed frame: keys and values must be strings");
      std::string key = cur.string_literal();
      cur.skip_ws();
      cur.expect(':');
      cur.skip_ws();
      NEUTRAL_REQUIRE(!cur.done() && cur.peek() == '"',
                      "malformed frame: values must be strings (no nested "
                      "objects, arrays or numbers)");
      std::string value = cur.string_literal();
      NEUTRAL_REQUIRE(fields.emplace(std::move(key), std::move(value)).second,
                      "malformed frame: duplicate key");
      cur.skip_ws();
      if (!cur.done() && cur.peek() == ',') {
        cur.expect(',');
        continue;
      }
      cur.expect('}');
      break;
    }
  }
  cur.skip_ws();
  NEUTRAL_REQUIRE(cur.done(), "malformed frame: trailing bytes after '}'");
  return fields;
}

const std::string& require_field(const Fields& fields,
                                 const std::string& key) {
  const auto it = fields.find(key);
  NEUTRAL_REQUIRE(it != fields.end(), "frame missing field '" + key + "'");
  return it->second;
}

std::int64_t field_int(const Fields& fields, const std::string& key,
                       std::int64_t def) {
  const std::int64_t v = field_int_signed(fields, key, def);
  NEUTRAL_REQUIRE(v >= 0, "field '" + key + "' must be non-negative, got " +
                              std::to_string(v));
  return v;
}

std::int64_t field_int_signed(const Fields& fields, const std::string& key,
                              std::int64_t def) {
  const auto it = fields.find(key);
  if (it == fields.end()) return def;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  NEUTRAL_REQUIRE(errno == 0 && end != it->second.c_str() && *end == '\0',
                  "field '" + key + "' is not an integer: '" + it->second +
                      "'");
  return static_cast<std::int64_t>(v);
}

double field_double(const Fields& fields, const std::string& key,
                    double def) {
  const auto it = fields.find(key);
  if (it == fields.end()) return def;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  NEUTRAL_REQUIRE(end != it->second.c_str() && *end == '\0',
                  "field '" + key + "' is not a number: '" + it->second +
                      "'");
  return v;
}

}  // namespace neutral::net
