// Client side of the neutrald protocol (net/server.h documents the wire
// format).  One NeutralClient wraps one connection; the daemon serves any
// number concurrently.  `neutral_batch --connect` and test_net both drive
// the daemon through this class, so the protocol has exactly two
// implementations to keep honest — the server's and this one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace neutral::net {

/// What to run.  Exactly one of deck_text / spec_text must be set; the
/// remaining knobs mirror the `neutral_batch` flags of the same names and
/// are forwarded verbatim for the server to parse.  scheme/layout/tally/
/// schedule/threads apply to DECK submissions only (a sweep spec names
/// its own base knobs; the server refuses the overlap); shards/domains
/// are execution options and apply to both.
struct SubmitRequest {
  std::string deck_text;  ///< one .params deck (io/deck_io.h format)
  std::string spec_text;  ///< a sweep spec (batch/sweep.h format)
  std::string label;      ///< row label override (single-job submits)
  std::string scheme, layout, tally, schedule;
  std::int32_t threads = 0;
  std::int32_t shards = 0;
  std::string domains;  ///< "RxC" or empty
};

/// Final state of one submission: the server's status plus its result rows
/// (RemoteRow is shared with the server so the two sides cannot drift).
struct RemoteResult {
  std::uint64_t id = 0;
  std::string status;  ///< "ok" | "failed" | "timed_out" | "cancelled"
  std::string error;
  std::vector<RemoteRow> rows;

  [[nodiscard]] bool ok() const { return status == "ok"; }
};

/// One streamed completion event (a job finishing server-side).
struct RemoteEvent {
  std::string label;
  std::string status;
  double seconds = 0.0;
  std::int32_t worker = -1;
};

class NeutralClient {
 public:
  /// Connect to a running neutrald; throws neutral::Error on failure.
  NeutralClient(const std::string& host, std::uint16_t port);

  /// Parse "host:port"; throws on anything else.
  static std::pair<std::string, std::uint16_t> parse_endpoint(
      const std::string& endpoint);

  /// One request frame -> one reply frame.  Throws Error when the server
  /// answers ok=0 (carrying its error message) or on transport failure.
  Fields call(const Fields& request);

  void ping();

  /// Returns the new submission id.
  std::uint64_t submit(const SubmitRequest& request);

  /// Block until the submission finishes and return its result rows.
  /// When `on_event` is set, uses the streaming `watch` op and invokes it
  /// for every completion event the engine reports.
  RemoteResult wait(std::uint64_t id,
                    const std::function<void(const RemoteEvent&)>& on_event =
                        {});

  /// Non-streaming `result` with a bounded wait; nullopt when the
  /// submission is still pending after timeout_ms.
  std::optional<RemoteResult> try_result(std::uint64_t id,
                                         std::int64_t timeout_ms);

  /// Server-level or per-submission status fields, verbatim.
  Fields status(std::optional<std::uint64_t> id = std::nullopt);

  /// Flat snapshot of the daemon's metrics registry (ok + one field per
  /// series; histograms appear as name_count / name_sum).
  Fields metrics();

  void cancel(std::uint64_t id);

  /// Ask the daemon to drain and exit.
  void shutdown_server();

 private:
  Fields read_frame();
  RemoteResult read_result_frames(
      const std::function<void(const RemoteEvent&)>& on_event);
  /// Parse the result header + its row frames (header already read).
  RemoteResult read_rows_after_header(Fields header);

  TcpStream stream_;
  std::size_t max_frame_bytes_;
};

}  // namespace neutral::net
