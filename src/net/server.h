// neutrald's serving core: an event-loop TCP front-end for the batch engine.
//
// The PR 1–4 runtime (engine × shards × domains × schemes × layouts) is a
// fork-join library: a caller builds jobs, blocks in BatchEngine::run, and
// exits.  NeutralServer turns it into a long-lived service: clients
// connect over TCP, submit decks or whole sweep specs, and the daemon runs
// them through ONE shared engine — so every connection hits the same
// WorldCache, and a thousand submissions of one geometry build its World
// once.  Physics is untouched: a loopback-submitted deck returns the same
// bit-identical checksum/population as an in-process run of the same
// configuration, for every scheme × layout × shard × domain combination
// (test_net pins this).
//
// Protocol (see net/frame.h for the framing): one flat JSON object per
// line, request → one or more reply frames on the same connection.
//
//   {"op":"ping"}                      -> {"ok":"1",...}
//   {"op":"submit","deck":<.params text>,
//    "scheme":..,"layout":..,"tally":..,"schedule":..,"threads":..,
//    "shards":..,"domains":"RxC","label":..}
//                                      -> {"ok":"1","id":N,"jobs":K}
//   {"op":"submit","spec":<sweep spec text>,"shards":..,"domains":..}
//                                      -> same; the spec expands server-side
//   {"op":"status"}                    -> server totals + world-cache stats
//   {"op":"status","id":N}             -> submission state + progress
//   {"op":"watch","id":N}              -> {"event":"job",...} per completed
//                                         job, then the result frames
//   {"op":"result","id":N[,"timeout_ms":T]}
//                                      -> {"ok":"1","id","status","rows":R}
//                                         followed by R {"row":i,...} frames
//   {"op":"cancel","id":N}             -> {"ok":"1","state":...}
//   {"op":"shutdown"}                  -> {"ok":"1"} and the daemon drains
//
// Errors answer {"ok":"0","error":...}.  A frame that does not decode at
// all gets that error reply and the connection is closed (a desynced
// byte stream cannot be re-framed); well-framed semantic mistakes keep
// the connection.  Overload answers {"ok":"0","refused":"1","error":...}
// — a structured refusal a client can tell apart from a hard failure and
// retry with backoff (see "overload semantics" in the README).
//
// Concurrency model: ONE epoll event loop (net/poller.h) owns every
// connection — non-blocking sockets, per-connection bounded in/out
// buffers, no thread per connection and nothing detached, so shutdown is
// deterministic: the loop closes every registered fd and serve() joins
// the executor before returning.  Slow readers cannot wedge the daemon:
// replies buffer up to ServerOptions::max_outbound_bytes and then the
// connection is dropped (likewise when a non-empty buffer makes no
// progress for write_stall_timeout).  Admission control refuses work
// early — max_connections at accept, per-connection in-flight caps and
// the max_pending_submissions bound at submit — instead of queueing
// towards a timeout.
//
// Execution model: submissions queue FIFO and one executor thread drains
// them, so concurrent clients share the node the same way one CLI sweep
// does (the engine's worker pool parallelises; the executor serialises).
// Deadlines come from EngineOptions::policy: max_queue_wait bounds queue
// residence, max_run_wall bounds each run — an expired job completes as
// `timed_out`, its group cancels like a failure, and the daemon keeps
// serving.  QueuePolicy::priority_aging (--priority-aging-ms) bounds
// priority starvation inside each run's queue.  A client `cancel` flips
// the submission's cooperative flag (SimulationConfig::cancel), stopping
// in-flight work at the next timestep/round boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

#include "batch/engine.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace neutral::obs {
class TraceLog;
class MetricsExporter;
}  // namespace neutral::obs

namespace neutral::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back from start().
  std::uint16_t port = 0;
  /// Engine shared by every connection (QueuePolicy deadlines and
  /// priority aging ride here).
  batch::EngineOptions engine;
  /// Reject frames longer than this (deck/spec payload bound); also the
  /// per-connection inbound buffer bound.
  std::size_t max_frame_bytes = 4u << 20;
  /// Refuse new submissions while this many are queued or running
  /// (structured `refused` reply — the daemon-wide admission bound).
  std::size_t max_pending_submissions = 64;
  /// Keep at most this many FINISHED submissions queryable; older results
  /// are evicted oldest-first.  The registry stays bounded no matter how
  /// long the daemon runs — the same lifetime discipline the queue's
  /// cancelled-group tombstones got.
  std::size_t max_retained_results = 256;
  /// Refuse connections beyond this many open at once (a best-effort
  /// `refused` frame is sent before the close).
  std::size_t max_connections = 1024;
  /// Refuse a connection's next submit while it already has this many
  /// submissions queued or running (structured `refused` reply).
  std::size_t max_inflight_per_connection = 16;
  /// Slow-reader policy: per-connection outbound buffer bound.  A peer
  /// that lets buffered replies exceed this is disconnected instead of
  /// wedging the event loop's memory.
  std::size_t max_outbound_bytes = 4u << 20;
  /// Slow-reader policy: disconnect when a non-empty outbound buffer
  /// makes zero progress for this long.
  std::chrono::milliseconds write_stall_timeout{10000};
  /// Test hook: when > 0, set SO_SNDBUF on accepted sockets so the
  /// kernel's share of the outbound path is small and deterministic.
  int sndbuf_bytes = 0;
  /// Per-request log lines on stdout.
  bool verbose = false;
  /// When non-zero, start() also binds a plain-HTTP Prometheus
  /// text-exposition listener on (host, metrics_port) serving GET /metrics
  /// from the server's registry.  0 = no exporter (the `metrics` frame op
  /// still works).
  std::uint16_t metrics_port = 0;
  /// When non-empty, open a JSONL TraceLog there and record every job's
  /// lifecycle spans plus connection open/close spans (src/obs/trace.h).
  std::string trace_path;
};

/// One finished row of a submission — one sweep job (plain), one reduced
/// fork-join group (--shards), or one decomposed solve (--domains).
struct RemoteRow {
  std::string label;
  std::int64_t particles = 0;
  std::string tally;
  std::string scheme;
  std::string layout;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double checksum = 0.0;
  std::int64_t population = 0;
  std::string status;  ///< "ok" | "failed" | "timed_out" | "cancelled"
  std::string error;
};

class NeutralServer {
 public:
  explicit NeutralServer(ServerOptions options = {});
  ~NeutralServer();

  /// Bind + listen and spawn the executor; returns the bound port.
  std::uint16_t start();

  /// Run the event loop; blocks until a shutdown request, then closes
  /// every connection and joins the executor before returning.  Call
  /// start() first.
  void serve();

  /// Ask serve() to wind down (idempotent; callable from any thread).
  void request_shutdown();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] batch::BatchEngine& engine() { return engine_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  /// The daemon-lifetime registry every layer publishes into.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Bound Prometheus port (0 when no exporter was requested).  Valid
  /// after start().
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

 private:
  enum class State : std::uint8_t { kQueued, kRunning, kDone };

  struct Event {
    std::string label;
    std::string status;
    double seconds = 0.0;
    std::int32_t worker = -1;
  };

  /// Mutable fields (state, status, error, jobs_total, events, rows) are
  /// guarded by the owning server's mutex_.  Stated as a comment rather
  /// than NEUTRAL_GUARDED_BY because a nested struct cannot name the outer
  /// instance's capability; every access site sits inside a MutexLock
  /// scope in server.cpp, which the analysis does check via the locked
  /// helpers that touch these fields.
  struct Submission {
    std::uint64_t id = 0;
    std::string label;
    std::string deck_text;  ///< exclusive with spec_text
    std::string spec_text;
    std::string scheme, layout, tally, schedule;
    std::int32_t threads = 0;
    std::int32_t shards = 0;
    std::string domains;  ///< "RxC" or empty
    State state = State::kQueued;
    std::string status;  ///< final submission status once kDone
    std::string error;
    std::size_t jobs_total = 0;  ///< expanded sweep jobs (0 until running)
    std::vector<Event> events;
    std::vector<RemoteRow> rows;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    /// The submitting connection's in-flight count; decremented exactly
    /// once when the submission reaches kDone.  Shared so it outlives the
    /// connection (a client may disconnect with work still queued).
    std::shared_ptr<std::atomic<std::int64_t>> owner_inflight;
  };

  /// A `result`/`watch` in progress: the loop pumps frames to the client
  /// as the executor publishes events, and processes no further input on
  /// the connection until the submission finishes (requests stay buffered,
  /// preserving the serial request/reply order of the protocol).
  struct Watcher {
    std::shared_ptr<Submission> sub;
    std::size_t next_event = 0;
    bool stream_events = false;
    bool has_deadline = false;  ///< from timeout_ms
    std::chrono::steady_clock::time_point deadline{};
  };

  /// One event-loop-owned connection.  Touched only by the loop thread.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    bool want_write = false;       ///< EPOLLOUT currently armed
    bool close_after_flush = false;
    bool read_eof = false;         ///< peer half-closed; close once done
    bool closed = false;           ///< fd released, entry awaiting reap
    bool stalled = false;          ///< outbuf non-empty and kernel full
    std::chrono::steady_clock::time_point stall_since{};
    std::optional<Watcher> watcher;
    /// Shared with each of this connection's submissions (see
    /// Submission::owner_inflight).
    std::shared_ptr<std::atomic<std::int64_t>> inflight;
  };

  // --- event loop (loop thread only) ---
  void event_loop();
  void accept_ready();
  void drain_readable(Connection& conn);
  void process_input(Connection& conn);
  /// Dispatch one decoded request; returns false when the connection is
  /// winding down (shutdown op).
  bool dispatch_line(Connection& conn, const Fields& request);
  void start_watch(Connection& conn, const Fields& request,
                   bool stream_events) NEUTRAL_EXCLUDES(mutex_);
  /// Send any fresh watcher output; completes/aborts the watcher when the
  /// submission is done, the deadline passed, or the server is stopping.
  void pump_watcher(Connection& conn) NEUTRAL_EXCLUDES(mutex_);
  void pump_watchers();
  void check_stalls();
  /// Queue `frame` on the connection and flush opportunistically; applies
  /// the slow-reader bound.
  void send_frame(Connection& conn, const Fields& frame);
  void flush(Connection& conn);
  void disconnect_slow_reader(Connection& conn, const std::string& why);
  void close_connection(Connection& conn, const std::string& reason);
  void maybe_close_after_eof(Connection& conn);
  /// epoll timeout to the nearest watcher/stall deadline (-1 = none).
  [[nodiscard]] int next_timeout_ms() const;
  void teardown_connections();
  void note_connections_open();

  // --- request handlers ---
  Fields handle_submit(Connection& conn, const Fields& request)
      NEUTRAL_EXCLUDES(mutex_);
  Fields handle_status(const Fields& request) NEUTRAL_EXCLUDES(mutex_);
  Fields handle_cancel(const Fields& request) NEUTRAL_EXCLUDES(mutex_);
  Fields handle_metrics();
  /// Refresh the submission gauges after any state change.
  void note_submissions_locked() NEUTRAL_REQUIRES(mutex_);
  /// Transition to kDone and release the owner's in-flight slot exactly
  /// once.
  void finish_locked(Submission& sub) NEUTRAL_REQUIRES(mutex_);

  // --- executor ---
  void executor_loop() NEUTRAL_EXCLUDES(mutex_);
  void execute(const std::shared_ptr<Submission>& sub)
      NEUTRAL_EXCLUDES(mutex_);
  /// Drop the oldest finished submissions beyond max_retained_results.
  void evict_done_locked() NEUTRAL_REQUIRES(mutex_);

  void log(const std::string& line);
  void trace_connection(const char* event, const Connection& conn,
                        const std::string& detail);

  ServerOptions options_;
  // Observability state precedes engine_: the ctor patches the engine
  // options with pointers into these members, so they must already exist
  // when engine_ constructs.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceLog> trace_;
  batch::BatchEngine engine_;
  std::uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  std::uint16_t metrics_port_ = 0;

  // Event-loop state (loop thread only, between start() and serve() end).
  Poller poller_;
  WakeupFd wake_;
  std::map<int, std::unique_ptr<Connection>> connections_;
  /// Connections closed mid-iteration park here until the end of the loop
  /// pass, so references held by in-flight handlers stay valid.
  std::vector<std::unique_ptr<Connection>> graveyard_;
  std::uint64_t next_conn_id_ = 1;

  /// Guards the submission registry shared between the event loop and the
  /// executor thread.  Never held across a solve: execute() copies what it
  /// needs out, runs unlocked, and locks again to publish results.
  Mutex mutex_;
  CondVar cv_;
  std::map<std::uint64_t, std::shared_ptr<Submission>> submissions_
      NEUTRAL_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<Submission>> pending_
      NEUTRAL_GUARDED_BY(mutex_);
  std::uint64_t next_id_ NEUTRAL_GUARDED_BY(mutex_) = 1;
  std::atomic<bool> stopping_{false};

  std::thread executor_;

  // Resolved once in the ctor so every series exists (at zero) from the
  // first scrape and the hot paths never look anything up by name.
  obs::Counter* submissions_total_ = nullptr;
  obs::Counter* submissions_refused_ = nullptr;
  obs::Counter* conn_total_ = nullptr;
  obs::Counter* conn_refused_ = nullptr;
  obs::Counter* slow_reader_disconnects_ = nullptr;
  obs::Gauge* conn_open_ = nullptr;
};

}  // namespace neutral::net
