// neutrald's serving core: a TCP front-end for the batch engine.
//
// The PR 1–4 runtime (engine × shards × domains × schemes × layouts) is a
// fork-join library: a caller builds jobs, blocks in BatchEngine::run, and
// exits.  NeutralServer turns it into a long-lived service: clients
// connect over TCP, submit decks or whole sweep specs, and the daemon runs
// them through ONE shared engine — so every connection hits the same
// WorldCache, and a thousand submissions of one geometry build its World
// once.  Physics is untouched: a loopback-submitted deck returns the same
// bit-identical checksum/population as an in-process run of the same
// configuration, for every scheme × layout × shard × domain combination
// (test_net pins this).
//
// Protocol (see net/frame.h for the framing): one flat JSON object per
// line, request → one or more reply frames on the same connection.
//
//   {"op":"ping"}                      -> {"ok":"1",...}
//   {"op":"submit","deck":<.params text>,
//    "scheme":..,"layout":..,"tally":..,"schedule":..,"threads":..,
//    "shards":..,"domains":"RxC","label":..}
//                                      -> {"ok":"1","id":N,"jobs":K}
//   {"op":"submit","spec":<sweep spec text>,"shards":..,"domains":..}
//                                      -> same; the spec expands server-side
//   {"op":"status"}                    -> server totals + world-cache stats
//   {"op":"status","id":N}             -> submission state + progress
//   {"op":"watch","id":N}              -> {"event":"job",...} per completed
//                                         job, then the result frames
//   {"op":"result","id":N[,"timeout_ms":T]}
//                                      -> {"ok":"1","id","status","rows":R}
//                                         followed by R {"row":i,...} frames
//   {"op":"cancel","id":N}             -> {"ok":"1","state":...}
//   {"op":"shutdown"}                  -> {"ok":"1"} and the daemon drains
//
// Errors answer {"ok":"0","error":...}.  A frame that does not decode at
// all gets that error reply and the connection is closed (a desynced
// byte stream cannot be re-framed); well-framed semantic mistakes keep
// the connection.
//
// Execution model: submissions queue FIFO and one executor thread drains
// them, so concurrent clients share the node the same way one CLI sweep
// does (the engine's worker pool parallelises; the executor serialises).
// Deadlines come from EngineOptions::policy: max_queue_wait bounds queue
// residence, max_run_wall bounds each run — an expired job completes as
// `timed_out`, its group cancels like a failure, and the daemon keeps
// serving.  A client `cancel` flips the submission's cooperative flag
// (SimulationConfig::cancel), stopping in-flight work at the next
// timestep/round boundary.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/engine.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace neutral::obs {
class TraceLog;
class MetricsExporter;
}  // namespace neutral::obs

namespace neutral::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back from start().
  std::uint16_t port = 0;
  /// Engine shared by every connection (QueuePolicy deadlines ride here).
  batch::EngineOptions engine;
  /// Reject frames longer than this (deck/spec payload bound).
  std::size_t max_frame_bytes = 4u << 20;
  /// Refuse new submissions while this many are queued or running.
  std::size_t max_pending_submissions = 64;
  /// Keep at most this many FINISHED submissions queryable; older results
  /// are evicted oldest-first.  The registry stays bounded no matter how
  /// long the daemon runs — the same lifetime discipline the queue's
  /// cancelled-group tombstones got.
  std::size_t max_retained_results = 256;
  /// Per-request log lines on stdout.
  bool verbose = false;
  /// When non-zero, start() also binds a plain-HTTP Prometheus
  /// text-exposition listener on (host, metrics_port) serving GET /metrics
  /// from the server's registry.  0 = no exporter (the `metrics` frame op
  /// still works).
  std::uint16_t metrics_port = 0;
  /// When non-empty, open a JSONL TraceLog there and record every job's
  /// lifecycle spans (src/obs/trace.h).
  std::string trace_path;
};

/// One finished row of a submission — one sweep job (plain), one reduced
/// fork-join group (--shards), or one decomposed solve (--domains).
struct RemoteRow {
  std::string label;
  std::int64_t particles = 0;
  std::string tally;
  std::string scheme;
  std::string layout;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double checksum = 0.0;
  std::int64_t population = 0;
  std::string status;  ///< "ok" | "failed" | "timed_out" | "cancelled"
  std::string error;
};

class NeutralServer {
 public:
  explicit NeutralServer(ServerOptions options = {});
  ~NeutralServer();

  /// Bind + listen and spawn the executor; returns the bound port.
  std::uint16_t start();

  /// Accept loop; blocks until a shutdown request, then drains and joins
  /// every thread before returning.  Call start() first.
  void serve();

  /// Ask serve() to wind down (idempotent; callable from any thread).
  void request_shutdown();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] batch::BatchEngine& engine() { return engine_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  /// The daemon-lifetime registry every layer publishes into.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Bound Prometheus port (0 when no exporter was requested).  Valid
  /// after start().
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

 private:
  enum class State : std::uint8_t { kQueued, kRunning, kDone };

  struct Event {
    std::string label;
    std::string status;
    double seconds = 0.0;
    std::int32_t worker = -1;
  };

  struct Submission {
    std::uint64_t id = 0;
    std::string label;
    std::string deck_text;  ///< exclusive with spec_text
    std::string spec_text;
    std::string scheme, layout, tally, schedule;
    std::int32_t threads = 0;
    std::int32_t shards = 0;
    std::string domains;  ///< "RxC" or empty
    State state = State::kQueued;
    std::string status;  ///< final submission status once kDone
    std::string error;
    std::size_t jobs_total = 0;  ///< expanded sweep jobs (0 until running)
    std::vector<Event> events;
    std::vector<RemoteRow> rows;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
  };

  void executor_loop();
  void execute(const std::shared_ptr<Submission>& sub);
  /// Drop the oldest finished submissions beyond max_retained_results.
  /// Caller holds mutex_.
  void evict_done_locked();
  void handle_connection(TcpStream stream);
  /// Dispatch one decoded request; returns false when the connection
  /// should close (shutdown, or a streaming op that failed mid-write).
  bool dispatch(TcpStream& stream, const Fields& request);

  Fields handle_submit(const Fields& request);
  Fields handle_status(const Fields& request);
  Fields handle_cancel(const Fields& request);
  Fields handle_metrics();
  /// Refresh the submission gauges after any state change (lock held).
  void note_submissions_locked();
  /// `result` / `watch`: optionally stream events, then the result header
  /// and row frames.  Returns false when the connection must close.
  bool send_result(TcpStream& stream, const Fields& request,
                   bool stream_events);

  void log(const std::string& line);

  ServerOptions options_;
  // Observability state precedes engine_: the ctor patches the engine
  // options with pointers into these members, so they must already exist
  // when engine_ constructs.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceLog> trace_;
  batch::BatchEngine engine_;
  std::uint16_t port_ = 0;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  std::uint16_t metrics_port_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::shared_ptr<Submission>> submissions_;
  std::deque<std::shared_ptr<Submission>> pending_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;

  std::thread executor_;
  /// Handler threads run detached; serve() waits for this to hit zero
  /// before returning, so the daemon never leaks a thread past shutdown.
  std::size_t active_connections_ = 0;
};

}  // namespace neutral::net
