#include "runtime/schedule.h"

#include <omp.h>

#include "util/error.h"

namespace neutral {

std::string SchedulePolicy::name() const {
  switch (kind) {
    case ScheduleKind::kStatic: return "static";
    case ScheduleKind::kStaticChunk:
      return "static," + std::to_string(chunk);
    case ScheduleKind::kDynamic:
      return chunk > 0 ? "dynamic," + std::to_string(chunk) : "dynamic";
    case ScheduleKind::kGuided:
      return chunk > 0 ? "guided," + std::to_string(chunk) : "guided";
  }
  return "?";
}

void apply_schedule(const SchedulePolicy& policy) {
  NEUTRAL_REQUIRE(policy.chunk >= 0, "chunk size must be non-negative");
  switch (policy.kind) {
    case ScheduleKind::kStatic:
      omp_set_schedule(omp_sched_static, 0);
      break;
    case ScheduleKind::kStaticChunk:
      NEUTRAL_REQUIRE(policy.chunk > 0, "static,chunk needs a chunk size");
      omp_set_schedule(omp_sched_static, policy.chunk);
      break;
    case ScheduleKind::kDynamic:
      omp_set_schedule(omp_sched_dynamic, policy.chunk);
      break;
    case ScheduleKind::kGuided:
      omp_set_schedule(omp_sched_guided, policy.chunk);
      break;
  }
}

void set_thread_count(std::int32_t threads) {
  NEUTRAL_REQUIRE(threads >= 1, "thread count must be at least 1");
  omp_set_num_threads(threads);
}

std::int32_t thread_count() { return omp_get_max_threads(); }

}  // namespace neutral
