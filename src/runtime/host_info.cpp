#include "runtime/host_info.h"

#include <omp.h>

#include <fstream>
#include <thread>

namespace neutral {

HostInfo probe_host() {
  HostInfo info;
  const unsigned hc = std::thread::hardware_concurrency();
  info.logical_cpus = hc > 0 ? static_cast<std::int32_t>(hc) : 1;
  info.openmp_max_threads = omp_get_max_threads();

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        info.cpu_model = line.substr(colon + 2);
      }
      break;
    }
  }
  return info;
}

std::string host_banner() {
  const HostInfo info = probe_host();
  return "host: " + info.cpu_model + " (" +
         std::to_string(info.logical_cpus) + " logical cpus, omp max " +
         std::to_string(info.openmp_max_threads) + ")";
}

}  // namespace neutral
