// OpenMP loop-scheduling policy control (paper §VI-C, Fig 4).
//
// The paper sweeps the `schedule` clause on the Over Particles loop to probe
// load imbalance from uneven history lengths.  We express the policy as a
// value, set it through omp_set_schedule, and compile the hot loops with
// schedule(runtime) so one binary can run the whole sweep.
#pragma once

#include <cstdint>
#include <string>

namespace neutral {

enum class ScheduleKind : std::uint8_t {
  kStatic = 0,       ///< contiguous blocks, zero runtime cost
  kStaticChunk = 1,  ///< round-robin chunks of fixed size
  kDynamic = 2,      ///< work-stealing chunks
  kGuided = 3,       ///< exponentially shrinking chunks
};

struct SchedulePolicy {
  ScheduleKind kind = ScheduleKind::kStatic;
  /// Chunk size; 0 lets the OpenMP runtime choose its default.
  std::int32_t chunk = 0;

  [[nodiscard]] std::string name() const;

  static SchedulePolicy statics() { return {ScheduleKind::kStatic, 0}; }
  static SchedulePolicy static_chunk(std::int32_t c) {
    return {ScheduleKind::kStaticChunk, c};
  }
  static SchedulePolicy dynamic(std::int32_t c = 0) {
    return {ScheduleKind::kDynamic, c};
  }
  static SchedulePolicy guided(std::int32_t c = 0) {
    return {ScheduleKind::kGuided, c};
  }
};

/// Install `policy` as the schedule used by `schedule(runtime)` loops on the
/// calling thread's OpenMP runtime.
void apply_schedule(const SchedulePolicy& policy);

/// Set the global OpenMP thread count for subsequent parallel regions.
void set_thread_count(std::int32_t threads);

/// Current max-threads setting.
std::int32_t thread_count();

}  // namespace neutral
