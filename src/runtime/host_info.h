// Host hardware probe used by the benchmark harness headers.
#pragma once

#include <cstdint>
#include <string>

namespace neutral {

struct HostInfo {
  std::int32_t logical_cpus = 1;       ///< std::thread::hardware_concurrency
  std::int32_t openmp_max_threads = 1; ///< omp_get_max_threads at startup
  std::string cpu_model = "unknown";   ///< /proc/cpuinfo "model name"
};

/// Probe the host; never fails (falls back to defaults).
HostInfo probe_host();

/// One-line banner for benchmark headers.
std::string host_banner();

}  // namespace neutral
