// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace neutral {

/// Monotonic wall timer; seconds as double.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1.0e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time a callable once and return elapsed seconds.
template <class F>
double time_once(F&& fn) {
  WallTimer t;
  fn();
  return t.seconds();
}

/// Run `fn` `reps` times and return the *best* wall time — the standard
/// noise-rejection policy for benchmark loops on shared machines.
template <class F>
double time_best_of(int reps, F&& fn) {
  double best = 1.0e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(fn);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace neutral
