// Over Particles parallelisation scheme (paper §V-A, Listing 1).
//
// One OpenMP thread follows one particle from birth to census: a single
// synchronisation point per timestep, state cached in registers between
// events, deep unpredictable branches, and a possible load imbalance from
// uneven history lengths — the scheme the paper finds fastest on every
// architecture tested.
#pragma once

#include <cstdint>

#include "core/counters.h"
#include "core/context.h"
#include "core/particle.h"
#include "runtime/schedule.h"

namespace neutral {

struct OverParticlesOptions {
  SchedulePolicy schedule = SchedulePolicy::statics();
  /// Enable §VI-A phase profiling (requires ctx.profiler != nullptr).
  bool profile = false;
  /// Software pipeline depth (--pipeline-histories): histories kept in
  /// flight per thread.  1 (the default) is the paper's Listing 1 loop —
  /// one history runs to census before the next starts.  K > 1 advances K
  /// histories round-robin, one event each, so the dependent divide/sqrt
  /// chain of one history's collision overlaps the XS lookup and facet
  /// math of its neighbours in the out-of-order window.  Sampling is
  /// untouched (every draw is counter-based per particle, and batched RNG
  /// buffers are kept per in-flight history), and tally deposits are
  /// captured per history and replayed at strictly in-order retirement, so
  /// each cell sees its deposits in exactly the unpipelined order — tally
  /// checksums and every integer counter are bit-identical.  Only the
  /// per-thread EventCounters energy doubles (path_heating & co) sum their
  /// addends in interleaved order and may differ by reassociation ulps;
  /// those feed the 1e-9 conservation gate, never a bit-equality check.
  std::int32_t pipeline_histories = 1;
  /// Flip kCensus particles to kAlive (with a fresh dt) before transport —
  /// the start of a timestep.  Domain-decomposition resume rounds set this
  /// false so only freshly injected mid-flight immigrants (already kAlive)
  /// transport, and the residents stay at census.
  bool wake_census = true;
};

/// Advance every particle in `v` through one timestep of length `dt_s`.
/// Returns the aggregated event counters.  The caller is responsible for
/// merging privatized tallies afterwards (see EnergyTally::merge_each_step).
EventCounters over_particles_step(const AosView& v, const TransportContext& ctx,
                                  double dt_s, const OverParticlesOptions& opt);
EventCounters over_particles_step(const SoaView& v, const TransportContext& ctx,
                                  double dt_s, const OverParticlesOptions& opt);

}  // namespace neutral
