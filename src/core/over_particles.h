// Over Particles parallelisation scheme (paper §V-A, Listing 1).
//
// One OpenMP thread follows one particle from birth to census: a single
// synchronisation point per timestep, state cached in registers between
// events, deep unpredictable branches, and a possible load imbalance from
// uneven history lengths — the scheme the paper finds fastest on every
// architecture tested.
#pragma once

#include <cstdint>

#include "core/counters.h"
#include "core/context.h"
#include "core/particle.h"
#include "runtime/schedule.h"

namespace neutral {

struct OverParticlesOptions {
  SchedulePolicy schedule = SchedulePolicy::statics();
  /// Enable §VI-A phase profiling (requires ctx.profiler != nullptr).
  bool profile = false;
  /// Flip kCensus particles to kAlive (with a fresh dt) before transport —
  /// the start of a timestep.  Domain-decomposition resume rounds set this
  /// false so only freshly injected mid-flight immigrants (already kAlive)
  /// transport, and the residents stay at census.
  bool wake_census = true;
};

/// Advance every particle in `v` through one timestep of length `dt_s`.
/// Returns the aggregated event counters.  The caller is responsible for
/// merging privatized tallies afterwards (see EnergyTally::merge_each_step).
EventCounters over_particles_step(const AosView& v, const TransportContext& ctx,
                                  double dt_s, const OverParticlesOptions& opt);
EventCounters over_particles_step(const SoaView& v, const TransportContext& ctx,
                                  double dt_s, const OverParticlesOptions& opt);

}  // namespace neutral
