#include "core/deck.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace neutral {
namespace {

std::int32_t scaled_cells(double mesh_scale) {
  NEUTRAL_REQUIRE(mesh_scale > 0.0 && mesh_scale <= 1.0,
                  "mesh_scale must be in (0, 1]");
  return std::max<std::int32_t>(8, static_cast<std::int32_t>(
                                       std::lround(4000.0 * mesh_scale)));
}

std::int64_t scaled_particles(double particle_scale, double paper_count) {
  NEUTRAL_REQUIRE(particle_scale > 0.0 && particle_scale <= 1.0,
                  "particle_scale must be in (0, 1]");
  return std::max<std::int64_t>(
      64, static_cast<std::int64_t>(std::llround(paper_count * particle_scale)));
}

ProblemDeck base_deck(double mesh_scale) {
  ProblemDeck d;
  d.nx = d.ny = scaled_cells(mesh_scale);
  d.width_cm = d.height_cm = 100.0;  // 1 m x 1 m domain
  d.dt_s = 1.0e-7;
  d.n_timesteps = 1;
  d.initial_energy_ev = 1.0e6;  // 1 MeV source
  return d;
}

/// Dense-region density preserving mfp/cell-size when the mesh coarsens:
/// the number of cells per mean free path is the quantity that shapes the
/// facet/collision event mix the paper measures.
double scaled_dense_density(const ProblemDeck& d) {
  return kDenseDensityKgM3 * (d.nx / 4000.0);
}

}  // namespace

ProblemDeck stream_deck(double mesh_scale, double particle_scale) {
  ProblemDeck d = base_deck(mesh_scale);
  d.name = "stream";
  d.base_density_kg_m3 = kVacuumDensityKgM3;
  // Particles start in a small square at the centre of the space (§IV-B).
  const double c = 0.5 * d.width_cm;
  const double half = 0.025 * d.width_cm;
  d.src_x0 = c - half; d.src_x1 = c + half;
  d.src_y0 = c - half; d.src_y1 = c + half;
  d.n_particles = scaled_particles(particle_scale, 1.0e6);
  return d;
}

ProblemDeck scatter_deck(double mesh_scale, double particle_scale) {
  ProblemDeck d = base_deck(mesh_scale);
  d.name = "scatter";
  d.base_density_kg_m3 = scaled_dense_density(d);
  const double c = 0.5 * d.width_cm;
  const double half = 0.025 * d.width_cm;
  d.src_x0 = c - half; d.src_x1 = c + half;
  d.src_y0 = c - half; d.src_y1 = c + half;
  d.n_particles = scaled_particles(particle_scale, 1.0e7);
  return d;
}

ProblemDeck csp_deck(double mesh_scale, double particle_scale) {
  ProblemDeck d = base_deck(mesh_scale);
  d.name = "csp";
  d.base_density_kg_m3 = kVacuumDensityKgM3;
  // High-density square covering the central fifth of each axis.
  RegionSpec square;
  square.x0 = 0.4 * d.width_cm;  square.x1 = 0.6 * d.width_cm;
  square.y0 = 0.4 * d.height_cm; square.y1 = 0.6 * d.height_cm;
  square.density_kg_m3 = scaled_dense_density(d);
  d.regions.push_back(square);
  // Particles start in the bottom-left corner and stream across (§IV-B).
  d.src_x0 = 0.0; d.src_x1 = 0.1 * d.width_cm;
  d.src_y0 = 0.0; d.src_y1 = 0.1 * d.height_cm;
  d.n_particles = scaled_particles(particle_scale, 1.0e6);
  return d;
}

ProblemDeck deck_by_name(const std::string& name, double mesh_scale,
                         double particle_scale) {
  if (name == "stream") return stream_deck(mesh_scale, particle_scale);
  if (name == "scatter") return scatter_deck(mesh_scale, particle_scale);
  if (name == "csp") return csp_deck(mesh_scale, particle_scale);
  throw Error("unknown problem deck '" + name +
              "' (expected stream|scatter|csp)");
}

}  // namespace neutral
