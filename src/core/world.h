// The immutable "world" a solve executes against: mesh + density field +
// cross-section tables, bundled so many Simulations can share one copy.
//
// Building the world is the expensive, read-only part of Simulation setup
// (a 4000^2 mesh is ~256 MB of edge/density/tally-shaped data and the
// synthetic XS tables carry resonance construction); the particle bank and
// tally are the cheap, mutable part.  Splitting them lets the batch engine
// (src/batch) run many jobs against one cached world instead of rebuilding
// identical geometry per job.
//
// A World is heap-allocated and pinned: DensityField stores a pointer to
// its mesh, so the struct is neither copyable nor movable and is only
// handed out as std::shared_ptr<const World>.
#pragma once

#include <cstdint>
#include <memory>

#include "core/deck.h"
#include "mesh/density_field.h"
#include "mesh/mesh2d.h"
#include "mesh/window.h"
#include "xs/table.h"
#include "xs/union_grid.h"

namespace neutral {

struct World {
  explicit World(const ProblemDeck& deck);

  /// Slab variant (domain decomposition): the mesh keeps its full,
  /// cheap O(nx+ny) edge arrays — cell indices stay global — but the
  /// density field allocates only the window's cells.  An inactive window
  /// is promoted to the full mesh.
  World(const ProblemDeck& deck, const DomainWindow& window);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  StructuredMesh2D mesh;
  /// The slab the density (and any Simulation built on this world's tally)
  /// covers; DomainWindow::full(mesh) for an unwindowed world.
  DomainWindow window;
  DensityField density;
  CrossSectionTable xs_capture;
  CrossSectionTable xs_scatter;
  /// Unionised energy grid over both tables (XsLookup::kUnionised).  Built
  /// once here so the WorldCache amortises it across every job sharing the
  /// geometry; ~1.5x the tables' own footprint (counted below).
  UnionisedXsGrid xs_union;

  /// Fingerprint of the deck fields this world was built from (see
  /// world_fingerprint); lets caches detect reuse without keeping the deck.
  std::uint64_t fingerprint = 0;

  /// Estimated resident bytes of the bulk arrays (mesh edges, density
  /// field, XS tables).  Used by the world cache's byte budget; an
  /// estimate, not an allocator-exact figure.
  [[nodiscard]] std::uint64_t footprint_bytes() const;
};

/// Build a world on the heap (the only way to obtain one).
std::shared_ptr<const World> build_world(const ProblemDeck& deck);

/// Build a domain-slab world; an inactive window builds the full world.
std::shared_ptr<const World> build_world(const ProblemDeck& deck,
                                         const DomainWindow& window);

/// Hash of exactly the deck fields that determine the world: mesh geometry,
/// density description and cross-section table shape.  Run-control fields
/// (particles, seed, timesteps, cutoffs...) do not contribute, so decks that
/// differ only in those share a fingerprint — and can share a World.
std::uint64_t world_fingerprint(const ProblemDeck& deck);

/// Fingerprint of a windowed (domain-slab) world: world_fingerprint when
/// the window covers the whole mesh, otherwise mixed with the window
/// coordinates so slab worlds never collide with the full world or with
/// each other in caches.
std::uint64_t domain_world_fingerprint(const ProblemDeck& deck,
                                       const DomainWindow& window);

}  // namespace neutral
