#include "core/over_particles.h"

#include <omp.h>

#include "core/step.h"
#include "perf/profiler.h"
#include "util/aligned.h"
#include "util/error.h"

namespace neutral {
namespace {

/// Shared driver body: Listing 1 of the paper.  The outer foreach(particle)
/// is the OpenMP loop; schedule(runtime) lets the Fig 4 experiment flip the
/// scheduling clause without recompiling.
template <class View, class Hooks, class MakeHooks>
EventCounters drive(const View& v, const TransportContext& ctx_in, double dt_s,
                    const OverParticlesOptions& opt, MakeHooks make_hooks) {
  // Branch-light event selection exists to kill the mispredicts of
  // breadth-first sweeps, where consecutive loop iterations are unrelated
  // particles.  Here the per-history loop keeps one particle's direction
  // and state in registers, the same branches repeat until the next
  // collision or reflection and predict almost perfectly, and the select
  // chains would only add dependency latency.  Both forms produce
  // bit-identical results (facet.h), so scope the option to the Over
  // Events kernels and run the branchy form unconditionally here.
  TransportContext ctx = ctx_in;
  ctx.branchless_events = false;
  apply_schedule(opt.schedule);
  const auto n = static_cast<std::int64_t>(v.size());
  const std::int32_t max_threads = omp_get_max_threads();
  aligned_vector<Padded<EventCounters>> thread_counters(
      static_cast<std::size_t>(max_threads));

  // Wake the survivors of the previous timestep (skipped by the domain
  // decomposition's mid-timestep resume rounds).
  if (opt.wake_census) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      if (v.state(i) == ParticleState::kCensus) {
        v.state(i) = ParticleState::kAlive;
        v.dt_to_census(i) = dt_s;
      }
    }
  }

#pragma omp parallel
  {
    const std::int32_t thread = omp_get_thread_num();
    EventCounters& ec = thread_counters[static_cast<std::size_t>(thread)].value;
    Hooks hooks = make_hooks(thread);
#pragma omp for schedule(runtime)
    for (std::int64_t i = 0; i < n; ++i) {
      run_history(v, static_cast<std::size_t>(i), ctx, ec, thread, hooks);
    }
  }

  EventCounters total;
  for (const auto& tc : thread_counters) total += tc.value;
  return total;
}

template <class View>
EventCounters dispatch(const View& v, const TransportContext& ctx, double dt_s,
                       const OverParticlesOptions& opt) {
  if (opt.profile) {
    NEUTRAL_REQUIRE(ctx.profiler != nullptr,
                    "profiling requested but ctx.profiler is null");
    return drive<View, TimingHooks>(v, ctx, dt_s, opt, [&](std::int32_t t) {
      return TimingHooks(ctx.profiler, t);
    });
  }
  return drive<View, NoHooks>(v, ctx, dt_s, opt,
                              [](std::int32_t) { return NoHooks{}; });
}

}  // namespace

EventCounters over_particles_step(const AosView& v, const TransportContext& ctx,
                                  double dt_s,
                                  const OverParticlesOptions& opt) {
  return dispatch(v, ctx, dt_s, opt);
}

EventCounters over_particles_step(const SoaView& v, const TransportContext& ctx,
                                  double dt_s,
                                  const OverParticlesOptions& opt) {
  return dispatch(v, ctx, dt_s, opt);
}

}  // namespace neutral
