#include "core/over_particles.h"

#include <omp.h>

#include <vector>

#include "core/step.h"
#include "core/tally.h"
#include "perf/profiler.h"
#include "rng/stream.h"
#include "util/aligned.h"
#include "util/error.h"

namespace neutral {
namespace {

/// Shared driver body: Listing 1 of the paper.  The outer foreach(particle)
/// is the OpenMP loop; schedule(runtime) lets the Fig 4 experiment flip the
/// scheduling clause without recompiling.
template <class View, class Hooks, class MakeHooks>
EventCounters drive(const View& v, const TransportContext& ctx_in, double dt_s,
                    const OverParticlesOptions& opt, MakeHooks make_hooks) {
  // Branch-light event selection exists to kill the mispredicts of
  // breadth-first sweeps, where consecutive loop iterations are unrelated
  // particles.  Here the per-history loop keeps one particle's direction
  // and state in registers, the same branches repeat until the next
  // collision or reflection and predict almost perfectly, and the select
  // chains would only add dependency latency.  Both forms produce
  // bit-identical results (facet.h), so scope the option to the Over
  // Events kernels and run the branchy form unconditionally here.
  TransportContext ctx = ctx_in;
  ctx.branchless_events = false;
  apply_schedule(opt.schedule);
  const auto n = static_cast<std::int64_t>(v.size());
  const std::int32_t max_threads = omp_get_max_threads();
  aligned_vector<Padded<EventCounters>> thread_counters(
      static_cast<std::size_t>(max_threads));

  // Wake the survivors of the previous timestep (skipped by the domain
  // decomposition's mid-timestep resume rounds).
  if (opt.wake_census) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      if (v.state(i) == ParticleState::kCensus) {
        v.state(i) = ParticleState::kAlive;
        v.dt_to_census(i) = dt_s;
      }
    }
  }

  const std::int32_t depth = opt.pipeline_histories;
#pragma omp parallel
  {
    const std::int32_t thread = omp_get_thread_num();
    EventCounters& ec = thread_counters[static_cast<std::size_t>(thread)].value;
    Hooks hooks = make_hooks(thread);
    if (depth <= 1) {
#pragma omp for schedule(runtime)
      for (std::int64_t i = 0; i < n; ++i) {
        run_history(v, static_cast<std::size_t>(i), ctx, ec, thread, hooks);
      }
    } else {
      // Software pipeline (--pipeline-histories K): a per-thread ring of K
      // in-flight histories advanced round-robin, one event each, so the
      // out-of-order window sees K independent event computations back to
      // back — one history's divide/sqrt chain overlaps another's XS
      // lookup and facet math.  Histories are independent (each event
      // touches only its own particle, the tally, and the thread-local
      // counters), so interleaving them cannot change any sampled value;
      // each slot carries its own FlightState and (when batching) its own
      // counter-positioned BatchedStream.  Deposits are captured into the
      // slot's buffer and replayed at strictly in-order retirement, so the
      // tally sees exactly the sequential order and stays bit-identical.
      struct Slot {
        std::int64_t idx = -1;
        FlightState fs;
        rng::BatchedStream stream;
        std::vector<PendingDeposit> deposits;
      };
      std::vector<Slot> slots(static_cast<std::size_t>(depth));
      std::int32_t head = 0;  // oldest in-flight slot (retires first)
      std::int32_t live = 0;

      const auto advance_round = [&] {
        for (std::int32_t k = 0; k < live; ++k) {
          Slot& s = slots[static_cast<std::size_t>((head + k) % depth)];
          const auto u = static_cast<std::size_t>(s.idx);
          if (v.state(u) != ParticleState::kAlive) continue;
          ctx.tally->set_deposit_sink(thread, &s.deposits);
          advance_one_event(v, u, ctx, s.fs, ec, thread, hooks,
                            ctx.rng_batch ? &s.stream : nullptr);
          ctx.tally->set_deposit_sink(thread, nullptr);
        }
        // In-order retirement: only the head may leave, so the deposit
        // replay happens in exactly the order histories were issued —
        // which is the order the unpipelined loop runs them.
        while (live > 0 &&
               v.state(static_cast<std::size_t>(slots[static_cast<std::size_t>(
                   head)].idx)) != ParticleState::kAlive) {
          Slot& s = slots[static_cast<std::size_t>(head)];
          ctx.tally->replay_deposits(s.deposits, thread);
          s.deposits.clear();
          head = (head + 1) % depth;
          --live;
        }
      };

      // nowait: each thread drains its own ring as soon as it exhausts its
      // share of the index space; the parallel region's closing barrier
      // still orders the drain before any tally merge.
#pragma omp for schedule(runtime) nowait
      for (std::int64_t i = 0; i < n; ++i) {
        const auto u = static_cast<std::size_t>(i);
        if (v.state(u) != ParticleState::kAlive) continue;
        while (live == depth) advance_round();
        Slot& s = slots[static_cast<std::size_t>((head + live) % depth)];
        s.idx = i;
        load_flight_state(v, u, ctx, s.fs, ec, hooks);
        if (ctx.rng_batch) {
          s.stream = rng::BatchedStream(ctx.seed, v.id(u), v.rng_counter(u));
        }
        ++live;
      }
      while (live > 0) advance_round();
    }
  }

  EventCounters total;
  for (const auto& tc : thread_counters) total += tc.value;
  return total;
}

template <class View>
EventCounters dispatch(const View& v, const TransportContext& ctx, double dt_s,
                       const OverParticlesOptions& opt) {
  if (opt.profile) {
    NEUTRAL_REQUIRE(ctx.profiler != nullptr,
                    "profiling requested but ctx.profiler is null");
    return drive<View, TimingHooks>(v, ctx, dt_s, opt, [&](std::int32_t t) {
      return TimingHooks(ctx.profiler, t);
    });
  }
  return drive<View, NoHooks>(v, ctx, dt_s, opt,
                              [](std::int32_t) { return NoHooks{}; });
}

}  // namespace

EventCounters over_particles_step(const AosView& v, const TransportContext& ctx,
                                  double dt_s,
                                  const OverParticlesOptions& opt) {
  return dispatch(v, ctx, dt_s, opt);
}

EventCounters over_particles_step(const SoaView& v, const TransportContext& ctx,
                                  double dt_s,
                                  const OverParticlesOptions& opt) {
  return dispatch(v, ctx, dt_s, opt);
}

}  // namespace neutral
