// Instrumentation hook concept for the transport step.
//
// The per-event step (step.h) is a template over a Hooks policy so one body
// of physics serves three callers with zero abstraction cost:
//
//   * NoHooks       — production: every call is an empty inline no-op.
//   * TimingHooks   — §VI-A grind-time profiling via the TSC.
//   * RecordingHooks (src/simt) — the machine-model simulator's memory /
//     divergence / atomic trace.
//
// Hooks receive *semantic* events (a density load, an N-step table walk, a
// tally flush) rather than raw addresses, so cost models can reason about
// them architecturally.
#pragma once

#include <cstdint>

#include "perf/profiler.h"

namespace neutral {

/// Event classes of the tracking loop (paper Fig 1).
enum class EventType : std::uint8_t {
  kCollision = 0,
  kFacet = 1,
  kCensus = 2,
};

inline const char* to_string(EventType e) {
  switch (e) {
    case EventType::kCollision: return "collision";
    case EventType::kFacet: return "facet";
    case EventType::kCensus: return "census";
  }
  return "?";
}

/// Default policy: fully transparent.
struct NoHooks {
  static constexpr bool kTracing = false;

  void phase_start(Phase) {}
  void phase_stop(Phase) {}
  void event(EventType) {}
  void density_load(std::int64_t /*flat*/) {}
  void xs_walk(std::int32_t /*steps*/, std::int32_t /*index*/) {}
  void tally_flush(std::int64_t /*flat*/) {}
  void rng_draw(std::int32_t /*n*/) {}
  void flops(std::int32_t /*n*/) {}
};

/// TSC-based phase timing for the grind-time experiment.
class TimingHooks {
 public:
  TimingHooks(PhaseProfiler* profiler, std::int32_t thread)
      : profiler_(profiler), thread_(thread) {}

  static constexpr bool kTracing = false;

  void phase_start(Phase) { start_ = read_cycles(); }
  void phase_stop(Phase p) {
    profiler_->add(thread_, p, read_cycles() - start_);
  }
  void event(EventType) {}
  void density_load(std::int64_t) {}
  void xs_walk(std::int32_t, std::int32_t) {}
  void tally_flush(std::int64_t) {}
  void rng_draw(std::int32_t) {}
  void flops(std::int32_t) {}

 private:
  PhaseProfiler* profiler_;
  std::int32_t thread_;
  std::uint64_t start_ = 0;
};

}  // namespace neutral
