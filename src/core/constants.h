// Physical constants used by the transport kernels.
//
// Internal unit system: energy in eV, length in cm, time in s, mass density
// in g/cm^3 (decks accept kg/m^3).  These are the conventions of the
// original mini-app's nuclear-data heritage (cross sections in barns,
// macroscopic cross sections in 1/cm).
#pragma once

namespace neutral {

/// Neutron rest mass [kg] (CODATA 2018).
inline constexpr double kNeutronMassKg = 1.67492749804e-27;

/// Electron-volt [J] (exact, SI 2019).
inline constexpr double kEvToJ = 1.602176634e-19;

/// Speed of a non-relativistic neutron with kinetic energy E [eV], in cm/s:
/// v = 100 * sqrt(2 E q / m).  The prefactor is precomputed; multiply by
/// sqrt(E_ev).  (1 MeV -> 1.383e9 cm/s, ~4.6% of c: the non-relativistic
/// approximation is good to <2% across the table range.)
inline constexpr double kSpeedPerSqrtEv = 1.3831593e6;  // cm/s per sqrt(eV)

}  // namespace neutral
