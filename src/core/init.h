// Particle source initialisation (§IV-F: "random numbers determine the
// initial particle locations and directions within a bounded source
// region").
//
// Each particle's birth state is sampled from its *own* counter-based
// stream, so initialisation is order-independent: it parallelises freely
// and produces identical banks for AoS and SoA layouts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/deck.h"
#include "core/particle.h"
#include "mesh/mesh2d.h"
#include "rng/stream.h"
#include "util/error.h"
#include "util/numeric.h"

namespace neutral {

/// Sample the complete birth record of particle `gid` — the single source
/// of truth for the draw order (x, y, angle, mfp: 4 draws; the history
/// resumes the stream from counter 4).  Both the span bank initialiser
/// below and the domain-decomposition window scans (core/simulation.cpp,
/// batch/domain.cpp) use this, so a particle's birth state is one value no
/// matter which bank it lands in.
inline Particle sample_birth(const ProblemDeck& deck,
                             const StructuredMesh2D& mesh,
                             std::uint64_t gid) {
  rng::ParticleStream stream(deck.seed, gid);
  const double x = stream.next_range(deck.src_x0, deck.src_x1);
  const double y = stream.next_range(deck.src_y0, deck.src_y1);
  const double theta = stream.next_range(0.0, kTwoPi);
  const double mfp = stream.next_exponential();

  Particle p;
  p.x = x;
  p.y = y;
  p.omega_x = std::cos(theta);
  p.omega_y = std::sin(theta);
  p.energy = deck.initial_energy_ev;
  p.weight = deck.initial_weight;
  p.dt_to_census = 0.0;
  p.mfp_to_collision = mfp;
  const CellIndex c = mesh.locate(x, y);
  p.cellx = c.x;
  p.celly = c.y;
  p.xs_index = 0;
  p.state = ParticleState::kCensus;
  p.rng_counter = stream.counter();
  p.id = gid;
  return p;
}

/// Populate `v` with the deck's source, starting at particle id `first_id`:
/// local index i becomes global particle id first_id + i, and every birth
/// draw comes from that id's own counter-based stream.  A shard holding ids
/// [first_id, first_id + v.size()) therefore sources particles identical to
/// the same ids of the full bank — the basis of single-deck sharding
/// (src/batch/shard.h).  Particles are born in state kCensus: the driver
/// flips them to kAlive and assigns dt at the start of each timestep.
template <class View>
void initialise_particles(const View& v, const ProblemDeck& deck,
                          const StructuredMesh2D& mesh,
                          std::int64_t first_id = 0) {
  NEUTRAL_REQUIRE(first_id >= 0, "first particle id must be non-negative");
  NEUTRAL_REQUIRE(
      first_id + static_cast<std::int64_t>(v.size()) <= deck.n_particles,
      "particle span must fit inside deck.n_particles");
  NEUTRAL_REQUIRE(deck.src_x1 >= deck.src_x0 && deck.src_y1 >= deck.src_y0,
                  "source rectangle must be well-formed");
  const auto n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    write_record(v, static_cast<std::size_t>(i),
                 sample_birth(deck, mesh,
                              static_cast<std::uint64_t>(first_id + i)));
  }
}

/// Deterministically distribute every birth in the deck among `n_banks`
/// banks (domain decomposition): sample each id with sample_birth and hand
/// the record to the bank `owner_of(particle)` names; an owner index >=
/// n_banks discards it (a window filter).  The scan is chunked across
/// parallel workers, and THE INVARIANT THE BIT-IDENTITY GUARANTEE RESTS ON
/// lives here, in one place: chunks are contiguous id ranges concatenated
/// in chunk order, so every bank is in id order for any chunk count.  The
/// chunk count comes from the hardware, not omp_get_max_threads() —
/// Simulation constructors pin the calling thread's OpenMP ICV to the
/// transport width (often 1), which must not serialise later scans.
template <class OwnerFn>
std::vector<std::vector<Particle>> route_births(const ProblemDeck& deck,
                                                const StructuredMesh2D& mesh,
                                                std::size_t n_banks,
                                                OwnerFn owner_of) {
  const std::int32_t chunks = std::max(
      1, static_cast<std::int32_t>(std::thread::hardware_concurrency()));
  const std::int64_t n = deck.n_particles;
  std::vector<std::vector<std::vector<Particle>>> local(
      static_cast<std::size_t>(chunks),
      std::vector<std::vector<Particle>>(n_banks));
#pragma omp parallel for schedule(static) num_threads(chunks)
  for (std::int32_t chunk = 0; chunk < chunks; ++chunk) {
    auto& mine = local[static_cast<std::size_t>(chunk)];
    const std::int64_t begin = n * chunk / chunks;
    const std::int64_t end = n * (chunk + 1) / chunks;
    for (std::int64_t gid = begin; gid < end; ++gid) {
      const Particle p =
          sample_birth(deck, mesh, static_cast<std::uint64_t>(gid));
      const std::size_t owner = owner_of(p);
      if (owner < n_banks) mine[owner].push_back(p);
    }
  }
  std::vector<std::vector<Particle>> banks(n_banks);
  for (std::size_t d = 0; d < n_banks; ++d) {
    std::size_t total = 0;
    for (std::int32_t chunk = 0; chunk < chunks; ++chunk) {
      total += local[static_cast<std::size_t>(chunk)][d].size();
    }
    banks[d].reserve(total);
    for (std::int32_t chunk = 0; chunk < chunks; ++chunk) {
      auto& src = local[static_cast<std::size_t>(chunk)][d];
      banks[d].insert(banks[d].end(), src.begin(), src.end());
    }
  }
  return banks;
}

/// Weighted energy of `count` source particles [eV] — the conserved
/// quantity of a (possibly sharded) bank.
inline double initial_bank_energy(const ProblemDeck& deck,
                                  std::int64_t count) {
  return static_cast<double>(count) * deck.initial_weight *
         deck.initial_energy_ev;
}

/// Total weighted energy in the full source bank [eV].
inline double initial_bank_energy(const ProblemDeck& deck) {
  return initial_bank_energy(deck, deck.n_particles);
}

}  // namespace neutral
