// Particle source initialisation (§IV-F: "random numbers determine the
// initial particle locations and directions within a bounded source
// region").
//
// Each particle's birth state is sampled from its *own* counter-based
// stream, so initialisation is order-independent: it parallelises freely
// and produces identical banks for AoS and SoA layouts.
#pragma once

#include <cstdint>

#include "core/deck.h"
#include "core/particle.h"
#include "mesh/mesh2d.h"
#include "rng/stream.h"
#include "util/error.h"
#include "util/numeric.h"

namespace neutral {

/// Populate `v` with the deck's source, starting at particle id `first_id`:
/// local index i becomes global particle id first_id + i, and every birth
/// draw comes from that id's own counter-based stream.  A shard holding ids
/// [first_id, first_id + v.size()) therefore sources particles identical to
/// the same ids of the full bank — the basis of single-deck sharding
/// (src/batch/shard.h).  Particles are born in state kCensus: the driver
/// flips them to kAlive and assigns dt at the start of each timestep.
template <class View>
void initialise_particles(const View& v, const ProblemDeck& deck,
                          const StructuredMesh2D& mesh,
                          std::int64_t first_id = 0) {
  NEUTRAL_REQUIRE(first_id >= 0, "first particle id must be non-negative");
  NEUTRAL_REQUIRE(
      first_id + static_cast<std::int64_t>(v.size()) <= deck.n_particles,
      "particle span must fit inside deck.n_particles");
  NEUTRAL_REQUIRE(deck.src_x1 >= deck.src_x0 && deck.src_y1 >= deck.src_y0,
                  "source rectangle must be well-formed");
  const auto n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto gid = static_cast<std::uint64_t>(first_id + i);
    rng::ParticleStream stream(deck.seed, gid);
    // Fixed draw order: x, y, angle, mfp — 4 draws; the history resumes the
    // stream from counter 4.
    const double x = stream.next_range(deck.src_x0, deck.src_x1);
    const double y = stream.next_range(deck.src_y0, deck.src_y1);
    const double theta = stream.next_range(0.0, kTwoPi);
    const double mfp = stream.next_exponential();

    v.x(i) = x;
    v.y(i) = y;
    v.omega_x(i) = std::cos(theta);
    v.omega_y(i) = std::sin(theta);
    v.energy(i) = deck.initial_energy_ev;
    v.weight(i) = deck.initial_weight;
    v.dt_to_census(i) = 0.0;
    v.mfp_to_collision(i) = mfp;
    const CellIndex c = mesh.locate(x, y);
    v.cellx(i) = c.x;
    v.celly(i) = c.y;
    v.xs_index(i) = 0;
    v.state(i) = ParticleState::kCensus;
    v.rng_counter(i) = stream.counter();
    v.id(i) = gid;
  }
}

/// Weighted energy of `count` source particles [eV] — the conserved
/// quantity of a (possibly sharded) bank.
inline double initial_bank_energy(const ProblemDeck& deck,
                                  std::int64_t count) {
  return static_cast<double>(count) * deck.initial_weight *
         deck.initial_energy_ev;
}

/// Total weighted energy in the full source bank [eV].
inline double initial_bank_energy(const ProblemDeck& deck) {
  return initial_bank_energy(deck, deck.n_particles);
}

}  // namespace neutral
