// Conservation validation (§IV-C: reflective boundaries "make it
// straightforward to track the conservation of the particle population").
//
// Two invariants hold exactly (up to floating-point reassociation):
//
//   1. Energy: initial bank energy == released energy + in-flight energy.
//      `released` accumulates every weighted deposit the collision/death
//      handlers make; `in-flight` is the weighted energy of the survivors.
//   2. Tally consistency: the mesh tally total equals released energy plus
//      the track-length heating estimator — everything flushed, nothing
//      lost or double-counted.
//
// Population is also conserved: censuses + deaths == particle count, since
// reflective boundaries admit no leakage.
#pragma once

#include <cstdint>

#include "core/counters.h"
#include "core/particle.h"
#include "util/numeric.h"

namespace neutral {

struct EnergyBudget {
  double initial = 0.0;       ///< bank energy at t=0 [eV]
  double released = 0.0;      ///< deposited by collisions/terminations [eV]
  double in_flight = 0.0;     ///< weighted energy of surviving particles [eV]
  double tally_total = 0.0;   ///< sum over the tally mesh [eV]
  double path_heating = 0.0;  ///< track-length estimator total [eV]
  /// Russian-roulette bookkeeping: boosts add energy, kills remove it
  /// (equal in expectation; both zero with roulette disabled).
  double roulette_gained = 0.0;
  double roulette_killed = 0.0;

  /// Relative error of invariant 1 (extended for roulette):
  /// initial + gained - killed == released + in_flight, exactly.
  [[nodiscard]] double conservation_error() const {
    if (initial == 0.0) return 0.0;
    return std::fabs(initial + roulette_gained - roulette_killed - released -
                     in_flight) /
           initial;
  }

  /// Relative error of invariant 2.
  [[nodiscard]] double tally_consistency_error() const {
    const double expect = released + path_heating;
    const double scale = std::fmax(std::fabs(expect), std::fabs(tally_total));
    if (scale == 0.0) return 0.0;
    return std::fabs(tally_total - expect) / scale;
  }

  /// Both invariants within `tol` (relative).
  [[nodiscard]] bool conserved(double tol = 1.0e-9) const {
    return conservation_error() <= tol && tally_consistency_error() <= tol;
  }

  /// Merge another budget in (shard reduction): every term is extensive, so
  /// a sum of conserved budgets is conserved.
  EnergyBudget& operator+=(const EnergyBudget& o) {
    initial += o.initial;
    released += o.released;
    in_flight += o.in_flight;
    tally_total += o.tally_total;
    path_heating += o.path_heating;
    roulette_gained += o.roulette_gained;
    roulette_killed += o.roulette_killed;
    return *this;
  }
};

/// Weighted in-flight energy of all non-dead particles.
template <class View>
double in_flight_energy(const View& v) {
  KahanSum sum;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.state(i) != ParticleState::kDead) {
      sum.add(v.weight(i) * v.energy(i));
    }
  }
  return sum.value();
}

/// Number of non-dead particles.
template <class View>
std::int64_t population(const View& v) {
  std::int64_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.state(i) != ParticleState::kDead) ++n;
  }
  return n;
}

/// Order-independent positional checksum of a field: catches deposits
/// landing in the wrong cells even when the total matches.  Mixes each
/// index through a splitmix64-style hash into a deterministic weight.
double positional_checksum(const double* field, std::int64_t n);

}  // namespace neutral
