#include "core/validation.h"

namespace neutral {

namespace {
/// splitmix64 finaliser: cheap, well-mixed 64-bit hash.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

double positional_checksum(const double* field, std::int64_t n) {
  KahanSum sum;
  for (std::int64_t i = 0; i < n; ++i) {
    // Map the hash to a weight in [0.5, 1.5): never zero, so every cell
    // contributes; position-dependent, so swaps change the sum.
    const double w =
        0.5 + static_cast<double>(mix(static_cast<std::uint64_t>(i)) >> 11) *
                  0x1.0p-53;
    sum.add(field[i] * w);
  }
  return sum.value();
}

}  // namespace neutral
