// TransportContext: the read-mostly world the kernels execute against.
#pragma once

#include <cstdint>

#include "core/tally.h"
#include "mesh/density_field.h"
#include "mesh/mesh2d.h"
#include "mesh/window.h"
#include "xs/table.h"

namespace neutral {

class PhaseProfiler;
class UnionisedXsGrid;

/// Bundles the mesh, fields, nuclear data and run policies.  All pointers
/// are non-owning; the Simulation facade guarantees their lifetimes.
struct TransportContext {
  const StructuredMesh2D* mesh = nullptr;
  const DensityField* density = nullptr;
  const CrossSectionTable* xs_capture = nullptr;
  const CrossSectionTable* xs_scatter = nullptr;
  EnergyTally* tally = nullptr;

  XsLookup lookup = XsLookup::kCachedLinear;
  /// Per-World unionised energy grid serving XsLookup::kUnionised (one
  /// fused search for both tables).  Null for hand-built contexts: the
  /// lookup then degrades to the table's bucketed index, same bin.
  const UnionisedXsGrid* xs_union = nullptr;

  /// Batched RNG draws in the collision handler (rng::BatchedStream):
  /// bit-identical draw sequence, ~one interleaved cipher call per 4 draws.
  bool rng_batch = false;
  /// Select-based (branch-light) event search and facet math: identical
  /// floating-point arithmetic, no direction-sign branch mispredicts.
  bool branchless_events = false;

  double molar_mass_g_mol = 1.0;
  double mass_number = 100.0;
  double min_energy_ev = 1.0;
  double min_weight = 1.0e-10;
  /// Russian-roulette survival probability applied at the weight cutoff
  /// (§IV-E variance reduction).  0 disables roulette: the history simply
  /// terminates, depositing its remaining energy (the paper's behaviour).
  double roulette_survival = 0.0;
  std::uint64_t seed = 42;

  /// Optional §VI-A phase profiler (null disables all probes).
  PhaseProfiler* profiler = nullptr;

  /// Mesh window the density/tally storage covers.  Inactive (the default
  /// for hand-built contexts) falls back to mesh->flat_index; Simulation
  /// always sets it — to the full mesh for ordinary runs, to its slab for
  /// domain-decomposed runs.  Cell indices stay global either way.
  DomainWindow window;
  /// Park particles crossing out of `window` as kMigrating instead of
  /// refreshing cell state (domain decomposition only).
  bool migrate = false;
};

}  // namespace neutral
