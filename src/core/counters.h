// Event counters accumulated per thread during transport.
//
// These feed the grind-time table (§VI-A), the energy-conservation
// validation, and the machine-model simulator's event statistics.
#pragma once

#include <cstdint>

namespace neutral {

struct EventCounters {
  std::uint64_t facets = 0;        ///< facet crossings (incl. reflections)
  std::uint64_t reflections = 0;   ///< boundary reflections (subset of facets)
  std::uint64_t collisions = 0;    ///< collision events of either kind
  std::uint64_t absorptions = 0;   ///< collisions sampled as absorption
  std::uint64_t scatters = 0;      ///< collisions sampled as elastic scatter
  std::uint64_t censuses = 0;      ///< histories reaching census this step
  std::uint64_t deaths_energy = 0; ///< terminations by the energy cutoff
  std::uint64_t deaths_weight = 0; ///< terminations by the weight cutoff
  std::uint64_t tally_flushes = 0; ///< atomic RMW operations on the tally
  std::uint64_t xs_lookups = 0;    ///< microscopic table interpolations
  std::uint64_t rng_draws = 0;     ///< uniforms consumed

  std::uint64_t roulette_survivals = 0; ///< weight-boosted survivors (§IV-E)
  std::uint64_t roulette_kills = 0;     ///< histories ended by roulette
  /// Facet crossings parked for subdomain migration (domain decomposition;
  /// zero for whole-mesh runs).  Each is also counted in `facets`, exactly
  /// as the same crossing is in the undecomposed run.
  std::uint64_t migrations = 0;

  /// Weighted energy released into the mesh by collisions/terminations [eV];
  /// conserved against the initial bank (see validation.h).
  double released_energy = 0.0;
  /// Track-length heating-response estimator total [eV*response].
  double path_heating = 0.0;
  /// Energy created by roulette weight boosts [eV] (conserved only in
  /// expectation; tracked exactly for the extended energy budget).
  double roulette_gained_energy = 0.0;
  /// Energy removed by roulette kills [eV] (not deposited).
  double roulette_killed_energy = 0.0;

  EventCounters& operator+=(const EventCounters& o) {
    facets += o.facets;
    reflections += o.reflections;
    collisions += o.collisions;
    absorptions += o.absorptions;
    scatters += o.scatters;
    censuses += o.censuses;
    deaths_energy += o.deaths_energy;
    deaths_weight += o.deaths_weight;
    tally_flushes += o.tally_flushes;
    xs_lookups += o.xs_lookups;
    rng_draws += o.rng_draws;
    roulette_survivals += o.roulette_survivals;
    roulette_kills += o.roulette_kills;
    migrations += o.migrations;
    released_energy += o.released_energy;
    path_heating += o.path_heating;
    roulette_gained_energy += o.roulette_gained_energy;
    roulette_killed_energy += o.roulette_killed_energy;
    return *this;
  }

  [[nodiscard]] std::uint64_t total_events() const {
    return facets + collisions + censuses;
  }
};

}  // namespace neutral
