// The per-event transport step — the single source of truth for the physics.
//
// Both parallelisation schemes (§V) and the machine-model simulator execute
// this code:
//   * Over Particles calls advance_one_event in a tight loop per history,
//     keeping FlightState in registers (§VII-A.2 "caching occurs in
//     registers").
//   * Over Events persists FlightState into per-particle arrays between its
//     breadth-first kernels — the exact state-streaming the paper blames
//     for the scheme's memory traffic.
//   * The SIMT simulator runs it lane-by-lane with RecordingHooks.
//
// Because every random draw comes from the particle's own counter-based
// stream, the schemes sample bit-identical histories — the cross-scheme
// equivalence tests depend on this file alone.
#pragma once

#include <cmath>

#include "core/constants.h"
#include "core/context.h"
#include "core/counters.h"
#include "core/hooks.h"
#include "core/particle.h"
#include "mesh/facet.h"
#include "rng/stream.h"
#include "util/numeric.h"
#include "xs/union_grid.h"

namespace neutral {

/// Register-cached flight state: everything derivable from the particle's
/// (energy, cell) that would otherwise be recomputed per event.
struct FlightState {
  double micro_a = 0.0;        ///< microscopic capture XS [barns] at E
  double micro_s = 0.0;        ///< microscopic scatter XS [barns] at E
  double n = 0.0;              ///< number density [1/cm^3] of current cell
  double sigma_a = 0.0;        ///< macroscopic capture XS [1/cm]
  double sigma_t = 0.0;        ///< macroscopic total XS [1/cm]
  double speed = 0.0;          ///< cm/s
  double pending_deposit = 0.0;///< energy awaiting flush to flat_cell
  std::int64_t flat_cell = 0;  ///< tally target (the cell being traversed)
};

namespace detail {

inline double speed_from_energy(double ev) {
  return kSpeedPerSqrtEv * std::sqrt(ev);
}

/// Recompute macroscopic cross sections from cached microscopic values and
/// the cached number density.
inline void refresh_macroscopic(FlightState& fs) {
  fs.sigma_a = macroscopic(fs.micro_a, fs.n);
  fs.sigma_t = fs.sigma_a + macroscopic(fs.micro_s, fs.n);
}

}  // namespace detail

/// Reload the microscopic cross sections after an energy change.  Only
/// collisions change energy, so only collisions pay the table walk (§VI-A).
template <class View, class Hooks>
inline void refresh_cross_sections(const View& v, std::size_t i,
                                   const TransportContext& ctx,
                                   FlightState& fs, EventCounters& ec,
                                   Hooks& hooks) {
  std::int32_t idx = v.xs_index(i);
  const std::int32_t before = idx;
  const double e = v.energy(i);
  if (ctx.lookup == XsLookup::kUnionised && ctx.xs_union != nullptr) {
    // Fused path: one O(1) direct-index search serves both reactions, and
    // the interpolation reads one interleaved 32-byte run instead of two
    // tables.  Bit-identical to the two calls below (union_grid.h).
    ctx.xs_union->microscopic_pair(e, idx, fs.micro_a, fs.micro_s);
  } else {
    fs.micro_a = ctx.xs_capture->microscopic(e, ctx.lookup, idx);
    fs.micro_s = ctx.xs_scatter->microscopic(e, ctx.lookup, idx);
  }
  v.xs_index(i) = idx;
  ec.xs_lookups += 2;
  if constexpr (Hooks::kTracing) {
    if (ctx.lookup == XsLookup::kUnionised && ctx.xs_union != nullptr) {
      // Fused grid: one O(1) direct-index load, then a walk of at most one
      // step (union_grid.h), serving both reactions — there is no
      // hint-relative walk and no second-table pass to charge.
      hooks.xs_walk(idx != before ? 1 : 0, idx);
    } else {
      const std::int32_t steps = idx > before ? idx - before : before - idx;
      hooks.xs_walk(steps, idx);
      hooks.xs_walk(steps > 0 ? 1 : 0, idx);  // second table: warm walk
    }
  }
  detail::refresh_macroscopic(fs);
  fs.speed = detail::speed_from_energy(e);
}

/// Reload the cell-local density after a cell change (facet crossing) and
/// rebuild the macroscopic cross sections.  No table lookup: the cached
/// microscopic values remain valid (§VII-A.2).
template <class View, class Hooks>
inline void refresh_cell(const View& v, std::size_t i,
                         const TransportContext& ctx, FlightState& fs,
                         Hooks& hooks) {
  const CellIndex c{v.cellx(i), v.celly(i)};
  // Window-local storage index: same multiply-add as flat_index when the
  // context carries the full-mesh window, a slab offset when domain
  // decomposed.  Hand-built contexts without a window keep the old path.
  fs.flat_cell = ctx.window.active() ? ctx.window.local_flat(c)
                                     : ctx.mesh->flat_index(c);
  hooks.density_load(fs.flat_cell);
  const double rho = ctx.density->g_cm3(fs.flat_cell);
  fs.n = number_density(rho, ctx.molar_mass_g_mol);
  detail::refresh_macroscopic(fs);
}

/// Build the full flight state for a particle entering transport (history
/// start, or re-gather in the Over Events scheme).
template <class View, class Hooks>
inline void load_flight_state(const View& v, std::size_t i,
                              const TransportContext& ctx, FlightState& fs,
                              EventCounters& ec, Hooks& hooks) {
  fs.pending_deposit = 0.0;
  refresh_cross_sections(v, i, ctx, fs, ec, hooks);
  refresh_cell(v, i, ctx, fs, hooks);
}

/// Flush the register-accumulated deposit onto the tally mesh — the atomic
/// read-modify-write the paper identifies as the dominant serialisation
/// (§V-C, §VI-F).  Called on facet, census and death sites.
template <class View, class Hooks>
inline void flush_tally(const View&, std::size_t, const TransportContext& ctx,
                        FlightState& fs, EventCounters& ec,
                        std::int32_t thread, Hooks& hooks) {
  if (fs.pending_deposit != 0.0) {
    hooks.phase_start(Phase::kTally);
    ctx.tally->deposit(fs.flat_cell, fs.pending_deposit, thread);
    hooks.tally_flush(fs.flat_cell);
    ++ec.tally_flushes;
    fs.pending_deposit = 0.0;
    hooks.phase_stop(Phase::kTally);
  }
}

namespace detail {

/// Terminate a history and flush its tally register.  Cutoff deaths
/// deposit their remaining energy (§IV-E); roulette kills do not — the
/// removed energy is balanced by the weight boosts of roulette survivors
/// (in expectation; both tracked exactly in the counters).
template <class View, class Hooks>
inline void kill_particle(const View& v, std::size_t i,
                          const TransportContext& ctx, FlightState& fs,
                          EventCounters& ec, std::int32_t thread,
                          Hooks& hooks, bool deposit_remaining = true) {
  if (deposit_remaining) {
    const double remaining = v.weight(i) * v.energy(i);
    fs.pending_deposit += remaining;
    ec.released_energy += remaining;
  }
  v.state(i) = ParticleState::kDead;
  flush_tally(v, i, ctx, fs, ec, thread, hooks);
}

}  // namespace detail

namespace detail {

/// Collision body, templated on the stream class so the RNG batching
/// option swaps rng::ParticleStream for rng::BatchedStream without a
/// second copy of the physics.  Both classes consume the identical
/// (counter, 0)/word-0 draw sequence, so the choice can never move a
/// checksum — only how many cipher rounds the draws cost.
///
/// The stream is passed in by the caller: per-collision construction for
/// the breadth-first kernels, or a history-lifetime BatchedStream from the
/// Over Particles loop whose buffered block survives across collisions.
/// The caller must hand over a stream positioned at v.rng_counter(i) —
/// counter-based draws depend only on the counter, never on buffer
/// alignment, so both call shapes sample identical values.
template <class Stream, class View, class Hooks>
inline void handle_collision_with(Stream& stream, const View& v, std::size_t i,
                                  const TransportContext& ctx, FlightState& fs,
                                  EventCounters& ec, std::int32_t thread,
                                  Hooks& hooks) {
  hooks.phase_start(Phase::kCollision);
  ++ec.collisions;
  const std::uint64_t counter_before = v.rng_counter(i);

  const double p_absorb = fs.sigma_t > 0.0 ? fs.sigma_a / fs.sigma_t : 0.0;
  bool died = false;
  if (stream.next() < p_absorb) {
    // Absorption with implicit capture (§IV-E): the weighted batch loses
    // the absorbed fraction; the survivors continue unchanged.
    ++ec.absorptions;
    const double w = v.weight(i);
    const double new_w = w * (1.0 - p_absorb);
    const double dep = (w - new_w) * v.energy(i);
    fs.pending_deposit += dep;
    ec.released_energy += dep;
    v.weight(i) = new_w;
    if (new_w < ctx.min_weight) {
      if (ctx.roulette_survival > 0.0) {
        // Russian roulette (§IV-E): survive with probability p carrying
        // weight w/p, else terminate without depositing — unbiased in
        // expectation, fewer low-weight histories tracked.
        if (stream.next() < ctx.roulette_survival) {
          const double boosted = new_w / ctx.roulette_survival;
          ec.roulette_gained_energy += (boosted - new_w) * v.energy(i);
          v.weight(i) = boosted;
          ++ec.roulette_survivals;
        } else {
          ec.roulette_killed_energy += new_w * v.energy(i);
          ++ec.roulette_kills;
          ++ec.deaths_weight;
          ec.rng_draws += stream.counter() - counter_before;
          v.rng_counter(i) = stream.counter();
          hooks.phase_stop(Phase::kCollision);
          detail::kill_particle(v, i, ctx, fs, ec, thread, hooks,
                                /*deposit_remaining=*/false);
          return;
        }
      } else {
        ++ec.deaths_weight;
        died = true;
      }
    }
  } else {
    // Elastic scatter: sample the centre-of-mass deflection, derive the
    // outgoing energy and the laboratory deflection angle.  Three sqrt
    // calls, as the paper notes (§VI-A).
    ++ec.scatters;
    const double a = ctx.mass_number;
    const double mu_cm = 1.0 - 2.0 * stream.next();
    const double e0 = v.energy(i);
    const double e1 = e0 * (a * a + 2.0 * a * mu_cm + 1.0) / sqr(a + 1.0);
    const double cos_t = 0.5 * ((a + 1.0) * std::sqrt(e1 / e0) -
                                (a - 1.0) * std::sqrt(e0 / e1));
    double sin_t = std::sqrt(std::fmax(0.0, 1.0 - cos_t * cos_t));
    // 2D kinematics: the scattering plane collapses to a rotation whose
    // sense is equiprobable.
    if (stream.next() < 0.5) sin_t = -sin_t;
    const double ox = v.omega_x(i);
    const double oy = v.omega_y(i);
    v.omega_x(i) = ox * cos_t - oy * sin_t;
    v.omega_y(i) = ox * sin_t + oy * cos_t;

    const double dep = v.weight(i) * (e0 - e1);
    fs.pending_deposit += dep;
    ec.released_energy += dep;
    v.energy(i) = e1;
    // ALU-work hint: 3 sqrts + 2 divides + the kinematics arithmetic are
    // long-latency serial operations (~140 scalar cycles) — the cost the
    // Over Events collision kernel amortises across SIMD lanes (§VII-B).
    hooks.flops(140);
    if (e1 < ctx.min_energy_ev) {
      ++ec.deaths_energy;
      died = true;
    } else {
      // Energy changed: the microscopic table walk (§VI-A cached search).
      refresh_cross_sections(v, i, ctx, fs, ec, hooks);
    }
  }

  if (died) {
    ec.rng_draws += stream.counter() - counter_before;
    v.rng_counter(i) = stream.counter();
    hooks.phase_stop(Phase::kCollision);
    detail::kill_particle(v, i, ctx, fs, ec, thread, hooks);
    return;
  }

  // Draw the number of mean-free-paths until the next collision (§IV-F).
  v.mfp_to_collision(i) = stream.next_exponential();
  hooks.flops(25);  // log() in the exponential deviate
  const std::uint64_t draws = stream.counter() - counter_before;
  ec.rng_draws += draws;
  hooks.rng_draw(static_cast<std::int32_t>(draws));
  v.rng_counter(i) = stream.counter();
  hooks.phase_stop(Phase::kCollision);
}

template <class Stream, class View, class Hooks>
inline void handle_collision_impl(const View& v, std::size_t i,
                                  const TransportContext& ctx, FlightState& fs,
                                  EventCounters& ec, std::int32_t thread,
                                  Hooks& hooks) {
  Stream stream(ctx.seed, v.id(i), v.rng_counter(i));
  handle_collision_with(stream, v, i, ctx, fs, ec, thread, hooks);
}

}  // namespace detail

/// Handle a collision event (§IV-A): implicit-capture absorption or elastic
/// scatter off a nucleus of mass number A, then draw the mean-free-paths to
/// the next collision.  The particle is already at the collision site.
template <class View, class Hooks>
inline void handle_collision(const View& v, std::size_t i,
                             const TransportContext& ctx, FlightState& fs,
                             EventCounters& ec, std::int32_t thread,
                             Hooks& hooks) {
  if (ctx.rng_batch) {
    detail::handle_collision_impl<rng::BatchedStream>(v, i, ctx, fs, ec,
                                                      thread, hooks);
  } else {
    detail::handle_collision_impl<rng::ParticleStream>(v, i, ctx, fs, ec,
                                                       thread, hooks);
  }
}

/// Handle a facet encounter (§IV-A): flush the tally register for the cell
/// being left, then either step into the neighbour cell (reloading the
/// cached density) or reflect off the domain boundary (§IV-C).
template <class View, class Hooks>
inline void handle_facet(const View& v, std::size_t i,
                         const TransportContext& ctx,
                         const FacetIntersection& facet, FlightState& fs,
                         EventCounters& ec, std::int32_t thread,
                         Hooks& hooks) {
  ++ec.facets;
  // Every facet encounter flushes the deposition register (§V-C).
  flush_tally(v, i, ctx, fs, ec, thread, hooks);

  hooks.phase_start(Phase::kFacet);
  CellIndex c{v.cellx(i), v.celly(i)};
  const bool reflected = apply_facet_crossing(facet, c, v.omega_x(i),
                                              v.omega_y(i));
  hooks.flops(4);
  if (reflected) {
    ++ec.reflections;
    hooks.phase_stop(Phase::kFacet);
    return;  // same cell: cached density still valid
  }
  v.cellx(i) = c.x;
  v.celly(i) = c.y;
  if (ctx.migrate && !ctx.window.contains(c)) {
    // The neighbour cell belongs to another subdomain.  The record is now a
    // complete mid-flight checkpoint (tally register already flushed above,
    // clocks decayed, RNG counter current): park it for re-banking on the
    // owner (batch::run_domains drains these between transport rounds).
    ++ec.migrations;
    v.state(i) = ParticleState::kMigrating;
    hooks.phase_stop(Phase::kFacet);
    return;
  }
  refresh_cell(v, i, ctx, fs, hooks);
  hooks.phase_stop(Phase::kFacet);
}

/// Handle the census event (§IV-A): the terminal event of the timestep.
template <class View, class Hooks>
inline void handle_census(const View& v, std::size_t i,
                          const TransportContext& ctx, FlightState& fs,
                          EventCounters& ec, std::int32_t thread,
                          Hooks& hooks) {
  hooks.phase_start(Phase::kCensus);
  ++ec.censuses;
  v.dt_to_census(i) = 0.0;
  v.state(i) = ParticleState::kCensus;
  hooks.phase_stop(Phase::kCensus);
  flush_tally(v, i, ctx, fs, ec, thread, hooks);
}

/// Result of the event search: which event comes first, and the facet
/// details in case it is a facet.
struct EventSelection {
  EventType event = EventType::kCensus;
  FacetIntersection facet;
};

/// Find the First Encountered Event (Fig 1), move the particle to the event
/// site, decay the per-event clocks by the distance travelled (§IV-A), and
/// accumulate the track-length heating estimator.  Does NOT dispatch the
/// handler — the Over Events scheme runs the handlers in separate kernels.
template <class View, class Hooks>
inline EventSelection select_and_move(const View& v, std::size_t i,
                                      const TransportContext& ctx,
                                      FlightState& fs, EventCounters& ec,
                                      Hooks& hooks) {
  hooks.phase_start(Phase::kEventSearch);

  // Distances to the three candidate events.
  const double dist_census = fs.speed * v.dt_to_census(i);
  const double dist_collision =
      fs.sigma_t > 0.0 ? v.mfp_to_collision(i) / fs.sigma_t : kInf;
  EventSelection sel;
  sel.facet = ctx.branchless_events
                  ? nearest_facet_branchless(*ctx.mesh, v.x(i), v.y(i),
                                             v.omega_x(i), v.omega_y(i),
                                             {v.cellx(i), v.celly(i)})
                  : nearest_facet(*ctx.mesh, v.x(i), v.y(i), v.omega_x(i),
                                  v.omega_y(i), {v.cellx(i), v.celly(i)});
  hooks.flops(12);

  double dist;
  if (ctx.branchless_events) {
    // Same comparisons and tie-break priority as the chain below, written
    // as selects: the event outcome is data-dependent per particle, so the
    // chain's two branches mispredict across a breadth-first sweep.
    const bool coll =
        dist_collision <= sel.facet.distance && dist_collision <= dist_census;
    const bool facet = sel.facet.distance <= dist_census;
    sel.event = coll ? EventType::kCollision
                     : (facet ? EventType::kFacet : EventType::kCensus);
    dist = coll ? dist_collision
                : (facet ? sel.facet.distance : dist_census);
  } else if (dist_collision <= sel.facet.distance &&
             dist_collision <= dist_census) {
    sel.event = EventType::kCollision;
    dist = dist_collision;
  } else if (sel.facet.distance <= dist_census) {
    sel.event = EventType::kFacet;
    dist = sel.facet.distance;
  } else {
    sel.event = EventType::kCensus;
    dist = dist_census;
  }

  // Move to the event site and decay the other events' clocks by the
  // distance travelled (§IV-A).
  v.x(i) += v.omega_x(i) * dist;
  v.y(i) += v.omega_y(i) * dist;
  v.dt_to_census(i) -= dist / fs.speed;
  v.mfp_to_collision(i) -= dist * fs.sigma_t;

  // Track-length heating-response estimator for the traversed segment; the
  // segment never spans a facet, so it belongs wholly to the current cell.
  const double heating = v.weight(i) * v.energy(i) * fs.sigma_a * dist;
  fs.pending_deposit += heating;
  ec.path_heating += heating;
  hooks.flops(10);
  hooks.event(sel.event);
  hooks.phase_stop(Phase::kEventSearch);
  return sel;
}

/// Advance one particle by exactly one event: search + move + handler.
/// Returns the event type executed.
///
/// `carried` (optional) is a history-lifetime batched RNG stream positioned
/// at the particle's counter; when present, collisions draw from it instead
/// of constructing a stream per collision, so one 4-draw refill serves
/// consecutive collisions of the same history.
template <class View, class Hooks>
inline EventType advance_one_event(const View& v, std::size_t i,
                                   const TransportContext& ctx,
                                   FlightState& fs, EventCounters& ec,
                                   std::int32_t thread, Hooks& hooks,
                                   rng::BatchedStream* carried = nullptr) {
  const EventSelection sel = select_and_move(v, i, ctx, fs, ec, hooks);
  switch (sel.event) {
    case EventType::kCollision:
      if (carried != nullptr) {
        detail::handle_collision_with(*carried, v, i, ctx, fs, ec, thread,
                                      hooks);
      } else {
        handle_collision(v, i, ctx, fs, ec, thread, hooks);
      }
      break;
    case EventType::kFacet:
      handle_facet(v, i, ctx, sel.facet, fs, ec, thread, hooks);
      break;
    case EventType::kCensus:
      handle_census(v, i, ctx, fs, ec, thread, hooks);
      break;
  }
  return sel.event;
}

/// Run one particle's history from its current state to census/death — the
/// Over Particles inner loop (Listing 1).
template <class View, class Hooks>
inline void run_history(const View& v, std::size_t i,
                        const TransportContext& ctx, EventCounters& ec,
                        std::int32_t thread, Hooks& hooks) {
  if (v.state(i) != ParticleState::kAlive) return;
  FlightState fs;
  load_flight_state(v, i, ctx, fs, ec, hooks);
  if (ctx.rng_batch) {
    // One batched buffer for the whole history: consecutive collisions
    // drain the same 4-draw block, so the interleaved refill amortises
    // across events instead of being paid once per collision.
    rng::BatchedStream stream(ctx.seed, v.id(i), v.rng_counter(i));
    while (v.state(i) == ParticleState::kAlive) {
      advance_one_event(v, i, ctx, fs, ec, thread, hooks, &stream);
    }
  } else {
    while (v.state(i) == ParticleState::kAlive) {
      advance_one_event(v, i, ctx, fs, ec, thread, hooks);
    }
  }
}

}  // namespace neutral
