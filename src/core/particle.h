// Particle storage: Array-of-Structures and Structure-of-Arrays (paper §VI-D).
//
// The data-structure experiment (Fig 5) compares an AoS record — one cache
// block per particle, ideal for the Over Particles scheme where a thread
// owns a whole history — against SoA — separate field arrays, ideal for
// coalesced/vectorised access in the Over Events scheme.
//
// Transport kernels are written once against a *view* concept: `AosView`
// and `SoaView` expose identical per-field accessors, so the layout flip is
// a template parameter, not a code fork.
#pragma once

#include <cstdint>

#include "util/aligned.h"

namespace neutral {

/// Particle storage layout (§VI-D, Fig 5).  Owned by ParticleBank
/// (core/bank.h); declared here with the storage types it selects between.
enum class Layout : std::uint8_t {
  kAoS = 0,  ///< array of particle records
  kSoA = 1,  ///< one array per field
};

/// Life-cycle state of a particle within a timestep.
enum class ParticleState : std::uint8_t {
  kCensus = 0,  ///< alive, waiting for the next timestep (or newly born)
  kAlive = 1,   ///< in flight within the current timestep
  kDead = 2,    ///< history terminated (energy/weight cutoff)
  /// Mid-flight, parked at a subdomain facet awaiting re-banking on the
  /// owning subdomain (domain decomposition — src/batch/domain.h).  The
  /// particle record is a complete checkpoint: position at the facet,
  /// clocks already decayed, cell index stepped into the neighbour cell,
  /// RNG counter current.
  kMigrating = 3,
};

/// AoS particle record (~96 bytes, 1.5 cache lines).
///
/// Fields mirror the mini-app: position, direction, energy, statistical
/// weight, the per-event clocks (time to census, mean-free-paths to
/// collision — §IV-A "individual timers for each event"), mesh coordinates,
/// the cached cross-section table index (§VI-A) and the counter-based RNG
/// stream state (§IV-F).
struct Particle {
  double x = 0.0;                 ///< cm
  double y = 0.0;                 ///< cm
  double omega_x = 0.0;           ///< direction cosine (unit vector)
  double omega_y = 0.0;
  double energy = 0.0;            ///< eV
  double weight = 0.0;            ///< statistical weight (§IV-E)
  double dt_to_census = 0.0;      ///< s remaining in this timestep
  double mfp_to_collision = 0.0;  ///< mean-free-paths to next collision
  std::int32_t cellx = 0;         ///< mesh cell index (source of truth)
  std::int32_t celly = 0;
  std::int32_t xs_index = 0;      ///< cached energy-bin hint (§VI-A)
  ParticleState state = ParticleState::kCensus;
  std::uint64_t rng_counter = 0;  ///< counter-based stream position
  std::uint64_t id = 0;           ///< keys the RNG stream; stable for life
};

/// SoA particle container: one aligned array per field.
class ParticleSoA {
 public:
  explicit ParticleSoA(std::size_t n = 0) { resize(n); }

  void resize(std::size_t n) {
    x.resize(n); y.resize(n);
    omega_x.resize(n); omega_y.resize(n);
    energy.resize(n); weight.resize(n);
    dt_to_census.resize(n); mfp_to_collision.resize(n);
    cellx.resize(n); celly.resize(n); xs_index.resize(n);
    state.resize(n, ParticleState::kCensus);
    rng_counter.resize(n); id.resize(n);
  }

  [[nodiscard]] std::size_t size() const { return x.size(); }

  aligned_vector<double> x, y, omega_x, omega_y, energy, weight;
  aligned_vector<double> dt_to_census, mfp_to_collision;
  aligned_vector<std::int32_t> cellx, celly, xs_index;
  aligned_vector<ParticleState> state;
  aligned_vector<std::uint64_t> rng_counter, id;
};

/// View over a contiguous AoS particle array.
class AosView {
 public:
  AosView(Particle* p, std::size_t n) : p_(p), n_(n) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  double& x(std::size_t i) const { return p_[i].x; }
  double& y(std::size_t i) const { return p_[i].y; }
  double& omega_x(std::size_t i) const { return p_[i].omega_x; }
  double& omega_y(std::size_t i) const { return p_[i].omega_y; }
  double& energy(std::size_t i) const { return p_[i].energy; }
  double& weight(std::size_t i) const { return p_[i].weight; }
  double& dt_to_census(std::size_t i) const { return p_[i].dt_to_census; }
  double& mfp_to_collision(std::size_t i) const { return p_[i].mfp_to_collision; }
  std::int32_t& cellx(std::size_t i) const { return p_[i].cellx; }
  std::int32_t& celly(std::size_t i) const { return p_[i].celly; }
  std::int32_t& xs_index(std::size_t i) const { return p_[i].xs_index; }
  ParticleState& state(std::size_t i) const { return p_[i].state; }
  std::uint64_t& rng_counter(std::size_t i) const { return p_[i].rng_counter; }
  std::uint64_t& id(std::size_t i) const { return p_[i].id; }

 private:
  Particle* p_;
  std::size_t n_;
};

/// View over a ParticleSoA.
class SoaView {
 public:
  explicit SoaView(ParticleSoA& s) : s_(&s) {}

  [[nodiscard]] std::size_t size() const { return s_->size(); }

  double& x(std::size_t i) const { return s_->x[i]; }
  double& y(std::size_t i) const { return s_->y[i]; }
  double& omega_x(std::size_t i) const { return s_->omega_x[i]; }
  double& omega_y(std::size_t i) const { return s_->omega_y[i]; }
  double& energy(std::size_t i) const { return s_->energy[i]; }
  double& weight(std::size_t i) const { return s_->weight[i]; }
  double& dt_to_census(std::size_t i) const { return s_->dt_to_census[i]; }
  double& mfp_to_collision(std::size_t i) const { return s_->mfp_to_collision[i]; }
  std::int32_t& cellx(std::size_t i) const { return s_->cellx[i]; }
  std::int32_t& celly(std::size_t i) const { return s_->celly[i]; }
  std::int32_t& xs_index(std::size_t i) const { return s_->xs_index[i]; }
  ParticleState& state(std::size_t i) const { return s_->state[i]; }
  std::uint64_t& rng_counter(std::size_t i) const { return s_->rng_counter[i]; }
  std::uint64_t& id(std::size_t i) const { return s_->id[i]; }

 private:
  ParticleSoA* s_;
};

/// Gather slot `i` of any view into a canonical AoS record — the wire
/// format particle checkpoints travel in between banks (shard hand-off,
/// subdomain migration), whatever layout either side stores.
template <class View>
inline Particle read_record(const View& v, std::size_t i) {
  Particle p;
  p.x = v.x(i);
  p.y = v.y(i);
  p.omega_x = v.omega_x(i);
  p.omega_y = v.omega_y(i);
  p.energy = v.energy(i);
  p.weight = v.weight(i);
  p.dt_to_census = v.dt_to_census(i);
  p.mfp_to_collision = v.mfp_to_collision(i);
  p.cellx = v.cellx(i);
  p.celly = v.celly(i);
  p.xs_index = v.xs_index(i);
  p.state = v.state(i);
  p.rng_counter = v.rng_counter(i);
  p.id = v.id(i);
  return p;
}

/// Scatter a canonical record into slot `i` of any view (the inverse
/// boundary conversion).
template <class View>
inline void write_record(const View& v, std::size_t i, const Particle& p) {
  v.x(i) = p.x;
  v.y(i) = p.y;
  v.omega_x(i) = p.omega_x;
  v.omega_y(i) = p.omega_y;
  v.energy(i) = p.energy;
  v.weight(i) = p.weight;
  v.dt_to_census(i) = p.dt_to_census;
  v.mfp_to_collision(i) = p.mfp_to_collision;
  v.cellx(i) = p.cellx;
  v.celly(i) = p.celly;
  v.xs_index(i) = p.xs_index;
  v.state(i) = p.state;
  v.rng_counter(i) = p.rng_counter;
  v.id(i) = p.id;
}

/// Copy one slot of a view onto another slot (bank compaction).
template <class View>
inline void copy_record(const View& v, std::size_t dst, std::size_t src) {
  write_record(v, dst, read_record(v, src));
}

}  // namespace neutral
