// Over Events parallelisation scheme (paper §V-B, Listing 2).
//
// Breadth-first traversal: every iteration advances *all* in-flight
// particles by one event through a pipeline of tight kernels —
//
//   1. event search   — compute the time to each event, pick the first
//                       encountered event, move the particle there;
//   2. collisions     — handle every particle whose event is a collision;
//   3. facets         — handle every particle whose event is a facet;
//   4. census         — park particles that reached the end of the step;
//   5. tally drain    — the separate atomic loop (§VI-G workaround).
//
// Properties the paper measures (§V-B, §VII-A): tight vectorisable loops;
// flight state streamed through per-particle arrays instead of registers;
// each kernel visits the whole particle list and masks on the event type
// (gathers); one barrier per kernel instead of one per timestep.
//
// The physics is the same step.h code the Over Particles scheme runs, so
// both schemes sample identical histories.
#pragma once

#include <cstdint>

#include "core/counters.h"
#include "core/context.h"
#include "core/particle.h"
#include "util/aligned.h"

namespace neutral {

struct OverEventsOptions {
  /// Per-kernel `omp simd` toggles — the Fig 8 vectorisation experiment.
  bool simd_event_search = true;
  bool simd_collisions = true;
  bool simd_facets = true;
  /// §VI-A phase accounting via per-kernel wall timers.
  bool record_kernel_times = true;
  /// Sort the pending-event index lists between the search and handler
  /// kernels (counting sort, stable in particle index): each handler then
  /// runs over a dense, homogeneous list instead of masking its way across
  /// the whole population — the event-sorting optimisation the MC/DC line
  /// of work attributes most of its throughput win to.  The sorted
  /// traversal also compacts: a live-candidate list carried between rounds
  /// means search, sort and handlers all skip particles that already hit
  /// census or died, so per-round cost tracks the surviving population
  /// instead of the full bank.  Handler execution order at one thread is
  /// identical to the masked sweeps' (ascending index), so checksums are
  /// bit-identical; default off to preserve the seed traversal.
  bool sort_events = false;
  /// Fuse the event-search and event-handler kernels into one sweep per
  /// round (the second half of the MC/DC-style traversal work started by
  /// sort_events): each round runs search -> handler per candidate with the
  /// flight state still in registers, instead of re-streaming it through
  /// the workspace arrays between the two passes.  The sweep visits the
  /// compacted candidate list in ascending index order, and deposits are
  /// captured per thread into per-event-kind lanes that replay in the
  /// canonical [collisions | facets | censuses] order before the tally
  /// drain — so the accumulation order, and with it every checksum, is
  /// bit-identical to the unfused traversal (single-thread contract, as
  /// for sort_events).  Takes precedence over sort_events when both are
  /// set.  Default off to preserve the seed traversal.
  ///
  /// Phase/kernel attribution under fusion (the documented charging rule):
  /// each round's sweep wall time is apportioned between event_search and
  /// the three handler kinds by a per-candidate TSC split taken at the
  /// select_and_move return; candidate compaction bookkeeping charges to
  /// event_search, and the deposit replay + drain charge to tally.  RunResult::phases uses the
  /// step.h probe boundaries (select_and_move = event_search, handle_facet
  /// = facet, ...) unchanged, so --profile tables stay comparable across
  /// the flag.  The per-candidate split costs two extra TSC reads per
  /// event, so it only runs when record_kernel_times is set — the
  /// Simulation layer masks that with the profile flag for fused runs.
  bool fuse_rounds = false;
  /// Drive the step.h phase probes with per-thread TimingHooks (requires
  /// ctx.profiler) so RunResult::phases covers the breadth-first scheme
  /// too.  Set by the Simulation layer from SimulationConfig::profile.
  bool profile = false;
  /// Flip kCensus particles to kAlive (with a fresh dt) in the wake-up
  /// prologue — the start of a timestep.  Domain-decomposition resume
  /// rounds set this false so only freshly injected mid-flight immigrants
  /// (already kAlive) stream through the kernels while the residents stay
  /// parked at census.
  bool wake_census = true;
};

/// Wall seconds accumulated per kernel over a timestep (Fig 8 rows).
struct OverEventsKernelTimes {
  double event_search = 0.0;
  double collisions = 0.0;
  double facets = 0.0;
  double census = 0.0;
  double tally = 0.0;
  std::int64_t iterations = 0;

  [[nodiscard]] double total() const {
    return event_search + collisions + facets + census + tally;
  }
  OverEventsKernelTimes& operator+=(const OverEventsKernelTimes& o);
};

/// Workspace: the per-particle flight-state arrays.  In this scheme the
/// state that Over Particles keeps in registers lives in memory and is
/// re-streamed by every kernel — deliberately, per the paper.
class OverEventsWorkspace {
 public:
  explicit OverEventsWorkspace(std::size_t n_particles);

  /// Re-size every flight-state array to `n_particles`.  Contents need not
  /// survive: the drive prologue re-streams the state of every in-flight
  /// particle, so growing the workspace when immigrants arrive mid-timestep
  /// (domain-decomposed Over Events rounds) is just this resize.
  void resize(std::size_t n_particles);

  [[nodiscard]] std::size_t size() const { return micro_a_.size(); }
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  // Cached flight state (mirrors FlightState).
  aligned_vector<double> micro_a_, micro_s_, number_density_;
  aligned_vector<double> sigma_a_, sigma_t_, speed_, pending_;
  aligned_vector<std::int64_t> flat_cell_;
  // Event decision of the current iteration.
  aligned_vector<std::uint8_t> next_event_;  // EventType + kNoEvent sentinel
  // Facet-intersection details carried from search to the facet kernel.
  aligned_vector<double> facet_distance_;
  aligned_vector<std::int8_t> facet_axis_, facet_step_;
  aligned_vector<std::uint8_t> facet_boundary_;
  // Event-sorted traversal (OverEventsOptions::sort_events): particle
  // indices grouped [collisions | facets | censuses], ascending within
  // each group, rebuilt after every search kernel.
  aligned_vector<std::int32_t> event_order_;
  // Compacted live-candidate list for the sorted traversal: the merge of
  // the previous round's collision and facet segments (ascending), i.e.
  // every particle that could still be alive this round.  Census, death
  // and migration drop a particle out of the list permanently, so late
  // rounds touch only the surviving tail instead of the whole population.
  aligned_vector<std::int32_t> candidate_;
};

inline constexpr std::uint8_t kNoEvent = 255;

/// Advance every particle one full timestep, breadth-first.  Kernel times
/// are accumulated into `times` when non-null.
EventCounters over_events_step(const SoaView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times);
EventCounters over_events_step(const AosView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times);

}  // namespace neutral
