#include "core/simulation.h"

#include <omp.h>

#include <algorithm>

#include "core/init.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kOverParticles: return "over-particles";
    case Scheme::kOverEvents: return "over-events";
  }
  return "?";
}

const char* to_string(Layout l) {
  switch (l) {
    case Layout::kAoS: return "AoS";
    case Layout::kSoA: return "SoA";
  }
  return "?";
}

Scheme scheme_from_string(const std::string& s) {
  if (s == "particles" || s == "over-particles") return Scheme::kOverParticles;
  if (s == "events" || s == "over-events") return Scheme::kOverEvents;
  throw Error("unknown scheme '" + s + "' (particles|events)");
}

Layout layout_from_string(const std::string& s) {
  if (s == "aos" || s == "AoS") return Layout::kAoS;
  if (s == "soa" || s == "SoA") return Layout::kSoA;
  throw Error("unknown layout '" + s + "' (aos|soa)");
}

TallyMode tally_mode_from_string(const std::string& s) {
  if (s == "atomic") return TallyMode::kAtomic;
  if (s == "privatized") return TallyMode::kPrivatized;
  if (s == "merge-step") return TallyMode::kPrivatizedMergeEveryStep;
  if (s == "deferred") return TallyMode::kDeferredAtomic;
  throw Error("unknown tally mode '" + s +
              "' (atomic|privatized|merge-step|deferred)");
}

XsLookup lookup_from_string(const std::string& s) {
  if (s == "binary") return XsLookup::kBinarySearch;
  if (s == "cached") return XsLookup::kCachedLinear;
  if (s == "bucketed") return XsLookup::kBucketedIndex;
  if (s == "unionised" || s == "unionized" || s == "union") {
    return XsLookup::kUnionised;
  }
  throw Error("unknown lookup '" + s + "' (binary|cached|bucketed|unionised)");
}

SchedulePolicy schedule_from_string(const std::string& s) {
  const auto comma = s.find(',');
  const std::string kind = comma == std::string::npos ? s : s.substr(0, comma);
  std::int32_t chunk = 0;
  if (comma != std::string::npos) {
    try {
      chunk = std::stoi(s.substr(comma + 1));
    } catch (const std::exception&) {
      throw Error("bad schedule chunk in '" + s + "'");
    }
  }
  if (kind == "static") {
    return chunk > 0 ? SchedulePolicy::static_chunk(chunk)
                     : SchedulePolicy::statics();
  }
  if (kind == "dynamic") return SchedulePolicy::dynamic(chunk);
  if (kind == "guided") return SchedulePolicy::guided(chunk);
  throw Error("unknown schedule '" + s + "' (static|dynamic|guided[,chunk])");
}

Simulation::Simulation(SimulationConfig config)
    : Simulation(std::move(config), nullptr,
                 static_cast<std::vector<Particle>*>(nullptr)) {}

Simulation::Simulation(SimulationConfig config,
                       std::shared_ptr<const World> world)
    : Simulation(std::move(config), std::move(world),
                 static_cast<std::vector<Particle>*>(nullptr)) {}

Simulation::Simulation(SimulationConfig config,
                       std::shared_ptr<const World> world,
                       std::vector<Particle> bank)
    : Simulation(std::move(config), std::move(world), &bank) {}

Simulation::Simulation(SimulationConfig config,
                       std::shared_ptr<const World> world,
                       std::vector<Particle>* prebuilt)
    : config_(std::move(config)),
      span_{config_.span.first_id,
            config_.span.resolved_count(config_.deck.n_particles)},
      world_(world != nullptr
                 ? std::move(world)
                 : build_world(config_.deck, config_.window)),
      window_(config_.window.active() ? config_.window
                                      : DomainWindow::full(world_->mesh)),
      tally_(window_.num_cells(),
             config_.tally_mode,
             config_.threads > 0 ? config_.threads : omp_get_max_threads(),
             config_.compensated_tally,
             config_.tally_direct),
      bank_(config_.layout) {
  NEUTRAL_REQUIRE(config_.deck.n_particles > 0, "deck must define particles");
  NEUTRAL_REQUIRE(config_.pipeline_histories >= 1,
                  "pipeline-histories must be >= 1");
  NEUTRAL_REQUIRE(span_.first_id >= 0 && span_.count > 0 &&
                      span_.first_id + span_.count <= config_.deck.n_particles,
                  "particle span must be a non-empty slice of the deck bank");
  NEUTRAL_REQUIRE(window_.within(world_->mesh),
                  "domain window must fit inside the mesh");
  NEUTRAL_REQUIRE(
      world_->fingerprint ==
          domain_world_fingerprint(config_.deck, window_),
      "shared world was built from a different deck geometry or window");
  NEUTRAL_REQUIRE(world_->window == window_,
                  "shared world covers a different mesh window");
  // Windowed (domain-decomposed) runs compose with every scheme, layout
  // and particle span: the bank converts migrant checkpoints at the
  // boundary and the Over Events workspace re-streams per round, so no
  // configuration restriction applies beyond the span/window validity
  // checks above.

  if (config_.threads > 0) set_thread_count(config_.threads);
  if (config_.profile) {
    profiler_ = std::make_unique<PhaseProfiler>(omp_get_max_threads());
  }

  ctx_.mesh = &world_->mesh;
  ctx_.density = &world_->density;
  ctx_.xs_capture = &world_->xs_capture;
  ctx_.xs_scatter = &world_->xs_scatter;
  ctx_.tally = &tally_;
  ctx_.lookup = config_.lookup;
  ctx_.xs_union = &world_->xs_union;
  ctx_.rng_batch = config_.rng_batch;
  ctx_.branchless_events = config_.branchless_events;
  ctx_.molar_mass_g_mol = config_.deck.molar_mass_g_mol;
  ctx_.mass_number = config_.deck.mass_number;
  ctx_.min_energy_ev = config_.deck.min_energy_ev;
  ctx_.min_weight = config_.deck.min_weight;
  ctx_.roulette_survival = config_.deck.roulette_survival;
  ctx_.seed = config_.deck.seed;
  ctx_.profiler = profiler_.get();
  ctx_.window = window_;
  ctx_.migrate = config_.window.active();

  if (config_.window.active()) {
    if (prebuilt != nullptr) {
      adopt_window_bank(std::move(*prebuilt));
    } else {
      source_window_bank();
    }
    sourced_count_ = static_cast<std::int64_t>(bank_.size());
    note_bank_peak();
    return;
  }
  NEUTRAL_REQUIRE(prebuilt == nullptr,
                  "prebuilt banks are a windowed-run feature");

  sourced_count_ = span_.count;
  bank_.source_span(config_.deck, world_->mesh, span_.first_id, span_.count);
  note_bank_peak();
}

void Simulation::note_bank_peak() {
  const std::uint64_t bytes =
      bank_.footprint_bytes() +
      (workspace_ != nullptr ? workspace_->footprint_bytes() : 0);
  peak_bank_bytes_ = std::max(peak_bank_bytes_, bytes);
}

void Simulation::source_window_bank() {
  // Scan the full id space and keep the particles *born* inside the
  // window whose ids the span covers: each id costs only its 4 birth
  // draws, so the scan is O(n_particles) time but the bank is O(particles
  // in the slab) memory — the point of decomposing.  route_births owns
  // the id-order invariant.
  std::vector<std::vector<Particle>> banks = route_births(
      config_.deck, world_->mesh, 1, [this](const Particle& p) {
        return window_.contains({p.cellx, p.celly}) && span_.contains(p.id)
                   ? std::size_t{0}
                   : std::size_t{1};
      });
  bank_.assign(std::move(banks.front()));
}

void Simulation::adopt_window_bank(std::vector<Particle> bank) {
  std::uint64_t last_id = 0;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const Particle& p = bank[i];
    NEUTRAL_REQUIRE(window_.contains({p.cellx, p.celly}),
                    "prebuilt bank holds a particle born outside the "
                    "window");
    NEUTRAL_REQUIRE(span_.contains(p.id),
                    "prebuilt bank holds a particle outside the span");
    NEUTRAL_REQUIRE(p.state == ParticleState::kCensus,
                    "prebuilt bank records must be unborn (kCensus)");
    NEUTRAL_REQUIRE(i == 0 || p.id > last_id,
                    "prebuilt bank must be in strict id order");
    last_id = p.id;
  }
  bank_.assign(std::move(bank));
}

StepResult Simulation::step_transport(bool wake_census) {
  StepResult result;
  WallTimer timer;
  if (config_.scheme == Scheme::kOverParticles) {
    OverParticlesOptions opt;
    opt.schedule = config_.schedule;
    opt.profile = config_.profile;
    opt.pipeline_histories = config_.pipeline_histories;
    opt.wake_census = wake_census;
    result.counters = bank_.with_view([&](const auto& view) {
      return over_particles_step(view, ctx_, config_.deck.dt_s, opt);
    });
  } else {
    // Size the flight-state workspace to the bank: immigrant injection
    // grows it, migrant extraction shrinks it, and the drive prologue
    // re-streams every in-flight particle, so a bare resize suffices.
    if (workspace_ == nullptr) {
      workspace_ = std::make_unique<OverEventsWorkspace>(bank_.size());
    } else if (workspace_->size() != bank_.size()) {
      workspace_->resize(bank_.size());
    }
    note_bank_peak();
    OverEventsOptions opt = config_.over_events;
    opt.wake_census = wake_census;
    opt.profile = config_.profile;
    if (opt.fuse_rounds) {
      // The fused sweep's kernel-time split costs two TSC reads per event
      // (the unfused kernels pay two per KERNEL), so only record it when
      // the run is profiling anyway; unprofiled fused runs stay untaxed.
      opt.record_kernel_times = opt.record_kernel_times && config_.profile;
    }
    result.counters = bank_.with_view([&](const auto& view) {
      return over_events_step(view, ctx_, config_.deck.dt_s, opt,
                              *workspace_, &result.kernel_times);
    });
  }
  if (tally_.merge_each_step()) tally_.merge();
  result.seconds = timer.seconds();
  return result;
}

void Simulation::check_interrupt() const {
  // Acquire pairs with the canceller's store: anything the cancelling
  // thread wrote before flipping the flag (an error message, a shutdown
  // reason) is visible here.  Cost is irrelevant — this runs once per
  // timestep/round boundary, not per event — and it keeps the determinism
  // lint's rule simple: relaxed ordering lives only in the metrics shards.
  if (config_.cancel != nullptr &&
      config_.cancel->load(std::memory_order_acquire)) {
    throw Error("run cancelled");
  }
  if (config_.deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() > config_.deadline) {
    throw TimeoutError("run exceeded its wall-clock deadline");
  }
}

StepResult Simulation::step() {
  NEUTRAL_REQUIRE(!config_.window.active(),
                  "windowed simulations are driven round-by-round "
                  "(transport_round) by batch::run_domains, not step()");
  check_interrupt();
  StepResult result = step_transport(/*wake_census=*/true);
  accumulated_ += result.counters;
  accumulated_kernel_times_ += result.kernel_times;
  total_seconds_ += result.seconds;
  step_results_.push_back(result);
  return result;
}

StepResult Simulation::transport_round(bool wake) {
  NEUTRAL_REQUIRE(config_.window.active(),
                  "transport_round drives windowed runs; use step()");
  check_interrupt();
  // Rounds run on whichever engine worker picks them up, and the OpenMP
  // team size is a per-thread ICV: re-pin it here so the round matches the
  // thread budget the tally was built for (the constructor only pinned the
  // constructing thread).
  if (config_.threads > 0) set_thread_count(config_.threads);
  StepResult result = step_transport(wake);

  accumulated_ += result.counters;
  accumulated_kernel_times_ += result.kernel_times;
  total_seconds_ += result.seconds;
  if (wake || step_results_.empty()) {
    // A wake round opens the timestep's StepResult; resume rounds fold
    // into it so steps.size() stays deck.n_timesteps.
    step_results_.push_back(result);
  } else {
    step_results_.back().seconds += result.seconds;
    step_results_.back().counters += result.counters;
  }
  return result;
}

std::size_t Simulation::extract_migrants(std::vector<Particle>& out) {
  return bank_.extract_migrants(out);
}

void Simulation::inject_migrants(const Particle* migrants,
                                 std::size_t count) {
  NEUTRAL_REQUIRE(config_.window.active(),
                  "only windowed runs accept migrants");
  for (std::size_t i = 0; i < count; ++i) {
    const Particle& p = migrants[i];
    NEUTRAL_REQUIRE(window_.contains({p.cellx, p.celly}),
                    "migrant re-banked on a subdomain that does not own "
                    "its cell");
    NEUTRAL_REQUIRE(span_.contains(p.id),
                    "migrant re-banked on a shard that does not own its id");
    NEUTRAL_REQUIRE(p.state == ParticleState::kAlive,
                    "migrant checkpoints must arrive mid-flight (kAlive)");
  }
  bank_.inject(migrants, count);
  note_bank_peak();
}

RunResult Simulation::summary() const {
  RunResult r;
  r.total_seconds = total_seconds_;
  r.steps = step_results_;
  r.counters = accumulated_;
  r.kernel_times = accumulated_kernel_times_;

  // Budget requires merged tallies; merge is safe/idempotent here.
  const_cast<EnergyTally&>(tally_).merge();
  // Windowed runs source only the particles born in their slab; the
  // per-subdomain budgets telescope to the full bank under merging.
  r.budget.initial = initial_bank_energy(config_.deck, sourced_count_);
  r.budget.released = accumulated_.released_energy;
  r.budget.in_flight = bank_in_flight_energy();
  r.budget.tally_total = tally_.total();
  r.budget.path_heating = accumulated_.path_heating;
  r.budget.roulette_gained = accumulated_.roulette_gained_energy;
  r.budget.roulette_killed = accumulated_.roulette_killed_energy;
  r.tally_checksum = positional_checksum(tally_.data(), tally_.cells());
  r.population = surviving_population();
  r.tally_footprint_bytes = tally_.footprint_bytes();
  r.peak_mesh_bytes =
      tally_.footprint_bytes() +
      static_cast<std::uint64_t>(world_->density.size()) * sizeof(double);
  r.peak_bank_bytes = peak_bank_bytes_;
  if (config_.keep_tally_image) {
    r.tally = std::make_shared<const TallyImage>(tally_.image());
  }
  if (profiler_ != nullptr) r.phases = profiler_->report();
  return r;
}

RunResult& RunResult::operator+=(const RunResult& o) {
  total_seconds += o.total_seconds;
  counters += o.counters;
  kernel_times += o.kernel_times;
  budget += o.budget;
  population += o.population;
  tally_footprint_bytes += o.tally_footprint_bytes;
  peak_mesh_bytes = std::max(peak_mesh_bytes, o.peak_mesh_bytes);
  peak_bank_bytes = std::max(peak_bank_bytes, o.peak_bank_bytes);
  phases += o.phases;
  if (steps.empty()) {
    steps = o.steps;
  } else if (!o.steps.empty()) {
    NEUTRAL_REQUIRE(steps.size() == o.steps.size(),
                    "merged runs must share a timestep count");
    for (std::size_t s = 0; s < steps.size(); ++s) {
      steps[s].seconds += o.steps[s].seconds;
      steps[s].counters += o.steps[s].counters;
      steps[s].kernel_times += o.steps[s].kernel_times;
    }
  }
  // Checksum and image cannot be merged element-wise; the ordered tally
  // reduction (batch::reduce_shards) recomputes them from shard images.
  tally_checksum = 0.0;
  tally.reset();
  return *this;
}

RunResult Simulation::run() {
  for (std::int32_t s = 0; s < config_.deck.n_timesteps; ++s) step();
  tally_.merge();
  return summary();
}

}  // namespace neutral
