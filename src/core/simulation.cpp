#include "core/simulation.h"

#include <omp.h>

#include "core/init.h"
#include "runtime/timer.h"
#include "util/error.h"
#include "xs/synthetic.h"

namespace neutral {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kOverParticles: return "over-particles";
    case Scheme::kOverEvents: return "over-events";
  }
  return "?";
}

const char* to_string(Layout l) {
  switch (l) {
    case Layout::kAoS: return "AoS";
    case Layout::kSoA: return "SoA";
  }
  return "?";
}

namespace {

StructuredMesh2D make_mesh(const ProblemDeck& d) {
  return StructuredMesh2D(d.nx, d.ny, d.width_cm, d.height_cm);
}

DensityField make_density(const StructuredMesh2D& mesh, const ProblemDeck& d) {
  DensityField field(mesh, d.base_density_kg_m3);
  for (const RegionSpec& r : d.regions) {
    field.fill_rect(r.x0, r.y0, r.x1, r.y1, r.density_kg_m3);
  }
  return field;
}

}  // namespace

Simulation::Simulation(SimulationConfig config)
    : config_(std::move(config)),
      mesh_(make_mesh(config_.deck)),
      density_(make_density(mesh_, config_.deck)),
      xs_capture_(make_capture_table(config_.deck.xs)),
      xs_scatter_(make_scatter_table(config_.deck.xs)),
      tally_(mesh_.num_cells(),
             config_.tally_mode,
             config_.threads > 0 ? config_.threads : omp_get_max_threads()) {
  NEUTRAL_REQUIRE(config_.deck.n_particles > 0, "deck must define particles");
  // The per-particle cached bin index is shared by both tables, which is
  // only sound when their energy grids coincide (synthetic tables built
  // from one config always do).
  NEUTRAL_REQUIRE(xs_capture_.size() == xs_scatter_.size(),
                  "capture/scatter tables must share an energy grid");

  if (config_.threads > 0) set_thread_count(config_.threads);
  if (config_.profile) {
    profiler_ = std::make_unique<PhaseProfiler>(omp_get_max_threads());
  }

  ctx_.mesh = &mesh_;
  ctx_.density = &density_;
  ctx_.xs_capture = &xs_capture_;
  ctx_.xs_scatter = &xs_scatter_;
  ctx_.tally = &tally_;
  ctx_.lookup = config_.lookup;
  ctx_.molar_mass_g_mol = config_.deck.molar_mass_g_mol;
  ctx_.mass_number = config_.deck.mass_number;
  ctx_.min_energy_ev = config_.deck.min_energy_ev;
  ctx_.min_weight = config_.deck.min_weight;
  ctx_.roulette_survival = config_.deck.roulette_survival;
  ctx_.seed = config_.deck.seed;
  ctx_.profiler = profiler_.get();

  const auto n = static_cast<std::size_t>(config_.deck.n_particles);
  if (config_.layout == Layout::kAoS) {
    aos_.resize(n);
    initialise_particles(AosView(aos_.data(), n), config_.deck, mesh_);
  } else {
    soa_.resize(n);
    initialise_particles(SoaView(soa_), config_.deck, mesh_);
  }
  if (config_.scheme == Scheme::kOverEvents) {
    workspace_ = std::make_unique<OverEventsWorkspace>(n);
  }
}

StepResult Simulation::step_aos() {
  StepResult result;
  AosView view(aos_.data(), aos_.size());
  WallTimer timer;
  if (config_.scheme == Scheme::kOverParticles) {
    OverParticlesOptions opt;
    opt.schedule = config_.schedule;
    opt.profile = config_.profile;
    result.counters = over_particles_step(view, ctx_, config_.deck.dt_s, opt);
  } else {
    result.counters =
        over_events_step(view, ctx_, config_.deck.dt_s, config_.over_events,
                         *workspace_, &result.kernel_times);
  }
  if (tally_.merge_each_step()) tally_.merge();
  result.seconds = timer.seconds();
  return result;
}

StepResult Simulation::step_soa() {
  StepResult result;
  SoaView view(soa_);
  WallTimer timer;
  if (config_.scheme == Scheme::kOverParticles) {
    OverParticlesOptions opt;
    opt.schedule = config_.schedule;
    opt.profile = config_.profile;
    result.counters = over_particles_step(view, ctx_, config_.deck.dt_s, opt);
  } else {
    result.counters =
        over_events_step(view, ctx_, config_.deck.dt_s, config_.over_events,
                         *workspace_, &result.kernel_times);
  }
  if (tally_.merge_each_step()) tally_.merge();
  result.seconds = timer.seconds();
  return result;
}

StepResult Simulation::step() {
  StepResult result =
      config_.layout == Layout::kAoS ? step_aos() : step_soa();
  accumulated_ += result.counters;
  accumulated_kernel_times_ += result.kernel_times;
  total_seconds_ += result.seconds;
  step_results_.push_back(result);
  return result;
}

std::int64_t Simulation::surviving_population() const {
  if (config_.layout == Layout::kAoS) {
    return population(AosView(const_cast<Particle*>(aos_.data()), aos_.size()));
  }
  return population(SoaView(const_cast<ParticleSoA&>(soa_)));
}

double Simulation::bank_in_flight_energy() const {
  if (config_.layout == Layout::kAoS) {
    return in_flight_energy(
        AosView(const_cast<Particle*>(aos_.data()), aos_.size()));
  }
  return in_flight_energy(SoaView(const_cast<ParticleSoA&>(soa_)));
}

RunResult Simulation::summary() const {
  RunResult r;
  r.total_seconds = total_seconds_;
  r.steps = step_results_;
  r.counters = accumulated_;
  r.kernel_times = accumulated_kernel_times_;

  // Budget requires merged tallies; merge is safe/idempotent here.
  const_cast<EnergyTally&>(tally_).merge();
  r.budget.initial = initial_bank_energy(config_.deck);
  r.budget.released = accumulated_.released_energy;
  r.budget.in_flight = bank_in_flight_energy();
  r.budget.tally_total = tally_.total();
  r.budget.path_heating = accumulated_.path_heating;
  r.budget.roulette_gained = accumulated_.roulette_gained_energy;
  r.budget.roulette_killed = accumulated_.roulette_killed_energy;
  r.tally_checksum = positional_checksum(tally_.data(), tally_.cells());
  r.population = surviving_population();
  r.tally_footprint_bytes = tally_.footprint_bytes();
  return r;
}

RunResult Simulation::run() {
  for (std::int32_t s = 0; s < config_.deck.n_timesteps; ++s) step();
  tally_.merge();
  return summary();
}

}  // namespace neutral
