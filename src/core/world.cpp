#include "core/world.h"

#include "util/error.h"
#include "xs/synthetic.h"

namespace neutral {

namespace {

StructuredMesh2D make_mesh(const ProblemDeck& d) {
  return StructuredMesh2D(d.nx, d.ny, d.width_cm, d.height_cm);
}

DensityField make_density(const StructuredMesh2D& mesh,
                          const DomainWindow& window, const ProblemDeck& d) {
  DensityField field(mesh, window, d.base_density_kg_m3);
  for (const RegionSpec& r : d.regions) {
    field.fill_rect(r.x0, r.y0, r.x1, r.y1, r.density_kg_m3);
  }
  return field;
}

// splitmix64 finaliser: the same mixer validation.cpp uses for positional
// checksums — cheap, well-distributed, and dependency-free.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class FingerprintHasher {
 public:
  void add_u64(std::uint64_t v) { state_ = mix(state_ ^ v); }
  void add_i64(std::int64_t v) { add_u64(static_cast<std::uint64_t>(v)); }
  void add_double(double v) {
    // Hash the bit pattern: fingerprints must distinguish -0.0-style edge
    // cases consistently, not by numeric comparison.
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0x6e65757472616c00ull;  // "neutral\0"
};

}  // namespace

World::World(const ProblemDeck& deck) : World(deck, DomainWindow{}) {}

World::World(const ProblemDeck& deck, const DomainWindow& slab)
    : mesh(make_mesh(deck)),
      window(slab.active() ? slab : DomainWindow::full(mesh)),
      density(make_density(mesh, window, deck)),
      xs_capture(make_capture_table(deck.xs)),
      xs_scatter(make_scatter_table(deck.xs)),
      xs_union(xs_capture, xs_scatter),
      fingerprint(domain_world_fingerprint(deck, window)) {
  NEUTRAL_REQUIRE(window.within(mesh), "domain window must fit the mesh");
  // The per-particle cached bin index is shared by both tables, which is
  // only sound when their energy grids coincide (synthetic tables built
  // from one config always do).
  NEUTRAL_REQUIRE(xs_capture.size() == xs_scatter.size(),
                  "capture/scatter tables must share an energy grid");
}

std::uint64_t World::footprint_bytes() const {
  const auto doubles = [](std::uint64_t n) { return n * sizeof(double); };
  const std::uint64_t mesh_bytes =
      doubles(static_cast<std::uint64_t>(mesh.nx()) + 1 +
              static_cast<std::uint64_t>(mesh.ny()) + 1);
  const std::uint64_t density_bytes =
      doubles(static_cast<std::uint64_t>(density.size()));
  // Each table: energy + value arrays plus the bucket acceleration grid
  // (int32 per point, same order of magnitude).
  const auto xs_bytes = [&](const CrossSectionTable& t) {
    return doubles(static_cast<std::uint64_t>(t.size()) * 2) +
           static_cast<std::uint64_t>(t.size()) * sizeof(std::int32_t);
  };
  return sizeof(World) + mesh_bytes + density_bytes + xs_bytes(xs_capture) +
         xs_bytes(xs_scatter) + xs_union.footprint_bytes();
}

std::shared_ptr<const World> build_world(const ProblemDeck& deck) {
  return std::make_shared<const World>(deck);
}

std::shared_ptr<const World> build_world(const ProblemDeck& deck,
                                         const DomainWindow& window) {
  return std::make_shared<const World>(deck, window);
}

std::uint64_t world_fingerprint(const ProblemDeck& deck) {
  FingerprintHasher h;
  h.add_i64(deck.nx);
  h.add_i64(deck.ny);
  h.add_double(deck.width_cm);
  h.add_double(deck.height_cm);
  h.add_double(deck.base_density_kg_m3);
  h.add_u64(static_cast<std::uint64_t>(deck.regions.size()));
  for (const RegionSpec& r : deck.regions) {
    h.add_double(r.x0);
    h.add_double(r.y0);
    h.add_double(r.x1);
    h.add_double(r.y1);
    h.add_double(r.density_kg_m3);
  }
  h.add_i64(deck.xs.points);
  h.add_double(deck.xs.min_energy_ev);
  h.add_double(deck.xs.max_energy_ev);
  h.add_i64(deck.xs.resonances);
  h.add_u64(deck.xs.seed);
  return h.value();
}

std::uint64_t domain_world_fingerprint(const ProblemDeck& deck,
                                       const DomainWindow& window) {
  const std::uint64_t base = world_fingerprint(deck);
  if (!window.active() ||
      (window.x0 == 0 && window.y0 == 0 && window.nx == deck.nx &&
       window.ny == deck.ny)) {
    return base;  // full-mesh window: the plain world, cache-compatible
  }
  FingerprintHasher h;
  h.add_u64(base);
  h.add_i64(window.x0);
  h.add_i64(window.y0);
  h.add_i64(window.nx);
  h.add_i64(window.ny);
  return h.value();
}

}  // namespace neutral
