// Simulation facade: owns the world and runs a configured solve.
//
// This is the public entry point examples and benchmarks use; it wires the
// deck into a mesh + density field + cross-section tables + tally + bank,
// then dispatches timesteps to the configured parallelisation scheme.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bank.h"
#include "core/context.h"
#include "core/counters.h"
#include "core/deck.h"
#include "core/over_events.h"
#include "core/over_particles.h"
#include "core/particle.h"
#include "core/tally.h"
#include "core/validation.h"
#include "core/world.h"
#include "mesh/density_field.h"
#include "mesh/mesh2d.h"
#include "perf/profiler.h"
#include "runtime/schedule.h"
#include "xs/table.h"

namespace neutral {

enum class Scheme : std::uint8_t {
  kOverParticles = 0,  ///< §V-A, Listing 1
  kOverEvents = 1,     ///< §V-B, Listing 2
};
const char* to_string(Scheme s);

// Layout lives in core/particle.h (the storage it selects between);
// ParticleBank (core/bank.h) owns the polymorphism.
const char* to_string(Layout l);

/// Parse the user-facing names the CLI and sweep specs accept; throw
/// neutral::Error listing the accepted spellings on anything else.
Scheme scheme_from_string(const std::string& s);
Layout layout_from_string(const std::string& s);
TallyMode tally_mode_from_string(const std::string& s);
XsLookup lookup_from_string(const std::string& s);
/// "static|dynamic|guided[,chunk]" (also "static,chunk").
SchedulePolicy schedule_from_string(const std::string& s);

/// A contiguous slice of a deck's particle-id space.  A Simulation given a
/// span sources only ids [first_id, first_id + count); because the RNG is
/// keyed by the stable particle id, those histories are identical to the
/// same ids of the unsharded run — so N disjoint spans covering the deck
/// are N statistically *and numerically* exact partial solves.
struct ParticleSpan {
  std::int64_t first_id = 0;
  std::int64_t count = 0;  ///< 0 = the rest of the deck from first_id on

  [[nodiscard]] std::int64_t resolved_count(std::int64_t deck_particles) const {
    // A negative count is propagated (not treated as "rest of the bank")
    // so the Simulation constructor rejects it instead of silently
    // re-running someone else's ids.
    return count == 0 ? deck_particles - first_id : count;
  }
  [[nodiscard]] bool whole_bank() const { return first_id == 0 && count == 0; }
  /// Does a RESOLVED span (count > 0) cover particle id `id`?  The single
  /// membership definition bank sourcing, migrant routing and prebuilt-bank
  /// validation all share.
  [[nodiscard]] bool contains(std::uint64_t id) const {
    const auto sid = static_cast<std::int64_t>(id);
    return sid >= first_id && sid < first_id + count;
  }
};

struct SimulationConfig {
  ProblemDeck deck;
  Scheme scheme = Scheme::kOverParticles;
  Layout layout = Layout::kAoS;
  TallyMode tally_mode = TallyMode::kAtomic;
  XsLookup lookup = XsLookup::kCachedLinear;
  SchedulePolicy schedule = SchedulePolicy::statics();
  /// OpenMP thread count; 0 keeps the ambient setting.
  std::int32_t threads = 0;
  /// Enable §VI-A phase profiling (Over Particles only).
  bool profile = false;
  OverEventsOptions over_events;
  /// Batched RNG draws in the collision handler (rng::BatchedStream): the
  /// identical draw sequence computed 4 counters per interleaved cipher
  /// call, so checksums cannot move.  Off by default (seed behaviour).
  bool rng_batch = false;
  /// Select-based (branch-light) event search and facet math: identical
  /// floating-point arithmetic with the per-particle direction/event
  /// branches turned into conditional moves.  Off by default.
  bool branchless_events = false;
  /// Over Particles software pipeline depth (--pipeline-histories): K > 1
  /// keeps K histories in flight per thread, overlapping one history's
  /// divide/sqrt latency chain with another's XS/facet math.  Checksums,
  /// tallies and integer counters are bit-identical to K = 1 (see
  /// OverParticlesOptions::pipeline_histories); must be >= 1; ignored (with
  /// a CLI warning) by the Over Events scheme, whose breadth-first sweeps
  /// already interleave histories.
  std::int32_t pipeline_histories = 1;
  /// Single-thread tally fast path: plain (non-atomic) deposits when the
  /// run uses exactly one thread — same deposits, same per-cell order, so
  /// bit-identical; ignored (deposits stay atomic) at threads > 1.  Off by
  /// default (seed behaviour pays the lock prefix even single-threaded).
  bool tally_direct = false;
  /// Particle-id slice this run sources (default: the whole deck bank).
  ParticleSpan span;
  /// Carry a Neumaier error term per tally cell so each cell rounds once —
  /// the property that makes sharded runs reduce bit-identically (tally.h).
  bool compensated_tally = false;
  /// Copy the merged tally into RunResult::tally (shard jobs need the data
  /// to outlive the Simulation so the reducer can fold it).
  bool keep_tally_image = false;
  /// Domain decomposition: the mesh slab this run owns.  Inactive (the
  /// default) = the full mesh.  An active window allocates density/tally
  /// storage only for the slab, sources only the particles *born* inside
  /// it, and parks particles crossing out of it as kMigrating —
  /// batch::run_domains drives the transport_round/extract/inject cycle.
  /// Windows compose with every scheme and layout (the bank converts
  /// migrant checkpoints at the boundary) and with a particle span, which
  /// restricts the windowed bank to births whose ids fall in the span —
  /// how bank shards nest inside subdomains (batch::DomainOptions::shards).
  DomainWindow window;
  /// Cooperative wall-clock deadline: run() and transport_round() check it
  /// at timestep/round boundaries (never inside the hot tracking loop) and
  /// throw TimeoutError once it passes.  The batch engine stamps this from
  /// QueuePolicy::max_run_wall so a long-lived service bounds every run;
  /// time_point::max() (the default) disables the check entirely.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation flag (not owned; may be null), checked at
  /// the same boundaries as `deadline`: once set, the run aborts with an
  /// Error("run cancelled").  neutrald points every job of a submission at
  /// one flag so a client `cancel` stops in-flight work between timesteps.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of one timestep.
struct StepResult {
  double seconds = 0.0;
  EventCounters counters;
  OverEventsKernelTimes kernel_times;  ///< populated by Over Events only
};

/// Outcome of a full run.
struct RunResult {
  double total_seconds = 0.0;
  std::vector<StepResult> steps;
  EventCounters counters;             ///< accumulated over all steps
  OverEventsKernelTimes kernel_times; ///< accumulated (Over Events)
  EnergyBudget budget;
  double tally_checksum = 0.0;        ///< positional checksum of the tally
  std::int64_t population = 0;        ///< surviving particles
  std::uint64_t tally_footprint_bytes = 0;
  /// Peak mesh-resident bytes (tally + density slab) this run held — the
  /// figure domain decomposition exists to shrink.  Merging takes the max,
  /// so a reduced domain run reports its largest subdomain's slab.
  std::uint64_t peak_mesh_bytes = 0;
  /// Peak bank-proportional bytes this run held: particle storage plus the
  /// Over Events flight-state workspace, tracked across sourcing and
  /// migrant injection.  Max-merged like peak_mesh_bytes, so a decomposed
  /// run reports its hungriest partial solve.
  std::uint64_t peak_bank_bytes = 0;
  /// Merged tally snapshot; only populated when the config asked for it
  /// (SimulationConfig::keep_tally_image) or by the shard reducer.
  std::shared_ptr<const TallyImage> tally;
  /// §VI-A phase profile; all-zero unless the run profiled
  /// (SimulationConfig::profile on a scheme with probes).  Extensive —
  /// merging sums it, so sharded/domain runs report the whole solve.
  PhaseProfiler::Report phases;

  /// Events per second — the throughput figure the harness reports.
  [[nodiscard]] double events_per_second() const {
    return total_seconds > 0.0
               ? static_cast<double>(counters.total_events()) / total_seconds
               : 0.0;
  }

  /// Merge another partial solve in: counters, kernel times, budget,
  /// population and per-step data are all extensive sums.  total_seconds
  /// becomes aggregate CPU seconds (shards overlap in wall time; the
  /// fork-join report tracks wall clock separately).  The tally checksum
  /// and image are NOT mergeable element-wise — they are cleared here and
  /// recomputed by the ordered tally reduction (batch::reduce_shards).
  RunResult& operator+=(const RunResult& o);
};

class Simulation {
 public:
  /// Build the world (mesh + density + XS tables) from the deck and run
  /// against it — the single-job path.
  explicit Simulation(SimulationConfig config);

  /// Run against an existing world — the cheap-reuse path the batch engine
  /// takes when many jobs share geometry.  `world` must have been built
  /// from a deck with the same world_fingerprint as `config.deck`.
  Simulation(SimulationConfig config, std::shared_ptr<const World> world);

  /// Windowed run with a prebuilt bank: batch::run_domains samples the
  /// deck's id space ONCE and routes each birth to its owning subdomain,
  /// so G subdomains cost one scan instead of G.  `bank` holds canonical
  /// wire-format records — exactly the window's births whose ids fall in
  /// config.span, in id order (validated); the bank converts to the
  /// configured layout on adoption.
  Simulation(SimulationConfig config, std::shared_ptr<const World> world,
             std::vector<Particle> bank);

  /// Advance one timestep and return its result.
  StepResult step();

  /// Run deck.n_timesteps timesteps and assemble the full result
  /// (including the energy budget and tally checksum).
  RunResult run();

  /// Recompute budget/checksum without advancing (used after step() calls).
  [[nodiscard]] RunResult summary() const;

  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] const StructuredMesh2D& mesh() const { return world_->mesh; }
  [[nodiscard]] const DensityField& density() const {
    return world_->density;
  }
  [[nodiscard]] const std::shared_ptr<const World>& world() const {
    return world_;
  }
  [[nodiscard]] const EnergyTally& tally() const { return tally_; }
  [[nodiscard]] EnergyTally& tally() { return tally_; }
  [[nodiscard]] const PhaseProfiler* profiler() const {
    return profiler_.get();
  }

  /// The layout-polymorphic particle bank this run transports.
  [[nodiscard]] const ParticleBank& bank() const { return bank_; }
  [[nodiscard]] std::int64_t surviving_population() const {
    return bank_.surviving_population();
  }
  [[nodiscard]] double bank_in_flight_energy() const {
    return bank_.in_flight_energy();
  }

  /// The particle-id slice this run sources, with count resolved (equals
  /// {0, deck.n_particles} for an unsharded run).
  [[nodiscard]] const ParticleSpan& resolved_span() const { return span_; }

  // --- Domain decomposition (windowed runs; see batch/domain.h) ---------

  /// The mesh slab this run owns (full mesh for ordinary runs).
  [[nodiscard]] const DomainWindow& window() const { return window_; }
  /// Current bank size (residents + injected immigrants; includes dead).
  [[nodiscard]] std::int64_t bank_size() const {
    return static_cast<std::int64_t>(bank_.size());
  }
  /// Particles this run sourced at t=0 (born inside the window).
  [[nodiscard]] std::int64_t sourced_count() const { return sourced_count_; }

  /// One transport round of a windowed run.  wake=true begins a timestep
  /// (census -> alive with a fresh dt) — call once per timestep; wake=false
  /// resumes only freshly injected mid-flight immigrants.  Counters and
  /// seconds fold into the current timestep's StepResult, so summary()
  /// reports deck.n_timesteps steps regardless of the round count.
  StepResult transport_round(bool wake);

  /// Move kMigrating particles out of the bank (appended to `out` in bank
  /// order, flipped back to kAlive); returns how many were extracted.
  std::size_t extract_migrants(std::vector<Particle>& out);

  /// Re-bank mid-flight immigrant checkpoints (canonical wire format;
  /// converted into this bank's layout on entry).  Every record's cell must
  /// lie inside this run's window and its id inside this run's span; the
  /// next transport_round(false) resumes the histories exactly where the
  /// source subdomain parked them — Over Events runs grow and re-stream
  /// their workspace to fit the arrivals.
  void inject_migrants(const Particle* migrants, std::size_t count);

 private:
  /// Common constructor; `prebuilt` (windowed runs only) is adopted as the
  /// bank instead of scanning the id space.
  Simulation(SimulationConfig config, std::shared_ptr<const World> world,
             std::vector<Particle>* prebuilt);

  /// One transport pass over the bank — the single scheme × layout dispatch
  /// point (ParticleBank::with_view replaces the old step_aos/step_soa
  /// fork).  wake_census starts a timestep; false resumes immigrants only.
  StepResult step_transport(bool wake_census);
  /// Throw TimeoutError / Error when config.deadline passed or
  /// config.cancel is set (called at timestep and round boundaries).
  void check_interrupt() const;
  void source_window_bank();
  void adopt_window_bank(std::vector<Particle> bank);
  /// Fold the current bank + workspace bytes into the run's peak.
  void note_bank_peak();

  SimulationConfig config_;
  ParticleSpan span_;     ///< resolved from config_.span
  std::shared_ptr<const World> world_;
  DomainWindow window_;   ///< config_.window, promoted to the full mesh
  std::int64_t sourced_count_ = 0;  ///< particles sourced at t=0
  EnergyTally tally_;
  std::unique_ptr<PhaseProfiler> profiler_;

  ParticleBank bank_;
  std::unique_ptr<OverEventsWorkspace> workspace_;
  std::uint64_t peak_bank_bytes_ = 0;

  TransportContext ctx_;
  EventCounters accumulated_;
  OverEventsKernelTimes accumulated_kernel_times_;
  std::vector<StepResult> step_results_;
  double total_seconds_ = 0.0;
};

}  // namespace neutral
