#include "core/bank.h"

#include "core/deck.h"
#include "core/init.h"
#include "core/validation.h"
#include "mesh/mesh2d.h"

namespace neutral {

void ParticleBank::resize(std::size_t n) {
  if (layout_ == Layout::kAoS) {
    aos_.resize(n);
  } else {
    soa_.resize(n);
  }
}

Particle ParticleBank::get(std::size_t i) const {
  return with_view([i](const auto& v) { return read_record(v, i); });
}

void ParticleBank::set(std::size_t i, const Particle& p) {
  with_view([i, &p](const auto& v) { write_record(v, i, p); });
}

void ParticleBank::append(const Particle& p) {
  if (layout_ == Layout::kAoS) {
    aos_.push_back(p);
    return;
  }
  const std::size_t i = soa_.size();
  soa_.resize(i + 1);
  write_record(SoaView(soa_), i, p);
}

void ParticleBank::source_span(const ProblemDeck& deck,
                               const StructuredMesh2D& mesh,
                               std::int64_t first_id, std::int64_t count) {
  resize(static_cast<std::size_t>(count));
  with_view([&](const auto& v) {
    initialise_particles(v, deck, mesh, first_id);
  });
}

void ParticleBank::assign(std::vector<Particle> records) {
  if (layout_ == Layout::kAoS) {
    aos_ = std::move(records);
    return;
  }
  soa_.resize(records.size());
  const SoaView v(soa_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    write_record(v, i, records[i]);
  }
}

std::size_t ParticleBank::extract_migrants(std::vector<Particle>& out) {
  return with_view([&out, this](const auto& v) {
    std::size_t kept = 0;
    std::size_t extracted = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v.state(i) == ParticleState::kMigrating) {
        // Resumes mid-flight on the owner; the record is the checkpoint.
        Particle p = read_record(v, i);
        p.state = ParticleState::kAlive;
        out.push_back(p);
        ++extracted;
      } else {
        if (kept != i) copy_record(v, kept, i);
        ++kept;
      }
    }
    resize(kept);
    return extracted;
  });
}

void ParticleBank::inject(const Particle* records, std::size_t count) {
  if (layout_ == Layout::kAoS) {
    aos_.insert(aos_.end(), records, records + count);
    return;
  }
  const std::size_t base = soa_.size();
  soa_.resize(base + count);
  const SoaView v(soa_);
  for (std::size_t i = 0; i < count; ++i) {
    write_record(v, base + i, records[i]);
  }
}

std::int64_t ParticleBank::surviving_population() const {
  return with_view([](const auto& v) { return population(v); });
}

double ParticleBank::in_flight_energy() const {
  return with_view([](const auto& v) { return neutral::in_flight_energy(v); });
}

std::uint64_t ParticleBank::footprint_bytes() const {
  const std::uint64_t n = size();
  if (layout_ == Layout::kAoS) return n * sizeof(Particle);
  // One aligned array per field: 8 doubles, 3 int32, 1 state byte, 2 u64.
  return n * (8 * sizeof(double) + 3 * sizeof(std::int32_t) +
              sizeof(ParticleState) + 2 * sizeof(std::uint64_t));
}

}  // namespace neutral
