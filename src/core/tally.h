// Energy-deposition tally mesh (paper §V-C, §VI-F).
//
// Every facet encounter flushes a register-accumulated energy deposit onto
// the mesh — an atomic read-modify-write that the paper measures at ~50% of
// Over Particles runtime.  Three thread-safety strategies are provided:
//
//   * kAtomic — one shared mesh, `omp atomic` adds (the baseline).
//   * kPrivatized — one mesh copy per thread, merged after the solve
//     (§VI-F: removes the atomic but multiplies the footprint by the thread
//     count — 0.3 GB -> 31 GB on a 256-thread KNL).
//   * kPrivatizedMergeEveryStep — per-thread copies merged every timestep,
//     the realistic coupling mode the paper found slower than atomics.
//   * kDeferredAtomic — deposits append to per-thread buffers that a
//     separate drain loop applies atomically; this is the §VI-G workaround
//     that moves the atomics out of the (vectorisable) event kernels, used
//     by the Over Events scheme.
//
// Compensated accumulation (sharding support): any mode can additionally be
// constructed `compensated`, which keeps a Neumaier error term alongside
// every sum so each cell carries its deposits to roughly twice working
// precision.  After merge() the stored cell value is the once-rounded sum
// of the cell's deposit *multiset* — independent of deposit order, thread
// count, OpenMP schedule, and of how the particle bank was partitioned into
// shards.  That invariance is what lets a sharded run reduce to a tally
// bit-identical to the unsharded run (src/batch/shard.h); the plain modes
// keep the paper's measured accumulation behaviour.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/error.h"

namespace neutral {

enum class TallyMode : std::uint8_t {
  kAtomic = 0,
  kPrivatized = 1,
  kPrivatizedMergeEveryStep = 2,
  kDeferredAtomic = 3,
};

const char* to_string(TallyMode mode);

/// One buffered deposit: the flat cell index and the amount.  Public so the
/// gated traversal fast paths (over-events round fusion, the over-particles
/// history pipeline) can capture deposits into their own buffers via
/// set_deposit_sink() and replay them later in the canonical order.
struct PendingDeposit {
  std::int64_t cell;
  double amount;
};

/// A detached copy of a merged tally: the per-cell sums plus (for
/// compensated tallies) the per-cell error terms.  This is the value a
/// shard job returns to the reducer after its Simulation is destroyed.
struct TallyImage {
  aligned_vector<double> hi;  ///< per-cell sums (what data() exposes)
  aligned_vector<double> lo;  ///< per-cell compensation; empty if plain

  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(hi.size());
  }
};

class EnergyTally {
 public:
  /// `compensated` enables the Neumaier error tracking described above.
  /// Compensated kAtomic is only meaningful single-threaded (a two-double
  /// update cannot be a single atomic), so that combination requires
  /// `threads == 1`; use a privatized mode for compensated multi-threading.
  ///
  /// `direct` requests the single-thread deposit fast path: with exactly
  /// one thread there is nothing to be atomic against, so a kAtomic
  /// deposit can be a plain load/add/store instead of a `lock cmpxchg`
  /// retry loop (x86 has no atomic double add, so the `omp atomic` form
  /// costs tens of cycles per flush).  The deposits, their values and
  /// their per-cell order are unchanged — bit-identical by construction —
  /// and the request is ignored unless `threads == 1`.
  EnergyTally(std::int64_t cells, TallyMode mode, std::int32_t threads,
              bool compensated = false, bool direct = false);

  /// Hot path: deposit `e` into flat cell index `flat` from `thread`.
  void deposit(std::int64_t flat, double e, std::int32_t thread) {
    if (std::vector<PendingDeposit>* sink =
            sinks_[static_cast<std::size_t>(thread)].value;
        sink != nullptr) {
      // A traversal fast path has redirected this thread's deposits into
      // its own buffer (see set_deposit_sink); it will replay them through
      // this function — sink detached — in the canonical order.
      sink->push_back({flat, e});
      return;
    }
    const auto f = static_cast<std::size_t>(flat);
    switch (mode_) {
      case TallyMode::kAtomic: {
        if (compensated_) {
          two_sum_add(global_[f], comp_[f], e);  // single-thread only
        } else if (direct_) {
          global_[f] += e;  // single-thread fast path: no lock prefix
        } else {
          double& slot = global_[f];
#pragma omp atomic update
          slot += e;
        }
        break;
      }
      case TallyMode::kDeferredAtomic:
        deferred_[static_cast<std::size_t>(thread)].value.push_back({flat, e});
        break;
      default: {
        const auto t = static_cast<std::size_t>(thread);
        if (compensated_) {
          two_sum_add(privates_[t][f], privates_comp_[t][f], e);
        } else {
          privates_[t][f] += e;
        }
      }
    }
  }

  /// Redirect `thread`'s subsequent deposits into `sink` (append-only);
  /// nullptr restores the normal paths.  Each thread may only set its own
  /// slot (the slots are cache-line padded, so concurrent per-thread
  /// switching inside a parallel region is race-free).  The traversal fast
  /// paths use this to decouple *when* a deposit is computed from *where in
  /// the accumulation order* it lands: capture out-of-order, then replay in
  /// the canonical order so every checksum is bit-identical.
  void set_deposit_sink(std::int32_t thread,
                        std::vector<PendingDeposit>* sink) {
    sinks_[static_cast<std::size_t>(thread)].value = sink;
  }

  /// Apply captured deposits through the normal deposit() switch, as
  /// `thread`.  The thread's sink must be detached first, or the replay
  /// would feed back into the buffer.
  void replay_deposits(const std::vector<PendingDeposit>& buffered,
                       std::int32_t thread) {
    NEUTRAL_REQUIRE(sinks_[static_cast<std::size_t>(thread)].value == nullptr,
                    "detach the deposit sink before replaying into it");
    for (const PendingDeposit& d : buffered) {
      deposit(d.cell, d.amount, thread);
    }
  }

  /// Apply and clear all deferred deposits (kDeferredAtomic only); the
  /// driver calls this as its separate tally loop.  Safe to call in any
  /// mode (no-op otherwise).  Compensated tallies drain the per-thread
  /// buffers sequentially in thread order — no atomics, deterministic.
  void drain_deferred();

  /// Fold the per-thread copies into the global mesh (no-op for kAtomic).
  /// Called once after the solve (kPrivatized) or after every timestep
  /// (kPrivatizedMergeEveryStep) by the drivers.  For compensated tallies
  /// this also normalises each (sum, comp) pair so data()[c] is the
  /// once-rounded cell total; idempotent in every mode.
  void merge();

  /// Fold another merged tally into this one, cell by cell, carrying both
  /// words of each pair (double-double addition).  This tally must be
  /// compensated and share the cell count; call merge() on `other` first,
  /// and on this tally after the last accumulate().  This is the shard
  /// reduction primitive: folding shard tallies in any order reproduces the
  /// unsharded compensated tally bit-for-bit.
  void accumulate(const EnergyTally& other);
  void accumulate(const TallyImage& image);

  /// Detached copy of the merged (sum, comp) arrays; call merge() first.
  [[nodiscard]] TallyImage image() const;

  /// Whether the driver must merge at the end of each timestep.
  [[nodiscard]] bool merge_each_step() const {
    return mode_ == TallyMode::kPrivatizedMergeEveryStep;
  }

  [[nodiscard]] TallyMode mode() const { return mode_; }
  [[nodiscard]] bool compensated() const { return compensated_; }
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(global_.size());
  }

  /// Merged tally data (call merge() first for privatized modes).
  [[nodiscard]] const double* data() const { return global_.data(); }
  [[nodiscard]] double at(std::int64_t flat) const {
    return global_[static_cast<std::size_t>(flat)];
  }
  /// Per-cell compensation terms (nullptr unless compensated).
  [[nodiscard]] const double* compensation_data() const {
    return compensated_ ? comp_.data() : nullptr;
  }

  /// Sum over all cells (compensated; stable across schemes).
  [[nodiscard]] double total() const;

  /// Zero everything.
  void reset();

  /// Total bytes held — reports the §VI-F footprint blow-up.
  [[nodiscard]] std::uint64_t footprint_bytes() const;

 private:
  /// Neumaier running sum: sum += x with the rounding error folded into
  /// comp.  (sum + comp) tracks the exact sum to ~2x working precision.
  static void two_sum_add(double& sum, double& comp, double x) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }

  /// Double-double accumulate: (hi, lo) += (bhi, blo).
  static void dd_add(double& hi, double& lo, double bhi, double blo) {
    const double s = hi + bhi;
    const double err =
        std::abs(hi) >= std::abs(bhi) ? (hi - s) + bhi : (bhi - s) + hi;
    lo += err + blo;
    hi = s;
  }

  void accumulate(const double* hi, const double* lo, std::int64_t cells);
  void normalise();

  TallyMode mode_;
  bool compensated_ = false;
  bool direct_ = false;  ///< single-thread non-atomic deposits (see ctor)
  aligned_vector<double> global_;
  aligned_vector<double> comp_;  ///< per-cell error terms (compensated only)
  std::vector<aligned_vector<double>> privates_;
  std::vector<aligned_vector<double>> privates_comp_;
  std::vector<Padded<std::vector<PendingDeposit>>> deferred_;
  /// Per-thread deposit redirection slots (nullptr = normal path); sized to
  /// the thread count in the constructor so deposit() can index blindly.
  std::vector<Padded<std::vector<PendingDeposit>*>> sinks_;
};

}  // namespace neutral
