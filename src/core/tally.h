// Energy-deposition tally mesh (paper §V-C, §VI-F).
//
// Every facet encounter flushes a register-accumulated energy deposit onto
// the mesh — an atomic read-modify-write that the paper measures at ~50% of
// Over Particles runtime.  Three thread-safety strategies are provided:
//
//   * kAtomic — one shared mesh, `omp atomic` adds (the baseline).
//   * kPrivatized — one mesh copy per thread, merged after the solve
//     (§VI-F: removes the atomic but multiplies the footprint by the thread
//     count — 0.3 GB -> 31 GB on a 256-thread KNL).
//   * kPrivatizedMergeEveryStep — per-thread copies merged every timestep,
//     the realistic coupling mode the paper found slower than atomics.
//   * kDeferredAtomic — deposits append to per-thread buffers that a
//     separate drain loop applies atomically; this is the §VI-G workaround
//     that moves the atomics out of the (vectorisable) event kernels, used
//     by the Over Events scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/error.h"

namespace neutral {

enum class TallyMode : std::uint8_t {
  kAtomic = 0,
  kPrivatized = 1,
  kPrivatizedMergeEveryStep = 2,
  kDeferredAtomic = 3,
};

const char* to_string(TallyMode mode);

class EnergyTally {
 public:
  EnergyTally(std::int64_t cells, TallyMode mode, std::int32_t threads);

  /// Hot path: deposit `e` into flat cell index `flat` from `thread`.
  void deposit(std::int64_t flat, double e, std::int32_t thread) {
    switch (mode_) {
      case TallyMode::kAtomic: {
        double& slot = global_[static_cast<std::size_t>(flat)];
#pragma omp atomic update
        slot += e;
        break;
      }
      case TallyMode::kDeferredAtomic:
        deferred_[static_cast<std::size_t>(thread)].value.push_back({flat, e});
        break;
      default:
        privates_[static_cast<std::size_t>(thread)]
                 [static_cast<std::size_t>(flat)] += e;
    }
  }

  /// Apply and clear all deferred deposits (kDeferredAtomic only); the
  /// driver calls this as its separate tally loop.  Safe to call in any
  /// mode (no-op otherwise).
  void drain_deferred();

  /// Fold the per-thread copies into the global mesh (no-op for kAtomic).
  /// Called once after the solve (kPrivatized) or after every timestep
  /// (kPrivatizedMergeEveryStep) by the drivers.
  void merge();

  /// Whether the driver must merge at the end of each timestep.
  [[nodiscard]] bool merge_each_step() const {
    return mode_ == TallyMode::kPrivatizedMergeEveryStep;
  }

  [[nodiscard]] TallyMode mode() const { return mode_; }
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(global_.size());
  }

  /// Merged tally data (call merge() first for privatized modes).
  [[nodiscard]] const double* data() const { return global_.data(); }
  [[nodiscard]] double at(std::int64_t flat) const {
    return global_[static_cast<std::size_t>(flat)];
  }

  /// Sum over all cells (compensated; stable across schemes).
  [[nodiscard]] double total() const;

  /// Zero everything.
  void reset();

  /// Total bytes held — reports the §VI-F footprint blow-up.
  [[nodiscard]] std::uint64_t footprint_bytes() const;

 private:
  struct PendingDeposit {
    std::int64_t cell;
    double amount;
  };

  TallyMode mode_;
  aligned_vector<double> global_;
  std::vector<aligned_vector<double>> privates_;
  std::vector<Padded<std::vector<PendingDeposit>>> deferred_;
};

}  // namespace neutral
