#include "core/over_events.h"

#include <omp.h>

#include "core/step.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral {

OverEventsKernelTimes& OverEventsKernelTimes::operator+=(
    const OverEventsKernelTimes& o) {
  event_search += o.event_search;
  collisions += o.collisions;
  facets += o.facets;
  census += o.census;
  tally += o.tally;
  iterations += o.iterations;
  return *this;
}

OverEventsWorkspace::OverEventsWorkspace(std::size_t n_particles) {
  resize(n_particles);
}

void OverEventsWorkspace::resize(std::size_t n_particles) {
  micro_a_.resize(n_particles);
  micro_s_.resize(n_particles);
  number_density_.resize(n_particles);
  sigma_a_.resize(n_particles);
  sigma_t_.resize(n_particles);
  speed_.resize(n_particles);
  pending_.resize(n_particles);
  flat_cell_.resize(n_particles);
  next_event_.assign(n_particles, kNoEvent);
  facet_distance_.resize(n_particles);
  facet_axis_.resize(n_particles);
  facet_step_.resize(n_particles);
  facet_boundary_.resize(n_particles);
}

std::uint64_t OverEventsWorkspace::footprint_bytes() const {
  const std::size_t n = size();
  return n * (8 * sizeof(double) + sizeof(std::int64_t) + 3 + 2 +
              sizeof(double));
}

namespace {

/// Gather the streamed flight state of particle i into registers — the
/// memory traffic that distinguishes this scheme (§VII-A.2).
template <class View>
inline FlightState load_fs(const OverEventsWorkspace& ws, std::size_t i) {
  FlightState fs;
  fs.micro_a = ws.micro_a_[i];
  fs.micro_s = ws.micro_s_[i];
  fs.n = ws.number_density_[i];
  fs.sigma_a = ws.sigma_a_[i];
  fs.sigma_t = ws.sigma_t_[i];
  fs.speed = ws.speed_[i];
  fs.pending_deposit = ws.pending_[i];
  fs.flat_cell = ws.flat_cell_[i];
  return fs;
}

inline void store_fs(OverEventsWorkspace& ws, std::size_t i,
                     const FlightState& fs) {
  ws.micro_a_[i] = fs.micro_a;
  ws.micro_s_[i] = fs.micro_s;
  ws.number_density_[i] = fs.n;
  ws.sigma_a_[i] = fs.sigma_a;
  ws.sigma_t_[i] = fs.sigma_t;
  ws.speed_[i] = fs.speed;
  ws.pending_[i] = fs.pending_deposit;
  ws.flat_cell_[i] = fs.flat_cell;
}

/// Parallel masked foreach over the whole particle list.  Every kernel
/// visits all particles and checks the mask — the gather pattern the paper
/// describes (§V-B "particles are gathered from memory").
///
/// The simd variant requests vectorisation with `omp for simd`; the scalar
/// variant compiles with auto-vectorisation disabled so the Fig 8
/// comparison measures a genuinely unvectorised baseline.
template <class Body>
void masked_foreach_simd(std::int64_t n,
                         aligned_vector<Padded<EventCounters>>& counters,
                         Body body) {
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
#pragma omp for simd schedule(static)
    for (std::int64_t i = 0; i < n; ++i) body(i, ec, t);
  }
}

template <class Body>
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
void masked_foreach_scalar(std::int64_t n,
                           aligned_vector<Padded<EventCounters>>& counters,
                           Body body) {
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) body(i, ec, t);
  }
}

template <bool Simd, class Body>
void masked_foreach(std::int64_t n,
                    aligned_vector<Padded<EventCounters>>& counters,
                    Body body) {
  if constexpr (Simd) {
    masked_foreach_simd(n, counters, body);
  } else {
    masked_foreach_scalar(n, counters, body);
  }
}

template <class View>
EventCounters drive(const View& v, const TransportContext& ctx, double dt_s,
                    const OverEventsOptions& opt, OverEventsWorkspace& ws,
                    OverEventsKernelTimes* times) {
  NEUTRAL_REQUIRE(ws.size() == v.size(),
                  "workspace must be sized to the particle container");
  const auto n = static_cast<std::int64_t>(v.size());
  const std::int32_t max_threads = omp_get_max_threads();
  aligned_vector<Padded<EventCounters>> counters(
      static_cast<std::size_t>(max_threads));
  NoHooks hooks;

  // Wake survivors and (re)build their streamed flight state.  Resume
  // rounds (wake_census false — domain decomposition) leave census
  // residents parked and re-stream only the already-alive immigrants.
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
    NoHooks hk;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      if (opt.wake_census && v.state(i) == ParticleState::kCensus) {
        v.state(i) = ParticleState::kAlive;
        v.dt_to_census(i) = dt_s;
      }
      if (v.state(i) == ParticleState::kAlive) {
        FlightState fs;
        load_flight_state(v, static_cast<std::size_t>(i), ctx, fs, ec, hk);
        store_fs(ws, static_cast<std::size_t>(i), fs);
      }
      ws.next_event_[static_cast<std::size_t>(i)] = kNoEvent;
    }
  }

  // Breadth-first main loop: one iteration advances the whole population by
  // a single event (Listing 2).
  for (;;) {
    WallTimer timer;
    std::int64_t in_flight = 0;

    // Kernel 1: event search — compute times-to-event, select, move.
    auto search = [&](std::int64_t i, EventCounters& ec, std::int32_t) {
      const auto u = static_cast<std::size_t>(i);
      if (v.state(u) != ParticleState::kAlive) {
        ws.next_event_[u] = kNoEvent;
        return;
      }
      FlightState fs = load_fs<View>(ws, u);
      const EventSelection sel = select_and_move(v, u, ctx, fs, ec, hooks);
      ws.next_event_[u] = static_cast<std::uint8_t>(sel.event);
      ws.facet_distance_[u] = sel.facet.distance;
      ws.facet_axis_[u] = sel.facet.axis;
      ws.facet_step_[u] = sel.facet.step;
      ws.facet_boundary_[u] = sel.facet.at_boundary ? 1 : 0;
      store_fs(ws, u, fs);
    };
#pragma omp parallel for schedule(static) reduction(+ : in_flight)
    for (std::int64_t i = 0; i < n; ++i) {
      in_flight += (v.state(static_cast<std::size_t>(i)) ==
                    ParticleState::kAlive)
                       ? 1
                       : 0;
    }
    if (in_flight == 0) break;
    if (opt.simd_event_search) {
      masked_foreach<true>(n, counters, search);
    } else {
      masked_foreach<false>(n, counters, search);
    }
    if (times != nullptr) {
      times->event_search += timer.seconds();
      ++times->iterations;
    }

    // Kernel 2: collisions.
    timer.restart();
    auto collide = [&](std::int64_t i, EventCounters& ec, std::int32_t t) {
      const auto u = static_cast<std::size_t>(i);
      if (ws.next_event_[u] !=
          static_cast<std::uint8_t>(EventType::kCollision)) {
        return;
      }
      FlightState fs = load_fs<View>(ws, u);
      handle_collision(v, u, ctx, fs, ec, t, hooks);
      store_fs(ws, u, fs);
    };
    if (opt.simd_collisions) {
      masked_foreach<true>(n, counters, collide);
    } else {
      masked_foreach<false>(n, counters, collide);
    }
    if (times != nullptr) times->collisions += timer.seconds();

    // Kernel 3: facets.
    timer.restart();
    auto cross = [&](std::int64_t i, EventCounters& ec, std::int32_t t) {
      const auto u = static_cast<std::size_t>(i);
      if (ws.next_event_[u] != static_cast<std::uint8_t>(EventType::kFacet)) {
        return;
      }
      FlightState fs = load_fs<View>(ws, u);
      FacetIntersection facet;
      facet.distance = ws.facet_distance_[u];
      facet.axis = ws.facet_axis_[u];
      facet.step = ws.facet_step_[u];
      facet.at_boundary = ws.facet_boundary_[u] != 0;
      handle_facet(v, u, ctx, facet, fs, ec, t, hooks);
      store_fs(ws, u, fs);
    };
    if (opt.simd_facets) {
      masked_foreach<true>(n, counters, cross);
    } else {
      masked_foreach<false>(n, counters, cross);
    }
    if (times != nullptr) times->facets += timer.seconds();

    // Kernel 4: census.
    timer.restart();
    auto census = [&](std::int64_t i, EventCounters& ec, std::int32_t t) {
      const auto u = static_cast<std::size_t>(i);
      if (ws.next_event_[u] != static_cast<std::uint8_t>(EventType::kCensus)) {
        return;
      }
      FlightState fs = load_fs<View>(ws, u);
      handle_census(v, u, ctx, fs, ec, t, hooks);
      store_fs(ws, u, fs);
    };
    masked_foreach<false>(n, counters, census);
    if (times != nullptr) times->census += timer.seconds();

    // Kernel 5: the separate tally loop (§VI-G) — drains the deposits the
    // handlers deferred when the tally runs in kDeferredAtomic mode.
    timer.restart();
    ctx.tally->drain_deferred();
    if (times != nullptr) times->tally += timer.seconds();
  }

  EventCounters total;
  for (const auto& tc : counters) total += tc.value;
  return total;
}

}  // namespace

EventCounters over_events_step(const SoaView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times) {
  return drive(v, ctx, dt_s, opt, ws, times);
}

EventCounters over_events_step(const AosView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times) {
  return drive(v, ctx, dt_s, opt, ws, times);
}

}  // namespace neutral
