#include "core/over_events.h"

#include <omp.h>

#include <vector>

#include "core/step.h"
#include "core/tally.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral {

OverEventsKernelTimes& OverEventsKernelTimes::operator+=(
    const OverEventsKernelTimes& o) {
  event_search += o.event_search;
  collisions += o.collisions;
  facets += o.facets;
  census += o.census;
  tally += o.tally;
  iterations += o.iterations;
  return *this;
}

OverEventsWorkspace::OverEventsWorkspace(std::size_t n_particles) {
  resize(n_particles);
}

void OverEventsWorkspace::resize(std::size_t n_particles) {
  micro_a_.resize(n_particles);
  micro_s_.resize(n_particles);
  number_density_.resize(n_particles);
  sigma_a_.resize(n_particles);
  sigma_t_.resize(n_particles);
  speed_.resize(n_particles);
  pending_.resize(n_particles);
  flat_cell_.resize(n_particles);
  next_event_.assign(n_particles, kNoEvent);
  facet_distance_.resize(n_particles);
  facet_axis_.resize(n_particles);
  facet_step_.resize(n_particles);
  facet_boundary_.resize(n_particles);
  event_order_.resize(n_particles);
  candidate_.resize(n_particles);
}

std::uint64_t OverEventsWorkspace::footprint_bytes() const {
  const std::size_t n = size();
  return n * (8 * sizeof(double) + sizeof(std::int64_t) + 3 + 2 +
              sizeof(double) + 2 * sizeof(std::int32_t));
}

namespace {

/// Gather the streamed flight state of particle i into registers — the
/// memory traffic that distinguishes this scheme (§VII-A.2).
template <class View>
inline FlightState load_fs(const OverEventsWorkspace& ws, std::size_t i) {
  FlightState fs;
  fs.micro_a = ws.micro_a_[i];
  fs.micro_s = ws.micro_s_[i];
  fs.n = ws.number_density_[i];
  fs.sigma_a = ws.sigma_a_[i];
  fs.sigma_t = ws.sigma_t_[i];
  fs.speed = ws.speed_[i];
  fs.pending_deposit = ws.pending_[i];
  fs.flat_cell = ws.flat_cell_[i];
  return fs;
}

inline void store_fs(OverEventsWorkspace& ws, std::size_t i,
                     const FlightState& fs) {
  ws.micro_a_[i] = fs.micro_a;
  ws.micro_s_[i] = fs.micro_s;
  ws.number_density_[i] = fs.n;
  ws.sigma_a_[i] = fs.sigma_a;
  ws.sigma_t_[i] = fs.sigma_t;
  ws.speed_[i] = fs.speed;
  ws.pending_[i] = fs.pending_deposit;
  ws.flat_cell_[i] = fs.flat_cell;
}

/// Parallel masked foreach over the whole particle list.  Every kernel
/// visits all particles and checks the mask — the gather pattern the paper
/// describes (§V-B "particles are gathered from memory").
///
/// The simd variant requests vectorisation with `omp for simd`; the scalar
/// variant compiles with auto-vectorisation disabled so the Fig 8
/// comparison measures a genuinely unvectorised baseline.
template <class MakeHooks, class Body>
void masked_foreach_simd(std::int64_t n,
                         aligned_vector<Padded<EventCounters>>& counters,
                         MakeHooks make_hooks, Body body) {
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
    auto hooks = make_hooks(t);
#pragma omp for simd schedule(static)
    for (std::int64_t i = 0; i < n; ++i) body(i, ec, t, hooks);
  }
}

template <class MakeHooks, class Body>
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
void masked_foreach_scalar(std::int64_t n,
                           aligned_vector<Padded<EventCounters>>& counters,
                           MakeHooks make_hooks, Body body) {
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
    auto hooks = make_hooks(t);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) body(i, ec, t, hooks);
  }
}

template <bool Simd, class MakeHooks, class Body>
void masked_foreach(std::int64_t n,
                    aligned_vector<Padded<EventCounters>>& counters,
                    MakeHooks make_hooks, Body body) {
  if constexpr (Simd) {
    masked_foreach_simd(n, counters, make_hooks, body);
  } else {
    masked_foreach_scalar(n, counters, make_hooks, body);
  }
}

template <class View, class MakeHooks>
EventCounters drive(const View& v, const TransportContext& ctx, double dt_s,
                    const OverEventsOptions& opt, OverEventsWorkspace& ws,
                    OverEventsKernelTimes* times, MakeHooks make_hooks) {
  NEUTRAL_REQUIRE(ws.size() == v.size(),
                  "workspace must be sized to the particle container");
  const auto n = static_cast<std::int64_t>(v.size());
  const std::int32_t max_threads = omp_get_max_threads();
  aligned_vector<Padded<EventCounters>> counters(
      static_cast<std::size_t>(max_threads));

  // Event-sorted traversal: run a handler over a dense slice of
  // ws.event_order_ instead of masking across the whole population.
  // Indices ascend within each slice, so per-thread execution order
  // matches the masked sweep's.
  const auto segment_foreach = [&](std::size_t begin, std::size_t count,
                                   auto&& body) {
#pragma omp parallel
    {
      const std::int32_t t = omp_get_thread_num();
      EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
      auto hooks = make_hooks(t);
#pragma omp for schedule(static)
      for (std::int64_t k = 0; k < static_cast<std::int64_t>(count); ++k) {
        body(static_cast<std::int64_t>(
                 ws.event_order_[begin + static_cast<std::size_t>(k)]),
             ec, t, hooks);
      }
    }
  };

  // Wake survivors and (re)build their streamed flight state.  Resume
  // rounds (wake_census false — domain decomposition) leave census
  // residents parked and re-stream only the already-alive immigrants.
#pragma omp parallel
  {
    const std::int32_t t = omp_get_thread_num();
    EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
    auto hk = make_hooks(t);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      if (opt.wake_census && v.state(i) == ParticleState::kCensus) {
        v.state(i) = ParticleState::kAlive;
        v.dt_to_census(i) = dt_s;
      }
      if (v.state(i) == ParticleState::kAlive) {
        FlightState fs;
        load_flight_state(v, static_cast<std::size_t>(i), ctx, fs, ec, hk);
        store_fs(ws, static_cast<std::size_t>(i), fs);
      }
      ws.next_event_[static_cast<std::size_t>(i)] = kNoEvent;
    }
  }

  // Kernel bodies shared by the masked and sorted traversals.

  // Kernel 1: event search — compute times-to-event, select, move.
  auto search = [&](std::int64_t i, EventCounters& ec, std::int32_t,
                    auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    if (v.state(u) != ParticleState::kAlive) {
      ws.next_event_[u] = kNoEvent;
      return;
    }
    FlightState fs = load_fs<View>(ws, u);
    const EventSelection sel = select_and_move(v, u, ctx, fs, ec, hooks);
    ws.next_event_[u] = static_cast<std::uint8_t>(sel.event);
    ws.facet_distance_[u] = sel.facet.distance;
    ws.facet_axis_[u] = sel.facet.axis;
    ws.facet_step_[u] = sel.facet.step;
    ws.facet_boundary_[u] = sel.facet.at_boundary ? 1 : 0;
    store_fs(ws, u, fs);
  };

  // Kernel 2: collisions.
  auto collide = [&](std::int64_t i, EventCounters& ec, std::int32_t t,
                     auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    if (ws.next_event_[u] != static_cast<std::uint8_t>(EventType::kCollision)) {
      return;
    }
    FlightState fs = load_fs<View>(ws, u);
    handle_collision(v, u, ctx, fs, ec, t, hooks);
    store_fs(ws, u, fs);
  };

  // Kernel 3: facets.
  auto cross = [&](std::int64_t i, EventCounters& ec, std::int32_t t,
                   auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    if (ws.next_event_[u] != static_cast<std::uint8_t>(EventType::kFacet)) {
      return;
    }
    FlightState fs = load_fs<View>(ws, u);
    FacetIntersection facet;
    facet.distance = ws.facet_distance_[u];
    facet.axis = ws.facet_axis_[u];
    facet.step = ws.facet_step_[u];
    facet.at_boundary = ws.facet_boundary_[u] != 0;
    handle_facet(v, u, ctx, facet, fs, ec, t, hooks);
    store_fs(ws, u, fs);
  };

  // Kernel 4: census.
  auto census = [&](std::int64_t i, EventCounters& ec, std::int32_t t,
                    auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    if (ws.next_event_[u] != static_cast<std::uint8_t>(EventType::kCensus)) {
      return;
    }
    FlightState fs = load_fs<View>(ws, u);
    handle_census(v, u, ctx, fs, ec, t, hooks);
    store_fs(ws, u, fs);
  };

  // Sorted-mode kernel variants.  The dense segments make the per-particle
  // event-kind recheck redundant, and two kernels touch only a slice of
  // the streamed flight state: the event search reads speed/sigma_t/
  // sigma_a and mutates only the deposit register, census only flushes —
  // so they load and store exactly those fields instead of round-tripping
  // all eight.  Untouched fields keep their stored values, and the fields
  // that are read carry the same bits, so the arithmetic is unchanged.
  auto search_slim = [&](std::int64_t i, EventCounters& ec, std::int32_t,
                         auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    if (v.state(u) != ParticleState::kAlive) {
      ws.next_event_[u] = kNoEvent;
      return;
    }
    FlightState fs;
    fs.speed = ws.speed_[u];
    fs.sigma_a = ws.sigma_a_[u];
    fs.sigma_t = ws.sigma_t_[u];
    fs.pending_deposit = ws.pending_[u];
    const EventSelection sel = select_and_move(v, u, ctx, fs, ec, hooks);
    ws.next_event_[u] = static_cast<std::uint8_t>(sel.event);
    ws.facet_distance_[u] = sel.facet.distance;
    ws.facet_axis_[u] = sel.facet.axis;
    ws.facet_step_[u] = sel.facet.step;
    ws.facet_boundary_[u] = sel.facet.at_boundary ? 1 : 0;
    ws.pending_[u] = fs.pending_deposit;
  };

  auto collide_sorted = [&](std::int64_t i, EventCounters& ec,
                            std::int32_t t, auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    FlightState fs = load_fs<View>(ws, u);
    handle_collision(v, u, ctx, fs, ec, t, hooks);
    store_fs(ws, u, fs);
  };

  auto cross_sorted = [&](std::int64_t i, EventCounters& ec, std::int32_t t,
                          auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    FlightState fs = load_fs<View>(ws, u);
    FacetIntersection facet;
    facet.distance = ws.facet_distance_[u];
    facet.axis = ws.facet_axis_[u];
    facet.step = ws.facet_step_[u];
    facet.at_boundary = ws.facet_boundary_[u] != 0;
    handle_facet(v, u, ctx, facet, fs, ec, t, hooks);
    store_fs(ws, u, fs);
  };

  auto census_slim = [&](std::int64_t i, EventCounters& ec, std::int32_t t,
                         auto& hooks) {
    const auto u = static_cast<std::size_t>(i);
    FlightState fs;
    fs.pending_deposit = ws.pending_[u];
    fs.flat_cell = ws.flat_cell_[u];
    handle_census(v, u, ctx, fs, ec, t, hooks);
    ws.pending_[u] = fs.pending_deposit;
  };

  if (opt.fuse_rounds) {
    // Fused traversal: one sweep per round runs search -> handler per
    // candidate with the FlightState still in registers, eliminating the
    // store/reload of the eight streamed arrays between the search and
    // handler kernels (and the counting sort between them).  Correctness
    // rests on two facts:
    //
    //   * Handlers only mutate their own particle, the tally, and the
    //     per-thread counters, so candidate B's search reads exactly the
    //     state it would have read had all searches run before any
    //     handler — fusion cannot change any sampled value.
    //   * Tally deposit ORDER does change (handlers now interleave with
    //     searches), and FP accumulation is order-sensitive.  So each
    //     thread redirects its deposits into three per-event-kind lanes
    //     (EnergyTally::set_deposit_sink) and replays them after the sweep
    //     in the canonical [collisions | facets | censuses] segment order
    //     the unfused kernels produce.  At one thread the replayed
    //     sequence is identical deposit for deposit, so every checksum is
    //     bit-identical (the same single-thread contract sort_events
    //     documents; multi-thread atomic interleaving wobbles in either
    //     mode).
    //
    // The per-thread EventCounters doubles need no such buffering: each
    // field's addend sequence is already order-preserved under fusion
    // (path_heating comes only from searches, the collision-energy fields
    // only from collision handlers — both visit candidates ascending).
    //
    // Kernel-time attribution (the documented charging rule): a TSC read
    // at the select_and_move return splits each candidate's cycles into
    // event_search and its handler kind; the candidate compaction charges
    // to event_search and the deposit replay + drain to tally.  The split
    // costs two TSC reads per event, so it is gated on record_kernel_times
    // (masked with `profile` by the Simulation layer for fused runs).
    std::size_t n_cand = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (v.state(static_cast<std::size_t>(i)) == ParticleState::kAlive) {
        ws.candidate_[n_cand++] = static_cast<std::int32_t>(i);
      }
    }
    struct DepositLanes {
      std::vector<PendingDeposit> lane[3];  // indexed by EventType
    };
    std::vector<Padded<DepositLanes>> lanes(
        static_cast<std::size_t>(max_threads));
    struct FusedCycles {
      std::uint64_t by_kind[3] = {0, 0, 0};  // collision, facet, census
      std::uint64_t search = 0;
    };
    std::vector<Padded<FusedCycles>> cycles(
        static_cast<std::size_t>(max_threads));
    const bool split_cycles = opt.record_kernel_times && times != nullptr;
    double sweep_wall = 0.0;

    while (n_cand != 0) {
      WallTimer sweep_timer;
#pragma omp parallel
      {
        const std::int32_t t = omp_get_thread_num();
        EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
        auto hooks = make_hooks(t);
        DepositLanes& dl = lanes[static_cast<std::size_t>(t)].value;
        FusedCycles& fc = cycles[static_cast<std::size_t>(t)].value;
#pragma omp for schedule(static)
        for (std::int64_t k = 0; k < static_cast<std::int64_t>(n_cand); ++k) {
          const auto u = static_cast<std::size_t>(
              ws.candidate_[static_cast<std::size_t>(k)]);
          // Candidates are alive by construction: the initial list filters
          // on state, and the rebuild below drops anything a handler
          // retired (death, census, migration).
          const std::uint64_t c0 = split_cycles ? read_cycles() : 0;
          FlightState fs = load_fs<View>(ws, u);
          const EventSelection sel = select_and_move(v, u, ctx, fs, ec, hooks);
          const std::uint64_t c1 = split_cycles ? read_cycles() : 0;
          const auto kind = static_cast<std::size_t>(sel.event);
          ctx.tally->set_deposit_sink(t, &dl.lane[kind]);
          switch (sel.event) {
            case EventType::kCollision:
              handle_collision(v, u, ctx, fs, ec, t, hooks);
              break;
            case EventType::kFacet:
              handle_facet(v, u, ctx, sel.facet, fs, ec, t, hooks);
              break;
            case EventType::kCensus:
              handle_census(v, u, ctx, fs, ec, t, hooks);
              break;
          }
          ctx.tally->set_deposit_sink(t, nullptr);
          store_fs(ws, u, fs);
          if (split_cycles) {
            const std::uint64_t c2 = read_cycles();
            fc.search += c1 - c0;
            fc.by_kind[kind] += c2 - c1;
          }
        }
      }

      sweep_wall += sweep_timer.seconds();

      // Replay the captured deposits in the canonical segment order, then
      // run the separate tally drain (§VI-G) as usual.
      WallTimer timer;
#pragma omp parallel
      {
        const std::int32_t t = omp_get_thread_num();
        DepositLanes& dl = lanes[static_cast<std::size_t>(t)].value;
        for (auto& lane : dl.lane) {
          ctx.tally->replay_deposits(lane, t);
          lane.clear();
        }
      }
      ctx.tally->drain_deferred();
      if (times != nullptr) times->tally += timer.seconds();

      // Next round's candidates: the survivors, in the same ascending
      // order.  Serial compaction, charged to the search phase like the
      // sorted mode's counting sort.
      timer.restart();
      std::size_t out = 0;
      for (std::size_t k = 0; k < n_cand; ++k) {
        const std::int32_t i = ws.candidate_[k];
        if (v.state(static_cast<std::size_t>(i)) == ParticleState::kAlive) {
          ws.candidate_[out++] = i;
        }
      }
      n_cand = out;
      if (times != nullptr) {
        times->event_search += timer.seconds();
        ++times->iterations;
      }
    }

    if (split_cycles) {
      // Apportion the measured sweep WALL time across the four phases by
      // the per-candidate cycle split (per-thread TSC totals summed across
      // threads would report CPU seconds, not wall seconds, at >1 thread;
      // the ratio is thread-count invariant).  total() then still matches
      // what a stopwatch would see, phase for phase, at any thread count.
      FusedCycles sum;
      for (const auto& c : cycles) {
        sum.search += c.value.search;
        for (int e = 0; e < 3; ++e) sum.by_kind[e] += c.value.by_kind[e];
      }
      const std::uint64_t total_cycles =
          sum.search + sum.by_kind[0] + sum.by_kind[1] + sum.by_kind[2];
      if (total_cycles > 0) {
        const double per_cycle = sweep_wall / static_cast<double>(total_cycles);
        times->event_search += static_cast<double>(sum.search) * per_cycle;
        times->collisions += static_cast<double>(sum.by_kind[0]) * per_cycle;
        times->facets += static_cast<double>(sum.by_kind[1]) * per_cycle;
        times->census += static_cast<double>(sum.by_kind[2]) * per_cycle;
      }
    }

    EventCounters total;
    for (const auto& tc : counters) total += tc.value;
    return total;
  }

  if (opt.sort_events) {
    // Sorted + compacted traversal.  A live-candidate list — initially the
    // alive particles, thereafter the merge of the previous round's
    // collision and facet segments — replaces every full-population scan:
    // search, the counting sort, and the handler kernels all touch only
    // particles that can still do work.  Census, death and migration drop
    // a particle from the list permanently, so late rounds cost O(alive),
    // not O(bank).  The candidate list stays ascending (the two merged
    // segments are each ascending), so every alive particle is visited in
    // exactly the order the masked sweeps would use — the bit-identity
    // contract holds by construction.
    std::size_t n_cand = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (v.state(static_cast<std::size_t>(i)) == ParticleState::kAlive) {
        ws.candidate_[n_cand++] = static_cast<std::int32_t>(i);
      }
    }
    constexpr auto kColl = static_cast<std::uint8_t>(EventType::kCollision);
    constexpr auto kFacet = static_cast<std::uint8_t>(EventType::kFacet);
    constexpr auto kCensus = static_cast<std::uint8_t>(EventType::kCensus);
    while (n_cand != 0) {
      WallTimer timer;
#pragma omp parallel
      {
        const std::int32_t t = omp_get_thread_num();
        EventCounters& ec = counters[static_cast<std::size_t>(t)].value;
        auto hooks = make_hooks(t);
#pragma omp for schedule(static)
        for (std::int64_t k = 0; k < static_cast<std::int64_t>(n_cand); ++k) {
          search_slim(static_cast<std::int64_t>(
                          ws.candidate_[static_cast<std::size_t>(k)]),
                      ec, t, hooks);
        }
      }

      // Counting sort over the candidates: group the pending indices
      // [collisions | facets | censuses].  Stable (candidates ascend), so
      // the handler order at one thread — and with it the golden checksum —
      // is identical to the masked sweeps'.  Charged to the search phase.
      std::size_t n_coll = 0;
      std::size_t n_facet = 0;
      std::size_t n_census = 0;
      for (std::size_t k = 0; k < n_cand; ++k) {
        const std::uint8_t e =
            ws.next_event_[static_cast<std::size_t>(ws.candidate_[k])];
        n_coll += e == kColl;
        n_facet += e == kFacet;
        n_census += e == kCensus;
      }
      std::size_t at_coll = 0;
      std::size_t at_facet = n_coll;
      std::size_t at_census = n_coll + n_facet;
      for (std::size_t k = 0; k < n_cand; ++k) {
        const std::int32_t i = ws.candidate_[k];
        const std::uint8_t e = ws.next_event_[static_cast<std::size_t>(i)];
        if (e == kColl) {
          ws.event_order_[at_coll++] = i;
        } else if (e == kFacet) {
          ws.event_order_[at_facet++] = i;
        } else if (e == kCensus) {
          ws.event_order_[at_census++] = i;
        }
      }
      if (times != nullptr) {
        times->event_search += timer.seconds();
        ++times->iterations;
      }
      if (n_coll + n_facet + n_census == 0) break;

      timer.restart();
      segment_foreach(0, n_coll, collide_sorted);
      if (times != nullptr) times->collisions += timer.seconds();

      timer.restart();
      segment_foreach(n_coll, n_facet, cross_sorted);
      if (times != nullptr) times->facets += timer.seconds();

      timer.restart();
      segment_foreach(n_coll + n_facet, n_census, census_slim);
      if (times != nullptr) times->census += timer.seconds();

      timer.restart();
      ctx.tally->drain_deferred();
      if (times != nullptr) times->tally += timer.seconds();

      // Next round's candidates: merge the two ascending segments that can
      // still be alive.  Particles that died or migrated inside a handler
      // stay in the list one extra round — the search early-out retires
      // them (kNoEvent) and the sort then drops them for good.
      std::size_t a = 0;
      std::size_t b = n_coll;
      const std::size_t b_end = n_coll + n_facet;
      std::size_t out = 0;
      while (a < n_coll && b < b_end) {
        const std::int32_t ia = ws.event_order_[a];
        const std::int32_t ib = ws.event_order_[b];
        if (ia < ib) {
          ws.candidate_[out++] = ia;
          ++a;
        } else {
          ws.candidate_[out++] = ib;
          ++b;
        }
      }
      while (a < n_coll) ws.candidate_[out++] = ws.event_order_[a++];
      while (b < b_end) ws.candidate_[out++] = ws.event_order_[b++];
      n_cand = out;
    }
    EventCounters total;
    for (const auto& tc : counters) total += tc.value;
    return total;
  }

  // Breadth-first main loop: one iteration advances the whole population by
  // a single event (Listing 2).
  for (;;) {
    WallTimer timer;
    std::int64_t in_flight = 0;
#pragma omp parallel for schedule(static) reduction(+ : in_flight)
    for (std::int64_t i = 0; i < n; ++i) {
      in_flight += (v.state(static_cast<std::size_t>(i)) ==
                    ParticleState::kAlive)
                       ? 1
                       : 0;
    }
    if (in_flight == 0) break;
    if (opt.simd_event_search) {
      masked_foreach<true>(n, counters, make_hooks, search);
    } else {
      masked_foreach<false>(n, counters, make_hooks, search);
    }
    if (times != nullptr) {
      times->event_search += timer.seconds();
      ++times->iterations;
    }

    timer.restart();
    if (opt.simd_collisions) {
      masked_foreach<true>(n, counters, make_hooks, collide);
    } else {
      masked_foreach<false>(n, counters, make_hooks, collide);
    }
    if (times != nullptr) times->collisions += timer.seconds();

    timer.restart();
    if (opt.simd_facets) {
      masked_foreach<true>(n, counters, make_hooks, cross);
    } else {
      masked_foreach<false>(n, counters, make_hooks, cross);
    }
    if (times != nullptr) times->facets += timer.seconds();

    timer.restart();
    masked_foreach<false>(n, counters, make_hooks, census);
    if (times != nullptr) times->census += timer.seconds();

    // Kernel 5: the separate tally loop (§VI-G) — drains the deposits the
    // handlers deferred when the tally runs in kDeferredAtomic mode.
    timer.restart();
    ctx.tally->drain_deferred();
    if (times != nullptr) times->tally += timer.seconds();
  }

  EventCounters total;
  for (const auto& tc : counters) total += tc.value;
  return total;
}

/// Pick the hooks policy: per-thread TimingHooks when profiling (TimingHooks
/// is stateful — one in-flight phase start per instance — so every parallel
/// region constructs its own through make_hooks), NoHooks otherwise.
template <class View>
EventCounters dispatch(const View& v, const TransportContext& ctx, double dt_s,
                       const OverEventsOptions& opt, OverEventsWorkspace& ws,
                       OverEventsKernelTimes* times) {
  if (opt.profile && ctx.profiler != nullptr) {
    PhaseProfiler* profiler = ctx.profiler;
    return drive(v, ctx, dt_s, opt, ws, times, [profiler](std::int32_t t) {
      return TimingHooks(profiler, t);
    });
  }
  return drive(v, ctx, dt_s, opt, ws, times,
               [](std::int32_t) { return NoHooks{}; });
}

}  // namespace

EventCounters over_events_step(const SoaView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times) {
  return dispatch(v, ctx, dt_s, opt, ws, times);
}

EventCounters over_events_step(const AosView& v, const TransportContext& ctx,
                               double dt_s, const OverEventsOptions& opt,
                               OverEventsWorkspace& ws,
                               OverEventsKernelTimes* times) {
  return dispatch(v, ctx, dt_s, opt, ws, times);
}

}  // namespace neutral
