// ParticleBank: layout-polymorphic particle storage — the one first-class
// container every transport phase operates on.
//
// The paper's central experiment crosses parallelisation scheme (Over
// Particles / Over Events, §V) with data layout (AoS / SoA, §VI-D); the
// decomposition layers (bank shards, domain windows — src/batch) must not
// collapse that product.  ParticleBank owns the particles in either layout
// behind one interface, so every consumer — schemes, Simulation, domain
// migration, shard spans — is written once:
//
//   * kernels get the layout's native view through with_view() (the same
//     AosView/SoaView template dispatch the transport code always used);
//   * everything that moves particles BETWEEN banks speaks the canonical
//     AoS `Particle` record (the wire format: a complete checkpoint —
//     position, clocks, RNG counter).  The bank converts at the boundary,
//     so an SoA bank can inject migrants extracted from an AoS bank and
//     vice versa.
//
// Bank mutation — sourcing a span or window, census-order compaction when
// migrants leave, immigrant injection — lives here, not in Simulation:
// production event-based transport codes (MC/DC, OpenMC's event kernels)
// take the same shape, one particle bank abstraction under every phase.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/particle.h"

namespace neutral {

struct ProblemDeck;
class StructuredMesh2D;

class ParticleBank {
 public:
  explicit ParticleBank(Layout layout = Layout::kAoS) : layout_(layout) {}

  [[nodiscard]] Layout layout() const { return layout_; }
  [[nodiscard]] std::size_t size() const {
    return layout_ == Layout::kAoS ? aos_.size() : soa_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void resize(std::size_t n);

  /// Canonical-record element access (wire-format conversion per call; use
  /// with_view for hot loops).
  [[nodiscard]] Particle get(std::size_t i) const;
  void set(std::size_t i, const Particle& p);
  void append(const Particle& p);

  /// Stable-id iteration helpers (no layout branch at the call site).
  [[nodiscard]] std::uint64_t id(std::size_t i) const {
    return layout_ == Layout::kAoS ? aos_[i].id : soa_.id[i];
  }
  [[nodiscard]] ParticleState state(std::size_t i) const {
    return layout_ == Layout::kAoS ? aos_[i].state : soa_.state[i];
  }

  /// Run `fn` against the layout's native view — the single dispatch point
  /// that used to be the step_aos/step_soa fork in Simulation.
  template <class Fn>
  decltype(auto) with_view(Fn&& fn) {
    if (layout_ == Layout::kAoS) {
      return std::forward<Fn>(fn)(AosView(aos_.data(), aos_.size()));
    }
    return std::forward<Fn>(fn)(SoaView(soa_));
  }
  /// Const dispatch for read-only walks (population, energy sums).  The
  /// views expose mutable references, so this hands out a view over
  /// const_cast storage; callers must not write through it.
  template <class Fn>
  decltype(auto) with_view(Fn&& fn) const {
    return const_cast<ParticleBank*>(this)->with_view(std::forward<Fn>(fn));
  }

  /// Source the deck's births for ids [first_id, first_id + count): local
  /// slot i holds global particle id first_id + i, every birth drawn from
  /// that id's own counter-based stream (core/init.h) — the basis of both
  /// plain runs (the whole bank) and shard spans.
  void source_span(const ProblemDeck& deck, const StructuredMesh2D& mesh,
                   std::int64_t first_id, std::int64_t count);

  /// Adopt prebuilt wire-format records (window routing hands banks over
  /// this way).  Converts at the boundary for SoA banks; AoS banks take the
  /// vector by move.  Validation (window membership, id order) is the
  /// caller's job — the bank only stores.
  void assign(std::vector<Particle> records);

  /// Move every kMigrating particle out (appended to `out` in bank order,
  /// flipped back to kAlive — the record is the mid-flight checkpoint) and
  /// compact the survivors over the holes, preserving order.  Returns the
  /// number extracted.
  std::size_t extract_migrants(std::vector<Particle>& out);

  /// Append immigrant checkpoints (wire format, converted on entry).
  void inject(const Particle* records, std::size_t count);

  /// Number of non-dead particles.
  [[nodiscard]] std::int64_t surviving_population() const;
  /// Weighted energy of all non-dead particles [eV].
  [[nodiscard]] double in_flight_energy() const;
  /// Resident bytes of the particle arrays (size-based estimate).
  [[nodiscard]] std::uint64_t footprint_bytes() const;

 private:
  Layout layout_;
  std::vector<Particle> aos_;
  ParticleSoA soa_;
};

}  // namespace neutral
