#include "core/tally.h"

#include "util/numeric.h"

namespace neutral {

const char* to_string(TallyMode mode) {
  switch (mode) {
    case TallyMode::kAtomic: return "atomic";
    case TallyMode::kPrivatized: return "privatized";
    case TallyMode::kPrivatizedMergeEveryStep: return "privatized-merge-step";
    case TallyMode::kDeferredAtomic: return "deferred-atomic";
  }
  return "?";
}

EnergyTally::EnergyTally(std::int64_t cells, TallyMode mode,
                         std::int32_t threads, bool compensated, bool direct)
    : mode_(mode),
      compensated_(compensated),
      direct_(direct && threads == 1 && !compensated) {
  NEUTRAL_REQUIRE(cells > 0, "tally needs at least one cell");
  NEUTRAL_REQUIRE(threads >= 1, "tally needs at least one thread slot");
  NEUTRAL_REQUIRE(!(compensated && mode == TallyMode::kAtomic && threads > 1),
                  "compensated atomic tallies are single-threaded only "
                  "(use a privatized mode for compensated multi-threading)");
  global_.assign(static_cast<std::size_t>(cells), 0.0);
  if (compensated_) comp_.assign(static_cast<std::size_t>(cells), 0.0);
  if (mode == TallyMode::kPrivatized ||
      mode == TallyMode::kPrivatizedMergeEveryStep) {
    privates_.resize(static_cast<std::size_t>(threads));
    for (auto& p : privates_) p.assign(static_cast<std::size_t>(cells), 0.0);
    if (compensated_) {
      privates_comp_.resize(static_cast<std::size_t>(threads));
      for (auto& p : privates_comp_) {
        p.assign(static_cast<std::size_t>(cells), 0.0);
      }
    }
  } else if (mode == TallyMode::kDeferredAtomic) {
    deferred_.resize(static_cast<std::size_t>(threads));
  }
  // One redirection slot per thread, all detached (Padded value-initialises
  // the pointer to nullptr), so deposit() can test its slot unconditionally.
  sinks_.resize(static_cast<std::size_t>(threads));
}

void EnergyTally::drain_deferred() {
  if (mode_ != TallyMode::kDeferredAtomic) return;
  if (compensated_) {
    // Sequential drain in thread order: every deposit lands in its cell's
    // (sum, comp) pair exactly, so the final cell values do not depend on
    // this order anyway — but keeping it fixed makes the intermediate
    // state reproducible too.
    for (auto& padded : deferred_) {
      for (const PendingDeposit& d : padded.value) {
        const auto f = static_cast<std::size_t>(d.cell);
        two_sum_add(global_[f], comp_[f], d.amount);
      }
      padded.value.clear();
    }
    return;
  }
  // Each thread drains its own buffer; cells can collide across buffers so
  // the adds stay atomic — but they now live in one tight loop instead of
  // being interleaved with event handling (the paper's §VI-G workaround).
#pragma omp parallel for schedule(static)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(deferred_.size());
       ++t) {
    auto& buffer = deferred_[static_cast<std::size_t>(t)].value;
    for (const PendingDeposit& d : buffer) {
      double& slot = global_[static_cast<std::size_t>(d.cell)];
#pragma omp atomic update
      slot += d.amount;
    }
    buffer.clear();
  }
}

void EnergyTally::merge() {
  drain_deferred();
  const auto cells = static_cast<std::int64_t>(global_.size());
  if (!privates_.empty()) {
    // Parallel over cells: each thread owns a cell range, reading all
    // private copies — no synchronisation needed.
    if (compensated_) {
#pragma omp parallel for schedule(static)
      for (std::int64_t c = 0; c < cells; ++c) {
        const auto u = static_cast<std::size_t>(c);
        double hi = global_[u];
        double lo = comp_[u];
        for (std::size_t t = 0; t < privates_.size(); ++t) {
          dd_add(hi, lo, privates_[t][u], privates_comp_[t][u]);
          privates_[t][u] = 0.0;
          privates_comp_[t][u] = 0.0;
        }
        global_[u] = hi;
        comp_[u] = lo;
      }
    } else {
#pragma omp parallel for schedule(static)
      for (std::int64_t c = 0; c < cells; ++c) {
        double sum = 0.0;
        for (auto& p : privates_) {
          sum += p[static_cast<std::size_t>(c)];
          p[static_cast<std::size_t>(c)] = 0.0;
        }
        global_[static_cast<std::size_t>(c)] += sum;
      }
    }
  }
  if (compensated_) normalise();
}

void EnergyTally::normalise() {
  // Re-balance each (sum, comp) pair so the stored sum is the rounded value
  // of the pair: data()[c] == fl(hi + lo).  TwoSum keeps the residual, so
  // repeated normalisation is a fixed point and further accumulation stays
  // exact.
  const auto cells = static_cast<std::int64_t>(global_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < cells; ++c) {
    const auto u = static_cast<std::size_t>(c);
    const double hi = global_[u];
    const double lo = comp_[u];
    const double s = hi + lo;
    global_[u] = s;
    comp_[u] = std::abs(hi) >= std::abs(lo) ? (hi - s) + lo : (lo - s) + hi;
  }
}

void EnergyTally::accumulate(const double* hi, const double* lo,
                             std::int64_t cells) {
  NEUTRAL_REQUIRE(compensated_,
                  "accumulate() target must be a compensated tally");
  NEUTRAL_REQUIRE(cells == this->cells(),
                  "accumulate() requires matching cell counts");
  for (std::int64_t c = 0; c < cells; ++c) {
    const auto u = static_cast<std::size_t>(c);
    dd_add(global_[u], comp_[u], hi[u], lo != nullptr ? lo[u] : 0.0);
  }
}

void EnergyTally::accumulate(const EnergyTally& other) {
  accumulate(other.global_.data(), other.compensation_data(), other.cells());
}

void EnergyTally::accumulate(const TallyImage& image) {
  accumulate(image.hi.data(), image.lo.empty() ? nullptr : image.lo.data(),
             image.cells());
}

TallyImage EnergyTally::image() const {
  TallyImage img;
  img.hi = global_;
  if (compensated_) img.lo = comp_;
  return img;
}

double EnergyTally::total() const {
  KahanSum sum;
  for (double v : global_) sum.add(v);
  for (double v : comp_) sum.add(v);
  // Include unmerged private contributions so total() is correct even when
  // called mid-solve.
  for (const auto& p : privates_) {
    for (double v : p) sum.add(v);
  }
  for (const auto& p : privates_comp_) {
    for (double v : p) sum.add(v);
  }
  return sum.value();
}

void EnergyTally::reset() {
  std::fill(global_.begin(), global_.end(), 0.0);
  std::fill(comp_.begin(), comp_.end(), 0.0);
  for (auto& p : privates_) std::fill(p.begin(), p.end(), 0.0);
  for (auto& p : privates_comp_) std::fill(p.begin(), p.end(), 0.0);
  for (auto& d : deferred_) d.value.clear();
}

std::uint64_t EnergyTally::footprint_bytes() const {
  std::uint64_t bytes = (global_.size() + comp_.size()) * sizeof(double);
  for (const auto& p : privates_) bytes += p.size() * sizeof(double);
  for (const auto& p : privates_comp_) bytes += p.size() * sizeof(double);
  for (const auto& d : deferred_) {
    bytes += d.value.capacity() * sizeof(PendingDeposit);
  }
  return bytes;
}

}  // namespace neutral
