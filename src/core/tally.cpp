#include "core/tally.h"

#include "util/numeric.h"

namespace neutral {

const char* to_string(TallyMode mode) {
  switch (mode) {
    case TallyMode::kAtomic: return "atomic";
    case TallyMode::kPrivatized: return "privatized";
    case TallyMode::kPrivatizedMergeEveryStep: return "privatized-merge-step";
    case TallyMode::kDeferredAtomic: return "deferred-atomic";
  }
  return "?";
}

EnergyTally::EnergyTally(std::int64_t cells, TallyMode mode,
                         std::int32_t threads)
    : mode_(mode) {
  NEUTRAL_REQUIRE(cells > 0, "tally needs at least one cell");
  NEUTRAL_REQUIRE(threads >= 1, "tally needs at least one thread slot");
  global_.assign(static_cast<std::size_t>(cells), 0.0);
  if (mode == TallyMode::kPrivatized ||
      mode == TallyMode::kPrivatizedMergeEveryStep) {
    privates_.resize(static_cast<std::size_t>(threads));
    for (auto& p : privates_) p.assign(static_cast<std::size_t>(cells), 0.0);
  } else if (mode == TallyMode::kDeferredAtomic) {
    deferred_.resize(static_cast<std::size_t>(threads));
  }
}

void EnergyTally::drain_deferred() {
  if (mode_ != TallyMode::kDeferredAtomic) return;
  // Each thread drains its own buffer; cells can collide across buffers so
  // the adds stay atomic — but they now live in one tight loop instead of
  // being interleaved with event handling (the paper's §VI-G workaround).
#pragma omp parallel for schedule(static)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(deferred_.size());
       ++t) {
    auto& buffer = deferred_[static_cast<std::size_t>(t)].value;
    for (const PendingDeposit& d : buffer) {
      double& slot = global_[static_cast<std::size_t>(d.cell)];
#pragma omp atomic update
      slot += d.amount;
    }
    buffer.clear();
  }
}

void EnergyTally::merge() {
  drain_deferred();
  if (privates_.empty()) return;
  const auto cells = static_cast<std::int64_t>(global_.size());
  // Parallel over cells: each thread owns a cell range, reading all private
  // copies — no synchronisation needed.
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < cells; ++c) {
    double sum = 0.0;
    for (auto& p : privates_) {
      sum += p[static_cast<std::size_t>(c)];
      p[static_cast<std::size_t>(c)] = 0.0;
    }
    global_[static_cast<std::size_t>(c)] += sum;
  }
}

double EnergyTally::total() const {
  KahanSum sum;
  for (double v : global_) sum.add(v);
  // Include unmerged private contributions so total() is correct even when
  // called mid-solve.
  for (const auto& p : privates_) {
    for (double v : p) sum.add(v);
  }
  return sum.value();
}

void EnergyTally::reset() {
  std::fill(global_.begin(), global_.end(), 0.0);
  for (auto& p : privates_) std::fill(p.begin(), p.end(), 0.0);
  for (auto& d : deferred_) d.value.clear();
}

std::uint64_t EnergyTally::footprint_bytes() const {
  std::uint64_t bytes = global_.size() * sizeof(double);
  for (const auto& p : privates_) bytes += p.size() * sizeof(double);
  for (const auto& d : deferred_) {
    bytes += d.value.capacity() * sizeof(PendingDeposit);
  }
  return bytes;
}

}  // namespace neutral
