// Problem decks: the three test problems of paper §IV-B.
//
//   * stream  — near-vacuum mesh, particles born at the centre, ~7000 facet
//     events per particle and effectively zero collisions.  Isolates facet
//     handling and tally-flush cost.
//   * scatter — homogeneously dense mesh; particles rattle near their birth
//     cell, collision events dominate the runtime.  Isolates collision
//     handling and cross-section lookup.
//   * csp     — "centre square problem": low-density space with a dense
//     square in the middle; particles stream from the bottom-left into the
//     square.  The balanced, realistic case the paper leans on.
//
// Scaling: the paper runs 4000^2 cells over a 1 m^2 domain with 1e6 (stream,
// csp) or 1e7 (scatter) particles.  Decks are generated with a mesh scale
// and a particle scale so laptop-class runs preserve the *event mix*: the
// dense-region density scales with mesh resolution so the mean-free-path
// stays a fixed multiple of the cell size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xs/synthetic.h"

namespace neutral {

/// Axis-aligned density override region (deck coordinates, cm).
struct RegionSpec {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  double density_kg_m3 = 0.0;
};

struct ProblemDeck {
  std::string name = "custom";

  // Mesh geometry.
  std::int32_t nx = 0, ny = 0;
  double width_cm = 100.0, height_cm = 100.0;

  // Material / density description.
  double base_density_kg_m3 = 0.0;
  std::vector<RegionSpec> regions;
  /// Dummy-material molar mass [g/mol] — NOT a physical nuclide: chosen so
  /// the paper's densities give the paper's event mixes (see DESIGN.md §5).
  double molar_mass_g_mol = 1.0;
  /// Target mass number A for elastic-scattering kinematics.
  double mass_number = 100.0;

  // Source: particles born uniformly in this rectangle, isotropically.
  double src_x0 = 0.0, src_y0 = 0.0, src_x1 = 0.0, src_y1 = 0.0;
  double initial_energy_ev = 1.0e6;
  double initial_weight = 1.0;

  // Run control.
  std::int64_t n_particles = 0;
  double dt_s = 1.0e-7;
  std::int32_t n_timesteps = 1;

  // Variance-reduction cutoffs (§IV-E).
  double min_energy_ev = 1.0;
  double min_weight = 1.0e-10;
  /// Russian-roulette survival probability at the weight cutoff; 0 = off
  /// (terminate and deposit, the paper's behaviour).
  double roulette_survival = 0.0;

  std::uint64_t seed = 42;

  // Cross-section table shape.
  SyntheticXsConfig xs;

  /// Fraction of the paper's 4000-cell resolution this deck uses.
  [[nodiscard]] double mesh_scale() const { return nx / 4000.0; }
};

/// Paper density constants (§IV-B).
inline constexpr double kVacuumDensityKgM3 = 1.0e-30;
inline constexpr double kDenseDensityKgM3 = 1.0e3;

/// Deck factories.  `mesh_scale` in (0, 1] maps 4000 -> nx; `particle_scale`
/// maps the paper's particle counts down proportionally.
ProblemDeck stream_deck(double mesh_scale = 1.0, double particle_scale = 1.0);
ProblemDeck scatter_deck(double mesh_scale = 1.0, double particle_scale = 1.0);
ProblemDeck csp_deck(double mesh_scale = 1.0, double particle_scale = 1.0);

/// Lookup by name ("stream" | "scatter" | "csp").
ProblemDeck deck_by_name(const std::string& name, double mesh_scale = 1.0,
                         double particle_scale = 1.0);

}  // namespace neutral
