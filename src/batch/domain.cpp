#include "batch/domain.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>

#include "batch/shard.h"
#include "core/init.h"
#include "core/validation.h"
#include "obs/trace.h"
#include "runtime/timer.h"
#include "util/error.h"

namespace neutral::batch {

namespace {

/// Split `cells` into `parts` contiguous extents, remainder leading —
/// the same balancing rule plan_shards applies to particle ids.
std::vector<std::int32_t> split_axis(std::int32_t cells, std::int32_t parts) {
  std::vector<std::int32_t> starts;
  starts.reserve(static_cast<std::size_t>(parts) + 1);
  const std::int32_t base = cells / parts;
  const std::int32_t remainder = cells % parts;
  std::int32_t at = 0;
  for (std::int32_t p = 0; p < parts; ++p) {
    starts.push_back(at);
    at += base + (p < remainder ? 1 : 0);
  }
  starts.push_back(cells);
  return starts;
}

std::int32_t find_extent(const std::vector<std::int32_t>& starts,
                         std::int32_t v) {
  // starts is sorted; the owning extent is the last start <= v.
  const auto it = std::upper_bound(starts.begin(), starts.end(), v);
  return static_cast<std::int32_t>(it - starts.begin()) - 1;
}

/// Index of the span owning particle id `id` (spans are the contiguous,
/// ascending partition plan_shards produces).
std::size_t span_of(const std::vector<ParticleSpan>& spans,
                    std::uint64_t id) {
  const auto sid = static_cast<std::int64_t>(id);
  const auto it = std::upper_bound(
      spans.begin(), spans.end(), sid,
      [](std::int64_t v, const ParticleSpan& s) { return v < s.first_id; });
  return static_cast<std::size_t>(it - spans.begin()) - 1;
}

}  // namespace

DomainWindow DomainGrid::window(std::int32_t r, std::int32_t c) const {
  return DomainWindow{col_start[static_cast<std::size_t>(c)],
                      row_start[static_cast<std::size_t>(r)],
                      col_start[static_cast<std::size_t>(c) + 1] -
                          col_start[static_cast<std::size_t>(c)],
                      row_start[static_cast<std::size_t>(r) + 1] -
                          row_start[static_cast<std::size_t>(r)]};
}

std::size_t DomainGrid::owner(CellIndex cell) const {
  const std::int32_t r = find_extent(row_start, cell.y);
  const std::int32_t c = find_extent(col_start, cell.x);
  return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
         static_cast<std::size_t>(c);
}

DomainGrid plan_domains(std::int32_t nx, std::int32_t ny, std::int32_t rows,
                        std::int32_t cols) {
  NEUTRAL_REQUIRE(nx >= 1 && ny >= 1, "cannot tile an empty mesh");
  NEUTRAL_REQUIRE(rows >= 1 && cols >= 1,
                  "domain grid must have at least one row and column");
  DomainGrid grid;
  grid.rows = std::min(rows, ny);
  grid.cols = std::min(cols, nx);
  grid.row_start = split_axis(ny, grid.rows);
  grid.col_start = split_axis(nx, grid.cols);
  return grid;
}

std::pair<std::int32_t, std::int32_t> parse_domain_grid(
    const std::string& spec) {
  const auto x = spec.find('x');
  bool ok = x != std::string::npos && x > 0 && x + 1 < spec.size();
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  if (ok) {
    try {
      std::size_t used = 0;
      rows = std::stoi(spec, &used);
      ok = used == x;
      std::size_t used2 = 0;
      cols = std::stoi(spec.substr(x + 1), &used2);
      ok = ok && x + 1 + used2 == spec.size();
    } catch (const std::exception&) {
      ok = false;
    }
  }
  NEUTRAL_REQUIRE(ok && rows >= 1 && cols >= 1,
                  "bad domain grid '" + spec + "' (expected RxC, e.g. 2x2)");
  return {rows, cols};
}

DomainRunReport run_domains(BatchEngine& engine, const SimulationConfig& base,
                            const DomainOptions& opt) {
  NEUTRAL_REQUIRE(base.span.whole_bank(),
                  "cannot domain-decompose a config with a particle span");
  NEUTRAL_REQUIRE(!base.window.active(),
                  "cannot domain-decompose a config that already has a "
                  "window");
  NEUTRAL_REQUIRE(opt.group != 0,
                  "domain rounds need a non-zero fork-join group");
  NEUTRAL_REQUIRE(opt.shards >= 1,
                  "domain runs need at least one bank shard per subdomain");
  WallTimer wall;
  DomainRunReport report;
  report.grid = plan_domains(base.deck.nx, base.deck.ny, opt.rows, opt.cols);
  const std::size_t n_domains = report.grid.count();
  // Bank shards nested inside every subdomain: partial solve (d, s) holds
  // the births in window d whose ids fall in span s, index d * S + s.
  const std::vector<ParticleSpan> spans =
      plan_shards(base.deck.n_particles, opt.shards);
  const std::size_t n_spans = spans.size();
  report.shards = static_cast<std::int32_t>(n_spans);
  const std::size_t n = n_domains * n_spans;

  // Slab worlds (one per window, shared by that window's shard sims),
  // through the engine's cache so domain runs of sweep jobs sharing
  // geometry reuse one world per window instead of rebuilding mesh + XS
  // tables per job.
  std::vector<std::shared_ptr<const World>> worlds;
  worlds.reserve(n_domains);
  for (std::int32_t r = 0; r < report.grid.rows; ++r) {
    for (std::int32_t c = 0; c < report.grid.cols; ++c) {
      const DomainWindow window = report.grid.window(r, c);
      worlds.push_back(engine.options().reuse_worlds
                           ? engine.cache().acquire(base.deck, window)
                           : build_world(base.deck, window));
    }
  }

  // One pass over the id space routes every birth to its owning partial
  // solve: G x S banks cost one scan, not G x S.  route_births owns the
  // id-order invariant.  (Every slab world carries the full edge arrays,
  // so any of them can locate births.)
  std::vector<std::vector<Particle>> banks = route_births(
      base.deck, worlds.front()->mesh, n,
      [&grid = report.grid, &spans, n_spans](const Particle& p) {
        return grid.owner({p.cellx, p.celly}) * n_spans +
               span_of(spans, p.id);
      });

  // Per-(subdomain, span) Simulations: compensated tallies + kept images
  // (the PR 2 reduction contract), atomic promoted to privatized when a
  // round may run more than one thread — exactly the shard-job rule.
  // Round jobs are custom work, so the engine cannot stamp its run-wall
  // deadline on them; apply QueuePolicy::max_run_wall here instead (the
  // rounds' transport_round checks it between kernels).
  SimulationConfig root = base;
  if (engine.options().policy.max_run_wall.count() > 0) {
    root.deadline =
        std::min(root.deadline, std::chrono::steady_clock::now() +
                                    engine.options().policy.max_run_wall);
  }
  std::vector<std::unique_ptr<Simulation>> sims;
  sims.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = i / n_spans;
    SimulationConfig cfg = root;
    cfg.window = worlds[d]->window;
    cfg.span = spans[i % n_spans];
    cfg.compensated_tally = true;
    cfg.keep_tally_image = true;
    cfg.threads = opt.threads_per_domain > 0 ? opt.threads_per_domain : 1;
    if (cfg.tally_mode == TallyMode::kAtomic && cfg.threads != 1) {
      cfg.tally_mode = TallyMode::kPrivatized;
    }
    sims.push_back(std::make_unique<Simulation>(cfg, worlds[d],
                                                std::move(banks[i])));
    report.sourced.push_back(sims.back()->sourced_count());
  }

  // Fork-join one transport round for the `active` subdomains.  Returns
  // false (with report.error set) on the first failed round job.
  std::uint64_t next_job_id = 0;
  auto run_round = [&](const std::vector<std::size_t>& active,
                       bool wake) -> bool {
    std::vector<Job> jobs;
    jobs.reserve(active.size());
    for (std::size_t i : active) {
      Job job;
      job.id = next_job_id++;
      job.group = opt.group;
      job.priority = opt.priority;
      job.label = "domain " + std::to_string(i / n_spans) + "/" +
                  std::to_string(n_domains) +
                  (n_spans > 1 ? " shard " + std::to_string(i % n_spans) +
                                     "/" + std::to_string(n_spans)
                               : std::string()) +
                  (wake ? " wake" : " resume");
      job.work = [sim = sims[i].get(), wake] {
        sim->transport_round(wake);
        return RunResult{};
      };
      jobs.push_back(std::move(job));
    }
    const BatchReport round = engine.run(std::move(jobs));
    for (const JobOutcome& outcome : round.jobs) {
      if (!outcome.ok) {
        report.error = outcome.label + " failed: " + outcome.error;
        report.timed_out = outcome.timed_out;
        return false;
      }
    }
    ++report.rounds;
    if (obs::TraceLog* trace = engine.options().trace; trace != nullptr) {
      obs::TraceEvent event;
      event.event = "round";
      event.job_id = static_cast<std::uint64_t>(report.rounds);
      event.group = opt.group;
      event.run_wall_s = round.wall_seconds;
      event.detail = std::to_string(active.size()) + " of " +
                     std::to_string(n) + " partial solves " +
                     (wake ? "woken" : "resumed");
      trace->record(event);
    }
    return true;
  };

  // Transport: per timestep, one wake round for every subdomain, then
  // resume rounds for whoever received migrants, until the buffers drain.
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  std::vector<std::vector<Particle>> inbox(n);
  std::vector<Particle> outbound;
  for (std::int32_t t = 0; t < base.deck.n_timesteps; ++t) {
    std::vector<std::size_t> active = all;
    bool wake = true;
    while (!active.empty()) {
      if (!run_round(active, wake)) return report;
      wake = false;

      outbound.clear();
      for (std::size_t i = 0; i < n; ++i) {
        sims[i]->extract_migrants(outbound);
      }
      report.migrations += static_cast<std::int64_t>(outbound.size());
      for (const Particle& p : outbound) {
        // The owner of a checkpoint is the (window, id-span) pair — the
        // subdomain whose slab holds its cell AND the shard whose span
        // holds its id.
        inbox[report.grid.owner({p.cellx, p.celly}) * n_spans +
              span_of(spans, p.id)]
            .push_back(p);
      }
      active.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (inbox[i].empty()) continue;
        // Deterministic drain order: immigrants re-bank sorted by id, so
        // the bank contents are invariant to extraction/worker order.
        std::sort(inbox[i].begin(), inbox[i].end(),
                  [](const Particle& a, const Particle& b) {
                    return a.id < b.id;
                  });
        sims[i]->inject_migrants(inbox[i].data(), inbox[i].size());
        inbox[i].clear();
        active.push_back(i);
      }
    }
  }

  // Reduce: extensive sums via RunResult::operator+=, then stitch the
  // disjoint tally slabs into the full grid and fold through a compensated
  // tally (the PR 2 machinery) to recompute checksum/total/image.  With
  // nested bank shards a window owns several slab images; they fold first
  // through a window-sized compensated tally in shard order — exact
  // double-double addition, so the stitched (sum, comp) pairs carry each
  // cell's full deposit multiset no matter how it was partitioned.
  const std::int64_t full_cells =
      static_cast<std::int64_t>(base.deck.nx) * base.deck.ny;
  TallyImage stitched;
  stitched.hi.assign(static_cast<std::size_t>(full_cells), 0.0);
  stitched.lo.assign(static_cast<std::size_t>(full_cells), 0.0);
  RunResult merged;
  std::uint64_t peak = 0;
  for (std::size_t d = 0; d < n_domains; ++d) {
    const DomainWindow& w = worlds[d]->window;
    std::shared_ptr<const TallyImage> slab;
    if (n_spans == 1) {
      // One image per window: stitch it directly (the fold below would
      // reproduce it bit-for-bit at the cost of an extra tally pass).
      const RunResult part = sims[d]->summary();
      NEUTRAL_REQUIRE(part.tally != nullptr,
                      "subdomain result must carry a tally image");
      peak = std::max(peak, part.peak_mesh_bytes);
      merged += part;
      slab = part.tally;
    } else {
      EnergyTally window_fold(w.num_cells(), TallyMode::kAtomic,
                              /*threads=*/1, /*compensated=*/true);
      for (std::size_t s = 0; s < n_spans; ++s) {
        const RunResult part = sims[d * n_spans + s]->summary();
        NEUTRAL_REQUIRE(part.tally != nullptr,
                        "subdomain result must carry a tally image");
        peak = std::max(peak, part.peak_mesh_bytes);
        merged += part;
        window_fold.accumulate(*part.tally);
      }
      // Normalise per the accumulate() contract; a fixed point for the
      // (sum, comp) pairs, so the stitched values are unchanged.
      window_fold.merge();
      slab = std::make_shared<const TallyImage>(window_fold.image());
    }

    for (std::int32_t j = 0; j < w.ny; ++j) {
      const std::size_t src = static_cast<std::size_t>(j) *
                              static_cast<std::size_t>(w.nx);
      const std::size_t dst =
          static_cast<std::size_t>(w.y0 + j) *
              static_cast<std::size_t>(base.deck.nx) +
          static_cast<std::size_t>(w.x0);
      std::copy_n(slab->hi.begin() + static_cast<std::ptrdiff_t>(src), w.nx,
                  stitched.hi.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(slab->lo.begin() + static_cast<std::ptrdiff_t>(src), w.nx,
                  stitched.lo.begin() + static_cast<std::ptrdiff_t>(dst));
    }
  }
  EnergyTally reduced(full_cells, TallyMode::kAtomic, /*threads=*/1,
                      /*compensated=*/true);
  reduced.accumulate(stitched);
  reduced.merge();
  merged.tally_checksum = positional_checksum(reduced.data(), full_cells);
  merged.budget.tally_total = reduced.total();
  merged.tally = std::make_shared<const TallyImage>(reduced.image());
  merged.peak_mesh_bytes = peak;

  report.merged = std::move(merged);
  report.peak_mesh_bytes = peak;
  report.ok = true;
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace neutral::batch
