// Shared world cache: one immutable World per distinct deck geometry.
//
// Jobs in a sweep typically differ in run-control knobs (particle count,
// scheme, layout, seed) while sharing mesh + density + cross-section
// tables; rebuilding those per job is the dominant setup cost and pure
// waste.  The cache keys Worlds by world_fingerprint(deck) and hands out
// shared_ptr<const World> — read-only by type, so any number of concurrent
// Simulations can execute against one copy.
//
// Concurrency: each fingerprint maps to a shared_future.  The first
// acquirer installs a promise and builds *outside* the cache lock (a 4000^2
// build takes seconds — holding the lock would serialise unrelated builds);
// later acquirers wait on the future.  A build that throws evicts its entry
// so a subsequent acquire can retry.
//
// Capacity: an optional byte budget (WorldCacheOptions::max_bytes) bounds
// the resident set for many-geometry batches.  When a finished build tips
// the total over budget, least-recently-acquired *built* entries are
// dropped until it fits (the entry just built is never its own victim, so
// a single over-budget world still caches).  Eviction only releases the
// cache's reference — outstanding shared_ptrs stay valid.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>

#include "core/deck.h"
#include "core/world.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace neutral::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace neutral::obs

namespace neutral::batch {

struct WorldCacheOptions {
  /// Resident-byte budget for cached worlds; 0 = unbounded.
  std::uint64_t max_bytes = 0;
  /// Optional registry: the cache publishes hit/miss/eviction counters and
  /// resident-bytes/worlds gauges there.  Null = unobserved.
  obs::MetricsRegistry* metrics = nullptr;
};

class WorldCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< acquire() found an entry (built or building)
    std::uint64_t misses = 0;  ///< acquire() had to build
    std::uint64_t evictions = 0;  ///< entries dropped (failed builds + LRU)
    std::uint64_t resident_worlds = 0;  ///< entries currently cached
    std::uint64_t resident_bytes = 0;   ///< estimated bytes currently cached

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  explicit WorldCache(WorldCacheOptions options = {});

  /// Return the world for `deck`, building it on first sight.  If `hit` is
  /// non-null it reports whether this call reused an existing entry.
  std::shared_ptr<const World> acquire(const ProblemDeck& deck,
                                       bool* hit = nullptr)
      NEUTRAL_EXCLUDES(mutex_);

  /// Same, keyed by a precomputed world_fingerprint(deck) — the engine
  /// uses the fingerprint Jobs carry from submission time so the hash
  /// (which walks every deck region) is paid once per job, not per run.
  std::shared_ptr<const World> acquire(const ProblemDeck& deck,
                                       std::uint64_t fingerprint, bool* hit)
      NEUTRAL_EXCLUDES(mutex_);

  /// Slab variant, keyed by domain_world_fingerprint(deck, window): domain
  /// decompositions of sweep jobs that share geometry reuse one slab world
  /// per window instead of rebuilding mesh + XS tables per job.
  std::shared_ptr<const World> acquire(const ProblemDeck& deck,
                                       const DomainWindow& window,
                                       bool* hit = nullptr)
      NEUTRAL_EXCLUDES(mutex_);

  [[nodiscard]] Stats stats() const NEUTRAL_EXCLUDES(mutex_);
  [[nodiscard]] const WorldCacheOptions& options() const { return options_; }

  /// Number of cached (or in-flight) worlds.
  [[nodiscard]] std::size_t size() const NEUTRAL_EXCLUDES(mutex_);

  /// Drop every entry; outstanding shared_ptrs stay valid.
  void clear() NEUTRAL_EXCLUDES(mutex_);

 private:
  using Future = std::shared_future<std::shared_ptr<const World>>;
  using Builder = std::function<std::shared_ptr<const World>()>;

  /// Shared hit/miss/build/evict machinery behind every acquire overload.
  std::shared_ptr<const World> acquire_keyed(std::uint64_t key,
                                             const Builder& build, bool* hit)
      NEUTRAL_EXCLUDES(mutex_);

  struct Entry {
    Future future;
    std::uint64_t last_use = 0;  ///< monotonic acquire tick (LRU order)
    std::uint64_t bytes = 0;     ///< 0 while the build is in flight
    bool built = false;
  };

  /// Drop LRU built entries until the budget holds; `protect` (the entry
  /// that just finished building) is never evicted.  Caller holds mutex_.
  void evict_over_budget_locked(std::uint64_t protect)
      NEUTRAL_REQUIRES(mutex_);
  /// Refresh the resident gauges after any entries_ mutation (lock held).
  void note_residency_locked() NEUTRAL_REQUIRES(mutex_);

  WorldCacheOptions options_;
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_
      NEUTRAL_GUARDED_BY(mutex_);
  std::uint64_t tick_ NEUTRAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t resident_bytes_ NEUTRAL_GUARDED_BY(mutex_) = 0;
  Stats stats_ NEUTRAL_GUARDED_BY(mutex_);

  // Resolved once in the ctor from options_.metrics; null = unobserved.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* resident_bytes_gauge_ = nullptr;
  obs::Gauge* resident_worlds_gauge_ = nullptr;
};

}  // namespace neutral::batch
