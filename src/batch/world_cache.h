// Shared world cache: one immutable World per distinct deck geometry.
//
// Jobs in a sweep typically differ in run-control knobs (particle count,
// scheme, layout, seed) while sharing mesh + density + cross-section
// tables; rebuilding those per job is the dominant setup cost and pure
// waste.  The cache keys Worlds by world_fingerprint(deck) and hands out
// shared_ptr<const World> — read-only by type, so any number of concurrent
// Simulations can execute against one copy.
//
// Concurrency: each fingerprint maps to a shared_future.  The first
// acquirer installs a promise and builds *outside* the cache lock (a 4000^2
// build takes seconds — holding the lock would serialise unrelated builds);
// later acquirers wait on the future.  A build that throws evicts its entry
// so a subsequent acquire can retry.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/deck.h"
#include "core/world.h"

namespace neutral::batch {

class WorldCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< acquire() found an entry (built or building)
    std::uint64_t misses = 0;  ///< acquire() had to build
    std::uint64_t evictions = 0;  ///< failed builds removed

    [[nodiscard]] double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / total : 0.0;
    }
  };

  /// Return the world for `deck`, building it on first sight.  If `hit` is
  /// non-null it reports whether this call reused an existing entry.
  std::shared_ptr<const World> acquire(const ProblemDeck& deck,
                                       bool* hit = nullptr);

  /// Same, keyed by a precomputed world_fingerprint(deck) — the engine
  /// uses the fingerprint Jobs carry from submission time so the hash
  /// (which walks every deck region) is paid once per job, not per run.
  std::shared_ptr<const World> acquire(const ProblemDeck& deck,
                                       std::uint64_t fingerprint, bool* hit);

  [[nodiscard]] Stats stats() const;

  /// Number of cached (or in-flight) worlds.
  [[nodiscard]] std::size_t size() const;

  /// Drop every entry; outstanding shared_ptrs stay valid.
  void clear();

 private:
  using Future = std::shared_future<std::shared_ptr<const World>>;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Future> entries_;
  Stats stats_;
};

}  // namespace neutral::batch
