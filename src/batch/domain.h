// Domain (spatial) decomposition: tile the mesh into an R x C grid of
// slabs, give each subdomain a Simulation that materialises only its slab's
// mesh-resident state, and migrate particles between subdomains at facet
// crossings.
//
// Bank decomposition (batch/shard.h) splits the particle bank but every
// shard still allocates the FULL tally and density field — the mini-app's
// memory floor, O(nx*ny).  Domain decomposition splits that floor: each
// subdomain holds an (nx/C) x (ny/R) slab of tally + density (the cheap
// O(nx+ny) edge arrays stay replicated, so cell indices remain global and
// the facet arithmetic is bit-identical to the unsharded run).  A particle
// whose crossing leaves its slab is parked as a kMigrating checkpoint (the
// Particle record itself: position at the facet, decayed clocks, current
// RNG counter) and re-banked on the owning subdomain in deterministic id
// order; transport rounds repeat until every migration buffer drains.
//
// Determinism: per-particle physics depends only on edge coordinates, the
// (windowed but value-identical) density, and the id-keyed counter RNG —
// none of which the decomposition touches — so every cell receives exactly
// the unsharded run's deposit multiset.  Subdomain tallies are compensated
// (core/tally.h), their slabs are stitched into the full grid and folded
// through the PR 2 reduction, so the merged checksum and population are
// bit-identical to the unsharded compensated run for ANY grid at ANY
// worker count.  (OpenMC's distributed tally offloading and MC/DC's
// mesh-partitioned transport take the same architectural shape, without
// the bit-identical guarantee.)
//
// Execution: each transport round is a fork-join batch of custom-work jobs
// (Job::work) over the shared BatchEngine — subdomain state persists
// across rounds while the pool load-balances whichever subdomains are
// active.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/engine.h"
#include "core/simulation.h"
#include "mesh/window.h"

namespace neutral::batch {

/// An R x C tiling of an nx x ny cell grid, row-major subdomain order
/// (index = row * cols + col).  Per-axis extents differ by at most one
/// cell; the remainder goes to the leading rows/columns.
struct DomainGrid {
  std::int32_t rows = 1;
  std::int32_t cols = 1;
  std::vector<std::int32_t> row_start;  ///< size rows + 1 (cell y edges)
  std::vector<std::int32_t> col_start;  ///< size cols + 1 (cell x edges)

  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }
  /// Window of subdomain (r, c).
  [[nodiscard]] DomainWindow window(std::int32_t r, std::int32_t c) const;
  /// Subdomain index owning cell `cell`.
  [[nodiscard]] std::size_t owner(CellIndex cell) const;
};

/// Plan the tiling; rows/cols are clamped to ny/nx so no slab is empty.
DomainGrid plan_domains(std::int32_t nx, std::int32_t ny, std::int32_t rows,
                        std::int32_t cols);

/// Parse a "RxC" grid spec ("2x3" -> rows 2, cols 3); throws on anything
/// else.  Shared by the --domains flags of both CLIs.
std::pair<std::int32_t, std::int32_t> parse_domain_grid(
    const std::string& spec);

struct DomainOptions {
  std::int32_t rows = 1;
  std::int32_t cols = 1;
  /// Bank shards nested inside every subdomain (>= 1): the deck's id space
  /// is split into this many contiguous spans (batch::plan_shards) and
  /// each subdomain hosts one Simulation per span, holding the births in
  /// window ∩ span.  Migrants route to the (window owner, id span) pair,
  /// so spatial and bank decomposition compose — and stay bit-identical,
  /// because the per-window shard slabs fold through the same compensated
  /// reduction as plain shards.
  std::int32_t shards = 1;
  /// OpenMP threads per subdomain transport round (>= 1).  Any value
  /// preserves the bit-identical reduction; 1 maximises across-subdomain
  /// concurrency.
  std::int32_t threads_per_domain = 1;
  /// Queue priority stamped on every round job.
  std::int32_t priority = 0;
  /// Fork-join group id (non-zero) for round jobs.
  std::uint64_t group = 1;
};

/// Outcome of one domain-decomposed solve.
struct DomainRunReport {
  bool ok = false;
  std::string error;       ///< first failed round job when !ok
  bool timed_out = false;  ///< that failure hit a QueuePolicy deadline
  RunResult merged;        ///< stitched full-grid result; valid when ok
  DomainGrid grid;
  std::int32_t shards = 1; ///< bank shards per subdomain (DomainOptions)
  /// Initial bank size of each partial solve, subdomain-major then shard
  /// (particles born in its slab whose ids fall in its span).
  std::vector<std::int64_t> sourced;
  std::int64_t migrations = 0;  ///< checkpoints exchanged over the run
  std::int32_t rounds = 0;      ///< transport rounds over all timesteps
  /// Largest subdomain slab (tally + density bytes) — the per-node memory
  /// bound; also carried in merged.peak_mesh_bytes.
  std::uint64_t peak_mesh_bytes = 0;
  double wall_seconds = 0.0;
};

/// Decompose one deck over an R x C grid (optionally × opt.shards bank
/// spans per subdomain) and run it on `engine`.  Every scheme × layout
/// composes: the ParticleBank converts migrant checkpoints at layout
/// boundaries and Over Events rounds re-stream their workspace.  The
/// merged tally checksum and population are bit-identical to the
/// undecomposed compensated run for any grid × shard count at any worker
/// count.  `base` must carry a whole-bank span and no window (the
/// decomposition owns both axes).
DomainRunReport run_domains(BatchEngine& engine, const SimulationConfig& base,
                            const DomainOptions& opt = {});

}  // namespace neutral::batch
