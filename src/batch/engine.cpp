#include "batch/engine.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "batch/queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/host_info.h"
#include "runtime/timer.h"
#include "util/error.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace neutral::batch {

namespace {

/// The engine-level series, resolved once per run() (registry lookups are
/// name-keyed; the hot paths only ever touch the cached pointers).
struct EngineMetrics {
  obs::Counter* jobs_ok = nullptr;
  obs::Counter* jobs_failed = nullptr;
  obs::Counter* jobs_timed_out = nullptr;
  obs::Counter* jobs_cancelled = nullptr;
  obs::Histogram* job_wall = nullptr;
  obs::Histogram* job_events_per_second = nullptr;
  obs::Counter* ev_facets = nullptr;
  obs::Counter* ev_collisions = nullptr;
  obs::Counter* ev_censuses = nullptr;
  obs::Counter* ev_rng_draws = nullptr;
  obs::Counter* ev_xs_lookups = nullptr;
  obs::Counter* ev_tally_flushes = nullptr;

  explicit EngineMetrics(obs::MetricsRegistry* m) {
    if (m == nullptr) return;
    jobs_ok = &m->counter("neutral_jobs_ok_total", "jobs that completed");
    jobs_failed =
        &m->counter("neutral_jobs_failed_total",
                    "jobs that failed (excluding timed-out/cancelled)");
    jobs_timed_out = &m->counter("neutral_jobs_timed_out_total",
                                 "jobs that hit a QueuePolicy deadline");
    jobs_cancelled = &m->counter("neutral_jobs_cancelled_total",
                                 "jobs cancelled unrun (sibling failed)");
    job_wall = &m->histogram("neutral_job_wall_seconds",
                             "per-job wall clock incl. world acquisition",
                             {1e-3, 20});
    job_events_per_second =
        &m->histogram("neutral_job_events_per_second",
                      "per-job transport throughput", {1e3, 24});
    ev_facets = &m->counter("neutral_events_facets_total",
                            "facet crossings across all jobs");
    ev_collisions = &m->counter("neutral_events_collisions_total",
                                "collisions across all jobs");
    ev_censuses = &m->counter("neutral_events_censuses_total",
                              "census events across all jobs");
    ev_rng_draws =
        &m->counter("neutral_events_rng_draws_total", "RNG draws");
    ev_xs_lookups = &m->counter("neutral_events_xs_lookups_total",
                                "cross-section lookups");
    ev_tally_flushes = &m->counter("neutral_events_tally_flushes_total",
                                   "tally deposit flushes");
  }

  void note(const JobOutcome& outcome) const {
    if (jobs_ok == nullptr) return;
    if (outcome.ok) {
      jobs_ok->add();
      job_wall->observe(outcome.seconds);
      job_events_per_second->observe(outcome.result.events_per_second());
      const EventCounters& c = outcome.result.counters;
      ev_facets->add(c.facets);
      ev_collisions->add(c.collisions);
      ev_censuses->add(c.censuses);
      ev_rng_draws->add(c.rng_draws);
      ev_xs_lookups->add(c.xs_lookups);
      ev_tally_flushes->add(c.tally_flushes);
    } else if (outcome.cancelled) {
      jobs_cancelled->add();
    } else if (outcome.timed_out) {
      jobs_timed_out->add();
    } else {
      jobs_failed->add();
    }
  }
};

const char* terminal_event(const JobOutcome& outcome) {
  if (outcome.ok) return "completed";
  if (outcome.cancelled) return "cancelled";
  if (outcome.timed_out) return "timed_out";
  return "failed";
}

/// run()'s shared mutable state: the outcome table and the per-group job
/// countdowns, written by every worker and by the producer.  A class (not
/// a lambda closing over locals) so the lock relationship is expressed in
/// annotations the thread-safety analysis checks.
class RunRecorder {
 public:
  RunRecorder(BatchReport& report, JobQueue& queue,
              const EngineMetrics& metrics, obs::TraceLog* trace,
              const BatchEngine::CompletionCallback& on_complete,
              std::unordered_map<std::uint64_t, std::size_t> slot_of,
              std::unordered_map<std::uint64_t, std::size_t> group_remaining,
              std::vector<std::uint64_t> group_by_slot)
      : report_(report),
        queue_(queue),
        metrics_(metrics),
        trace_(trace),
        on_complete_(on_complete),
        slot_of_(std::move(slot_of)),
        group_by_slot_(std::move(group_by_slot)),
        group_remaining_(std::move(group_remaining)) {}

  /// Submission-order slot of a job id.  slot_of_ is immutable after
  /// construction, so workers may index per-slot arrays without the lock.
  [[nodiscard]] std::size_t slot(std::uint64_t job_id) const {
    return slot_of_.at(job_id);
  }

  /// Record one outcome (and its metrics/trace/callback side effects)
  /// under the lock.  The last outcome of a group evicts its cancellation
  /// tombstone: every job of the group is accounted for, so no push can
  /// resurrect it.
  void record(JobOutcome&& outcome) NEUTRAL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const std::size_t slot = slot_of_.at(outcome.job_id);
    report_.jobs[slot] = std::move(outcome);
    const JobOutcome& done = report_.jobs[slot];
    metrics_.note(done);
    if (trace_ != nullptr) {
      obs::TraceEvent event;
      event.event = terminal_event(done);
      event.job_id = done.job_id;
      event.group = group_by_slot_[slot];
      event.label = done.label;
      event.worker = done.worker;
      if (done.worker >= 0) {
        event.queue_wait_s = done.queue_wait_seconds;
        event.run_wall_s = done.seconds;
      }
      event.detail = done.error;
      trace_->record(event);
    }
    if (on_complete_) on_complete_(report_.jobs[slot]);
    const std::uint64_t group = group_by_slot_[slot];
    if (group != 0 && --group_remaining_.at(group) == 0) {
      queue_.forget_group(group);
    }
  }

 private:
  Mutex mutex_;
  /// Only the jobs table is worker-shared; run() touches the report's
  /// scalar fields strictly before the pool spawns and after it joins.
  BatchReport& report_ NEUTRAL_GUARDED_BY(mutex_);
  JobQueue& queue_;
  const EngineMetrics& metrics_;
  obs::TraceLog* const trace_;
  const BatchEngine::CompletionCallback& on_complete_;
  const std::unordered_map<std::uint64_t, std::size_t> slot_of_;
  const std::vector<std::uint64_t> group_by_slot_;
  std::unordered_map<std::uint64_t, std::size_t> group_remaining_
      NEUTRAL_GUARDED_BY(mutex_);
};

}  // namespace

std::size_t BatchReport::completed() const {
  std::size_t n = 0;
  for (const JobOutcome& j : jobs) n += j.ok ? 1 : 0;
  return n;
}

std::size_t BatchReport::failed() const { return jobs.size() - completed(); }

std::size_t BatchReport::cancelled() const {
  std::size_t n = 0;
  for (const JobOutcome& j : jobs) n += j.cancelled ? 1 : 0;
  return n;
}

std::size_t BatchReport::timed_out() const {
  std::size_t n = 0;
  for (const JobOutcome& j : jobs) n += j.timed_out ? 1 : 0;
  return n;
}

std::uint64_t BatchReport::total_events() const {
  std::uint64_t n = 0;
  for (const JobOutcome& j : jobs) {
    if (j.ok) n += j.result.counters.total_events();
  }
  return n;
}

double BatchReport::events_per_second() const {
  return wall_seconds > 0.0
             ? static_cast<double>(total_events()) / wall_seconds
             : 0.0;
}

PhaseProfiler::Report BatchReport::phase_totals() const {
  PhaseProfiler::Report total;
  for (const JobOutcome& j : jobs) {
    if (j.ok) total += j.result.phases;
  }
  return total;
}

namespace {

/// An engine-level registry also observes the world cache unless the
/// caller pointed the cache somewhere else explicitly.
EngineOptions with_cache_metrics(EngineOptions options) {
  if (options.metrics != nullptr && options.cache.metrics == nullptr) {
    options.cache.metrics = options.metrics;
  }
  return options;
}

}  // namespace

BatchEngine::BatchEngine(EngineOptions options)
    : options_(with_cache_metrics(options)),
      hw_concurrency_(probe_host().logical_cpus),
      cache_(options_.cache) {}

std::pair<std::int32_t, std::int32_t> BatchEngine::thread_budget(
    std::size_t n_jobs) const {
  std::int32_t workers = options_.workers;
  if (workers <= 0) {
    workers = std::min<std::int32_t>(
        hw_concurrency_, static_cast<std::int32_t>(std::max<std::size_t>(
                             n_jobs, 1)));
  }
  workers = std::max<std::int32_t>(workers, 1);

  // workers x threads_per_job <= hw_concurrency: fill the node, never
  // oversubscribe it.
  const std::int32_t budget = std::max<std::int32_t>(
      1, hw_concurrency_ / workers);
  std::int32_t threads = options_.threads_per_job;
  threads = threads <= 0 ? budget : std::min(threads, budget);
  return {workers, threads};
}

std::size_t BatchEngine::queue_depth(std::int32_t workers) const {
  return options_.queue_capacity > 0
             ? options_.queue_capacity
             : std::max<std::size_t>(2 * static_cast<std::size_t>(workers),
                                     16);
}

BatchReport BatchEngine::run(std::vector<Job> jobs,
                             const CompletionCallback& on_complete) {
  BatchReport report;
  const auto [workers, threads_per_job] = thread_budget(jobs.size());
  report.workers = workers;
  report.threads_per_job = threads_per_job;
  report.jobs.resize(jobs.size());
  if (jobs.empty()) return report;

  // Slot outcomes by submission order, keyed by job id; count each group's
  // jobs so the queue's cancellation tombstone can be evicted the moment
  // the group's last job is accounted for (a long-lived deployment would
  // otherwise leak one tombstone per cancelled group).
  std::unordered_map<std::uint64_t, std::size_t> slot_of;
  std::unordered_map<std::uint64_t, std::size_t> group_remaining;
  std::vector<std::uint64_t> group_by_slot(jobs.size(), 0);
  slot_of.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    NEUTRAL_REQUIRE(slot_of.emplace(jobs[i].id, i).second,
                    "duplicate job id in batch submission");
    report.jobs[i].job_id = jobs[i].id;
    report.jobs[i].label = jobs[i].label;
    group_by_slot[i] = jobs[i].group;
    if (jobs[i].group != 0) ++group_remaining[jobs[i].group];
  }

  JobQueue queue(queue_depth(workers), options_.policy, options_.metrics);
  const WorldCache::Stats cache_before = cache_.stats();
  const EngineMetrics metrics(options_.metrics);
  obs::TraceLog* const trace = options_.trace;
  RunRecorder recorder(report, queue, metrics, trace, on_complete,
                       std::move(slot_of), std::move(group_remaining),
                       std::move(group_by_slot));
  // Written by the producer before each push, read by the worker that pops
  // the job — the queue mutex orders the two, so no per-slot atomics.
  std::vector<std::chrono::steady_clock::time_point> submitted_at(
      jobs.size());
  WallTimer wall;

  auto cancelled_outcome = [](std::uint64_t id, std::string label,
                              SimulationConfig config, std::string error) {
    JobOutcome outcome;
    outcome.job_id = id;
    outcome.label = std::move(label);
    outcome.config = std::move(config);
    outcome.ok = false;
    outcome.cancelled = true;
    outcome.error = std::move(error);
    return outcome;
  };

  auto worker_loop = [&](std::int32_t worker_id) {
    while (std::optional<Job> job = queue.pop()) {
      JobOutcome outcome;
      outcome.job_id = job->id;
      outcome.label = job->label;
      outcome.worker = worker_id;
      outcome.queue_wait_seconds =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() -
              submitted_at[recorder.slot(job->id)])
              .count();
      if (trace != nullptr) {
        obs::TraceEvent event;
        event.event = "started";
        event.job_id = job->id;
        event.group = job->group;
        event.label = job->label;
        event.worker = worker_id;
        event.queue_wait_s = outcome.queue_wait_seconds;
        trace->record(event);
      }
      WallTimer timer;
      if (std::chrono::steady_clock::now() > job->deadline) {
        // Expired while queued (max_queue_wait): completes as timed_out
        // without wasting the pool on a result nobody is waiting for.
        outcome.ok = false;
        outcome.timed_out = true;
        outcome.error = "timed out waiting in queue (max_queue_wait)";
        outcome.config = job->config;
      } else {
        try {
          if (job->work) {
            // Custom work owns its own state and threading (including any
            // run-wall deadline its configs carry).
            outcome.result = job->work();
            outcome.config = job->config;
            outcome.ok = true;
          } else {
            SimulationConfig config = job->config;
            if (config.threads <= 0) config.threads = threads_per_job;
            if (options_.profile) config.profile = true;
            if (options_.policy.max_run_wall.count() > 0) {
              config.deadline = std::min(
                  config.deadline, std::chrono::steady_clock::now() +
                                       options_.policy.max_run_wall);
            }
            std::shared_ptr<const World> world =
                options_.reuse_worlds
                    ? cache_.acquire(config.deck, job->fingerprint,
                                     &outcome.world_cache_hit)
                    : build_world(config.deck);
            Simulation sim(std::move(config), std::move(world));
            outcome.result = sim.run();
            outcome.config = sim.config();
            outcome.ok = true;
          }
        } catch (const TimeoutError& e) {
          outcome.ok = false;
          outcome.timed_out = true;
          outcome.error = e.what();
          outcome.config = job->config;
        } catch (const std::exception& e) {
          outcome.ok = false;
          outcome.error = e.what();
          outcome.config = job->config;
        }
      }
      outcome.seconds = timer.seconds();

      const bool failed = !outcome.ok;
      const std::uint64_t failed_id = outcome.job_id;
      const std::uint64_t group = job->group;
      // Cancel BEFORE recording the failure: record() evicts the group's
      // tombstone when it accounts the group's last job, so the tombstone
      // must already exist by then — the reverse order would re-insert it
      // after the eviction and leak it.
      std::vector<Job> cancelled;
      if (failed && group != 0 && options_.cancel_failed_groups) {
        cancelled = queue.cancel_pending(group);
      }
      recorder.record(std::move(outcome));
      for (Job& sibling : cancelled) {
        recorder.record(cancelled_outcome(
            sibling.id, std::move(sibling.label), std::move(sibling.config),
            "cancelled: sibling job " + std::to_string(failed_id) +
                " failed"));
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (std::int32_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker_loop, w);
  }

  // Submit from this thread so the bounded queue back-pressures the
  // producer, then close to let workers drain and exit.  A push refused
  // because the job's group was cancelled mid-submission records the job
  // as cancelled (the queue remembers poisoned groups); a push that timed
  // out (max_queue_wait, saturated queue) records it as timed_out — either
  // way every job gets exactly one outcome, which is what lets record()
  // evict group tombstones safely.
  for (Job& job : jobs) {
    const std::uint64_t id = job.id;
    const std::uint64_t group = job.group;
    std::string label = job.label;
    SimulationConfig config = job.config;
    if (options_.policy.max_queue_wait.count() > 0 &&
        job.deadline == std::chrono::steady_clock::time_point::max()) {
      job.deadline =
          std::chrono::steady_clock::now() + options_.policy.max_queue_wait;
    }
    if (trace != nullptr) {
      obs::TraceEvent event;
      event.event = "submitted";
      event.job_id = id;
      event.group = group;
      event.label = label;
      trace->record(event);
    }
    submitted_at[recorder.slot(id)] = std::chrono::steady_clock::now();
    const PushOutcome pushed = queue.push(std::move(job));
    if (pushed == PushOutcome::kAccepted) {
      if (trace != nullptr) {
        obs::TraceEvent event;
        event.event = "queued";
        event.job_id = id;
        event.group = group;
        event.label = label;
        trace->record(event);
      }
      continue;
    }
    if (queue.group_cancelled(group)) {
      recorder.record(cancelled_outcome(
          id, std::move(label), std::move(config),
          "cancelled: submission refused, group " +
              std::to_string(group) + " already failed"));
    } else {
      JobOutcome outcome;
      outcome.job_id = id;
      outcome.label = std::move(label);
      outcome.config = std::move(config);
      outcome.ok = false;
      outcome.timed_out = pushed == PushOutcome::kTimedOut;
      outcome.error = pushed == PushOutcome::kTimedOut
                          ? "timed out waiting for queue space "
                            "(max_queue_wait)"
                          : "submission refused: queue closed";
      // A timed-out grouped push loses the fork-join result exactly like a
      // failed run: cancel the siblings already queued.  Tombstone first,
      // outcomes second — same ordering rule as the worker loop.
      std::vector<Job> cancelled;
      if (group != 0 && options_.cancel_failed_groups) {
        cancelled = queue.cancel_pending(group);
      }
      recorder.record(std::move(outcome));
      for (Job& sibling : cancelled) {
        recorder.record(cancelled_outcome(
            sibling.id, std::move(sibling.label), std::move(sibling.config),
            "cancelled: sibling job " + std::to_string(id) +
                " timed out at submission"));
      }
    }
  }
  queue.close();
  for (std::thread& t : pool) t.join();

  report.wall_seconds = wall.seconds();
  const WorldCache::Stats cache_after = cache_.stats();
  report.cache.hits = cache_after.hits - cache_before.hits;
  report.cache.misses = cache_after.misses - cache_before.misses;
  report.cache.evictions = cache_after.evictions - cache_before.evictions;
  report.cache.resident_worlds = cache_after.resident_worlds;
  report.cache.resident_bytes = cache_after.resident_bytes;
  return report;
}

}  // namespace neutral::batch
