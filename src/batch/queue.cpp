#include "batch/queue.h"

#include "util/error.h"

namespace neutral::batch {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  NEUTRAL_REQUIRE(capacity > 0, "job queue capacity must be positive");
}

bool JobQueue::push_locked(Job&& job, std::unique_lock<std::mutex>& lock,
                          bool blocking) {
  const std::uint64_t group = job.group;
  auto cancelled = [&] {
    return group != 0 && cancelled_groups_.count(group) != 0;
  };
  if (blocking) {
    not_full_.wait(lock, [&] {
      return closed_ || cancelled() || heap_.size() < capacity_;
    });
  }
  if (closed_ || cancelled() || heap_.size() >= capacity_) return false;
  heap_.push(Entry{job.priority, next_sequence_++, std::move(job)});
  not_empty_.notify_one();
  return true;
}

std::vector<Job> JobQueue::cancel_pending(std::uint64_t group) {
  std::vector<Job> removed;
  if (group == 0) return removed;  // 0 = ungrouped, nothing to cancel
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_groups_.insert(group);
    if (!heap_.empty()) {
      // std::priority_queue cannot remove from the middle: drain and
      // rebuild.  Sequence numbers are preserved, so survivors keep their
      // FIFO order within each priority level.
      std::vector<Entry> keep;
      keep.reserve(heap_.size());
      while (!heap_.empty()) {
        Entry e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        if (e.job.group == group) {
          removed.push_back(std::move(e.job));
        } else {
          keep.push_back(std::move(e));
        }
      }
      for (Entry& e : keep) heap_.push(std::move(e));
    }
  }
  // Removing jobs frees capacity; a cancelled group also unblocks its own
  // producer, which must observe the refusal.
  not_full_.notify_all();
  return removed;
}

bool JobQueue::group_cancelled(std::uint64_t group) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return group != 0 && cancelled_groups_.count(group) != 0;
}

bool JobQueue::push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/true);
}

bool JobQueue::try_push(Job job) {
  std::unique_lock<std::mutex> lock(mutex_);
  return push_locked(std::move(job), lock, /*blocking=*/false);
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return std::nullopt;  // closed and drained
  // priority_queue::top() is const; the move is safe because the entry is
  // popped before anyone else can observe it.
  Job job = std::move(const_cast<Entry&>(heap_.top()).job);
  heap_.pop();
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace neutral::batch
