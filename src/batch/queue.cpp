#include "batch/queue.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace neutral::batch {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

JobQueue::JobQueue(std::size_t capacity, QueuePolicy policy,
                   obs::MetricsRegistry* metrics)
    : capacity_(capacity),
      policy_(policy),
      epoch_(std::chrono::steady_clock::now()) {
  NEUTRAL_REQUIRE(capacity > 0, "job queue capacity must be positive");
  NEUTRAL_REQUIRE(policy.max_queue_wait.count() >= 0 &&
                      policy.max_run_wall.count() >= 0 &&
                      policy.priority_aging.count() >= 0,
                  "queue policy durations must be non-negative");
  if (metrics != nullptr) {
    depth_ = &metrics->gauge("neutral_queue_depth", "jobs currently queued");
    push_wait_ = &metrics->histogram(
        "neutral_queue_push_wait_seconds",
        "seconds producers blocked waiting for queue space");
    pop_wait_ = &metrics->histogram(
        "neutral_queue_pop_wait_seconds",
        "seconds workers blocked waiting for a job");
    pushed_ = &metrics->counter("neutral_queue_pushed_total",
                                "jobs accepted into the queue");
    refused_ = &metrics->counter(
        "neutral_queue_refused_total",
        "pushes refused (queue closed or group cancelled)");
    push_timed_out_ = &metrics->counter(
        "neutral_queue_push_timed_out_total",
        "pushes that timed out against a saturated queue");
  }
}

double JobQueue::rank_of(const Job& job) const {
  // eff(t) = priority + (t - enqueue)/T is what we want to order by; the
  // `t` term is common to every comparison, so the stored rank drops it:
  // priority - (enqueue - epoch)/T.  Aging off (T = 0) stores the bare
  // priority, which is bitwise the strict-priority ordering.
  double rank = static_cast<double>(job.priority);
  if (policy_.priority_aging.count() > 0) {
    const double waited_intervals =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_)
            .count() /
        std::chrono::duration<double>(policy_.priority_aging).count();
    rank -= waited_intervals;
  }
  return rank;
}

void JobQueue::note_depth_locked() {
  if (depth_ != nullptr) {
    depth_->set(static_cast<std::int64_t>(live_));
  }
}

void JobQueue::note_push_outcome(PushOutcome outcome, double wait_seconds) {
  if (push_wait_ != nullptr) push_wait_->observe(wait_seconds);
  switch (outcome) {
    case PushOutcome::kAccepted:
      if (pushed_ != nullptr) pushed_->add();
      break;
    case PushOutcome::kRefused:
      if (refused_ != nullptr) refused_->add();
      break;
    case PushOutcome::kTimedOut:
      if (push_timed_out_ != nullptr) push_timed_out_->add();
      break;
  }
}

void JobQueue::drop_dead_top_locked() {
  while (!heap_.empty() && heap_.front().dead) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryOrder{});
    heap_.pop_back();
  }
}

Job JobQueue::take_top_locked() {
  drop_dead_top_locked();
  std::pop_heap(heap_.begin(), heap_.end(), EntryOrder{});
  Job job = std::move(heap_.back().job);
  heap_.pop_back();
  --live_;
  // The new top may itself be a tombstone left behind by a cancellation;
  // purge now so the shrink is not deferred indefinitely.
  drop_dead_top_locked();
  note_depth_locked();
  return job;
}

bool JobQueue::group_cancelled_locked(std::uint64_t group) const {
  return group != 0 && cancelled_groups_.contains(group);
}

PushOutcome JobQueue::push_locked(
    Job&& job, MutexLock& lock, bool blocking,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const std::uint64_t group = job.group;
  // Explicit wait loops instead of predicate lambdas: the predicate reads
  // guarded state, and only a loop spelled out in this (REQUIRES-annotated)
  // function keeps those reads visible to the thread-safety analysis.
  if (blocking) {
    while (!(closed_ || group_cancelled_locked(group) ||
             live_ < capacity_)) {
      if (deadline.has_value()) {
        if (not_full_.wait_until(lock, *deadline) ==
            std::cv_status::timeout) {
          break;  // the post-wait checks below classify the expiry
        }
      } else {
        not_full_.wait(lock);
      }
    }
  }
  if (closed_ || group_cancelled_locked(group)) return PushOutcome::kRefused;
  if (live_ >= capacity_) {
    // Still full: a timed wait expired (kTimedOut — the queue is alive and
    // retrying may succeed) or this was a try_push.
    return deadline.has_value() ? PushOutcome::kTimedOut
                                : PushOutcome::kRefused;
  }
  heap_.push_back(
      Entry{rank_of(job), next_sequence_++, /*dead=*/false, std::move(job)});
  std::push_heap(heap_.begin(), heap_.end(), EntryOrder{});
  ++live_;
  note_depth_locked();
  not_empty_.notify_one();
  return PushOutcome::kAccepted;
}

std::vector<Job> JobQueue::cancel_pending(std::uint64_t group) {
  std::vector<Job> removed;
  if (group == 0) return removed;  // 0 = ungrouped, nothing to cancel
  {
    MutexLock lock(mutex_);
    cancelled_groups_.insert(group);
    // Lazy tombstoning: mark matches dead in place — O(n) scan, no heap
    // rebuild — and let pop() discard them as they surface at the top.
    // The jobs themselves are moved out now so the caller can record
    // their outcomes; ordering by sequence keeps that record
    // deterministic.
    std::vector<std::pair<std::uint64_t, Job>> matches;
    for (Entry& entry : heap_) {
      if (!entry.dead && entry.job.group == group) {
        matches.emplace_back(entry.sequence, std::move(entry.job));
        entry.dead = true;
        --live_;
      }
    }
    std::sort(matches.begin(), matches.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    removed.reserve(matches.size());
    for (auto& [sequence, job] : matches) {
      (void)sequence;
      removed.push_back(std::move(job));
    }
    // Keep the "front() is live while live_ > 0" invariant cheaply; deeper
    // tombstones wait for pop().
    drop_dead_top_locked();
    note_depth_locked();
  }
  // Tombstoning frees live capacity; a cancelled group also unblocks its
  // own producer, which must observe the refusal (even when nothing was
  // queued yet — the producer may be mid-push).
  not_full_.notify_all();
  return removed;
}

void JobQueue::forget_group(std::uint64_t group) {
  if (group == 0) return;
  MutexLock lock(mutex_);
  cancelled_groups_.erase(group);
}

bool JobQueue::group_cancelled(std::uint64_t group) const {
  MutexLock lock(mutex_);
  return group_cancelled_locked(group);
}

std::size_t JobQueue::cancelled_group_count() const {
  MutexLock lock(mutex_);
  return cancelled_groups_.size();
}

PushOutcome JobQueue::push(Job job) {
  const auto start = std::chrono::steady_clock::now();
  PushOutcome outcome;
  {
    MutexLock lock(mutex_);
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (policy_.max_queue_wait.count() > 0) {
      deadline = start + policy_.max_queue_wait;
    }
    outcome = push_locked(std::move(job), lock, /*blocking=*/true, deadline);
  }
  note_push_outcome(outcome, seconds_since(start));
  return outcome;
}

PushOutcome JobQueue::push_until(
    Job job, std::chrono::steady_clock::time_point deadline) {
  const auto start = std::chrono::steady_clock::now();
  PushOutcome outcome;
  {
    MutexLock lock(mutex_);
    outcome = push_locked(std::move(job), lock, /*blocking=*/true, deadline);
  }
  note_push_outcome(outcome, seconds_since(start));
  return outcome;
}

bool JobQueue::try_push(Job job) {
  const auto start = std::chrono::steady_clock::now();
  PushOutcome outcome;
  {
    MutexLock lock(mutex_);
    outcome = push_locked(std::move(job), lock, /*blocking=*/false,
                          std::nullopt);
  }
  note_push_outcome(outcome, seconds_since(start));
  return outcome == PushOutcome::kAccepted;
}

std::optional<Job> JobQueue::pop() {
  const auto start = std::chrono::steady_clock::now();
  std::optional<Job> job;
  {
    MutexLock lock(mutex_);
    while (!(closed_ || live_ > 0)) not_empty_.wait(lock);
    if (live_ == 0) return std::nullopt;  // closed and drained
    job = take_top_locked();
    not_full_.notify_one();
  }
  if (pop_wait_ != nullptr) pop_wait_->observe(seconds_since(start));
  return job;
}

std::optional<Job> JobQueue::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<Job> job;
  {
    MutexLock lock(mutex_);
    while (!(closed_ || live_ > 0)) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (live_ == 0) {
      return std::nullopt;  // closed, drained, or timed out
    }
    job = take_top_locked();
    not_full_.notify_one();
  }
  if (pop_wait_ != nullptr) pop_wait_->observe(seconds_since(start));
  return job;
}

void JobQueue::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool JobQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  MutexLock lock(mutex_);
  return live_;
}

std::size_t JobQueue::dead_entries() const {
  MutexLock lock(mutex_);
  return heap_.size() - live_;
}

}  // namespace neutral::batch
